//! Collection strategies (`proptest::collection::vec`).

use crate::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// A length specification for generated collections: either an exact size
/// or a half-open range, mirroring `proptest::collection::SizeRange`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive; lo == hi means "exactly lo"
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut StdRng) -> usize {
        if self.lo == self.hi {
            self.lo
        } else {
            rng.gen_range(self.lo..self.hi)
        }
    }
}

/// Strategy for `Vec<S::Value>` with lengths drawn from a [`SizeRange`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length
/// comes from `size` (an exact `usize` or a `Range<usize>`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case_rng;

    #[test]
    fn exact_and_ranged_lengths() {
        let mut rng = case_rng("vec", 0);
        for _ in 0..200 {
            assert_eq!(vec(0u8..10, 7usize).generate(&mut rng).len(), 7);
            let v = vec(-1.0f64..1.0, 0..5).generate(&mut rng);
            assert!(v.len() < 5);
            assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }
    }
}
