//! Offline stand-in for the `proptest` crate (1.x-compatible subset).
//!
//! Vendored because this workspace builds without crates.io access. It keeps
//! the programming model of real proptest — [`Strategy`] values describing
//! how to generate inputs, the [`proptest!`] macro turning annotated
//! functions into `#[test]`s, `prop_assert!`/`prop_assert_eq!` assertions,
//! and [`ProptestConfig::with_cases`] — but with two deliberate
//! simplifications:
//!
//! 1. **No shrinking.** A failing case panics with the generated inputs
//!    implicit in the assertion message; it is not minimized.
//! 2. **Uniform generation.** Values are drawn uniformly (with a small bias
//!    toward edge values for `any::<T>()` integers) rather than via real
//!    proptest's size-ramped, edge-biased search.
//!
//! Cases are fully deterministic: case `k` of test `name` always sees the
//! same inputs, derived by hashing `(name, k)` into a 64-bit seed. Set
//! `PROPTEST_CASES` to override the default case count for tests without
//! an explicit config.
//!
//! **Replaying a failure.** When a case fails, the harness prints a
//! breadcrumb of the form
//!
//! ```text
//! proptest: case 17 of my_property failed; replay with SAPS_PROPTEST_SEED=0x1234abcd5678ef00
//! ```
//!
//! Re-running the same test with that variable set (decimal or `0x`-hex)
//! runs exactly the one failing case:
//!
//! ```sh
//! SAPS_PROPTEST_SEED=0x1234abcd5678ef00 cargo test --test proptest_des my_property
//! ```
//!
//! The seed fully determines the generated inputs, so the replayed case is
//! bit-identical to the failure.
//!
//! Swapping the real `proptest = "1"` back in requires no source changes
//! beyond losing the replay variable.

use std::marker::PhantomData;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod collection;

/// The user-facing prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Per-block configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(32);
        ProptestConfig { cases }
    }
}

/// A recipe for generating values of type `Value`.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Generates one value. Deterministic in `rng`.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Generates with a strategy derived from each generated value
    /// (dependent generation, e.g. a matrix then entries sized to it).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { source: self, f }
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let intermediate = self.source.generate(rng);
        (self.f)(intermediate).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.f)(self.source.generate(rng))
    }
}

/// A strategy that always yields the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "any value" strategy; see [`any`].
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                // Bias 1-in-8 draws toward the edge values real proptest
                // probes first; tests here mostly use this for RNG seeds.
                if rng.gen_range(0u32..8) == 0 {
                    *[<$t>::MIN, <$t>::MAX, 0, 1].choose_with(rng)
                } else {
                    rng.gen()
                }
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        // Spread mass across magnitudes; keep values finite.
        let mantissa: f64 = rng.gen_range(-1.0..1.0);
        let exp: i32 = rng.gen_range(-64..64);
        mantissa * (exp as f64).exp2()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut StdRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

trait ChooseWith<T> {
    fn choose_with(&self, rng: &mut StdRng) -> &T;
}

impl<T> ChooseWith<T> for [T] {
    fn choose_with(&self, rng: &mut StdRng) -> &T {
        &self[rng.gen_range(0..self.len())]
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// The error type a property-test body may return (`return Ok(())` /
/// `Err(...)`), mirroring `proptest::test_runner::TestCaseError`.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// The 64-bit seed that fully determines one test case's inputs.
/// Printed on failure so `SAPS_PROPTEST_SEED` can replay it. Public for
/// the [`proptest!`] macro expansion, not for direct use.
#[doc(hidden)]
pub fn case_seed(test_name: &str, case: u32) -> u64 {
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^ (u64::from(case) << 32) ^ u64::from(case)
}

/// Builds the RNG generating the inputs for `seed` (one test case).
/// Public for the [`proptest!`] macro expansion, not for direct use.
#[doc(hidden)]
pub fn seed_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Builds the deterministic RNG for one test case. Public for the
/// [`proptest!`] macro expansion, not for direct use.
#[doc(hidden)]
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    seed_rng(case_seed(test_name, case))
}

/// Parses a `SAPS_PROPTEST_SEED` value: decimal or `0x`/`0X`-prefixed
/// hexadecimal.
pub fn parse_replay_seed(raw: &str) -> Option<u64> {
    let raw = raw.trim();
    if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        raw.parse().ok()
    }
}

/// Reads the replay seed from the environment, if set and well-formed.
/// Public for the [`proptest!`] macro expansion, not for direct use.
#[doc(hidden)]
pub fn replay_seed() -> Option<u64> {
    std::env::var("SAPS_PROPTEST_SEED")
        .ok()
        .and_then(|v| parse_replay_seed(&v))
}

/// Declares property tests. Mirrors real proptest's surface syntax:
///
/// ```
/// use proptest::prelude::*;
///
/// // In real code the functions carry `#[test]`; here the generated
/// // function is called directly so the doctest exercises it.
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            // With SAPS_PROPTEST_SEED set, replay exactly the one case
            // that seed describes; otherwise enumerate the configured
            // cases, printing the failing case's seed as a replay
            // breadcrumb.
            let __seeds: ::std::vec::Vec<u64> = match $crate::replay_seed() {
                Some(s) => vec![s],
                None => (0..__config.cases)
                    .map(|c| $crate::case_seed(stringify!($name), c))
                    .collect(),
            };
            for (__case, __seed) in __seeds.into_iter().enumerate() {
                let __run = || {
                    let mut __rng = $crate::seed_rng(__seed);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    // Bodies may `return Ok(())` early, as in real
                    // proptest, so each case runs inside a
                    // Result-returning closure.
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            Ok(())
                        })();
                    if let Err(e) = __outcome {
                        panic!(
                            "proptest case {} of {} failed: {}",
                            __case, stringify!($name), e
                        );
                    }
                };
                if let Err(__panic) =
                    ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(__run))
                {
                    eprintln!(
                        "proptest: case {} of {} failed; replay with SAPS_PROPTEST_SEED={:#x}",
                        __case,
                        stringify!($name),
                        __seed
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property test (panics on failure; this
/// stub does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = case_rng("ranges", 0);
        for _ in 0..1000 {
            let (a, b) = (1usize..6, -2.0f32..2.0).generate(&mut rng);
            assert!((1..6).contains(&a));
            assert!((-2.0..2.0).contains(&b));
        }
    }

    #[test]
    fn flat_map_sees_intermediate() {
        let strat = (1usize..4).prop_flat_map(|n| (Just(n), collection::vec(0u32..10, n)));
        let mut rng = case_rng("flat_map", 0);
        for _ in 0..200 {
            let (n, v) = strat.generate(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a = any::<u64>().generate(&mut case_rng("det", 3));
        let b = any::<u64>().generate(&mut case_rng("det", 3));
        assert_eq!(a, b);
    }

    #[test]
    fn replay_seed_parses_decimal_and_hex() {
        assert_eq!(parse_replay_seed("12345"), Some(12345));
        assert_eq!(parse_replay_seed(" 12345 \n"), Some(12345));
        assert_eq!(parse_replay_seed("0xff"), Some(255));
        assert_eq!(parse_replay_seed("0XFF"), Some(255));
        assert_eq!(
            parse_replay_seed("0xdeadbeefdeadbeef"),
            Some(0xdead_beef_dead_beef)
        );
        assert_eq!(parse_replay_seed(""), None);
        assert_eq!(parse_replay_seed("0x"), None);
        assert_eq!(parse_replay_seed("not a seed"), None);
        assert_eq!(parse_replay_seed("-3"), None);
    }

    #[test]
    fn seed_replay_reproduces_the_exact_case() {
        // The breadcrumb prints `case_seed`; feeding it back through
        // `seed_rng` must regenerate the same inputs the failing case
        // saw.
        let seed = case_seed("some_property", 17);
        let strat = (0u64..u64::MAX, 0.0f64..1.0);
        let original = strat.generate(&mut case_rng("some_property", 17));
        let replayed = strat.generate(&mut seed_rng(seed));
        assert_eq!(original, replayed);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn macro_end_to_end((n, v) in (2usize..5).prop_flat_map(|n| (Just(n), collection::vec(0i64..100, n)))) {
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|&x| x < 100));
        }
    }

    proptest! {
        #[test]
        fn macro_default_config(x in 0u32..10, y in 0u32..10) {
            prop_assert!(x + y < 20);
        }
    }

    // No #[test] attribute: invoked (and expected to panic) from the
    // breadcrumb test below rather than by the harness.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]
        fn always_fails(x in 0u32..10) {
            prop_assert!(x > 100, "x was {x}");
        }
    }

    #[test]
    fn failing_case_still_panics_through_the_breadcrumb_wrapper() {
        // The replay breadcrumb is printed via catch_unwind +
        // resume_unwind; the failure itself must still propagate.
        let outcome = std::panic::catch_unwind(always_fails);
        assert!(outcome.is_err(), "failing property must panic");
    }
}
