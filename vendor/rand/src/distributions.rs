//! Distributions: the [`Distribution`] trait, the [`Standard`] distribution,
//! and uniform range sampling.

use crate::{Rng, RngCore};

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample using `rng` as the entropy source.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution per type: full range for integers, `[0, 1)`
/// for floats, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        // 24 uniform bits into [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform range sampling, mirroring `rand::distributions::uniform`.
pub mod uniform {
    use super::*;
    use std::ops::{Range, RangeInclusive};

    /// A range that can produce uniform samples of `T`.
    pub trait SampleRange<T> {
        /// Draws one sample from the range. Panics if the range is empty.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! range_int {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty integer range");
                    let span = (self.end as i128) - (self.start as i128);
                    let v = (rng.next_u64() as i128).rem_euclid(span);
                    ((self.start as i128) + v) as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty integer range");
                    let span = (hi as i128) - (lo as i128) + 1;
                    let v = (rng.next_u64() as i128).rem_euclid(span);
                    ((lo as i128) + v) as $t
                }
            }
        )*};
    }
    range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! range_float {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty float range");
                    let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                    let v = self.start + (self.end - self.start) * (u as $t);
                    // Guard against rounding up to the excluded endpoint:
                    // fall back to the largest float below `end` (sign-aware;
                    // bit tricks like `to_bits() - 1` break for end <= 0).
                    if v < self.end {
                        v
                    } else {
                        let down = if self.end > 0.0 {
                            <$t>::from_bits(self.end.to_bits() - 1)
                        } else if self.end == 0.0 {
                            -<$t>::from_bits(1) // largest value below +0.0
                        } else {
                            <$t>::from_bits(self.end.to_bits() + 1)
                        };
                        down.max(self.start)
                    }
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty float range");
                    let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                    lo + (hi - lo) * (u as $t)
                }
            }
        )*};
    }
    range_float!(f32, f64);
}

#[cfg(test)]
mod tests {
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn float_ranges_respect_open_endpoint() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!((f64::MIN_POSITIVE..1.0).contains(&v));
            let w: f32 = rng.gen_range(-2.0f32..=2.0);
            assert!((-2.0..=2.0).contains(&w));
        }
    }

    #[test]
    fn float_ranges_with_nonpositive_upper_bound() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(-1.0..0.0);
            assert!((-1.0..0.0).contains(&v));
            let w: f32 = rng.gen_range(-2.0f32..-1.0);
            assert!((-2.0..-1.0).contains(&w));
        }
        // One-ULP-wide range: the endpoint guard must still stay in range.
        let lo = 1.0f64;
        let hi = f64::from_bits(lo.to_bits() + 1);
        for _ in 0..100 {
            assert_eq!(rng.gen_range(lo..hi), lo);
        }
    }

    #[test]
    fn all_ints_reachable() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
