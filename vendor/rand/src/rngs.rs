//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator.
///
/// Internally a splitmix64 counter generator: `next_u64` advances a Weyl
/// sequence and applies the splitmix64 finalizer. This is a different stream
/// from upstream `rand`'s ChaCha12-based `StdRng`, but it is deterministic,
/// portable, `Clone`, and statistically uniform — the only properties the
/// workspace relies on (see `saps_tensor::rng` for how seeds are derived).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    state: u64,
}

const WEYL: u64 = 0x9E37_79B9_7F4A_7C15;

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(WEYL);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        // Pre-whiten the seed so nearby seeds (0, 1, 2, …) do not produce
        // correlated first outputs.
        let mut rng = StdRng {
            state: state ^ 0x6A09_E667_F3BC_C909,
        };
        rng.next_u64();
        rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelated() {
        let x = StdRng::seed_from_u64(0).next_u64();
        let y = StdRng::seed_from_u64(1).next_u64();
        assert_ne!(x, y);
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }
}
