//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! This workspace builds in environments with no access to crates.io, so the
//! external dependencies the code imports are vendored as small, API-compatible
//! reimplementations. This crate covers exactly the surface the workspace
//! uses:
//!
//! * [`RngCore`], [`Rng`] (`gen`, `gen_range`, `gen_bool`, `sample`),
//!   [`SeedableRng::seed_from_u64`];
//! * [`rngs::StdRng`] — a deterministic splitmix64-based generator (NOT the
//!   upstream ChaCha12; streams differ from real `rand`, but every consumer in
//!   this workspace only relies on determinism and statistical uniformity);
//! * [`distributions::Distribution`] + [`distributions::Standard`];
//! * [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! Swapping the real `rand = "0.8"` back in requires no source changes — only
//! re-pointing the `[workspace.dependencies]` entry at crates.io.

pub mod distributions;
pub mod rngs;
pub mod seq;

use distributions::uniform::SampleRange;
use distributions::{Distribution, Standard};

/// The core of a random number generator: a source of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (high half of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples a value uniformly from `range` (`low..high` or `low..=high`).
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool: probability {p} outside [0, 1]"
        );
        self.gen::<f64>() < p
    }

    /// Samples a value from the given distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed. Deterministic across platforms.
    fn seed_from_u64(state: u64) -> Self;
}
