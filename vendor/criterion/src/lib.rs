//! Offline stand-in for the `criterion` crate (0.5-compatible subset).
//!
//! Vendored because this workspace builds without crates.io access. The four
//! benches under `crates/bench/benches/` compile against this surface and,
//! when actually run (`cargo bench`), execute each benchmark with a fixed
//! small iteration budget and print mean wall-clock time per iteration —
//! enough for coarse comparisons. There is no statistical analysis, outlier
//! rejection, or HTML report; swap the real `criterion = "0.5"` back in for
//! publication-grade numbers.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Measurement settings shared by a group of benchmarks.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Upstream parses CLI flags here; this stub accepts and ignores them.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
        }
    }
}

/// A named set of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&id, self.sample_size, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, N, F>(&mut self, id: N, input: &I, mut f: F) -> &mut Self
    where
        N: IntoBenchmarkId,
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&id, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (upstream emits summary reports here; this is a no-op).
    pub fn finish(self) {}
}

/// An identifier for one benchmark, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter, for groups whose name already says what varies.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion of `&str` / `String` / [`BenchmarkId`] into a benchmark name.
pub trait IntoBenchmarkId {
    /// The display name.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    iterations: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Times `routine`, recording mean time per call.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // One warm-up call outside the timed region.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed_ns += start.elapsed().as_nanos();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        iterations: sample_size as u64,
        elapsed_ns: 0,
    };
    f(&mut b);
    if b.iterations > 0 && b.elapsed_ns > 0 {
        let per_iter = b.elapsed_ns / u128::from(b.iterations);
        println!("{id:<60} {:>12} ns/iter", per_iter);
    } else {
        println!("{id:<60} (no measurement)");
    }
}

/// Collects benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("tiny");
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::from_parameter(7u32), &7u32, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
    }

    criterion_group!(test_benches, tiny_bench);

    #[test]
    fn group_machinery_runs() {
        test_benches();
    }
}
