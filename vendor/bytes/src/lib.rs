//! Offline stand-in for the `bytes` crate (1.x-compatible subset).
//!
//! Vendored because this workspace builds without crates.io access. It covers
//! the surface the codecs and checkpoint modules use: [`Bytes`], [`BytesMut`],
//! and the [`Buf`] / [`BufMut`] traits with little-endian get/put accessors.
//!
//! [`Bytes`] is a cheaply cloneable view into shared immutable storage;
//! [`Buf`] reads consume from the front, exactly like upstream.

use std::ops::Deref;
use std::sync::Arc;

/// Read access to a contiguous buffer, consuming from the front.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Consumes `cnt` bytes from the front. Panics past the end.
    fn advance(&mut self, cnt: usize);

    /// `true` while at least one byte is unread.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies exactly `dst.len()` bytes out, advancing. Panics if short.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "copy_to_slice: {} bytes requested, {} remaining",
            dst.len(),
            self.remaining()
        );
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Write access to a growable buffer, appending at the back.
pub trait BufMut {
    /// Appends all of `src`.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// A cheaply cloneable, immutable byte buffer. Reading through [`Buf`]
/// consumes from the front (the view narrows; the storage is shared).
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Length of the (unconsumed) view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` if no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The view as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// A sub-view of this buffer (indices relative to the current view),
    /// sharing the same storage.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:?})", self.as_slice())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(
            cnt <= self.len(),
            "advance: {} past remaining {}",
            cnt,
            self.len()
        );
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(
            cnt <= self.len(),
            "advance: {} past remaining {}",
            cnt,
            self.len()
        );
        *self = &self[cnt..];
    }
}

/// A growable byte buffer for building payloads; freeze into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Appends a slice (alias of [`BufMut::put_slice`], matching upstream).
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.inner)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_accessors() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u16_le(0xBEEF);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(0x0123_4567_89AB_CDEF);
        b.put_f32_le(1.5);
        b.put_f64_le(-2.25);
        let mut r = b.freeze();
        assert_eq!(r.len(), 1 + 2 + 4 + 8 + 4 + 8);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_f64_le(), -2.25);
        assert!(!r.has_remaining());
    }

    #[test]
    fn clones_share_storage_and_consume_independently() {
        let src = Bytes::from(vec![1u8, 2, 3, 4]);
        let mut a = src.clone();
        a.advance(2);
        assert_eq!(a.as_slice(), &[3, 4]);
        assert_eq!(src.as_slice(), &[1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "advance")]
    fn advance_past_end_panics() {
        let mut b = Bytes::from(vec![1u8]);
        b.advance(2);
    }
}
