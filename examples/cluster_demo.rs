//! SAPS-PSGD as a real message-passing cluster: 8 workers and a
//! coordinator exchanging serialized `saps-proto` frames over the
//! in-process loopback transport, with churn mid-run — and the run is
//! bit-identical to the in-memory trainer's.
//!
//! Every round here is Algorithm 1/2 as messages: the coordinator
//! broadcasts `NotifyTrain(W_t, t, s)`, matched workers swap
//! values-only `MaskedPayload` frames (4·nnz bytes — the Table I worker
//! cost), everyone acknowledges with `RoundEnd`, and churn arrives as
//! `Leave`/`Join` control frames. The wire tap prints where every byte
//! went: worker-row payload values vs server-row control plane (frames +
//! envelopes) vs the evaluation-time model plane.
//!
//! ```sh
//! cargo run --release --example cluster_demo
//! ```

use saps::cluster::{cluster_registry, WireTap};
use saps::core::{AlgorithmRegistry, AlgorithmSpec, Experiment, ScenarioEvent};
use saps::data::SyntheticSpec;
use saps::netsim::BandwidthMatrix;
use saps::nn::zoo;

const N: usize = 8;
const ROUNDS: usize = 60;

fn experiment(registry: &AlgorithmRegistry) -> saps::core::RunHistory {
    let ds = SyntheticSpec::tiny().samples(4_000).generate(21);
    let (train, val) = ds.split(0.2, 0);
    Experiment::new(AlgorithmSpec::Saps {
        compression: 8.0,
        tthres: 5,
        bthres: None,
    })
    .train(train)
    .validation(val)
    .workers(N)
    .batch_size(32)
    .lr(0.1)
    .seed(21)
    .bandwidth_matrix(BandwidthMatrix::constant(N, 1.0))
    .model(|rng| zoo::mlp(&[16, 24, 4], rng))
    .rounds(ROUNDS)
    .eval_every(15)
    .eval_samples(400)
    // Churn mid-run: two workers drop at round 20 (Leave frames), both
    // return at round 40 (Join frames) with their frozen models.
    .event(20, ScenarioEvent::WorkerLeave { rank: 6 })
    .event(20, ScenarioEvent::WorkerLeave { rank: 7 })
    .event(40, ScenarioEvent::WorkerJoin { rank: 6 })
    .event(40, ScenarioEvent::WorkerJoin { rank: 7 })
    .run(registry)
    .expect("cluster experiment")
}

fn main() {
    println!("SAPS-PSGD over the message-driven cluster runtime");
    println!("{N} workers + coordinator, loopback transport, churn at rounds 20/40\n");

    let tap = WireTap::new();
    let cluster = experiment(&cluster_registry(tap.clone()));
    let wire = tap.snapshot();

    println!(
        "cluster run:   final acc {:5.1}% | worker traffic {:8.4} MB | server (control) {:8.4} MB",
        cluster.final_acc * 100.0,
        cluster.total_worker_traffic_mb,
        cluster.total_server_traffic_mb,
    );

    // The same spec through the in-memory trainer: the learning curve
    // must match bit for bit (the wire changes nothing but the clock).
    let memory = experiment(&AlgorithmRegistry::core());
    println!(
        "in-memory run: final acc {:5.1}% | worker traffic {:8.4} MB | server (control) {:8.4} MB",
        memory.final_acc * 100.0,
        memory.total_worker_traffic_mb,
        memory.total_server_traffic_mb,
    );
    assert_eq!(
        cluster.final_acc, memory.final_acc,
        "cluster must match in-memory"
    );
    assert_eq!(
        cluster.total_worker_traffic_mb, memory.total_worker_traffic_mb,
        "worker rows bill the identical 4·nnz payloads"
    );

    println!(
        "\non the wire ({} frames, {:.4} MB total):",
        wire.frames,
        mb(wire.total_bytes)
    );
    println!(
        "  data plane (masked values, worker rows) {:10.4} MB",
        mb(wire.data_bytes)
    );
    println!(
        "  control plane (frames + envelopes)      {:10.4} MB",
        mb(wire.control_bytes)
    );
    println!(
        "  model plane (evaluation collection)     {:10.4} MB",
        mb(wire.model_bytes)
    );
    println!(
        "\nlearning curves bit-identical; the cluster's extra cost is the control plane \
         ({:.2}% of payload bytes).",
        100.0 * wire.control_bytes as f64 / wire.data_bytes as f64
    );
}

fn mb(bytes: u64) -> f64 {
    bytes as f64 / 1e6
}
