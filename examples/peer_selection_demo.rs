//! Anatomy of Algorithm 3: watch the adaptive peer selector balance
//! bandwidth exploitation against the connectivity requirement.
//!
//! Prints, per round, the chosen matching, its bottleneck bandwidth, and
//! whether the round used bandwidth matching or connectivity bridging —
//! then estimates ρ = λ₂(E[WᵀW]) of the generated stream to confirm
//! Assumption 3 holds.
//!
//! ```sh
//! cargo run --release --example peer_selection_demo
//! ```

use rand::SeedableRng;
use saps::gossip::{spectral, GossipMatrix};
use saps::graph::{connectivity, topology, Graph};
use saps::netsim::citydata;
use saps_core::GossipGenerator;

fn main() {
    let bw = citydata::fig1_bandwidth();
    let n = citydata::NUM_CITIES;
    let thres = bw.percentile(0.6);
    println!(
        "14-city network; B_thres = {thres:.4} MB/s (60th percentile; \
         auto-connect threshold would be {:.4})",
        bw.max_connecting_threshold()
    );

    let bstar = Graph::from_adjacency(n, &bw.threshold(thres));
    let full = Graph::from_threshold(n, bw.as_slice(), f64::MIN_POSITIVE);
    println!(
        "B* has {} edges of {} possible; connected: {}",
        bstar.edge_count(),
        n * (n - 1) / 2,
        connectivity::is_connected(&bstar)
    );

    let tthres = 6;
    let mut generator = GossipGenerator::new(bstar.clone(), full.clone(), tthres);
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);

    println!("\n t | RC connected? | pairs (city indices) | avg link MB/s");
    for t in 0..12u64 {
        let rc_ok = connectivity::is_connected(&generator.rc_graph(t as i64));
        let m = generator.next_matching(t, &mut rng);
        let avg = topology::matching_avg_weight(&m, n, bw.as_slice());
        let pairs: Vec<String> = m.pairs().iter().map(|&(a, b)| format!("{a}-{b}")).collect();
        println!(
            " {t:2}| {:13} | {:20} | {avg:.3}",
            if rc_ok {
                "yes (bandwidth)"
            } else {
                "no (bridge)"
            },
            pairs.join(" ")
        );
    }

    // Spectral check of Assumption 3 over a long stream.
    let mut generator = GossipGenerator::new(bstar, full, tthres);
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let rho = spectral::estimate_rho(n, 4_000, |t| {
        GossipMatrix::from_matching(&generator.next_matching(t as u64, &mut rng))
    });
    println!("\nestimated rho = lambda2(E[WᵀW]) = {rho:.4} (< 1 => consensus guaranteed)");
    println!(
        "masked contraction at c = 100: {:.6} per round",
        spectral::masked_contraction(rho, 100.0)
    );

    // Compare average selected bandwidth against the alternatives.
    let mut generator = GossipGenerator::new(
        Graph::from_adjacency(n, &bw.threshold(thres)),
        Graph::from_threshold(n, bw.as_slice(), f64::MIN_POSITIVE),
        tthres,
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let rounds = 400;
    let mut saps_bw = 0.0;
    for t in 0..rounds {
        let m = generator.next_matching(t, &mut rng);
        saps_bw += topology::matching_avg_weight(&m, n, bw.as_slice());
    }
    saps_bw /= rounds as f64;

    let mut rand_bw = 0.0;
    for _ in 0..rounds {
        let m = topology::random_perfect_matching(n, &mut rng);
        rand_bw += topology::matching_avg_weight(&m, n, bw.as_slice());
    }
    rand_bw /= rounds as f64;

    let ring = topology::ring_edges(n);
    let ring_bw: f64 = ring.iter().map(|&(a, b)| bw.get(a, b)).sum::<f64>() / ring.len() as f64;

    println!("\nmean selected link bandwidth over {rounds} rounds:");
    println!("  SAPS-PSGD (Algorithm 3): {saps_bw:.3} MB/s");
    println!("  RandomChoose:            {rand_bw:.3} MB/s");
    println!("  fixed ring (D-PSGD):     {ring_bw:.3} MB/s");
}
