//! The unified telemetry plane end to end: attach a recorder to a
//! cluster-driven SAPS-PSGD run with worker churn, then read back every
//! export surface — the metric registry (counters, gauges, round-timing
//! histograms), the structured event trail as validated JSONL, the
//! Prometheus-style text snapshot, and the per-round phase spans. The
//! run itself is bit-identical with or without the recorder (pinned by
//! `tests/telemetry.rs`); telemetry only *observes*.
//!
//! ```sh
//! cargo run --release --example telemetry_demo
//! ```

use saps::cluster::{cluster_registry, WireTap};
use saps::core::{AlgorithmSpec, Experiment, Recorder, ScenarioEvent};
use saps::data::SyntheticSpec;
use saps::netsim::BandwidthMatrix;
use saps::nn::zoo;
use saps::telemetry::validate_jsonl;

const WORKERS: usize = 4;
const ROUNDS: usize = 12;

fn main() {
    println!("telemetry plane demo: {WORKERS} workers, {ROUNDS} rounds, cluster driver\n");
    let ds = SyntheticSpec::tiny().samples(800).generate(7);
    let (train, val) = ds.split(0.25, 0);

    // One recorder observes the whole run: the Experiment driver feeds
    // it round spans and training gauges, the cluster trainer feeds it
    // wire-plane gauges and resync events.
    let recorder = Recorder::new();
    let tap = WireTap::new();
    let hist = Experiment::new(AlgorithmSpec::parse("saps").unwrap().with_compression(4.0))
        .train(train)
        .validation(val)
        .workers(WORKERS)
        .batch_size(16)
        .bandwidth_matrix(BandwidthMatrix::constant(WORKERS, 1.0))
        .model(|rng| zoo::mlp(&[16, 16, 4], rng))
        .rounds(ROUNDS)
        .eval_every(4)
        .eval_samples(200)
        .event(4, ScenarioEvent::WorkerLeave { rank: 3 })
        .event(7, ScenarioEvent::WorkerJoin { rank: 3 })
        .telemetry(recorder.clone())
        .run(&cluster_registry(tap.clone()))
        .unwrap();
    assert_eq!(hist.points.len(), ROUNDS);

    // --- the metric registry ---------------------------------------
    println!(
        "metric registry ({} metrics):",
        recorder.metric_names().len()
    );
    println!(
        "  train.rounds          {}",
        recorder.counter("train.rounds").unwrap()
    );
    println!(
        "  train.loss            {:.4}",
        recorder.gauge("train.loss").unwrap()
    );
    let q = |m: &str, q: f64| recorder.quantile(m, q).unwrap();
    println!(
        "  round.total_s         p50 {:.5}  p90 {:.5}  p99 {:.5}",
        q("round.total_s", 0.5),
        q("round.total_s", 0.9),
        q("round.total_s", 0.99)
    );
    println!(
        "  wire.total_bytes      {:.0}",
        recorder.gauge("wire.total_bytes").unwrap()
    );
    println!(
        "  cluster.rounds        {}",
        recorder.counter("cluster.rounds").unwrap()
    );
    for key in [
        "train.rounds",
        "train.loss",
        "round.total_s",
        "round.compute_s",
        "round.comm_s",
        "wire.data_bytes",
        "wire.control_bytes",
        "wire.total_bytes",
        "cluster.rounds",
    ] {
        assert!(
            recorder.metric_names().iter().any(|n| n == key),
            "required metric {key} missing"
        );
    }

    // --- the JSONL event trail -------------------------------------
    let dir = std::env::temp_dir().join(format!("saps-telemetry-demo-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let jsonl = dir.join("events.jsonl");
    recorder.write_jsonl(&jsonl).unwrap();
    let text = std::fs::read_to_string(&jsonl).unwrap();
    let lines = validate_jsonl(&text).expect("every event line must parse as a JSON object");
    println!(
        "\nevent trail: {lines} JSONL lines, all valid ({})",
        jsonl.display()
    );
    let events = recorder.events();
    for kind in ["round", "phase", "scenario", "cluster.round"] {
        let n = events.iter().filter(|e| e.kind == kind).count();
        assert!(n > 0, "expected at least one {kind:?} event");
        println!("  {kind:<14} x{n}");
    }
    // The churn schedule landed in the trail as scenario events stamped
    // with their round; a full round record shows the span fields.
    let scenario = events.iter().find(|e| e.kind == "scenario").unwrap();
    println!("  scenario: {}", scenario.to_json());
    // Failure paths (Byzantine quarantine, stalls, failed resyncs) dump
    // the flight-recorder ring automatically — none fired here.
    assert!(recorder.dumps().is_empty(), "healthy run must not dump");

    // --- the Prometheus-style snapshot -----------------------------
    let prom = recorder.prometheus_text();
    assert!(prom.contains("# TYPE saps_round_total_s histogram"));
    assert!(prom.contains("saps_train_rounds"));
    let head: Vec<&str> = prom.lines().take(4).collect();
    println!("\nmetric snapshot head:\n  {}", head.join("\n  "));

    // --- determinism: telemetry never changes the run --------------
    let silent = Experiment::new(AlgorithmSpec::parse("saps").unwrap().with_compression(4.0))
        .train(
            SyntheticSpec::tiny()
                .samples(800)
                .generate(7)
                .split(0.25, 0)
                .0,
        )
        .validation(
            SyntheticSpec::tiny()
                .samples(800)
                .generate(7)
                .split(0.25, 0)
                .1,
        )
        .workers(WORKERS)
        .batch_size(16)
        .bandwidth_matrix(BandwidthMatrix::constant(WORKERS, 1.0))
        .model(|rng| zoo::mlp(&[16, 16, 4], rng))
        .rounds(ROUNDS)
        .eval_every(4)
        .eval_samples(200)
        .event(4, ScenarioEvent::WorkerLeave { rank: 3 })
        .event(7, ScenarioEvent::WorkerJoin { rank: 3 })
        .run(&cluster_registry(WireTap::new()))
        .unwrap();
    for (a, b) in hist.points.iter().zip(&silent.points) {
        assert_eq!(a.train_loss.to_bits(), b.train_loss.to_bits());
    }
    println!("\nrecorder on vs off: trajectories bit-identical — telemetry only observes");

    std::fs::remove_file(&jsonl).ok();
    std::fs::remove_dir(&dir).ok();
    println!("OK");
}
