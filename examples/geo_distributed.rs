//! Geo-distributed training over the paper's Fig. 1 network: 14 workers
//! located at 14 cities with real measured inter-VM bandwidths.
//!
//! Reproduces the paper's core claim in miniature: adaptive peer
//! selection picks fast links, so SAPS-PSGD's *communication time*
//! advantage exceeds its (already large) traffic advantage. All three
//! algorithms run through the same [`Experiment`] spec — only the
//! [`AlgorithmSpec`] differs.
//!
//! ```sh
//! cargo run --release --example geo_distributed
//! ```

use saps::baselines::registry;
use saps::core::{AlgorithmSpec, Experiment};
use saps::data::SyntheticSpec;
use saps::netsim::citydata;
use saps::nn::zoo;

fn main() {
    let bw = citydata::fig1_bandwidth();
    let n = citydata::NUM_CITIES;
    println!("Fig. 1 environment: {n} workers at {n} cities");
    println!("mean pairwise bandwidth: {:.3} MB/s\n", bw.mean());

    let ds = SyntheticSpec::tiny().samples(2_800).generate(7);
    let (train, val) = ds.split(0.2, 0);

    // SAPS-PSGD: bandwidth-aware matching. B_thres keeps only the fastest
    // 40% of links in B*; Algorithm 3's bridging keeps slow workers
    // reachable. RandomChoose: same exchange, random peers. D-PSGD: the
    // fixed city ring.
    let specs = [
        AlgorithmSpec::Saps {
            compression: 10.0,
            tthres: 8,
            bthres: Some(bw.percentile(0.6)),
        },
        AlgorithmSpec::RandomChoose { compression: 10.0 },
        AlgorithmSpec::DPsgd,
    ];

    let reg = registry();
    let hists: Vec<_> = specs
        .iter()
        .map(|&spec| {
            Experiment::new(spec)
                .train(train.clone())
                .validation(val.clone())
                .workers(n)
                .batch_size(32)
                .lr(0.1)
                .seed(0)
                .bandwidth_matrix(bw.clone())
                .model(|rng| zoo::mlp(&[16, 32, 4], rng))
                .rounds(150)
                .eval_every(25)
                .eval_samples(500)
                .run(&reg)
                .expect("geo run")
        })
        .collect();

    println!(" algorithm    | final acc | worker MB | comm time (s) | mean link MB/s");
    for h in &hists {
        println!(
            " {:12} | {:8.1}% | {:9.3} | {:13.1} | {:10.3}",
            h.algorithm,
            h.final_acc * 100.0,
            h.total_worker_traffic_mb,
            h.total_comm_time_s,
            h.mean_link_bandwidth()
        );
    }

    let speedup = hists[1].total_comm_time_s / hists[0].total_comm_time_s;
    println!(
        "\nadaptive peer selection is {speedup:.1}x faster than random \
         peers at identical traffic"
    );
}
