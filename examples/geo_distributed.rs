//! Geo-distributed training over the paper's Fig. 1 network: 14 workers
//! located at 14 cities with real measured inter-VM bandwidths.
//!
//! Reproduces the paper's core claim in miniature: adaptive peer
//! selection picks fast links, so SAPS-PSGD's *communication time*
//! advantage exceeds its (already large) traffic advantage.
//!
//! ```sh
//! cargo run --release --example geo_distributed
//! ```

use saps::baselines::{DPsgd, Fleet, RandomChoose};
use saps::core::{sim, SapsConfig, SapsPsgd};
use saps::data::SyntheticSpec;
use saps::netsim::citydata;
use saps::nn::zoo;

fn main() {
    let bw = citydata::fig1_bandwidth();
    let n = citydata::NUM_CITIES;
    println!("Fig. 1 environment: {n} workers at {n} cities");
    println!("mean pairwise bandwidth: {:.3} MB/s\n", bw.mean());

    let ds = SyntheticSpec::tiny().samples(2_800).generate(7);
    let (train, val) = ds.split(0.2, 0);
    let factory = |rng: &mut rand::rngs::StdRng| zoo::mlp(&[16, 32, 4], rng);
    let opts = sim::RunOptions {
        rounds: 150,
        eval_every: 25,
        eval_samples: 500,
        max_epochs: f64::INFINITY,
    };

    // SAPS-PSGD: bandwidth-aware matching. B_thres keeps only the fastest
    // 40% of links in B*; Algorithm 3's bridging keeps slow workers
    // reachable.
    let cfg = SapsConfig {
        workers: n,
        compression: 10.0,
        lr: 0.1,
        batch_size: 32,
        tthres: 8,
        bthres: Some(bw.percentile(0.6)),
        ..SapsConfig::default()
    };
    let mut saps = SapsPsgd::new(cfg, &train, &bw, factory);
    let saps_hist = sim::run(&mut saps, &bw, &val, opts);

    // RandomChoose: same exchange, random peers.
    let fleet = Fleet::new(n, &train, factory, 0, 32, 0.1);
    let mut rand_choose = RandomChoose::new(fleet, 10.0, 0);
    let rand_hist = sim::run(&mut rand_choose, &bw, &val, opts);

    // D-PSGD on the fixed city ring.
    let fleet = Fleet::new(n, &train, factory, 0, 32, 0.1);
    let mut dpsgd = DPsgd::new(fleet);
    let dpsgd_hist = sim::run(&mut dpsgd, &bw, &val, opts);

    println!(" algorithm    | final acc | worker MB | comm time (s) | mean link MB/s");
    for h in [&saps_hist, &rand_hist, &dpsgd_hist] {
        println!(
            " {:12} | {:8.1}% | {:9.3} | {:13.1} | {:10.3}",
            h.algorithm,
            h.final_acc * 100.0,
            h.total_worker_traffic_mb,
            h.total_comm_time_s,
            h.mean_link_bandwidth()
        );
    }

    let speedup = rand_hist.total_comm_time_s / saps_hist.total_comm_time_s;
    println!(
        "\nadaptive peer selection is {speedup:.1}x faster than random \
         peers at identical traffic"
    );
}
