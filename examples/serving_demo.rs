//! Train and serve at the same time: a SAPS-PSGD cluster run exports
//! its consensus every round, and a two-replica inference fleet
//! hot-swaps each checkpoint in while answering a steady request
//! stream — no request is dropped across a swap, and every response is
//! tagged with the exact model (round, version) that produced it.
//!
//! Both planes run over in-process loopback transports and share one
//! wire tap, so the final report shows all four traffic planes side by
//! side: the training data plane (masked values), the control plane
//! (frame envelopes), the model plane (checkpoint announces +
//! evaluation collection), and the serving plane (requests +
//! responses).
//!
//! ```sh
//! cargo run --release --example serving_demo
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use saps::cluster::{cluster_registry, WireTap};
use saps::core::{checkpoint, AlgorithmSpec, Experiment};
use saps::data::SyntheticSpec;
use saps::netsim::workload::{ArrivalProcess, RequestArrivals};
use saps::nn::zoo;
use saps::serve::{ReplicaNode, ServeCluster};
use std::cell::RefCell;
use std::rc::Rc;

const DIMS: [usize; 3] = [16, 24, 4];
const REPLICAS: u32 = 2;
const ROUNDS: usize = 20;

fn mb(bytes: u64) -> f64 {
    bytes as f64 / 1e6
}

fn main() {
    println!("SAPS-PSGD training with a live inference plane");
    println!("{REPLICAS} replicas hot-swapping the consensus while {ROUNDS} rounds train\n");

    let ds = SyntheticSpec::tiny().samples(2_000).generate(33);
    let (train, val) = ds.split(0.2, 0);

    // Boot the fleet from an untrained checkpoint: it serves (badly)
    // from round zero and improves as announces land.
    let mut rng = StdRng::seed_from_u64(33);
    let boot = checkpoint::encode(&zoo::mlp(&DIMS, &mut rng).flat_params(), 0);
    let replicas: Vec<ReplicaNode> = (0..REPLICAS)
        .map(|id| {
            let mut rng = StdRng::seed_from_u64(33);
            ReplicaNode::new(id, zoo::mlp(&DIMS, &mut rng), &boot, 16).expect("boot replica")
        })
        .collect();
    let fleet = Rc::new(RefCell::new(
        ServeCluster::loopback(replicas).expect("boot fleet"),
    ));

    // A Poisson request stream keeps flowing while training runs: each
    // round's hook announces the fresh consensus, submits the round's
    // arrivals, and ticks the fleet once.
    let arrivals = Rc::new(RefCell::new(RequestArrivals::new(
        ArrivalProcess::Poisson { rate: 12.0 },
        33,
    )));
    let tap = WireTap::new();
    let hook_fleet = Rc::clone(&fleet);
    let hook_arrivals = Rc::clone(&arrivals);
    let mut submitted = 0u64;
    let hist = Experiment::new(AlgorithmSpec::parse("saps").unwrap().with_compression(8.0))
        .train(train)
        .validation(val)
        .workers(8)
        .batch_size(32)
        .lr(0.1)
        .seed(33)
        .model(|rng| zoo::mlp(&DIMS, rng))
        .rounds(ROUNDS)
        .eval_every(10)
        .eval_samples(400)
        .after_round(move |trainer, _point| {
            let ckpt = trainer.export_checkpoint().expect("cluster export");
            let mut fleet = hook_fleet.borrow_mut();
            fleet.announce(ckpt).expect("announce consensus");
            for _ in 0..hook_arrivals.borrow_mut().next_tick() {
                let client = (submitted % 4) as u32;
                fleet
                    .submit(client, vec![0.1; DIMS[0]])
                    .expect("submit request");
                submitted += 1;
            }
            fleet.tick().expect("serve tick");
        })
        .run(&cluster_registry(tap.clone()))
        .expect("train-and-serve run");

    let mut fleet = Rc::try_unwrap(fleet).ok().expect("sole owner").into_inner();
    fleet.drain_in_flight(32).expect("drain in-flight requests");

    let stats = fleet.stats();
    let completed = fleet.take_completed();
    println!(
        "training:  final acc {:5.1}% over {} rounds",
        hist.final_acc * 100.0,
        hist.points.len()
    );
    println!(
        "serving:   {} requests answered, {} announces, {} swaps, 0 lost",
        stats.completed, stats.announces, stats.swaps
    );
    assert_eq!(stats.completed, stats.submitted, "no request dropped");

    // The hot-swap contract, visible from the client side: response
    // tags never regress in submission order, and the tail was served
    // by the final consensus.
    let mut tagged = completed;
    tagged.sort_by_key(|c| c.id);
    let mut last = (0u64, 0u64);
    for c in &tagged {
        let tag = (c.model_round, c.model_version);
        assert!(tag >= last, "model tags must be monotone");
        last = tag;
    }
    println!(
        "hot swap:  response tags climbed monotonically to (round {}, version {})",
        last.0, last.1
    );
    for rep in fleet.replicas() {
        assert_eq!(rep.model_version(), ROUNDS as u64);
        assert_eq!(rep.rejected_announces(), 0);
    }

    // Where every byte went, all four planes on the shared tap (the
    // serving plane has its own tap inside the fleet's loopback).
    let wire = tap.snapshot();
    let serve_wire = fleet.tap().snapshot();
    println!("\non the wire:");
    println!(
        "  data plane (masked values)       {:10.4} MB",
        mb(wire.data_bytes)
    );
    println!(
        "  control plane (frame envelopes)  {:10.4} MB",
        mb(wire.control_bytes)
    );
    println!(
        "  model plane (eval collection)    {:10.4} MB",
        mb(wire.model_bytes)
    );
    println!(
        "  serving plane (announces + rpc)  {:10.4} MB",
        mb(serve_wire.serve_bytes + serve_wire.model_bytes)
    );
}
