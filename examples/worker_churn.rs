//! Robustness to worker churn (the "R." column of Table I): workers leave
//! and re-join mid-training, and the network degrades and recovers — all
//! expressed as [`ScenarioEvent`]s applied by the experiment driver, so
//! the *identical* scenario runs against SAPS-PSGD, D-PSGD and FedAvg
//! without touching any algorithm internals.
//!
//! ```sh
//! cargo run --release --example worker_churn
//! ```

use saps::baselines::registry;
use saps::core::{AlgorithmSpec, Experiment, ScenarioEvent};
use saps::data::SyntheticSpec;
use saps::netsim::BandwidthMatrix;
use saps::nn::zoo;

const N: usize = 10;

/// One scenario, reused verbatim for every algorithm: three workers drop
/// out at round 60 (battery / network loss), the network loses half its
/// bandwidth at round 80, everyone is back and the network recovers by
/// round 120.
fn scenario(
    spec: AlgorithmSpec,
    train: &saps::data::Dataset,
    val: &saps::data::Dataset,
) -> Experiment {
    Experiment::new(spec)
        .train(train.clone())
        .validation(val.clone())
        .workers(N)
        .batch_size(32)
        .lr(0.1)
        .bandwidth_matrix(BandwidthMatrix::constant(N, 1.0))
        .model(|rng| zoo::mlp(&[16, 32, 4], rng))
        .rounds(200)
        .eval_every(20)
        .eval_samples(500)
        .event(60, ScenarioEvent::WorkerLeave { rank: 7 })
        .event(60, ScenarioEvent::WorkerLeave { rank: 8 })
        .event(60, ScenarioEvent::WorkerLeave { rank: 9 })
        .event(80, ScenarioEvent::BandwidthShift { scale: 0.5 })
        .event(120, ScenarioEvent::WorkerJoin { rank: 7 })
        .event(120, ScenarioEvent::WorkerJoin { rank: 8 })
        .event(120, ScenarioEvent::WorkerJoin { rank: 9 })
        .event(120, ScenarioEvent::BandwidthShift { scale: 2.0 })
}

fn main() {
    let ds = SyntheticSpec::tiny().samples(4_000).generate(9);
    let (train, val) = ds.split(0.2, 0);

    println!(
        "churn scenario on {N} workers: 7,8,9 leave @60, bandwidth halves @80, \
         all back @120\n"
    );

    let specs = [
        AlgorithmSpec::Saps {
            compression: 10.0,
            tthres: 6,
            bthres: None,
        },
        AlgorithmSpec::DPsgd,
        AlgorithmSpec::FedAvg {
            participation: 0.5,
            local_steps: 5,
        },
    ];

    println!(" algorithm  | acc @60 | acc @120 | final acc | worker MB | comm time (s)");
    for spec in specs {
        let hist = scenario(spec, &train, &val)
            .run(&registry())
            .expect("scenario runs on every algorithm");
        let acc_at = |round: usize| {
            hist.points
                .iter()
                .rfind(|p| p.evaluated && p.round < round)
                .map(|p| p.val_acc * 100.0)
                .unwrap_or(f32::NAN)
        };
        println!(
            " {:10} | {:6.1}% | {:7.1}% | {:8.1}% | {:9.3} | {:10.2}",
            hist.algorithm,
            acc_at(60),
            acc_at(120),
            hist.final_acc * 100.0,
            hist.total_worker_traffic_mb,
            hist.total_comm_time_s,
        );
    }
    println!(
        "\nevery algorithm absorbed the same WorkerLeave/WorkerJoin/BandwidthShift \
         schedule through the driver — churn is no longer a SAPS-only side door"
    );
}
