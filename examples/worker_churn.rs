//! Robustness to worker churn (the "R." column of Table I): workers leave
//! and re-join mid-training; SAPS-PSGD keeps converging because peer
//! selection is recomputed every round over the live membership.
//!
//! ```sh
//! cargo run --release --example worker_churn
//! ```

use saps::core::{SapsConfig, SapsPsgd, Trainer};
use saps::data::SyntheticSpec;
use saps::netsim::{BandwidthMatrix, TrafficAccountant};
use saps::nn::zoo;

fn main() {
    let n = 10;
    let ds = SyntheticSpec::tiny().samples(4_000).generate(9);
    let (train, val) = ds.split(0.2, 0);
    let bw = BandwidthMatrix::constant(n, 1.0);
    let cfg = SapsConfig {
        workers: n,
        compression: 10.0,
        lr: 0.1,
        batch_size: 32,
        tthres: 6,
        ..SapsConfig::default()
    };
    let mut algo = SapsPsgd::new(cfg, &train, &bw, |rng| zoo::mlp(&[16, 32, 4], rng));
    let mut traffic = TrafficAccountant::new(n);

    println!("phase 1: all {n} workers training");
    for _ in 0..60 {
        algo.round(&mut traffic, &bw);
    }
    println!(
        "  accuracy {:.1}% with {} active workers",
        algo.evaluate(&val, 500) * 100.0,
        algo.active_ranks().len()
    );

    println!("phase 2: workers 7, 8, 9 drop out (battery / network loss)");
    for rank in [7, 8, 9] {
        algo.set_active(rank, false);
    }
    for _ in 0..60 {
        algo.round(&mut traffic, &bw);
    }
    println!(
        "  accuracy {:.1}% with {} active workers",
        algo.evaluate(&val, 500) * 100.0,
        algo.active_ranks().len()
    );

    println!("phase 3: workers re-join with stale models");
    for rank in [7, 8, 9] {
        algo.set_active(rank, true);
    }
    for _ in 0..80 {
        algo.round(&mut traffic, &bw);
    }
    println!(
        "  accuracy {:.1}% with {} active workers",
        algo.evaluate(&val, 500) * 100.0,
        algo.active_ranks().len()
    );
    println!(
        "\nconsensus distance after re-join: {:.4} (gossip re-absorbed the stale replicas)",
        algo.consensus_distance_sq()
    );
    println!(
        "total busiest-worker traffic: {:.3} MB",
        saps::netsim::to_mb(traffic.max_worker_total())
    );
}
