//! Quickstart: train a small model with SAPS-PSGD on 8 workers and watch
//! accuracy, traffic and communication time evolve.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use saps::core::{sim, SapsConfig, SapsPsgd};
use saps::data::SyntheticSpec;
use saps::netsim::BandwidthMatrix;
use saps::nn::zoo;

fn main() {
    // A 4-class synthetic dataset (stand-in for MNIST; see DESIGN.md §6).
    let ds = SyntheticSpec::tiny().samples(4_000).generate(42);
    let (train, val) = ds.split(0.2, 0);

    // 8 workers, every pair connected at 1 MB/s.
    let n = 8;
    let bw = BandwidthMatrix::constant(n, 1.0);

    // SAPS-PSGD with 10× sparsification: each round a worker exchanges
    // only ~10% of its model with a single peer.
    let cfg = SapsConfig {
        workers: n,
        compression: 10.0,
        lr: 0.1,
        batch_size: 32,
        tthres: 8,
        ..SapsConfig::default()
    };
    println!(
        "SAPS-PSGD quickstart: {} workers, c = {}, batch = {}",
        cfg.workers, cfg.compression, cfg.batch_size
    );

    let mut algo = SapsPsgd::new(cfg, &train, &bw, |rng| zoo::mlp(&[16, 32, 4], rng));
    println!(
        "model: {} parameters",
        saps::core::Trainer::model_len(&algo)
    );

    let hist = sim::run(
        &mut algo,
        &bw,
        &val,
        sim::RunOptions {
            rounds: 200,
            eval_every: 20,
            eval_samples: 600,
            max_epochs: f64::INFINITY,
        },
    );

    println!("\n round | epoch | val acc | traffic (MB) | comm time (s)");
    for p in hist.points.iter().step_by(20) {
        println!(
            " {:5} | {:5.2} | {:6.1}% | {:12.4} | {:10.4}",
            p.round + 1,
            p.epoch,
            p.val_acc * 100.0,
            p.worker_traffic_mb,
            p.comm_time_s
        );
    }
    println!(
        "\nfinal accuracy {:.1}% with {:.3} MB per worker and {:.2} s of communication",
        hist.final_acc * 100.0,
        hist.total_worker_traffic_mb,
        hist.total_comm_time_s
    );
}
