//! Quickstart: train a small model with SAPS-PSGD on 8 workers and watch
//! accuracy, traffic and communication time evolve.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use saps::baselines::registry;
use saps::core::{AlgorithmSpec, Experiment};
use saps::data::SyntheticSpec;
use saps::netsim::BandwidthMatrix;
use saps::nn::zoo;

fn main() {
    // A 4-class synthetic dataset (stand-in for MNIST; see DESIGN.md §6).
    let ds = SyntheticSpec::tiny().samples(4_000).generate(42);
    let (train, val) = ds.split(0.2, 0);

    // SAPS-PSGD with 10× sparsification: each round a worker exchanges
    // only ~10% of its model with a single peer.
    let spec = AlgorithmSpec::Saps {
        compression: 10.0,
        tthres: 8,
        bthres: None,
    };
    let n = 8;
    println!(
        "SAPS-PSGD quickstart: {n} workers, c = {}, batch = 32",
        spec.compression().unwrap()
    );

    // 8 workers, every pair connected at 1 MB/s; the whole run described
    // declaratively and driven through the registry.
    let hist = Experiment::new(spec)
        .train(train)
        .validation(val)
        .workers(n)
        .batch_size(32)
        .lr(0.1)
        .bandwidth_matrix(BandwidthMatrix::constant(n, 1.0))
        .model(|rng| zoo::mlp(&[16, 32, 4], rng))
        .rounds(200)
        .eval_every(20)
        .eval_samples(600)
        .run(&registry())
        .expect("experiment config");

    println!("\n round | epoch | val acc | traffic (MB) | comm time (s)");
    for p in hist.points.iter().step_by(20) {
        println!(
            " {:5} | {:5.2} | {:6.1}% | {:12.4} | {:10.4}",
            p.round + 1,
            p.epoch,
            p.val_acc * 100.0,
            p.worker_traffic_mb,
            p.comm_time_s
        );
    }
    println!(
        "\nfinal accuracy {:.1}% with {:.3} MB per worker and {:.2} s of communication",
        hist.final_acc * 100.0,
        hist.total_worker_traffic_mb,
        hist.total_comm_time_s
    );
}
