//! Federated setting with non-IID data: a Dirichlet(α = 0.5) partition
//! across 8 workers, comparing SAPS-PSGD against FedAvg and S-FedAvg on
//! accuracy vs per-worker traffic.
//!
//! ```sh
//! cargo run --release --example non_iid_federated
//! ```

use saps::baselines::{FedAvg, FedAvgConfig, Fleet, SFedAvg};
use saps::core::{sim, SapsConfig, SapsPsgd};
use saps::data::{partition, SyntheticSpec};
use saps::netsim::BandwidthMatrix;
use saps::nn::zoo;

fn main() {
    let n = 8;
    let ds = SyntheticSpec::tiny().samples(4_000).generate(3);
    let (train, val) = ds.split(0.2, 0);
    let parts = partition::dirichlet(&train, n, 0.5, 11);
    println!(
        "non-IID partition (Dirichlet α=0.5): heterogeneity {:.3} (0 = IID)",
        partition::heterogeneity(&parts)
    );
    for (w, p) in parts.iter().enumerate() {
        println!(
            "  worker {w}: {:4} samples, histogram {:?}",
            p.len(),
            p.class_histogram()
        );
    }

    let bw = BandwidthMatrix::constant(n, 1.0);
    let factory = |rng: &mut rand::rngs::StdRng| zoo::mlp(&[16, 32, 4], rng);
    let opts = sim::RunOptions {
        rounds: 250,
        eval_every: 25,
        eval_samples: 500,
        max_epochs: f64::INFINITY,
    };

    let cfg = SapsConfig {
        workers: n,
        compression: 10.0,
        lr: 0.1,
        batch_size: 32,
        tthres: 8,
        ..SapsConfig::default()
    };
    let mut saps = SapsPsgd::with_partitions(cfg, parts.clone(), &bw, factory);
    let saps_hist = sim::run(&mut saps, &bw, &val, opts);

    let fleet = Fleet::with_partitions(parts.clone(), factory, 0, 32, 0.1);
    let mut fedavg = FedAvg::new(fleet, FedAvgConfig::default(), 0);
    let fed_hist = sim::run(&mut fedavg, &bw, &val, opts);

    let fleet = Fleet::with_partitions(parts, factory, 0, 32, 0.1);
    let mut sfedavg = SFedAvg::new(fleet, 0.5, 5, 10.0, 0);
    let sfed_hist = sim::run(&mut sfedavg, &bw, &val, opts);

    println!("\n algorithm | final acc | worker MB | server MB");
    for h in [&saps_hist, &fed_hist, &sfed_hist] {
        println!(
            " {:9} | {:8.1}% | {:9.3} | {:9.3}",
            h.algorithm,
            h.final_acc * 100.0,
            h.total_worker_traffic_mb,
            h.total_server_traffic_mb
        );
    }
    println!(
        "\nSAPS-PSGD moves no model bytes through any server; FedAvg's \
         server moved {:.2} MB",
        fed_hist.total_server_traffic_mb
    );
}
