//! Federated setting with non-IID data: a Dirichlet(α = 0.5) partition
//! across 8 workers, comparing SAPS-PSGD against FedAvg and S-FedAvg on
//! accuracy vs per-worker traffic. The skewed split is one line of the
//! experiment spec — [`PartitionStrategy::Dirichlet`] — applied
//! identically by the driver for every algorithm.
//!
//! ```sh
//! cargo run --release --example non_iid_federated
//! ```

use saps::baselines::registry;
use saps::core::{AlgorithmSpec, Experiment, PartitionStrategy};
use saps::data::{partition, SyntheticSpec};
use saps::netsim::BandwidthMatrix;
use saps::nn::zoo;

fn main() {
    let n = 8;
    let seed = 11;
    let ds = SyntheticSpec::tiny().samples(4_000).generate(3);
    let (train, val) = ds.split(0.2, 0);

    // Preview the exact partition the experiments will train on:
    // PartitionStrategy::apply is the same code path Experiment::run uses.
    let strategy = PartitionStrategy::Dirichlet { alpha: 0.5 };
    let parts = strategy.apply(&train, n, seed);
    println!(
        "non-IID partition (Dirichlet α=0.5): heterogeneity {:.3} (0 = IID)",
        partition::heterogeneity(&parts)
    );
    for (w, p) in parts.iter().enumerate() {
        println!(
            "  worker {w}: {:4} samples, histogram {:?}",
            p.len(),
            p.class_histogram()
        );
    }

    let specs = [
        AlgorithmSpec::Saps {
            compression: 10.0,
            tthres: 8,
            bthres: None,
        },
        AlgorithmSpec::FedAvg {
            participation: 0.5,
            local_steps: 5,
        },
        AlgorithmSpec::SFedAvg {
            participation: 0.5,
            local_steps: 5,
            compression: 10.0,
        },
    ];

    let reg = registry();
    let hists: Vec<_> = specs
        .iter()
        .map(|&spec| {
            Experiment::new(spec)
                .train(train.clone())
                .validation(val.clone())
                .partition(strategy)
                .workers(n)
                .batch_size(32)
                .lr(0.1)
                .seed(seed)
                .bandwidth_matrix(BandwidthMatrix::constant(n, 1.0))
                .model(|rng| zoo::mlp(&[16, 32, 4], rng))
                .rounds(250)
                .eval_every(25)
                .eval_samples(500)
                .run(&reg)
                .expect("non-IID run")
        })
        .collect();

    println!("\n algorithm | final acc | worker MB | server MB");
    for h in &hists {
        println!(
            " {:9} | {:8.1}% | {:9.3} | {:9.3}",
            h.algorithm,
            h.final_acc * 100.0,
            h.total_worker_traffic_mb,
            h.total_server_traffic_mb
        );
    }
    println!(
        "\nSAPS-PSGD moves no model bytes through any server; FedAvg's \
         server moved {:.2} MB",
        hists[1].total_server_traffic_mb
    );
}
