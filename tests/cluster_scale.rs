//! 1 000-worker loopback smoke: the sharded coordinator at fleet scale.
//!
//! Algorithm 1's maximum-weight matching is O(n³); at n = 1000 the
//! monolithic pass is minutes of planning per round. With
//! `shard_size: Some(64)` the coordinator plans per bandwidth-partition
//! shard (O(s³) each), which is what makes a 1k-worker round complete in
//! seconds. This test drives three full rounds — real frames over the
//! loopback transport, heterogeneous bandwidth, sharded planning — and
//! checks the run is sane end to end:
//!
//! * every round reports a finite loss over all 1000 workers,
//! * the wire tap metered both data- and control-plane bytes,
//! * the matching actually paired workers (traffic on worker rows).
//!
//! The test is `#[ignore]`d — CI runs it as a dedicated step
//! (`cargo test --test cluster_scale -- --ignored`) outside the tier-1
//! suite so the default `cargo test` stays fast. With
//! `SAPS_SCALE_RECORD=1` it also merges its measured throughput into
//! `BENCH_round_throughput.json` (driver `"cluster"`, workers 1000) via
//! the same `saps-bench` recorder the runner binaries use.

use rand::rngs::StdRng;
use rand::SeedableRng;
use saps::cluster::{ClusterTrainer, WireTap};
use saps::core::{ParallelismPolicy, RoundCtx, SapsConfig, Trainer};
use saps::data::{partition, SyntheticSpec};
use saps::netsim::{BandwidthMatrix, TrafficAccountant};
use saps::nn::zoo;
use saps::tensor::rng::{derive_seed, streams};
use saps_bench::throughput::{self, ThroughputEntry, BENCH_FILE};

const SEED: u64 = 41;
const WORKERS: usize = 1_000;
const ROUNDS: usize = 3;
const SHARD: usize = 64;

#[test]
#[ignore = "1k-worker smoke; run explicitly (CI scale step) with --ignored"]
fn thousand_worker_sharded_round_trip() {
    let train = SyntheticSpec::tiny().samples(4 * WORKERS).generate(13);
    let parts = partition::iid(&train, WORKERS, derive_seed(SEED, 0, streams::DATA));
    // Heterogeneous links so bandwidth thresholding yields real
    // partitions for the sharded planner to split.
    let mut rng = StdRng::seed_from_u64(derive_seed(SEED, 1, streams::MATCHING));
    let bw = BandwidthMatrix::uniform_random(WORKERS, 100.0, &mut rng);
    let cfg = SapsConfig {
        workers: WORKERS,
        compression: 50.0,
        lr: 0.05,
        batch_size: 4,
        bthres: None,
        tthres: 5,
        seed: SEED,
        shard_size: Some(SHARD),
    };
    let tap = WireTap::new();
    let mut clu = ClusterTrainer::loopback(
        cfg,
        parts,
        &bw,
        |rng| zoo::mlp(&[16, 8, 4], rng),
        tap.clone(),
    )
    .unwrap();
    assert_eq!(clu.worker_count(), WORKERS);

    let mut traffic = TrafficAccountant::new(WORKERS);
    let started = std::time::Instant::now();
    for round in 0..ROUNDS {
        let rep = {
            let mut ctx = RoundCtx::new(round, &bw, &mut traffic, SEED);
            Trainer::step(&mut clu, &mut ctx)
        };
        assert!(
            rep.mean_loss.is_finite() && rep.mean_loss > 0.0,
            "round {round}: loss {}",
            rep.mean_loss
        );
        assert!(rep.mean_acc.is_finite(), "round {round}");
    }
    let wall_s = started.elapsed().as_secs_f64();

    let wire = tap.snapshot();
    assert!(wire.data_bytes > 0, "no data-plane bytes framed");
    assert!(wire.control_bytes > 0, "no control-plane bytes framed");
    // The sharded matching must actually pair workers: masked payload
    // values land on the worker rows of the accountant.
    let paired = (0..WORKERS).filter(|&r| traffic.worker_sent(r) > 0).count();
    assert!(
        paired >= WORKERS / 2,
        "only {paired}/{WORKERS} workers exchanged data"
    );

    if std::env::var("SAPS_SCALE_RECORD").is_ok() {
        let wire_mb = wire.total_bytes as f64 / (1024.0 * 1024.0);
        let entry = ThroughputEntry {
            algorithm: "SAPS-PSGD".to_string(),
            workload: "Synthetic-MLP (tiny)".to_string(),
            workers: WORKERS,
            threads: ParallelismPolicy::Auto.resolve(),
            driver: "cluster".to_string(),
            telemetry: false,
            rounds: ROUNDS,
            wall_s,
            rounds_per_sec: ROUNDS as f64 / wall_s.max(f64::MIN_POSITIVE),
            wire_mb,
        };
        throughput::record(std::path::Path::new(BENCH_FILE), &[entry]).unwrap();
    }
}
