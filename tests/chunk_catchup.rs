//! The chunked model-distribution plane, end to end.
//!
//! Joiner catch-up used to ship the whole model as one monolithic
//! `FinalModel` frame from a single pinned donor. These tests pin the
//! replacement — an epoch-stamped chunk manifest plus a multi-peer
//! download scheduler — to the properties that make it safe to ship:
//!
//! 1. **Bit-identity** — a chunk-fetched resync installs parameters
//!    bit-identical to the monolithic path, whatever mix of peers
//!    served the pieces (runs inside the CI determinism matrix,
//!    `SAPS_THREADS ∈ {1, 2}`).
//! 2. **Accounting** — catch-up traffic rides the model plane: the
//!    `WireTap`'s `model_bytes` delta reconciles exactly with the bytes
//!    the resync framed, and the `TrafficAccountant`'s billed worker
//!    rows never see it.
//! 3. **Hostile wires converge** — with the transport dropping and
//!    corrupting chunk frames, every failed piece is re-sourced from
//!    the next ranked peer and the result is still bit-identical.
//! 4. **Failure is typed** — a wire that eats everything surfaces
//!    `ClusterError::ResyncFailed`, never a hang; a dead donor means
//!    fallback to the next live peer, not failure.
//! 5. **Flash crowds scale out** — the `#[ignore]`d smoke drives a
//!    `zoo::flash_crowd` wave of 100+ simultaneous joiners, each
//!    sourcing chunks from at least two distinct peers (CI runs it as a
//!    dedicated step).

use saps::cluster::Addr;
use saps::cluster::{
    BaselineClusterTrainer, BaselineKind, ClusterTrainer, FaultPlan, FaultScope, FaultyTransport,
    LoopbackTransport, ResyncMode, WireTap,
};
use saps::core::{
    zoo as scenario_zoo, ParallelismPolicy, RoundCtx, SapsConfig, ScenarioEvent, Trainer,
};
use saps::data::{partition, Dataset, SyntheticSpec};
use saps::netsim::{BandwidthMatrix, TrafficAccountant};
use saps::nn::zoo;
use saps::tensor::rng::{derive_seed, streams};
use saps_bench::throughput::{self, ThroughputEntry, BENCH_FILE};

const SEED: u64 = 37;

/// Chunk size small enough that the tiny test model splits into many
/// chunks — the fan-out the scheduler exists for.
const CHUNK: u32 = 256;

fn parts(workers: usize) -> Vec<Dataset> {
    let (train, _) = SyntheticSpec::tiny()
        .samples(8 * workers.max(50))
        .generate(5)
        .split(0.2, 0);
    partition::iid(&train, workers, derive_seed(SEED, 0, streams::DATA))
}

fn model(rng: &mut rand::rngs::StdRng) -> saps::nn::Model {
    zoo::mlp(&[16, 20, 4], rng)
}

fn psgd(
    workers: usize,
    bw: &BandwidthMatrix,
    mode: ResyncMode,
    tap: WireTap,
) -> BaselineClusterTrainer<LoopbackTransport> {
    BaselineClusterTrainer::loopback(
        BaselineKind::Psgd,
        parts(workers),
        model,
        SEED,
        16,
        0.1,
        tap,
    )
    .unwrap()
    .with_resync_mode(mode)
    .with_chunk_size(CHUNK)
    .with_bandwidth(bw)
}

fn step(trainer: &mut impl Trainer, round: usize, bw: &BandwidthMatrix) -> f32 {
    let mut traffic = TrafficAccountant::new(trainer.worker_count());
    let mut ctx = RoundCtx::new(round, bw, &mut traffic, SEED);
    trainer.step(&mut ctx).mean_loss
}

/// Bit-identity conformance: the chunked multi-peer resync installs the
/// exact bytes the monolithic single-donor frame would have — across a
/// leave/rejoin cycle, every worker, every parameter.
#[test]
fn chunked_resync_is_bit_identical_to_monolithic() {
    let workers = 6;
    let bw = BandwidthMatrix::constant(workers, 50.0);
    let tap_mono = WireTap::new();
    let tap_chunk = WireTap::new();
    let mut mono = psgd(workers, &bw, ResyncMode::Monolithic, tap_mono);
    let mut chunk = psgd(workers, &bw, ResyncMode::Chunked, tap_chunk.clone());

    for round in 0..8 {
        if round == 3 {
            mono.set_worker_active(4, false).unwrap();
            chunk.set_worker_active(4, false).unwrap();
        }
        if round == 6 {
            let before = tap_chunk.snapshot();
            mono.set_worker_active(4, true).unwrap();
            chunk.set_worker_active(4, true).unwrap();
            let after = tap_chunk.snapshot();

            // The rejoin fanned real chunks over multiple peers...
            let rep = chunk.resync_log().last().unwrap().clone();
            assert_eq!(rep.mode, ResyncMode::Chunked);
            assert_eq!(rep.rank, 4);
            assert!(rep.chunks > 1, "model must split into several chunks");
            assert!(
                rep.sources.len() >= 2,
                "chunks came from {} peer(s), expected a fan-out",
                rep.sources.len()
            );
            // ...metered on the model plane, byte for byte.
            assert_eq!(
                after.model_bytes - before.model_bytes,
                rep.wire_bytes,
                "resync bytes must reconcile with the tap's model plane"
            );
            assert_eq!(
                after.data_bytes, before.data_bytes,
                "catch-up must not pollute the billed data plane"
            );
        }
        let lm = step(&mut mono, round, &bw);
        let lc = step(&mut chunk, round, &bw);
        assert_eq!(lm.to_bits(), lc.to_bits(), "round {round} loss drifted");
    }
    for r in 0..workers {
        assert_eq!(
            mono.worker_params(r),
            chunk.worker_params(r),
            "worker {r}: chunked resync diverged from the monolithic path"
        );
    }
}

/// The SAPS cluster runtime's own catch-up path: the coordinator
/// publishes an epoch manifest, the joiner downloads chunks from ranked
/// peers, and lands bit-identical to the donor — without touching its
/// own monotone `rounds_done` counter or the billed traffic rows.
#[test]
fn saps_joiner_catches_up_from_published_epoch() {
    let workers = 4;
    let bw = BandwidthMatrix::constant(workers, 25.0);
    let cfg = SapsConfig {
        workers,
        compression: 4.0,
        lr: 0.1,
        batch_size: 16,
        bthres: None,
        tthres: 5,
        seed: SEED,
        shard_size: None,
    };
    let tap = WireTap::new();
    let mut clu = ClusterTrainer::loopback(cfg, parts(workers), &bw, model, tap.clone()).unwrap();
    let mut traffic = TrafficAccountant::new(workers);
    for round in 0..3 {
        let mut ctx = RoundCtx::new(round, &bw, &mut traffic, SEED);
        Trainer::step(&mut clu, &mut ctx);
    }
    clu.set_worker_active(3, false).unwrap();
    for round in 3..5 {
        let mut ctx = RoundCtx::new(round, &bw, &mut traffic, SEED);
        Trainer::step(&mut clu, &mut ctx);
    }

    // Publish the fleet's state as a chunked checkpoint epoch, rejoin
    // the straggler, and let it catch up from its peers.
    clu.publish_epoch_checkpoint(CHUNK).unwrap();
    clu.set_worker_active(3, true).unwrap();
    let billed_before = (0..workers).map(|r| traffic.worker_sent(r)).sum::<u64>();
    let model_before = tap.snapshot().model_bytes;
    clu.catch_up_worker(3).unwrap();
    assert!(!clu.worker(3).catching_up());

    // Bit-identical to the epoch donor (the first active rank).
    let donor = clu.active_ranks()[0];
    assert_eq!(
        clu.worker(3).worker().flat(),
        clu.worker(donor).worker().flat(),
        "joiner must land on the published epoch exactly"
    );
    // The download crossed the model plane and nothing else; billed
    // worker rows are untouched by instrumentation traffic.
    assert!(tap.snapshot().model_bytes > model_before);
    let billed_after = (0..workers).map(|r| traffic.worker_sent(r)).sum::<u64>();
    assert_eq!(billed_before, billed_after, "catch-up polluted billed rows");
    // The joiner now serves the epoch itself (catch-up capacity grows
    // with the crowd), and no FinalModel raced anything.
    assert!(clu.worker(3).can_serve_chunks());
    assert_eq!(clu.coordinator().late_models(), 0);

    // Training continues over the wire after the catch-up.
    let mut ctx = RoundCtx::new(5, &bw, &mut traffic, SEED);
    let rep = Trainer::step(&mut clu, &mut ctx);
    assert!(rep.mean_loss.is_finite());
}

/// A wire that drops and corrupts chunk frames: every lost piece is
/// re-sourced (rotating peers) and the assembled model is still
/// bit-identical to a clean monolithic resync.
#[test]
fn chunk_hostile_wire_still_resyncs_bit_identically() {
    let workers = 6;
    let bw = BandwidthMatrix::constant(workers, 10.0);
    // Reference: a clean monolithic run of the same schedule.
    let mut mono = psgd(workers, &bw, ResyncMode::Monolithic, WireTap::new());

    let tap = WireTap::new();
    let faulty = FaultyTransport::new(LoopbackTransport::new(tap.clone()), FaultPlan::none(), 991);
    let plan = faulty.plan_handle();
    let mut hostile = BaselineClusterTrainer::with_transport(
        BaselineKind::Psgd,
        parts(workers),
        model,
        SEED,
        16,
        0.1,
        faulty,
        tap,
    )
    .unwrap()
    .with_resync_mode(ResyncMode::Chunked)
    .with_chunk_size(64)
    .with_bandwidth(&bw);

    for round in 0..6 {
        if round == 2 {
            mono.set_worker_active(1, false).unwrap();
            hostile.set_worker_active(1, false).unwrap();
        }
        if round == 4 {
            mono.set_worker_active(1, true).unwrap();
            // Storm only while the catch-up runs: a third of all chunk
            // frames vanish or arrive corrupted.
            plan.set(FaultPlan::none().with_drop(0.2).with_corrupt(0.15));
            hostile.set_worker_active(1, true).unwrap();
            plan.set(FaultPlan::none());
            let rep = hostile.resync_log().last().unwrap();
            assert!(
                rep.retries > 0,
                "the storm must have forced at least one re-source"
            );
        }
        let lm = step(&mut mono, round, &bw);
        let lh = step(&mut hostile, round, &bw);
        assert_eq!(lm.to_bits(), lh.to_bits(), "round {round} loss drifted");
    }
    for r in 0..workers {
        assert_eq!(
            mono.worker_params(r),
            hostile.worker_params(r),
            "worker {r}: hostile-wire resync diverged"
        );
    }
}

/// A dead donor is a fallback, not a failure: with every frame from the
/// preferred (fastest) donor dropped, the scheduler rotates to the
/// remaining peers and completes.
#[test]
fn dead_donor_falls_back_to_the_next_live_peer() {
    let workers = 5;
    // Rank 3 is by far the fastest toward everyone: it will be ranked
    // first and chosen as the preferred donor.
    let mut bw = BandwidthMatrix::constant(workers, 10.0);
    for j in 0..workers {
        if j != 3 {
            bw.set(3, j, 500.0);
        }
    }
    let tap = WireTap::new();
    let faulty = FaultyTransport::new(LoopbackTransport::new(tap.clone()), FaultPlan::none(), 17);
    let plan = faulty.plan_handle();
    let mut trainer = BaselineClusterTrainer::with_transport(
        BaselineKind::Psgd,
        parts(workers),
        model,
        SEED,
        16,
        0.1,
        faulty,
        tap,
    )
    .unwrap()
    .with_chunk_size(CHUNK)
    .with_bandwidth(&bw);

    trainer.set_worker_active(0, false).unwrap();
    // The donor's replies never arrive.
    plan.set(
        FaultPlan::none()
            .with_drop(1.0)
            .scoped(FaultScope::From(Addr::Worker(3))),
    );
    trainer.set_worker_active(0, true).unwrap();
    plan.set(FaultPlan::none());

    let rep = trainer.resync_log().last().unwrap();
    assert_eq!(rep.donor, 3, "rank 3 must be the preferred donor");
    assert!(
        !rep.sources.contains(&3),
        "nothing can have been accepted from the dead donor"
    );
    assert!(!rep.sources.is_empty(), "fallback peers served the model");
    assert!(rep.retries > 0);
    // The fallback still lands bit-exactly on the fleet's model.
    assert_eq!(trainer.worker_params(0), trainer.worker_params(1));
}

/// A wire that eats everything surfaces the typed failure, never a
/// hang: every chunk exhausts its per-peer attempt budget and
/// `ClusterError::ResyncFailed` comes back through the churn API.
#[test]
fn total_frame_loss_surfaces_typed_resync_failure() {
    let workers = 4;
    let bw = BandwidthMatrix::constant(workers, 10.0);
    let tap = WireTap::new();
    let faulty = FaultyTransport::new(
        LoopbackTransport::new(tap.clone()),
        FaultPlan::none().with_drop(1.0),
        3,
    );
    let mut trainer = BaselineClusterTrainer::with_transport(
        BaselineKind::Psgd,
        parts(workers),
        model,
        SEED,
        16,
        0.1,
        faulty,
        tap,
    )
    .unwrap()
    .with_chunk_size(CHUNK)
    .with_bandwidth(&bw);

    trainer.set_worker_active(2, false).unwrap();
    let err = trainer
        .set_worker_active(2, true)
        .expect_err("a dead wire cannot resync");
    let msg = err.to_string();
    assert!(
        msg.contains("resync of joiner 2 failed"),
        "expected the typed ResyncFailed surface, got: {msg}"
    );
}

/// Flash crowd: a `zoo::flash_crowd` wave — the whole cohort leaves in
/// one round and rejoins in another, 100+ simultaneous joiners — where
/// every joiner sources its chunks from at least two distinct peers and
/// the wire bytes reconcile exactly with the tap. `#[ignore]`d like the
/// 1k-worker smoke; CI runs it as a dedicated step.
#[test]
#[ignore = "flash-crowd smoke; run explicitly (CI chunk step) with --ignored"]
fn flash_crowd_rejoin_fans_over_peers() {
    let workers = 128;
    let cohort: Vec<usize> = (8..108).collect(); // 100 simultaneous joiners
    let bw = BandwidthMatrix::constant(workers, 40.0);
    let tap = WireTap::new();
    let mut trainer = psgd(workers, &bw, ResyncMode::Chunked, tap.clone());

    let events = scenario_zoo::flash_crowd(workers, &cohort, 1, 2);
    let mut billed = TrafficAccountant::new(workers);
    for round in 0..3 {
        for ev in events.iter().filter(|e| e.round == round) {
            match ev.event {
                ScenarioEvent::WorkerLeave { rank } => {
                    trainer.set_worker_active(rank, false).unwrap()
                }
                ScenarioEvent::WorkerJoin { rank } => {
                    if round == 2 && rank == cohort[0] {
                        // Reconcile the whole wave's bytes below.
                        billed = TrafficAccountant::new(workers);
                    }
                    trainer.set_worker_active(rank, true).unwrap()
                }
                _ => unreachable!("flash_crowd emits only churn"),
            }
        }
        let loss = step(&mut trainer, round, &bw);
        assert!(loss.is_finite(), "round {round}");
    }

    let log = trainer.resync_log();
    assert_eq!(log.len(), cohort.len(), "one resync per joiner");
    let mut wave_bytes = 0u64;
    for rep in log {
        assert_eq!(rep.mode, ResyncMode::Chunked);
        assert!(
            rep.sources.len() >= 2,
            "joiner {} sourced from only {} peer(s)",
            rep.rank,
            rep.sources.len()
        );
        wave_bytes += rep.wire_bytes;
    }
    // Every joiner landed on the same model...
    let reference = trainer.worker_params(0);
    for &r in &cohort {
        assert_eq!(
            trainer.worker_params(r),
            reference,
            "joiner {r} diverged after catch-up"
        );
    }
    // ...the catch-up bytes all rode the unbilled model plane...
    let wire = tap.snapshot();
    assert!(
        wire.model_bytes >= wave_bytes,
        "tap model plane ({}) lost resync bytes ({wave_bytes})",
        wire.model_bytes
    );
    // ...and the billed accountant rows reconcile with the data plane
    // alone: value bytes billed ≤ data-plane bytes framed, and not one
    // model-plane byte lands on a billed worker row.
    let billed_rows: u64 = (0..workers).map(|r| billed.worker_sent(r)).sum();
    assert!(
        billed_rows <= wire.data_bytes,
        "billed rows ({billed_rows}) exceed framed data plane ({})",
        wire.data_bytes
    );
}

/// Resync throughput, monolithic vs chunked: drives the same batch of
/// joiner catch-ups through both modes and, with `SAPS_SCALE_RECORD=1`,
/// merges a row per mode into `BENCH_round_throughput.json` (drivers
/// `"cluster-resync-monolithic"` / `"cluster-resync-chunked"`) so the
/// bytes/time cost of the chunk plane is pinned next to the round
/// throughput numbers.
#[test]
#[ignore = "resync benchmark; run explicitly (CI chunk step) with --ignored"]
fn resync_throughput_monolithic_vs_chunked() {
    const FLEET: usize = 64;
    let cohort: Vec<usize> = (4..20).collect(); // 16 joiners per mode
    let bw = BandwidthMatrix::constant(FLEET, 40.0);

    let mut rows = Vec::new();
    for (mode, driver) in [
        (ResyncMode::Monolithic, "cluster-resync-monolithic"),
        (ResyncMode::Chunked, "cluster-resync-chunked"),
    ] {
        let tap = WireTap::new();
        let mut trainer = psgd(FLEET, &bw, mode, tap.clone());
        let _ = step(&mut trainer, 0, &bw);
        for &r in &cohort {
            trainer.set_worker_active(r, false).unwrap();
        }
        let before = tap.snapshot().model_bytes;
        let start = std::time::Instant::now();
        for &r in &cohort {
            trainer.set_worker_active(r, true).unwrap();
        }
        let wall_s = start.elapsed().as_secs_f64();
        let resync_bytes = tap.snapshot().model_bytes - before;

        // Both modes must move the same blob bytes per joiner; chunked
        // adds only the manifest + request overhead.
        let logged: u64 = trainer
            .resync_log()
            .iter()
            .rev()
            .take(cohort.len())
            .map(|r| r.wire_bytes)
            .sum();
        assert_eq!(resync_bytes, logged, "{driver}: tap disagrees with log");

        rows.push(ThroughputEntry {
            algorithm: "P-SGD".to_string(),
            workload: "Synthetic-MLP (tiny)".to_string(),
            workers: FLEET,
            threads: ParallelismPolicy::Auto.resolve(),
            driver: driver.to_string(),
            telemetry: false,
            rounds: cohort.len(), // one "round" per joiner resync
            wall_s,
            rounds_per_sec: cohort.len() as f64 / wall_s.max(f64::MIN_POSITIVE),
            wire_mb: resync_bytes as f64 / (1024.0 * 1024.0),
        });
    }
    if std::env::var("SAPS_SCALE_RECORD").is_ok() {
        throughput::record(std::path::Path::new(BENCH_FILE), &rows).unwrap();
    }
}
