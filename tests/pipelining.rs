//! Pipelined rounds: round `t+1`'s compute overlaps round `t`'s drain.
//!
//! [`Experiment::pipeline`] is a *time-model* change only. These tests
//! pin the two sides of that contract, for SAPS through the cluster
//! wire driver and for one ring baseline (D-PSGD):
//!
//! 1. **Bit-identity** — a pipelined run produces bit-identical
//!    training history (per-round loss, evaluation accuracy, traffic)
//!    to the sequential run; the exchange arithmetic and its
//!    rank-ordered reductions never see the schedule.
//! 2. **Overlap never costs time** — the DES prices every pipelined
//!    round no slower than its sequential twin, and strictly faster
//!    once there is a previous round's drain to hide compute behind.

use saps::cluster::{cluster_registry, WireTap};
use saps::core::{AlgorithmSpec, Experiment, RunHistory, ScenarioEvent, TimeModel};
use saps::data::{Dataset, SyntheticSpec};
use saps::nn::zoo;

const SEED: u64 = 29;
const ROUNDS: usize = 8;
const COMPUTE_S: f64 = 0.05;

fn dataset() -> (Dataset, Dataset) {
    SyntheticSpec::tiny()
        .samples(1_200)
        .generate(3)
        .split(0.2, 0)
}

fn run(spec: AlgorithmSpec, pipelined: bool) -> RunHistory {
    let (train, val) = dataset();
    Experiment::new(spec)
        .train(train)
        .validation(val)
        .workers(6)
        .batch_size(16)
        .lr(0.1)
        .seed(SEED)
        .model(|rng| zoo::mlp(&[16, 20, 4], rng))
        .rounds(ROUNDS)
        .eval_every(4)
        .eval_samples(100)
        .compute_time(COMPUTE_S)
        .event(
            3,
            ScenarioEvent::Straggler {
                rank: 2,
                slowdown: 3.0,
            },
        )
        .time_model(TimeModel::event_driven(1e-4))
        .pipeline(pipelined)
        .run(&cluster_registry(WireTap::new()))
        .unwrap()
}

fn assert_pipelining_contract(spec: AlgorithmSpec) {
    let key = spec.key();
    let seq = run(spec, false);
    let pip = run(spec, true);

    assert_eq!(seq.points.len(), pip.points.len(), "{key}: round counts");
    for (a, b) in seq.points.iter().zip(&pip.points) {
        // Training is bit-identical: the schedule overlap never leaks
        // into the arithmetic.
        assert_eq!(
            a.train_loss.to_bits(),
            b.train_loss.to_bits(),
            "{key}: round {} loss drifted under pipelining",
            a.round
        );
        assert_eq!(
            a.val_acc.to_bits(),
            b.val_acc.to_bits(),
            "{key}: round {} accuracy drifted",
            a.round
        );
        assert_eq!(a.evaluated, b.evaluated, "{key}: round {}", a.round);
        assert_eq!(
            a.worker_traffic_mb, b.worker_traffic_mb,
            "{key}: round {} traffic drifted",
            a.round
        );
        // The DES never prices an overlapped round slower — the compute
        // gates only ever shrink (cumulative totals compared, so this
        // holds round by round).
        assert!(
            b.total_time_s <= a.total_time_s + 1e-12,
            "{key}: round {}: pipelining increased total time ({} > {})",
            a.round,
            b.total_time_s,
            a.total_time_s
        );
        assert!(
            b.compute_time_s <= a.compute_time_s + 1e-12,
            "{key}: round {}: pipelining increased gated compute",
            a.round
        );
    }
    assert_eq!(seq.final_acc.to_bits(), pip.final_acc.to_bits(), "{key}");
    assert_eq!(
        seq.total_worker_traffic_mb, pip.total_worker_traffic_mb,
        "{key}: total traffic"
    );

    // With a non-trivial drain every round, at least part of the 50 ms
    // compute must hide behind it from round 1 on: strictly faster.
    assert!(
        pip.total_time_s() < seq.total_time_s(),
        "{key}: pipelining hid no compute at all ({} vs {})",
        pip.total_time_s(),
        seq.total_time_s()
    );
}

trait TotalTime {
    fn total_time_s(&self) -> f64;
}

impl TotalTime for RunHistory {
    fn total_time_s(&self) -> f64 {
        self.points.last().map_or(0.0, |p| p.total_time_s)
    }
}

#[test]
fn saps_pipelined_run_is_bit_identical_and_never_slower() {
    assert_pipelining_contract(AlgorithmSpec::Saps {
        compression: 4.0,
        tthres: 5,
        bthres: None,
    });
}

#[test]
fn ring_baseline_pipelined_run_is_bit_identical_and_never_slower() {
    assert_pipelining_contract(AlgorithmSpec::DPsgd);
}

#[test]
fn pipelining_without_modeled_compute_is_a_no_op() {
    let (train, val) = dataset();
    let go = |pipelined: bool| {
        Experiment::new(AlgorithmSpec::DPsgd)
            .train(train.clone())
            .validation(val.clone())
            .workers(4)
            .batch_size(16)
            .seed(SEED)
            .model(|rng| zoo::mlp(&[16, 20, 4], rng))
            .rounds(4)
            .eval_every(4)
            .eval_samples(100)
            .pipeline(pipelined)
            .run(&cluster_registry(WireTap::new()))
            .unwrap()
    };
    let seq = go(false);
    let pip = go(true);
    for (a, b) in seq.points.iter().zip(&pip.points) {
        assert_eq!(a.train_loss.to_bits(), b.train_loss.to_bits());
        assert_eq!(a.total_time_s, b.total_time_s, "round {}", a.round);
        assert_eq!(a.comm_time_s, b.comm_time_s, "round {}", a.round);
    }
}
