//! Fault injection against the cluster runtime: the wire is hostile,
//! training must not be.
//!
//! Driven through [`FaultyTransport`], a seeded per-frame adversary
//! wrapping the loopback transport, these tests pin three contracts:
//!
//! 1. **Tolerated faults are invisible** — delays and reorders change
//!    only delivery schedules; every round's loss and every worker's
//!    parameters stay bit-identical to a clean run.
//! 2. **Lost frames surface as typed errors** — a transport that
//!    silently drops frames produces a stall error from
//!    [`ClusterTrainer::try_step`], never a hang or a wrong answer.
//! 3. **Byzantine workers are quarantined and replayed away** — a
//!    worker whose payloads are corrupt (or malformed) is expelled
//!    mid-round and the round replays without it, leaving *every*
//!    worker — honest ones and the rolled-back offender — bit-identical
//!    to a run where the offender left gracefully at the same round.
//!    This is the acceptance criterion of the byzantine scenario; it
//!    runs inside the CI determinism matrix (`SAPS_THREADS ∈ {1, 2}`).

use saps::cluster::{
    Addr, ClusterError, ClusterTrainer, FaultPlan, FaultScope, FaultyTransport, LoopbackTransport,
    Outbox, WireTap, WorkerNode,
};
use saps::core::{RoundCtx, SapsConfig, Trainer, Worker};
use saps::data::{partition, Dataset, SyntheticSpec};
use saps::netsim::{BandwidthMatrix, TrafficAccountant};
use saps::nn::zoo;
use saps::proto::Message;
use saps::tensor::rng::{derive_seed, streams};

const SEED: u64 = 23;

fn parts(workers: usize) -> Vec<Dataset> {
    let (train, _) = SyntheticSpec::tiny()
        .samples(1_600)
        .generate(5)
        .split(0.2, 0);
    partition::iid(&train, workers, derive_seed(SEED, 0, streams::DATA))
}

fn cfg(workers: usize) -> SapsConfig {
    SapsConfig {
        workers,
        compression: 4.0,
        lr: 0.1,
        batch_size: 16,
        bthres: None,
        tthres: 5,
        seed: SEED,
        shard_size: None,
    }
}

fn model(rng: &mut rand::rngs::StdRng) -> saps::nn::Model {
    zoo::mlp(&[16, 20, 4], rng)
}

fn clean_trainer(workers: usize) -> ClusterTrainer<LoopbackTransport> {
    ClusterTrainer::loopback(
        cfg(workers),
        parts(workers),
        &BandwidthMatrix::constant(workers, 1.0),
        model,
        WireTap::new(),
    )
    .unwrap()
}

fn faulty_trainer(
    workers: usize,
    plan: FaultPlan,
    seed: u64,
) -> ClusterTrainer<FaultyTransport<LoopbackTransport>> {
    let tap = WireTap::new();
    let transport = FaultyTransport::new(LoopbackTransport::new(tap.clone()), plan, seed);
    ClusterTrainer::with_transport(
        cfg(workers),
        parts(workers),
        &BandwidthMatrix::constant(workers, 1.0),
        model,
        transport,
        tap,
    )
    .unwrap()
}

fn step(trainer: &mut impl Trainer, round: usize, traffic: &mut TrafficAccountant) -> f32 {
    let bw = BandwidthMatrix::constant(trainer.worker_count(), 1.0);
    let mut ctx = RoundCtx::new(round, &bw, traffic, SEED);
    trainer.step(&mut ctx).mean_loss
}

#[test]
fn delays_and_reorders_leave_training_bit_identical() {
    let workers = 6;
    let mut clean = clean_trainer(workers);
    // Heavy but survivable weather: almost half of all frames arrive
    // late or behind a successor.
    let plan = FaultPlan::none().with_delay(0.25).with_reorder(0.2);
    let mut faulty = faulty_trainer(workers, plan, 77);
    let (mut tc, mut tf) = (
        TrafficAccountant::new(workers),
        TrafficAccountant::new(workers),
    );
    for round in 0..8 {
        let lc = step(&mut clean, round, &mut tc);
        let lf = step(&mut faulty, round, &mut tf);
        assert_eq!(lc.to_bits(), lf.to_bits(), "round {round} loss drifted");
    }
    for r in 0..workers {
        assert_eq!(
            clean.worker(r).worker().flat(),
            faulty.worker(r).worker().flat(),
            "worker {r} diverged under delay/reorder faults"
        );
    }
    assert!(faulty.quarantined().is_empty(), "no one was at fault");
}

#[test]
fn dropped_frames_surface_as_a_typed_stall_not_a_hang() {
    let workers = 4;
    let plan = FaultPlan::none().with_drop(1.0);
    let mut clu = faulty_trainer(workers, plan, 3).with_stall_limit(50);
    let bw = BandwidthMatrix::constant(workers, 1.0);
    let mut traffic = TrafficAccountant::new(workers);
    let mut ctx = RoundCtx::new(0, &bw, &mut traffic, SEED);
    match clu.try_step(&mut ctx) {
        Err(ClusterError::Protocol(msg)) => {
            assert!(msg.contains("quiescent"), "unexpected stall message: {msg}")
        }
        other => panic!("expected a stall error, got {other:?}"),
    }
}

#[test]
fn byzantine_worker_is_quarantined_and_honest_workers_match_a_graceful_leave() {
    const WORKERS: usize = 4;
    const ROUNDS: usize = 8;
    const EVIL_RANK: usize = 3;
    const ATTACK_ROUND: usize = 3;

    // Baseline: the offender leaves gracefully just before the attack
    // round — the world the quarantine must reproduce exactly.
    let mut baseline = clean_trainer(WORKERS);
    // Attacked run: identical spec; from the attack round on, every
    // payload the offender sends is corrupted in flight.
    let mut attacked = {
        let tap = WireTap::new();
        let transport =
            FaultyTransport::new(LoopbackTransport::new(tap.clone()), FaultPlan::none(), 7);
        let handle = transport.plan_handle();
        let clu = ClusterTrainer::with_transport(
            cfg(WORKERS),
            parts(WORKERS),
            &BandwidthMatrix::constant(WORKERS, 1.0),
            model,
            transport,
            tap,
        )
        .unwrap();
        (clu, handle)
    };

    let (mut tb, mut ta) = (
        TrafficAccountant::new(WORKERS),
        TrafficAccountant::new(WORKERS),
    );
    for round in 0..ROUNDS {
        if round == ATTACK_ROUND {
            baseline.set_worker_active(EVIL_RANK, false).unwrap();
            attacked.1.set(
                FaultPlan::none()
                    .with_corrupt(1.0)
                    .scoped(FaultScope::PayloadsFrom(Addr::Worker(EVIL_RANK as u32))),
            );
        }
        let lb = step(&mut baseline, round, &mut tb);
        let la = step(&mut attacked.0, round, &mut ta);
        assert_eq!(
            lb.to_bits(),
            la.to_bits(),
            "round {round}: attacked run's loss drifted from the graceful-leave baseline"
        );
    }

    // The offender was expelled, exactly once, and the fleets agree.
    assert_eq!(attacked.0.quarantined(), vec![EVIL_RANK as u32]);
    assert!(baseline.quarantined().is_empty());
    assert_eq!(attacked.0.active_ranks(), baseline.active_ranks());

    // Every worker is bit-identical: the honest ones because the replay
    // matched the graceful-leave world, the offender because the aborted
    // attempt was rolled back (its local step was undone, like the
    // frozen model of a worker that left).
    for r in 0..WORKERS {
        assert_eq!(
            baseline.worker(r).worker().flat(),
            attacked.0.worker(r).worker().flat(),
            "worker {r} params diverged from the graceful-leave baseline"
        );
    }
    // The consensus over honest workers agrees through the wire too.
    assert_eq!(
        baseline.consensus_model().unwrap(),
        attacked.0.consensus_model().unwrap()
    );
}

#[test]
fn quarantine_below_the_minimum_fleet_is_a_fatal_byzantine_error() {
    // With two workers, expelling the offender would leave one — the
    // control plane refuses, and the fault surfaces as fatal instead of
    // retrying forever.
    let workers = 2;
    let plan = FaultPlan::none()
        .with_corrupt(1.0)
        .scoped(FaultScope::PayloadsFrom(Addr::Worker(1)));
    let mut clu = faulty_trainer(workers, plan, 11);
    let bw = BandwidthMatrix::constant(workers, 1.0);
    let mut traffic = TrafficAccountant::new(workers);
    let mut ctx = RoundCtx::new(0, &bw, &mut traffic, SEED);
    match clu.try_step(&mut ctx) {
        Err(ClusterError::Byzantine { rank, detail }) => {
            assert_eq!(rank, 1);
            assert!(detail.contains("quarantine refused"), "detail: {detail}");
        }
        other => panic!("expected a fatal byzantine error, got {other:?}"),
    }
}

#[test]
fn malformed_payload_is_attributed_to_its_sender() {
    // Decode-level corruption is caught by the frame checksum; a frame
    // that decodes fine but violates the round's shared-mask contract
    // (wrong payload length) must be pinned on the sender too.
    let data = parts(2).remove(0);
    let mut rng = rand::SeedableRng::seed_from_u64(1);
    let worker = Worker::new(0, model(&mut rng), data, SEED);
    let mut node = WorkerNode::new(worker, 16, 0.1, 4.0);
    let mut out = Outbox::new();
    node.handle(
        Addr::Coordinator,
        Message::NotifyTrain {
            round: 0,
            mask_seed: 9,
            matching: vec![(0, 1)],
        },
        &mut out,
    )
    .unwrap();
    let err = node
        .handle(
            Addr::Worker(1),
            Message::MaskedPayload {
                round: 0,
                values: Vec::new(),
            },
            &mut out,
        )
        .unwrap_err();
    match err {
        ClusterError::Byzantine { rank, detail } => {
            assert_eq!(rank, 1);
            assert!(detail.contains("mask keeps"), "detail: {detail}");
        }
        other => panic!("expected byzantine attribution, got {other:?}"),
    }
}
