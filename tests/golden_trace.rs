//! Golden-trace regression tests.
//!
//! A small canonical workload (the quickstart shape, shrunk) is run for
//! SAPS-PSGD and two baselines under both time models, and the
//! per-round `(loss, traffic, comm_time)` trajectory is compared
//! against the committed traces in `tests/golden/`. Any drift — a
//! changed RNG stream, a reordered reduction, a time-model tweak —
//! fails with a readable row-by-row diff instead of a silent behavior
//! change.
//!
//! When a change is *intentional*, regenerate the traces and commit the
//! diff:
//!
//! ```sh
//! SAPS_GOLDEN_REGEN=1 cargo test --test golden_trace
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use saps::baselines::registry;
use saps::core::{AlgorithmSpec, Experiment, TimeModel};
use saps::data::{Dataset, SyntheticSpec};
use saps::netsim::BandwidthMatrix;
use saps::nn::zoo;
use std::fmt::Write as _;
use std::path::PathBuf;

const WORKERS: usize = 6;
const ROUNDS: usize = 12;
/// Absolute and relative tolerance when comparing against the parsed
/// golden values: wide enough for cross-platform float printing, far
/// below any real behavioral drift.
const ABS_TOL: f64 = 5e-6;
const REL_TOL: f64 = 1e-4;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn dataset() -> (Dataset, Dataset) {
    SyntheticSpec::tiny()
        .samples(1_200)
        .generate(2)
        .split(0.25, 0)
}

/// The three traced algorithms: the paper's contribution plus one
/// decentralized and one centralized baseline.
fn lineup() -> Vec<(&'static str, AlgorithmSpec)> {
    vec![
        (
            "saps",
            AlgorithmSpec::Saps {
                compression: 8.0,
                tthres: 4,
                bthres: None,
            },
        ),
        ("dpsgd", AlgorithmSpec::DPsgd),
        (
            "fedavg",
            AlgorithmSpec::FedAvg {
                participation: 0.5,
                local_steps: 3,
            },
        ),
    ]
}

fn time_models() -> Vec<(&'static str, TimeModel)> {
    vec![
        ("analytic", TimeModel::Analytic),
        (
            "des",
            TimeModel::EventDriven {
                latency: 0.01,
                contention: true,
            },
        ),
    ]
}

/// Runs one (algorithm, time model) cell and renders its trace.
fn render_trace(spec: AlgorithmSpec, model: TimeModel) -> String {
    let (train, val) = dataset();
    // A fixed heterogeneous matrix so the two time models actually
    // disagree on round times.
    let mut rng = StdRng::seed_from_u64(9);
    let bw = BandwidthMatrix::uniform_random(WORKERS, 5.0, &mut rng);
    let hist = Experiment::new(spec)
        .train(train)
        .validation(val)
        .workers(WORKERS)
        .batch_size(16)
        .lr(0.1)
        .seed(4)
        .bandwidth_matrix(bw)
        .model(|rng| zoo::mlp(&[16, 20, 4], rng))
        .rounds(ROUNDS)
        .eval_every(4)
        .eval_samples(200)
        .time_model(model)
        .run(&registry())
        .expect("golden workload must run");
    let mut out = String::from("round,train_loss,worker_traffic_mb,comm_time_s\n");
    for p in &hist.points {
        let _ = writeln!(
            out,
            "{},{:.6},{:.6},{:.6}",
            p.round + 1,
            p.train_loss,
            p.worker_traffic_mb,
            p.comm_time_s
        );
    }
    out
}

/// Parses one rendered/golden CSV into numeric rows.
fn parse(text: &str, path: &str) -> Vec<(u32, f64, f64, f64)> {
    text.lines()
        .skip(1)
        .filter(|l| !l.trim().is_empty())
        .map(|line| {
            let mut it = line.split(',');
            let mut next = || -> f64 {
                it.next()
                    .unwrap_or_else(|| panic!("{path}: short row {line:?}"))
                    .trim()
                    .parse()
                    .unwrap_or_else(|e| panic!("{path}: bad number in {line:?}: {e}"))
            };
            (next() as u32, next(), next(), next())
        })
        .collect()
}

fn drifted(golden: f64, got: f64) -> bool {
    (golden - got).abs() > ABS_TOL + REL_TOL * golden.abs()
}

#[test]
fn golden_traces_are_stable() {
    let dir = golden_dir();
    let regen = std::env::var("SAPS_GOLDEN_REGEN").is_ok_and(|v| v == "1");
    if regen {
        std::fs::create_dir_all(&dir).expect("create tests/golden");
    }
    let mut diffs: Vec<String> = Vec::new();
    for (algo, spec) in lineup() {
        for (model_name, model) in time_models() {
            let name = format!("{algo}_{model_name}.csv");
            let path = dir.join(&name);
            let fresh = render_trace(spec, model);
            if regen {
                std::fs::write(&path, &fresh).unwrap_or_else(|e| panic!("write {name}: {e}"));
                eprintln!("regenerated {name}");
                continue;
            }
            let golden_text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                panic!(
                    "missing golden trace {name} ({e}); regenerate with \
                     `SAPS_GOLDEN_REGEN=1 cargo test --test golden_trace`"
                )
            });
            let golden = parse(&golden_text, &name);
            let got = parse(&fresh, &name);
            if golden.len() != got.len() {
                diffs.push(format!(
                    "{name}: {} golden rounds vs {} fresh rounds",
                    golden.len(),
                    got.len()
                ));
                continue;
            }
            for (g, f) in golden.iter().zip(&got) {
                let fields = [
                    ("train_loss", g.1, f.1),
                    ("worker_traffic_mb", g.2, f.2),
                    ("comm_time_s", g.3, f.3),
                ];
                for (field, gv, fv) in fields {
                    if drifted(gv, fv) {
                        diffs.push(format!(
                            "{name} round {}: {field} golden={gv:.6} got={fv:.6} (Δ={:+.2e})",
                            g.0,
                            fv - gv
                        ));
                    }
                }
            }
        }
    }
    assert!(
        diffs.is_empty(),
        "golden traces drifted in {} place(s) — if intentional, regenerate with \
         `SAPS_GOLDEN_REGEN=1 cargo test --test golden_trace` and commit the diff:\n  {}",
        diffs.len(),
        diffs.join("\n  ")
    );
}

/// The two time models must agree on everything except time: same
/// losses, same traffic, different comm-time columns (positive latency
/// over a heterogeneous matrix cannot coincide).
#[test]
fn golden_pairs_differ_only_in_time() {
    for (algo, spec) in lineup() {
        let analytic = render_trace(spec, TimeModel::Analytic);
        let des = render_trace(
            spec,
            TimeModel::EventDriven {
                latency: 0.01,
                contention: true,
            },
        );
        let a = parse(&analytic, "analytic");
        let d = parse(&des, "des");
        assert_eq!(a.len(), d.len(), "{algo}");
        let mut any_time_diff = false;
        for (ra, rd) in a.iter().zip(&d) {
            assert_eq!(ra.1, rd.1, "{algo} round {}: loss drifted", ra.0);
            assert_eq!(ra.2, rd.2, "{algo} round {}: traffic drifted", ra.0);
            any_time_diff |= ra.3 != rd.3;
        }
        assert!(any_time_diff, "{algo}: DES priced identically to analytic");
    }
}
