//! Cross-crate integration tests: run every algorithm end to end on the
//! same workload and check the paper's headline orderings.

use rand::rngs::StdRng;
use saps::baselines::{
    DPsgd, DcdPsgd, FedAvg, FedAvgConfig, Fleet, PsgdAllReduce, RandomChoose, SFedAvg, TopKPsgd,
};
use saps::core::{sim, SapsConfig, SapsPsgd, Trainer};
use saps::data::{Dataset, SyntheticSpec};
use saps::netsim::BandwidthMatrix;
use saps::nn::zoo;

const N: usize = 8;
const BATCH: usize = 16;
const LR: f32 = 0.1;

fn dataset() -> (Dataset, Dataset) {
    SyntheticSpec::tiny()
        .samples(2_400)
        .generate(1)
        .split(0.2, 0)
}

fn factory(rng: &mut StdRng) -> saps::nn::Model {
    zoo::mlp(&[16, 24, 4], rng)
}

fn fleet(train: &Dataset) -> Fleet {
    Fleet::new(N, train, factory, 3, BATCH, LR)
}

fn opts(rounds: usize) -> sim::RunOptions {
    sim::RunOptions {
        rounds,
        eval_every: rounds / 4,
        eval_samples: 400,
        max_epochs: f64::INFINITY,
    }
}

fn all_trainers(train: &Dataset, bw: &BandwidthMatrix) -> Vec<Box<dyn Trainer>> {
    let cfg = SapsConfig {
        workers: N,
        compression: 10.0,
        lr: LR,
        batch_size: BATCH,
        tthres: 6,
        seed: 3,
        ..SapsConfig::default()
    };
    vec![
        Box::new(SapsPsgd::new(cfg, train, bw, factory)),
        Box::new(PsgdAllReduce::new(fleet(train))),
        Box::new(TopKPsgd::new(fleet(train), 20.0)),
        Box::new(FedAvg::new(fleet(train), FedAvgConfig::default(), 3)),
        Box::new(SFedAvg::new(fleet(train), 0.5, 5, 10.0, 3)),
        Box::new(DPsgd::new(fleet(train))),
        Box::new(DcdPsgd::new(fleet(train), 4.0)),
        Box::new(RandomChoose::new(fleet(train), 10.0, 3)),
    ]
}

#[test]
fn every_algorithm_learns() {
    let (train, val) = dataset();
    let bw = BandwidthMatrix::constant(N, 1.0);
    for mut algo in all_trainers(&train, &bw) {
        let hist = sim::run(algo.as_mut(), &bw, &val, opts(160));
        assert!(
            hist.final_acc > 0.5,
            "{} stuck at {:.1}% (chance 25%)",
            hist.algorithm,
            hist.final_acc * 100.0
        );
    }
}

#[test]
fn saps_has_lowest_worker_traffic() {
    let (train, val) = dataset();
    let bw = BandwidthMatrix::constant(N, 1.0);
    let mut results = Vec::new();
    for mut algo in all_trainers(&train, &bw) {
        let hist = sim::run(algo.as_mut(), &bw, &val, opts(40));
        results.push((hist.algorithm.clone(), hist.total_worker_traffic_mb));
    }
    let saps = results.iter().find(|(n, _)| n == "SAPS-PSGD").unwrap().1;
    for (name, mb) in &results {
        if name != "SAPS-PSGD" && name != "RandomChoose" {
            assert!(saps < *mb, "SAPS {saps:.4} MB !< {name} {mb:.4} MB");
        }
    }
}

#[test]
fn decentralized_algorithms_move_no_server_bytes() {
    let (train, val) = dataset();
    let bw = BandwidthMatrix::constant(N, 1.0);
    for mut algo in all_trainers(&train, &bw) {
        let name = algo.name().to_string();
        let hist = sim::run(algo.as_mut(), &bw, &val, opts(12));
        match name.as_str() {
            "FedAvg" | "S-FedAvg" => assert!(
                hist.total_server_traffic_mb > 0.0,
                "{name} should use the server"
            ),
            _ => assert_eq!(
                hist.total_server_traffic_mb, 0.0,
                "{name} must not move model bytes through a server"
            ),
        }
    }
}

#[test]
fn adaptive_selection_beats_random_on_heterogeneous_network() {
    // On a network with a few fast and many slow links, SAPS-PSGD's
    // bottleneck bandwidth must beat RandomChoose's, and its total
    // communication time must be lower at equal traffic.
    use rand::SeedableRng;
    let (train, val) = dataset();
    let mut rng = StdRng::seed_from_u64(5);
    let bw = BandwidthMatrix::uniform_random(N, 5.0, &mut rng);

    let cfg = SapsConfig {
        workers: N,
        compression: 10.0,
        lr: LR,
        batch_size: BATCH,
        tthres: 6,
        seed: 3,
        bthres: Some(bw.percentile(0.6)),
    };
    let mut saps = SapsPsgd::new(cfg, &train, &bw, factory);
    let saps_hist = sim::run(&mut saps, &bw, &val, opts(200));

    let mut random = RandomChoose::new(fleet(&train), 10.0, 3);
    let rand_hist = sim::run(&mut random, &bw, &val, opts(200));

    let saps_bottleneck: f64 = saps_hist
        .points
        .iter()
        .map(|p| p.bottleneck_bandwidth)
        .sum::<f64>()
        / saps_hist.points.len() as f64;
    let rand_bottleneck: f64 = rand_hist
        .points
        .iter()
        .map(|p| p.bottleneck_bandwidth)
        .sum::<f64>()
        / rand_hist.points.len() as f64;
    assert!(
        saps_bottleneck > rand_bottleneck,
        "bottleneck: SAPS {saps_bottleneck:.3} !> random {rand_bottleneck:.3}"
    );
    assert!(
        saps_hist.total_comm_time_s < rand_hist.total_comm_time_s,
        "time: SAPS {:.2}s !< random {:.2}s",
        saps_hist.total_comm_time_s,
        rand_hist.total_comm_time_s
    );
}

#[test]
fn runs_are_deterministic_across_invocations() {
    let (train, val) = dataset();
    let bw = BandwidthMatrix::constant(N, 1.0);
    let run_once = || {
        let cfg = SapsConfig {
            workers: N,
            compression: 10.0,
            lr: LR,
            batch_size: BATCH,
            tthres: 6,
            seed: 3,
            ..SapsConfig::default()
        };
        let mut algo = SapsPsgd::new(cfg, &train, &bw, factory);
        sim::run(&mut algo, &bw, &val, opts(30))
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a.final_acc, b.final_acc);
    assert_eq!(a.total_worker_traffic_mb, b.total_worker_traffic_mb);
    for (pa, pb) in a.points.iter().zip(&b.points) {
        assert_eq!(pa.train_loss, pb.train_loss);
    }
}

#[test]
fn non_iid_partitions_still_converge() {
    let (train, val) = dataset();
    let bw = BandwidthMatrix::constant(N, 1.0);
    let parts = saps::data::partition::dirichlet(&train, N, 0.5, 7);
    let cfg = SapsConfig {
        workers: N,
        compression: 10.0,
        lr: LR,
        batch_size: BATCH,
        tthres: 6,
        seed: 3,
        ..SapsConfig::default()
    };
    let mut algo = SapsPsgd::with_partitions(cfg, parts, &bw, factory);
    let hist = sim::run(&mut algo, &bw, &val, opts(250));
    assert!(
        hist.final_acc > 0.5,
        "non-IID accuracy {:.1}%",
        hist.final_acc * 100.0
    );
}

#[test]
fn measured_traffic_matches_table1_formulas() {
    // Measured bytes (converted to "parameters") must track Table I for
    // the algorithms whose wire format matches the paper's accounting.
    let (train, val) = dataset();
    let bw = BandwidthMatrix::constant(N, 1.0);
    let rounds = 20;

    // SAPS-PSGD: 2(N/c)T parameters per worker.
    let c = 10.0;
    let cfg = SapsConfig {
        workers: N,
        compression: c,
        lr: LR,
        batch_size: BATCH,
        tthres: 6,
        seed: 3,
        ..SapsConfig::default()
    };
    let mut algo = SapsPsgd::new(cfg, &train, &bw, factory);
    let n_params = algo.model_len() as f64;
    let hist = sim::run(&mut algo, &bw, &val, opts(rounds));
    let measured_params = hist.total_worker_traffic_mb * 1e6 / 4.0;
    let formula = 2.0 * (n_params / c) * rounds as f64;
    let ratio = measured_params / formula;
    assert!(
        (ratio - 1.0).abs() < 0.2,
        "SAPS measured/formula = {ratio:.3}"
    );

    // D-PSGD: 4·N·T parameters per worker (np = 2 neighbours).
    let mut dpsgd = DPsgd::new(fleet(&train));
    let hist = sim::run(&mut dpsgd, &bw, &val, opts(rounds));
    let measured_params = hist.total_worker_traffic_mb * 1e6 / 4.0;
    let formula = 4.0 * n_params * rounds as f64;
    let ratio = measured_params / formula;
    assert!(
        (ratio - 1.0).abs() < 0.05,
        "D-PSGD measured/formula = {ratio:.3}"
    );
}
