//! Cross-crate integration tests: run every algorithm end to end on the
//! same workload through the [`Experiment`] API and check the paper's
//! headline orderings.

use saps::baselines::registry;
use saps::core::{AlgorithmSpec, Experiment, PartitionStrategy};
use saps::data::{Dataset, SyntheticSpec};
use saps::netsim::BandwidthMatrix;
use saps::nn::zoo;

const N: usize = 8;
const BATCH: usize = 16;
const LR: f32 = 0.1;
const SEED: u64 = 3;

fn dataset() -> (Dataset, Dataset) {
    SyntheticSpec::tiny()
        .samples(2_400)
        .generate(1)
        .split(0.2, 0)
}

fn all_specs() -> Vec<AlgorithmSpec> {
    vec![
        AlgorithmSpec::Saps {
            compression: 10.0,
            tthres: 6,
            bthres: None,
        },
        AlgorithmSpec::Psgd,
        AlgorithmSpec::TopK { compression: 20.0 },
        AlgorithmSpec::FedAvg {
            participation: 0.5,
            local_steps: 5,
        },
        AlgorithmSpec::SFedAvg {
            participation: 0.5,
            local_steps: 5,
            compression: 10.0,
        },
        AlgorithmSpec::DPsgd,
        AlgorithmSpec::DcdPsgd { compression: 4.0 },
        AlgorithmSpec::RandomChoose { compression: 10.0 },
    ]
}

fn experiment(spec: AlgorithmSpec, train: &Dataset, val: &Dataset, rounds: usize) -> Experiment {
    Experiment::new(spec)
        .train(train.clone())
        .validation(val.clone())
        .workers(N)
        .batch_size(BATCH)
        .lr(LR)
        .seed(SEED)
        .model(|rng| zoo::mlp(&[16, 24, 4], rng))
        .rounds(rounds)
        .eval_every((rounds / 4).max(1))
        .eval_samples(400)
}

#[test]
fn every_algorithm_learns() {
    let (train, val) = dataset();
    let reg = registry();
    for spec in all_specs() {
        let hist = experiment(spec, &train, &val, 160).run(&reg).unwrap();
        assert!(
            hist.final_acc > 0.5,
            "{} stuck at {:.1}% (chance 25%)",
            hist.algorithm,
            hist.final_acc * 100.0
        );
    }
}

#[test]
fn saps_has_lowest_worker_traffic() {
    let (train, val) = dataset();
    let reg = registry();
    let mut results = Vec::new();
    for spec in all_specs() {
        let hist = experiment(spec, &train, &val, 40).run(&reg).unwrap();
        results.push((hist.algorithm.clone(), hist.total_worker_traffic_mb));
    }
    let saps = results.iter().find(|(n, _)| n == "SAPS-PSGD").unwrap().1;
    for (name, mb) in &results {
        if name != "SAPS-PSGD" && name != "RandomChoose" {
            assert!(saps < *mb, "SAPS {saps:.4} MB !< {name} {mb:.4} MB");
        }
    }
}

#[test]
fn decentralized_algorithms_move_no_server_bytes() {
    let (train, val) = dataset();
    let reg = registry();
    for spec in all_specs() {
        let hist = experiment(spec, &train, &val, 12).run(&reg).unwrap();
        match hist.algorithm.as_str() {
            "FedAvg" | "S-FedAvg" => assert!(
                hist.total_server_traffic_mb > 0.0,
                "{} should use the server",
                hist.algorithm
            ),
            _ => assert_eq!(
                hist.total_server_traffic_mb, 0.0,
                "{} must not move model bytes through a server",
                hist.algorithm
            ),
        }
    }
}

#[test]
fn adaptive_selection_beats_random_on_heterogeneous_network() {
    // On a network with a few fast and many slow links, SAPS-PSGD's
    // bottleneck bandwidth must beat RandomChoose's, and its total
    // communication time must be lower at equal traffic.
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let (train, val) = dataset();
    let mut rng = StdRng::seed_from_u64(5);
    let bw = BandwidthMatrix::uniform_random(N, 5.0, &mut rng);
    let reg = registry();

    let saps_hist = experiment(
        AlgorithmSpec::Saps {
            compression: 10.0,
            tthres: 6,
            bthres: Some(bw.percentile(0.6)),
        },
        &train,
        &val,
        200,
    )
    .bandwidth_matrix(bw.clone())
    .run(&reg)
    .unwrap();
    let rand_hist = experiment(
        AlgorithmSpec::RandomChoose { compression: 10.0 },
        &train,
        &val,
        200,
    )
    .bandwidth_matrix(bw.clone())
    .run(&reg)
    .unwrap();

    let mean_bottleneck = |h: &saps::core::RunHistory| {
        h.points.iter().map(|p| p.bottleneck_bandwidth).sum::<f64>() / h.points.len() as f64
    };
    let saps_bottleneck = mean_bottleneck(&saps_hist);
    let rand_bottleneck = mean_bottleneck(&rand_hist);
    assert!(
        saps_bottleneck > rand_bottleneck,
        "bottleneck: SAPS {saps_bottleneck:.3} !> random {rand_bottleneck:.3}"
    );
    assert!(
        saps_hist.total_comm_time_s < rand_hist.total_comm_time_s,
        "time: SAPS {:.2}s !< random {:.2}s",
        saps_hist.total_comm_time_s,
        rand_hist.total_comm_time_s
    );
}

#[test]
fn runs_are_deterministic_across_invocations() {
    let (train, val) = dataset();
    let reg = registry();
    let spec = AlgorithmSpec::Saps {
        compression: 10.0,
        tthres: 6,
        bthres: None,
    };
    let a = experiment(spec, &train, &val, 30).run(&reg).unwrap();
    let b = experiment(spec, &train, &val, 30).run(&reg).unwrap();
    assert_eq!(a.final_acc, b.final_acc);
    assert_eq!(a.total_worker_traffic_mb, b.total_worker_traffic_mb);
    for (pa, pb) in a.points.iter().zip(&b.points) {
        assert_eq!(pa.train_loss, pb.train_loss);
    }
}

#[test]
fn non_iid_partitions_still_converge() {
    let (train, val) = dataset();
    let spec = AlgorithmSpec::Saps {
        compression: 10.0,
        tthres: 6,
        bthres: None,
    };
    let hist = experiment(spec, &train, &val, 250)
        .partition(PartitionStrategy::Dirichlet { alpha: 0.5 })
        .seed(7)
        .run(&registry())
        .unwrap();
    assert!(
        hist.final_acc > 0.5,
        "non-IID accuracy {:.1}%",
        hist.final_acc * 100.0
    );
}

#[test]
fn early_stop_at_target_accuracy() {
    let (train, val) = dataset();
    let spec = AlgorithmSpec::Psgd;
    let hist = experiment(spec, &train, &val, 400)
        .eval_every(5)
        .target_accuracy(0.5)
        .run(&registry())
        .unwrap();
    assert!(hist.final_acc >= 0.5);
    assert!(hist.points.len() < 400, "never stopped early");
    let crossing = hist.first_reaching(0.5).unwrap();
    assert!(crossing.evaluated, "crossing must be a fresh evaluation");
    assert_eq!(crossing.round, hist.points.last().unwrap().round);
}

#[test]
fn measured_traffic_matches_table1_formulas() {
    // Measured bytes (converted to "parameters") must track Table I for
    // the algorithms whose wire format matches the paper's accounting.
    let (train, val) = dataset();
    let reg = registry();
    let rounds = 20;

    // SAPS-PSGD: 2(N/c)T parameters per worker.
    let c = 10.0;
    let hist = experiment(
        AlgorithmSpec::Saps {
            compression: c,
            tthres: 6,
            bthres: None,
        },
        &train,
        &val,
        rounds,
    )
    .run(&reg)
    .unwrap();
    // Model size of the shared factory (mlp 16-24-4).
    let n_params = {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        zoo::mlp(&[16, 24, 4], &mut rng).num_params() as f64
    };
    let measured_params = hist.total_worker_traffic_mb * 1e6 / 4.0;
    let formula = 2.0 * (n_params / c) * rounds as f64;
    let ratio = measured_params / formula;
    assert!(
        (ratio - 1.0).abs() < 0.2,
        "SAPS measured/formula = {ratio:.3}"
    );

    // D-PSGD: 4·N·T parameters per worker (np = 2 neighbours).
    let hist = experiment(AlgorithmSpec::DPsgd, &train, &val, rounds)
        .run(&reg)
        .unwrap();
    let measured_params = hist.total_worker_traffic_mb * 1e6 / 4.0;
    let formula = 4.0 * n_params * rounds as f64;
    let ratio = measured_params / formula;
    assert!(
        (ratio - 1.0).abs() < 0.05,
        "D-PSGD measured/formula = {ratio:.3}"
    );
}
