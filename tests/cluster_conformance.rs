//! Cluster ↔ in-memory conformance: the headline invariant of the
//! message-driven runtime.
//!
//! 1. **Bit-identity** — a cluster-driven SAPS run (every round through
//!    real serialized `saps-proto` frames over the loopback transport)
//!    produces bit-identical training state (every worker's parameters),
//!    per-round loss, and worker-row traffic to the in-memory
//!    [`SapsPsgd`] run of the same spec — including across churn and
//!    bandwidth-refresh events.
//! 2. **Wire ↔ accountant reconciliation** — per round, the bytes framed
//!    on the wire equal the `TrafficAccountant`'s Table I accounting
//!    exactly: each masked payload's values section (`4·nnz`) on the
//!    worker rows, all control-plane bytes (control frames + envelopes)
//!    on the server row.
//! 3. **Checkpoint reuse** — the coordinator-collected `FinalModel`
//!    (a nested `core::checkpoint` blob) decodes equal to the in-memory
//!    worker's flat parameters.
//!
//! This test runs inside the CI determinism matrix (`SAPS_THREADS ∈
//! {1, 2}`), so the invariants hold at every round-engine width.

use saps::cluster::{cluster_registry, ClusterTrainer, WireTap};
use saps::core::{
    AlgorithmRegistry, AlgorithmSpec, BuildCtx, Experiment, RoundCtx, SapsConfig, SapsPsgd,
    ScenarioEvent, Trainer,
};
use saps::data::{partition, Dataset, SyntheticSpec};
use saps::netsim::{BandwidthMatrix, TrafficAccountant};
use saps::nn::zoo;
use saps::tensor::rng::{derive_seed, streams};
use std::sync::Arc;

const SEED: u64 = 11;

fn dataset() -> (Dataset, Dataset) {
    SyntheticSpec::tiny()
        .samples(1_800)
        .generate(7)
        .split(0.2, 0)
}

fn parts(train: &Dataset, workers: usize) -> Vec<Dataset> {
    partition::iid(train, workers, derive_seed(SEED, 0, streams::DATA))
}

fn cfg(workers: usize) -> SapsConfig {
    SapsConfig {
        workers,
        compression: 4.0,
        lr: 0.1,
        batch_size: 16,
        bthres: None,
        tthres: 5,
        seed: SEED,
        shard_size: None,
    }
}

fn pair(
    workers: usize,
) -> (
    SapsPsgd,
    ClusterTrainer<saps::cluster::LoopbackTransport>,
    WireTap,
) {
    let (train, _) = dataset();
    let bw = BandwidthMatrix::constant(workers, 1.0);
    let mem = SapsPsgd::with_partitions(cfg(workers), parts(&train, workers), &bw, |rng| {
        zoo::mlp(&[16, 20, 4], rng)
    })
    .unwrap();
    let tap = WireTap::new();
    let clu = ClusterTrainer::loopback(
        cfg(workers),
        parts(&train, workers),
        &bw,
        |rng| zoo::mlp(&[16, 20, 4], rng),
        tap.clone(),
    )
    .unwrap();
    (mem, clu, tap)
}

#[test]
fn cluster_rounds_are_bit_identical_to_in_memory() {
    let workers = 6;
    let (mut mem, mut clu, _tap) = pair(workers);
    let bw = BandwidthMatrix::constant(workers, 1.0);
    let mut t_mem = TrafficAccountant::new(workers);
    let mut t_clu = TrafficAccountant::new(workers);

    for round in 0..12 {
        // Mid-run churn, applied identically to both paths (the cluster
        // side goes through real Join/Leave frames).
        if round == 4 {
            mem.set_active(5, false).unwrap();
            clu.set_worker_active(5, false).unwrap();
        }
        if round == 8 {
            mem.set_active(5, true).unwrap();
            clu.set_worker_active(5, true).unwrap();
        }
        let rep_mem = {
            let mut ctx = RoundCtx::new(round, &bw, &mut t_mem, SEED);
            mem.step(&mut ctx)
        };
        let rep_clu = {
            let mut ctx = RoundCtx::new(round, &bw, &mut t_clu, SEED);
            Trainer::step(&mut clu, &mut ctx)
        };
        // Per-round loss/acc: bit-equal, not merely close.
        assert_eq!(
            rep_mem.mean_loss.to_bits(),
            rep_clu.mean_loss.to_bits(),
            "round {round} loss"
        );
        assert_eq!(
            rep_mem.mean_acc.to_bits(),
            rep_clu.mean_acc.to_bits(),
            "round {round} acc"
        );
        assert_eq!(rep_mem.epochs_advanced, rep_clu.epochs_advanced);
        assert_eq!(rep_mem.mean_link_bandwidth, rep_clu.mean_link_bandwidth);
    }

    // Training state: every worker's parameters, bit for bit.
    for r in 0..workers {
        assert_eq!(
            mem.worker(r).flat(),
            clu.worker(r).worker().flat(),
            "worker {r} diverged"
        );
    }
    // Consensus model via the wire equals the in-memory average exactly.
    assert_eq!(mem.average_model(), clu.consensus_model().unwrap());

    // Checkpoint round stamps survive churn: the coordinator's plan
    // counter restarted twice (leave + rejoin rebuilds), but each
    // worker's completed-round count keeps increasing monotonically.
    assert_eq!(clu.fetch_model(0).unwrap().1, 12, "worker 0 ran all rounds");
    assert_eq!(
        clu.fetch_model(5).unwrap().1,
        8,
        "worker 5 sat out rounds 4..8"
    );

    // Worker-row traffic: identical (4·nnz per payload, both paths).
    for r in 0..workers {
        assert_eq!(
            t_mem.worker_sent(r),
            t_clu.worker_sent(r),
            "worker {r} sent"
        );
        assert_eq!(
            t_mem.worker_recv(r),
            t_clu.worker_recv(r),
            "worker {r} recv"
        );
    }
    // Server row: the in-memory path models control traffic as free; the
    // cluster bills every control byte actually framed.
    assert_eq!(t_mem.server_total(), 0);
    assert!(t_clu.server_total() > 0, "control plane must be billed");
}

#[test]
fn wire_bytes_reconcile_with_the_accountant_exactly() {
    let workers = 5; // odd fleet: one unmatched worker per round
    let (_, mut clu, tap) = pair(workers);
    let bw = BandwidthMatrix::constant(workers, 1.0);
    let mut traffic = TrafficAccountant::new(workers);

    let mut billed_data = 0u64;
    let mut billed_control = 0u64;
    for round in 0..6 {
        let before = tap.snapshot();
        {
            let mut ctx = RoundCtx::new(round, &bw, &mut traffic, SEED);
            Trainer::step(&mut clu, &mut ctx);
        }
        let after = tap.snapshot();
        let snap = *traffic.rounds().last().unwrap();
        // Worker rows carry exactly the values sections framed this
        // round (4·nnz per payload, both directions of each pair)…
        assert_eq!(
            snap.total_sent,
            after.data_bytes - before.data_bytes,
            "round {round} data plane"
        );
        // …and the server row carries every other byte framed: control
        // frames (NotifyTrain, RoundEnd) plus all envelopes.
        assert_eq!(
            snap.server_bytes,
            after.control_bytes - before.control_bytes,
            "round {round} control plane"
        );
        billed_data += snap.total_sent;
        billed_control += snap.server_bytes;
        // No eval ran, so nothing was metered on the model plane.
        assert_eq!(after.model_bytes, before.model_bytes);
    }
    // Cumulative: every byte framed on the wire is accounted for.
    let total = tap.snapshot();
    assert_eq!(
        total.total_bytes,
        billed_data + billed_control + total.model_bytes
    );
    assert_eq!(total.data_bytes, billed_data);
    assert_eq!(total.control_bytes, billed_control);
}

#[test]
fn final_model_checkpoint_decodes_to_the_in_memory_params() {
    let workers = 4;
    let (mut mem, mut clu, tap) = pair(workers);
    let bw = BandwidthMatrix::constant(workers, 1.0);
    let mut t_mem = TrafficAccountant::new(workers);
    let mut t_clu = TrafficAccountant::new(workers);
    for round in 0..5 {
        let mut ctx = RoundCtx::new(round, &bw, &mut t_mem, SEED);
        mem.step(&mut ctx);
        let mut ctx = RoundCtx::new(round, &bw, &mut t_clu, SEED);
        Trainer::step(&mut clu, &mut ctx);
    }
    let model_plane_before = tap.snapshot().model_bytes;
    for r in 0..workers {
        let (params, rounds_done) = clu.fetch_model(r).unwrap();
        assert_eq!(params, mem.worker(r).flat(), "worker {r} final model");
        assert_eq!(rounds_done, 5);
    }
    // Model collection is metered on its own plane, never billed to the
    // training accountant.
    assert!(tap.snapshot().model_bytes > model_plane_before);
    assert_eq!(
        t_clu.server_total(),
        t_clu.rounds().iter().map(|r| r.server_bytes).sum()
    );
}

#[test]
fn reused_registry_does_not_rebill_prior_runs_control_plane() {
    // cluster_registry clones one WireTap handle into every trainer it
    // builds; a second experiment through the same registry must bill
    // only its own control bytes, not the first run's backlog.
    let (train, val) = dataset();
    let tap = WireTap::new();
    let reg = cluster_registry(tap.clone());
    let run = || {
        Experiment::new(AlgorithmSpec::Saps {
            compression: 4.0,
            tthres: 4,
            bthres: None,
        })
        .train(train.clone())
        .validation(val.clone())
        .workers(4)
        .batch_size(16)
        .seed(SEED)
        .model(|rng| zoo::mlp(&[16, 20, 4], rng))
        .rounds(6)
        .eval_every(6)
        .eval_samples(100)
        .run(&reg)
        .unwrap()
    };
    let first = run();
    let second = run();
    // Identical spec + seed → identical frames → identical server rows.
    assert_eq!(
        first.total_server_traffic_mb,
        second.total_server_traffic_mb
    );
    assert!(first.total_server_traffic_mb > 0.0);
}

#[test]
fn experiment_driver_runs_cluster_and_memory_to_the_same_history() {
    let (train, val) = dataset();
    let build = |registry: &AlgorithmRegistry| {
        Experiment::new(AlgorithmSpec::Saps {
            compression: 4.0,
            tthres: 4,
            bthres: None,
        })
        .train(train.clone())
        .validation(val.clone())
        .workers(6)
        .batch_size(16)
        .lr(0.1)
        .seed(SEED)
        .model(|rng| zoo::mlp(&[16, 20, 4], rng))
        .rounds(20)
        .eval_every(5)
        .eval_samples(200)
        .event(6, ScenarioEvent::WorkerLeave { rank: 5 })
        .event(9, ScenarioEvent::BandwidthShift { scale: 0.5 })
        .event(14, ScenarioEvent::WorkerJoin { rank: 5 })
        .run(registry)
        .unwrap()
    };
    let mem = build(&AlgorithmRegistry::core());
    let tap = WireTap::new();
    let clu = build(&cluster_registry(tap.clone()));

    assert_eq!(mem.algorithm, clu.algorithm);
    assert_eq!(mem.points.len(), clu.points.len());
    for (a, b) in mem.points.iter().zip(&clu.points) {
        assert_eq!(
            a.train_loss.to_bits(),
            b.train_loss.to_bits(),
            "round {}",
            a.round
        );
        assert_eq!(
            a.val_acc.to_bits(),
            b.val_acc.to_bits(),
            "round {}",
            a.round
        );
        assert_eq!(a.evaluated, b.evaluated);
        assert_eq!(a.epoch, b.epoch);
        assert_eq!(
            a.worker_traffic_mb, b.worker_traffic_mb,
            "round {}",
            a.round
        );
        // Time is priced on the full framed bytes, so the cluster pays
        // the envelope overhead (31 bytes per payload frame) on top of
        // the payload time — noticeable on this deliberately tiny test
        // model (~100 masked values/payload), bounded well under the
        // ~7.5% it costs here.
        assert!(b.comm_time_s >= a.comm_time_s, "round {}", a.round);
        assert!(
            b.comm_time_s <= a.comm_time_s * 1.15,
            "round {}: envelope overhead out of bounds ({} vs {})",
            a.round,
            b.comm_time_s,
            a.comm_time_s
        );
    }
    assert_eq!(mem.final_acc, clu.final_acc);
    assert_eq!(mem.total_worker_traffic_mb, clu.total_worker_traffic_mb);
    assert_eq!(mem.total_server_traffic_mb, 0.0);
    assert!(clu.total_server_traffic_mb > 0.0);
    let wire = tap.snapshot();
    assert!(wire.data_bytes > 0 && wire.control_bytes > 0 && wire.model_bytes > 0);
}

/// One spec per registered algorithm — the full conformance matrix.
fn spec_matrix() -> Vec<AlgorithmSpec> {
    vec![
        AlgorithmSpec::Saps {
            compression: 4.0,
            tthres: 5,
            bthres: None,
        },
        AlgorithmSpec::Psgd,
        AlgorithmSpec::TopK { compression: 4.0 },
        AlgorithmSpec::FedAvg {
            participation: 0.5,
            local_steps: 2,
        },
        AlgorithmSpec::SFedAvg {
            participation: 0.5,
            local_steps: 2,
            compression: 4.0,
        },
        AlgorithmSpec::DPsgd,
        AlgorithmSpec::DcdPsgd { compression: 4.0 },
        AlgorithmSpec::RandomChoose { compression: 4.0 },
    ]
}

fn build_ctx<'a>(train: &Dataset, workers: usize, bw: &'a BandwidthMatrix) -> BuildCtx<'a> {
    BuildCtx {
        partitions: parts(train, workers),
        bw,
        batch_size: 16,
        lr: 0.1,
        seed: SEED,
        factory: Arc::new(|rng| zoo::mlp(&[16, 20, 4], rng)),
    }
}

#[test]
fn cluster_registry_covers_every_in_memory_key() {
    let mem: Vec<&'static str> = saps::baselines::registry().keys().collect();
    let clu: Vec<&'static str> = cluster_registry(WireTap::new()).keys().collect();
    assert_eq!(mem, clu, "registries must register the same algorithms");
    assert_eq!(mem.len(), 8);
}

#[test]
fn all_eight_algorithms_are_bit_identical_on_the_wire() {
    // The matrix: every registered algorithm, run through real framed
    // message exchanges over the loopback transport, against the
    // in-memory trainer of the same spec — bit-identical per-round
    // loss/accuracy, link stats, per-worker traffic rows, consensus
    // evaluation, and checkpoint bytes, across a leave + rejoin. Runs
    // inside the CI determinism matrix (`SAPS_THREADS ∈ {1, 2}`).
    let workers = 6;
    let (train, val) = dataset();
    let bw = BandwidthMatrix::constant(workers, 1.0);
    let mem_reg = saps::baselines::registry();
    for spec in spec_matrix() {
        let key = spec.key();
        let tap = WireTap::new();
        let clu_reg = cluster_registry(tap.clone());
        let mut mem = mem_reg
            .build(&spec, build_ctx(&train, workers, &bw))
            .unwrap();
        let mut clu = clu_reg
            .build(&spec, build_ctx(&train, workers, &bw))
            .unwrap();
        assert_eq!(mem.name(), clu.name(), "{key}: label");
        assert_eq!(mem.model_len(), clu.model_len(), "{key}: model size");
        assert_eq!(mem.worker_count(), clu.worker_count(), "{key}: fleet");

        let mut t_mem = TrafficAccountant::new(workers);
        let mut t_clu = TrafficAccountant::new(workers);
        for round in 0..10 {
            // Mid-run churn, identical on both paths: rank 5 leaves
            // before round 4 and rejoins before round 8.
            if round == 4 {
                mem.set_worker_active(5, false).unwrap();
                clu.set_worker_active(5, false).unwrap();
            }
            if round == 8 {
                mem.set_worker_active(5, true).unwrap();
                clu.set_worker_active(5, true).unwrap();
            }
            let rep_mem = {
                let mut ctx = RoundCtx::new(round, &bw, &mut t_mem, SEED);
                mem.step(&mut ctx)
            };
            let rep_clu = {
                let mut ctx = RoundCtx::new(round, &bw, &mut t_clu, SEED);
                clu.step(&mut ctx)
            };
            assert_eq!(
                rep_mem.mean_loss.to_bits(),
                rep_clu.mean_loss.to_bits(),
                "{key}: round {round} loss"
            );
            assert_eq!(
                rep_mem.mean_acc.to_bits(),
                rep_clu.mean_acc.to_bits(),
                "{key}: round {round} acc"
            );
            assert_eq!(
                rep_mem.epochs_advanced, rep_clu.epochs_advanced,
                "{key}: round {round} epochs"
            );
            assert_eq!(
                rep_mem.mean_link_bandwidth, rep_clu.mean_link_bandwidth,
                "{key}: round {round} mean link"
            );
            assert_eq!(
                rep_mem.min_link_bandwidth, rep_clu.min_link_bandwidth,
                "{key}: round {round} min link"
            );
            // comm_time is deliberately NOT compared: the wire prices
            // full framed bytes, the in-memory path prices value bytes.
        }

        // Consensus evaluation and exported checkpoint: bit-equal.
        let acc_mem = mem.evaluate(&val, 200);
        let acc_clu = clu.evaluate(&val, 200);
        assert_eq!(
            acc_mem.to_bits(),
            acc_clu.to_bits(),
            "{key}: final consensus accuracy"
        );
        assert_eq!(
            mem.export_checkpoint().unwrap(),
            clu.export_checkpoint().unwrap(),
            "{key}: checkpoint bytes"
        );

        // Per-worker traffic rows: the Table I value-byte accounting is
        // identical; the wire additionally bills its control plane to
        // the server row, which the in-memory path models as free.
        for r in 0..workers {
            assert_eq!(
                t_mem.worker_sent(r),
                t_clu.worker_sent(r),
                "{key}: worker {r} sent"
            );
            assert_eq!(
                t_mem.worker_recv(r),
                t_clu.worker_recv(r),
                "{key}: worker {r} recv"
            );
        }
        // (For the PS algorithms the in-memory server row already
        // carries download/upload bytes; the wire adds its control
        // plane on top. For everything else it starts from zero.)
        assert!(
            t_clu.server_total() > t_mem.server_total(),
            "{key}: the wire must bill its control plane on top ({} vs {})",
            t_clu.server_total(),
            t_mem.server_total()
        );
        let wire = tap.snapshot();
        assert!(wire.total_bytes > 0, "{key}: nothing crossed the wire");
    }
}
