//! Smoke coverage for the `examples/` directory.
//!
//! `cargo build --examples` (run in CI, see `.github/workflows/ci.yml`)
//! compiles whatever is present — it cannot notice an example being
//! renamed, dropped, or left out of the docs. This test pins the canonical
//! set, so the README table, the CI step, and the directory can't drift
//! apart silently. `examples/quickstart.rs` is the repo's documented entry
//! point; its training flow is additionally executed as the facade crate's
//! doctest on every `cargo test`.

use std::collections::BTreeSet;
use std::path::Path;

/// The five examples the README documents, in `cargo run --example` name
/// form. Update this list and the README table together.
const CANONICAL_EXAMPLES: [&str; 5] = [
    "geo_distributed",
    "non_iid_federated",
    "peer_selection_demo",
    "quickstart",
    "worker_churn",
];

fn examples_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("examples")
}

#[test]
fn examples_directory_matches_canonical_set() {
    let found: BTreeSet<String> = std::fs::read_dir(examples_dir())
        .expect("examples/ directory exists")
        .filter_map(|e| {
            let path = e.unwrap().path();
            (path.extension()? == "rs")
                .then(|| path.file_stem().unwrap().to_string_lossy().into_owned())
        })
        .collect();
    let expected: BTreeSet<String> = CANONICAL_EXAMPLES.iter().map(|s| s.to_string()).collect();
    assert_eq!(
        found, expected,
        "examples/ drifted from the canonical set — update CANONICAL_EXAMPLES and the README table together"
    );
}

#[test]
fn every_example_declares_its_run_command() {
    // Each example's module docs must carry its `cargo run` line, so a
    // reader landing in the file knows how to execute it.
    for name in CANONICAL_EXAMPLES {
        let src = std::fs::read_to_string(examples_dir().join(format!("{name}.rs"))).unwrap();
        assert!(
            src.contains(&format!("--example {name}")),
            "examples/{name}.rs docs don't mention `cargo run ... --example {name}`"
        );
    }
}
