//! Smoke coverage for the `examples/` directory.
//!
//! `cargo build --examples` (run in CI, see `.github/workflows/ci.yml`)
//! compiles whatever is present — it cannot notice an example being
//! renamed, dropped, or left out of the docs. This test pins the canonical
//! set, so the README table, the CI step, and the directory can't drift
//! apart silently. `examples/quickstart.rs` is the repo's documented entry
//! point; its training flow is additionally executed as the facade crate's
//! doctest on every `cargo test`. The `worker_churn` example's scenario
//! flow — churn expressed as [`ScenarioEvent`]s through the public
//! [`Experiment`] driver — is executed here at test scale.

use std::collections::BTreeSet;
use std::path::Path;

use saps::baselines::registry;
use saps::cluster::{cluster_registry, WireTap};
use saps::core::{AlgorithmSpec, Experiment, ScenarioEvent};
use saps::data::SyntheticSpec;
use saps::nn::zoo;

/// The eight examples the README documents, in `cargo run --example`
/// name form. Update this list and the README table together.
const CANONICAL_EXAMPLES: [&str; 8] = [
    "cluster_demo",
    "geo_distributed",
    "non_iid_federated",
    "peer_selection_demo",
    "quickstart",
    "serving_demo",
    "telemetry_demo",
    "worker_churn",
];

fn examples_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("examples")
}

#[test]
fn examples_directory_matches_canonical_set() {
    let found: BTreeSet<String> = std::fs::read_dir(examples_dir())
        .expect("examples/ directory exists")
        .filter_map(|e| {
            let path = e.unwrap().path();
            (path.extension()? == "rs")
                .then(|| path.file_stem().unwrap().to_string_lossy().into_owned())
        })
        .collect();
    let expected: BTreeSet<String> = CANONICAL_EXAMPLES.iter().map(|s| s.to_string()).collect();
    assert_eq!(
        found, expected,
        "examples/ drifted from the canonical set — update CANONICAL_EXAMPLES and the README table together"
    );
}

#[test]
fn every_example_declares_its_run_command() {
    // Each example's module docs must carry its `cargo run` line, so a
    // reader landing in the file knows how to execute it.
    for name in CANONICAL_EXAMPLES {
        let src = std::fs::read_to_string(examples_dir().join(format!("{name}.rs"))).unwrap();
        assert!(
            src.contains(&format!("--example {name}")),
            "examples/{name}.rs docs don't mention `cargo run ... --example {name}`"
        );
    }
}

#[test]
fn worker_churn_example_uses_scenario_events() {
    // The churn example must express churn as driver events, not by
    // reaching into algorithm internals (`set_active` was the old side
    // door).
    let src = std::fs::read_to_string(examples_dir().join("worker_churn.rs")).unwrap();
    assert!(
        src.contains("ScenarioEvent::WorkerLeave") && src.contains("ScenarioEvent::WorkerJoin"),
        "worker_churn.rs must schedule WorkerLeave/WorkerJoin ScenarioEvents"
    );
    assert!(
        !src.contains("set_active"),
        "worker_churn.rs must not call the set_active side door"
    );
}

/// The `cluster_demo` example's flow at test scale: a SAPS experiment
/// driven through the message-passing cluster runtime (loopback
/// transport) with churn mid-run, via the public `Experiment` driver and
/// `cluster_registry`.
#[test]
fn cluster_demo_flow_runs_at_test_scale() {
    let ds = SyntheticSpec::tiny().samples(1_000).generate(21);
    let (train, val) = ds.split(0.2, 0);
    let tap = WireTap::new();
    let hist = Experiment::new(AlgorithmSpec::Saps {
        compression: 6.0,
        tthres: 4,
        bthres: None,
    })
    .train(train)
    .validation(val)
    .workers(8)
    .batch_size(16)
    .seed(21)
    .model(|rng| zoo::mlp(&[16, 20, 4], rng))
    .rounds(12)
    .eval_every(6)
    .eval_samples(200)
    .event(4, ScenarioEvent::WorkerLeave { rank: 7 })
    .event(8, ScenarioEvent::WorkerJoin { rank: 7 })
    .run(&cluster_registry(tap.clone()))
    .expect("cluster flow");
    assert_eq!(hist.points.len(), 12);
    assert!(hist.points.iter().all(|p| p.train_loss.is_finite()));
    let wire = tap.snapshot();
    assert!(wire.data_bytes > 0, "payloads crossed the wire");
    assert!(
        hist.total_server_traffic_mb > 0.0,
        "control plane billed to the server row"
    );
}

/// The `serving_demo` example's flow at test scale: a cluster-driven
/// SAPS run announcing its consensus to a loopback replica fleet every
/// round while requests flow, all through the public facade.
#[test]
fn serving_demo_flow_runs_at_test_scale() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use saps::core::checkpoint;
    use saps::serve::{ReplicaNode, ServeCluster};
    use std::cell::RefCell;
    use std::rc::Rc;

    const DIMS: [usize; 3] = [16, 20, 4];
    const ROUNDS: usize = 5;
    let ds = SyntheticSpec::tiny().samples(600).generate(33);
    let (train, val) = ds.split(0.2, 0);
    let mut rng = StdRng::seed_from_u64(33);
    let boot = checkpoint::encode(&zoo::mlp(&DIMS, &mut rng).flat_params(), 0);
    let replicas: Vec<ReplicaNode> = (0..2)
        .map(|id| {
            let mut rng = StdRng::seed_from_u64(33);
            ReplicaNode::new(id, zoo::mlp(&DIMS, &mut rng), &boot, 8).unwrap()
        })
        .collect();
    let fleet = Rc::new(RefCell::new(ServeCluster::loopback(replicas).unwrap()));
    let hook_fleet = Rc::clone(&fleet);
    Experiment::new(AlgorithmSpec::parse("saps").unwrap().with_compression(8.0))
        .train(train)
        .validation(val)
        .workers(4)
        .batch_size(16)
        .seed(33)
        .model(|rng| zoo::mlp(&DIMS, rng))
        .rounds(ROUNDS)
        .eval_every(ROUNDS)
        .eval_samples(100)
        .after_round(move |trainer, _point| {
            let ckpt = trainer.export_checkpoint().expect("cluster export");
            let mut fleet = hook_fleet.borrow_mut();
            fleet.announce(ckpt).unwrap();
            for client in 0..2 {
                fleet.submit(client, vec![0.1; DIMS[0]]).unwrap();
            }
            fleet.tick().unwrap();
        })
        .run(&cluster_registry(WireTap::new()))
        .expect("train-and-serve flow");
    let mut fleet = Rc::try_unwrap(fleet).ok().expect("sole owner").into_inner();
    fleet.drain_in_flight(16).unwrap();
    let stats = fleet.stats();
    assert_eq!(stats.completed, stats.submitted);
    assert_eq!(stats.completed, 2 * ROUNDS as u64);
    for rep in fleet.replicas() {
        assert_eq!(rep.model_version(), ROUNDS as u64, "every announce landed");
        assert_eq!(rep.rejected_announces(), 0);
    }
}

/// The `worker_churn` example's flow at test scale: the same
/// leave / bandwidth-shift / rejoin schedule, exercised through the
/// public driver against the three algorithm families the example
/// compares (gossip, ring, parameter server).
#[test]
fn worker_churn_scenario_flow_runs_at_test_scale() {
    let n = 8;
    let ds = SyntheticSpec::tiny().samples(1_600).generate(9);
    let (train, val) = ds.split(0.2, 0);
    let specs = [
        AlgorithmSpec::Saps {
            compression: 8.0,
            tthres: 4,
            bthres: None,
        },
        AlgorithmSpec::DPsgd,
        AlgorithmSpec::FedAvg {
            participation: 0.5,
            local_steps: 3,
        },
    ];
    let reg = registry();
    for spec in specs {
        let hist = Experiment::new(spec)
            .train(train.clone())
            .validation(val.clone())
            .workers(n)
            .batch_size(16)
            .lr(0.1)
            .seed(9)
            .model(|rng| zoo::mlp(&[16, 20, 4], rng))
            .rounds(40)
            .eval_every(10)
            .eval_samples(200)
            .event(10, ScenarioEvent::WorkerLeave { rank: 6 })
            .event(10, ScenarioEvent::WorkerLeave { rank: 7 })
            .event(20, ScenarioEvent::BandwidthShift { scale: 0.5 })
            .event(30, ScenarioEvent::WorkerJoin { rank: 6 })
            .event(30, ScenarioEvent::WorkerJoin { rank: 7 })
            .run(&reg)
            .unwrap_or_else(|e| panic!("{}: churn scenario failed: {e}", spec.label()));
        assert_eq!(hist.points.len(), 40, "{}", hist.algorithm);
        assert!(
            hist.points.iter().all(|p| p.train_loss.is_finite()),
            "{}",
            hist.algorithm
        );
        assert!(hist.final_acc > 0.25, "{} below chance", hist.algorithm);
    }
}
