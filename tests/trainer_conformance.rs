//! Cross-algorithm conformance: every algorithm in the registry honours
//! the shared [`Trainer`] contract when driven through the public
//! [`Experiment`] API and through raw [`RoundCtx`] stepping.

use rand::rngs::StdRng;
use rand::SeedableRng;
use saps::baselines::registry;
use saps::core::{
    AlgorithmSpec, BuildCtx, Experiment, ParallelismPolicy, PartitionStrategy, RoundCtx,
    ScenarioEvent, TimeModel,
};
use saps::data::{Dataset, SyntheticSpec};
use saps::netsim::{BandwidthMatrix, TrafficAccountant};
use saps::nn::zoo;
use std::sync::Arc;

const N: usize = 6;
const ROUNDS: usize = 5;

fn dataset() -> (Dataset, Dataset) {
    SyntheticSpec::tiny()
        .samples(1_200)
        .generate(2)
        .split(0.25, 0)
}

/// Test-scale hyper-parameters for all eight algorithms (the paper's
/// compression settings assume million-parameter models).
fn all_specs() -> Vec<AlgorithmSpec> {
    vec![
        AlgorithmSpec::Saps {
            compression: 8.0,
            tthres: 4,
            bthres: None,
        },
        AlgorithmSpec::Psgd,
        AlgorithmSpec::TopK { compression: 10.0 },
        AlgorithmSpec::FedAvg {
            participation: 0.5,
            local_steps: 3,
        },
        AlgorithmSpec::SFedAvg {
            participation: 0.5,
            local_steps: 3,
            compression: 10.0,
        },
        AlgorithmSpec::DPsgd,
        AlgorithmSpec::DcdPsgd { compression: 4.0 },
        AlgorithmSpec::RandomChoose { compression: 8.0 },
    ]
}

const SERVERFUL: [&str; 2] = ["FedAvg", "S-FedAvg"];

/// Drive all 8 algorithms through the `Experiment` driver and assert the
/// invariants every `RunHistory` must satisfy.
#[test]
fn all_algorithms_satisfy_history_invariants() {
    let (train, val) = dataset();
    let reg = registry();
    let mut seen = Vec::new();
    for spec in all_specs() {
        let hist = Experiment::new(spec)
            .train(train.clone())
            .validation(val.clone())
            .workers(N)
            .batch_size(16)
            .lr(0.1)
            .seed(4)
            .model(|rng| zoo::mlp(&[16, 20, 4], rng))
            .rounds(ROUNDS)
            .eval_every(2)
            .eval_samples(200)
            .run(&reg)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.label()));
        assert_eq!(hist.algorithm, spec.label());
        assert_eq!(hist.points.len(), ROUNDS, "{}", hist.algorithm);

        // Finite loss and accuracy in range at every point.
        for p in &hist.points {
            assert!(p.train_loss.is_finite(), "{} loss", hist.algorithm);
            assert!(
                (0.0..=1.0).contains(&p.val_acc),
                "{} val_acc {}",
                hist.algorithm,
                p.val_acc
            );
            assert_eq!(p.evaluated, (p.round + 1) % 2 == 0 || p.round + 1 == ROUNDS);
        }
        // Monotone epochs / traffic / time.
        for w in hist.points.windows(2) {
            assert!(w[1].epoch > w[0].epoch, "{} epochs", hist.algorithm);
            assert!(
                w[1].worker_traffic_mb >= w[0].worker_traffic_mb,
                "{} traffic",
                hist.algorithm
            );
            assert!(
                w[1].comm_time_s >= w[0].comm_time_s,
                "{} time",
                hist.algorithm
            );
        }
        assert!(hist.total_worker_traffic_mb > 0.0, "{}", hist.algorithm);
        assert!(hist.total_comm_time_s > 0.0, "{}", hist.algorithm);

        // Serverless algorithms charge zero server traffic.
        if SERVERFUL.contains(&hist.algorithm.as_str()) {
            assert!(
                hist.total_server_traffic_mb > 0.0,
                "{} must bill its server",
                hist.algorithm
            );
        } else {
            assert_eq!(
                hist.total_server_traffic_mb, 0.0,
                "{} billed a server",
                hist.algorithm
            );
        }
        seen.push(hist.algorithm);
    }
    assert_eq!(seen.len(), 8);
}

/// Drive all 8 trainers directly through `RoundCtx` stepping (the layer
/// below `Experiment`) and assert the per-trainer contract: stable
/// `worker_count`/`model_len`, sane per-round reports.
#[test]
fn all_trainers_keep_shape_stable_under_stepping() {
    let (train, val) = dataset();
    let reg = registry();
    let bw = BandwidthMatrix::constant(N, 1.0);
    for spec in all_specs() {
        let partitions = PartitionStrategy::Iid.apply(&train, N, 4);
        let mut trainer = reg
            .build(
                &spec,
                BuildCtx {
                    partitions,
                    bw: &bw,
                    batch_size: 16,
                    lr: 0.1,
                    seed: 4,
                    factory: Arc::new(|rng| zoo::mlp(&[16, 20, 4], rng)),
                },
            )
            .unwrap_or_else(|e| panic!("{}: {e}", spec.label()));
        let (n0, m0) = (trainer.worker_count(), trainer.model_len());
        assert_eq!(n0, N);
        assert!(m0 > 0);
        let mut traffic = TrafficAccountant::new(N);
        for round in 0..ROUNDS {
            let rep = {
                let mut ctx = RoundCtx::new(round, &bw, &mut traffic, 4);
                trainer.step(&mut ctx)
            };
            assert!(rep.mean_loss.is_finite(), "{} loss", spec.label());
            assert!(
                (0.0..=1.0).contains(&rep.mean_acc),
                "{} acc {}",
                spec.label(),
                rep.mean_acc
            );
            assert!(rep.epochs_advanced > 0.0, "{}", spec.label());
            assert!(
                rep.comm_time_s.is_finite() && rep.comm_time_s >= 0.0,
                "{}",
                spec.label()
            );
            // Shape must not drift across rounds.
            assert_eq!(trainer.worker_count(), n0, "{}", spec.label());
            assert_eq!(trainer.model_len(), m0, "{}", spec.label());
        }
        assert_eq!(traffic.rounds().len(), ROUNDS, "{}", spec.label());
        let acc = trainer.evaluate(&val, 200);
        assert!((0.0..=1.0).contains(&acc), "{}", spec.label());
    }
}

/// The round engine's determinism contract: for every algorithm, a run
/// whose compute phase fans out over 4 threads produces the
/// bit-identical `RunHistory` of a sequential run — same losses, same
/// accuracies, same traffic, same simulated communication time — even
/// while churn events reshape the fleet mid-run. This is what makes
/// `ParallelismPolicy::Auto` safe as the default.
#[test]
fn parallel_runs_are_bit_identical_to_sequential_for_all_algorithms() {
    let (train, val) = dataset();
    let reg = registry();
    for spec in all_specs() {
        let run = |policy: ParallelismPolicy| {
            Experiment::new(spec)
                .train(train.clone())
                .validation(val.clone())
                .workers(N)
                .batch_size(16)
                .lr(0.1)
                .seed(4)
                .model(|rng| zoo::mlp(&[16, 20, 4], rng))
                .rounds(6)
                .eval_every(2)
                .eval_samples(200)
                // Churn mid-run: a worker leaves and later rejoins, so
                // the fan-out also has to be deterministic while the
                // active set shrinks and grows.
                .event(2, ScenarioEvent::WorkerLeave { rank: N - 1 })
                .event(4, ScenarioEvent::WorkerJoin { rank: N - 1 })
                .parallelism(policy)
                .run(&reg)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.label()))
        };
        let seq = run(ParallelismPolicy::Sequential);
        let par = run(ParallelismPolicy::Threads(4));
        assert_eq!(seq.points, par.points, "{} diverged", spec.label());
        assert_eq!(seq.final_acc, par.final_acc, "{}", spec.label());
        assert_eq!(
            seq.total_worker_traffic_mb,
            par.total_worker_traffic_mb,
            "{}",
            spec.label()
        );
        assert_eq!(
            seq.total_comm_time_s,
            par.total_comm_time_s,
            "{}",
            spec.label()
        );
        assert_eq!(
            seq.total_server_traffic_mb,
            par.total_server_traffic_mb,
            "{}",
            spec.label()
        );
    }
}

/// The time model is accounting, never dynamics: for every algorithm, a
/// run priced by the discrete-event simulator (with latency, contention,
/// modeled compute and a mid-run straggler) produces the bit-identical
/// *training state* — losses, accuracies, evaluated checkpoints, final
/// consensus accuracy, traffic — of the analytic run. Only the
/// time/idle columns may (and, with positive latency, must somewhere)
/// differ. This is what makes `Experiment::time_model` safe to flip on
/// any existing experiment.
#[test]
fn time_model_never_changes_training_state_for_any_algorithm() {
    let (train, val) = dataset();
    let reg = registry();
    let mut rng = StdRng::seed_from_u64(11);
    let bw = BandwidthMatrix::uniform_random(N, 5.0, &mut rng);
    for spec in all_specs() {
        let run = |model: TimeModel| {
            Experiment::new(spec)
                .train(train.clone())
                .validation(val.clone())
                .workers(N)
                .batch_size(16)
                .lr(0.1)
                .seed(4)
                .bandwidth_matrix(bw.clone())
                .model(|rng| zoo::mlp(&[16, 20, 4], rng))
                .rounds(6)
                .eval_every(2)
                .eval_samples(200)
                .compute_time(0.2)
                .event(
                    2,
                    ScenarioEvent::Straggler {
                        rank: 1,
                        slowdown: 5.0,
                    },
                )
                .time_model(model)
                .run(&reg)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.label()))
        };
        let analytic = run(TimeModel::Analytic);
        let des = run(TimeModel::EventDriven {
            latency: 0.01,
            contention: true,
        });
        assert_eq!(analytic.points.len(), des.points.len(), "{}", spec.label());
        let mut any_time_diff = false;
        for (a, d) in analytic.points.iter().zip(&des.points) {
            // Training state: bit-identical.
            assert_eq!(a.train_loss, d.train_loss, "{} loss", spec.label());
            assert_eq!(a.val_acc, d.val_acc, "{} val_acc", spec.label());
            assert_eq!(a.evaluated, d.evaluated, "{} cadence", spec.label());
            assert_eq!(a.epoch, d.epoch, "{} epochs", spec.label());
            assert_eq!(
                a.worker_traffic_mb,
                d.worker_traffic_mb,
                "{} traffic",
                spec.label()
            );
            any_time_diff |= a.comm_time_s != d.comm_time_s;
        }
        assert_eq!(analytic.final_acc, des.final_acc, "{}", spec.label());
        assert_eq!(
            analytic.total_worker_traffic_mb,
            des.total_worker_traffic_mb,
            "{}",
            spec.label()
        );
        assert_eq!(
            analytic.total_server_traffic_mb,
            des.total_server_traffic_mb,
            "{}",
            spec.label()
        );
        assert!(
            any_time_diff,
            "{}: 10 ms latency left every round's comm time unchanged",
            spec.label()
        );
        // Both runs modeled the same compute phase: 0.2 s/round nominal,
        // the rank-1 straggler gating rounds 2.. at 1.0 s.
        assert_eq!(
            analytic.total_compute_time_s,
            des.total_compute_time_s,
            "{}",
            spec.label()
        );
        assert!(
            (analytic.total_compute_time_s - (2.0 * 0.2 + 4.0 * 1.0)).abs() < 1e-9,
            "{}: compute critical path {}",
            spec.label(),
            analytic.total_compute_time_s
        );
    }
}

/// Churn is part of the shared contract now: every algorithm accepts a
/// leave + rejoin cycle through `Trainer::set_worker_active` and keeps
/// producing finite rounds (the inactive worker moving no bytes).
#[test]
fn all_trainers_accept_basic_churn() {
    let (train, _val) = dataset();
    let reg = registry();
    let bw = BandwidthMatrix::constant(N, 1.0);
    for spec in all_specs() {
        let partitions = PartitionStrategy::Iid.apply(&train, N, 4);
        let mut trainer = reg
            .build(
                &spec,
                BuildCtx {
                    partitions,
                    bw: &bw,
                    batch_size: 16,
                    lr: 0.1,
                    seed: 4,
                    factory: Arc::new(|rng| zoo::mlp(&[16, 20, 4], rng)),
                },
            )
            .unwrap();
        let mut traffic = TrafficAccountant::new(N);
        trainer.round(&mut traffic, &bw);
        trainer
            .set_worker_active(N - 1, false)
            .unwrap_or_else(|e| panic!("{} rejects churn: {e}", spec.label()));
        let before = traffic.worker_total(N - 1);
        for _ in 0..3 {
            let rep = trainer.round(&mut traffic, &bw);
            assert!(rep.mean_loss.is_finite(), "{}", spec.label());
        }
        assert_eq!(
            traffic.worker_total(N - 1),
            before,
            "{} moved bytes for an inactive worker",
            spec.label()
        );
        trainer.set_worker_active(N - 1, true).unwrap();
        let rep = trainer.round(&mut traffic, &bw);
        assert!(rep.mean_loss.is_finite(), "{}", spec.label());
    }
}
