//! Robustness integration tests: time-varying bandwidth, link failures
//! and worker churn — the "R." column of Table I, exercised end to end
//! through the event-driven [`Experiment`] driver.

use saps::baselines::registry;
use saps::core::{AlgorithmSpec, BandwidthModel, Experiment, RunHistory, ScenarioEvent, Trainer};
use saps::data::{Dataset, SyntheticSpec};
use saps::netsim::BandwidthMatrix;
use saps::nn::zoo;

const N: usize = 8;

fn dataset() -> (Dataset, Dataset) {
    SyntheticSpec::tiny()
        .samples(2_000)
        .generate(1)
        .split(0.2, 0)
}

fn saps_spec() -> AlgorithmSpec {
    AlgorithmSpec::Saps {
        compression: 8.0,
        tthres: 6,
        bthres: None,
    }
}

fn experiment(spec: AlgorithmSpec, train: &Dataset, val: &Dataset) -> Experiment {
    Experiment::new(spec)
        .train(train.clone())
        .validation(val.clone())
        .workers(N)
        .batch_size(16)
        .lr(0.1)
        .seed(11)
        .model(|rng| zoo::mlp(&[16, 24, 4], rng))
        .eval_samples(300)
}

#[test]
fn training_survives_bandwidth_drift() {
    let (train, val) = dataset();
    // The coordinator refreshes its measurements every 25 rounds, as the
    // paper's footnote describes ("regularly reported").
    let hist = experiment(saps_spec(), &train, &val)
        .bandwidth(BandwidthModel::Drifting {
            baseline: BandwidthMatrix::constant(N, 2.0),
            volatility: 0.3,
            range: 8.0,
            seed: 5,
            refresh_every: 25,
        })
        .rounds(150)
        .eval_every(30)
        .run(&registry())
        .unwrap();
    for p in &hist.points {
        assert!(p.train_loss.is_finite());
        assert!(p.comm_time_s.is_finite());
    }
    assert!(
        hist.final_acc > 0.5,
        "accuracy under drift {}",
        hist.final_acc
    );
}

#[test]
fn training_survives_link_failures() {
    let (train, val) = dataset();
    // Cut all of worker 7's links except one lifeline mid-run; SAPS must
    // keep converging. The driver refreshes the trainer's bandwidth view
    // after every LinkChange, so peer selection steers around dead links.
    let mut exp = experiment(saps_spec(), &train, &val)
        .bandwidth_matrix(BandwidthMatrix::constant(N, 2.0))
        .rounds(120)
        .eval_every(30);
    for peer in 0..6 {
        exp = exp.event(
            60,
            ScenarioEvent::LinkChange {
                a: 7,
                b: peer,
                mbps: 0.0,
            },
        );
    }
    let hist = exp.run(&registry()).unwrap();
    for p in &hist.points {
        // The round may be slow but never infinitely so: peer selection
        // avoids dead links (they are absent from the PC graph after
        // refresh).
        assert!(
            p.comm_time_s.is_finite(),
            "round scheduled over a dead link"
        );
    }
    assert!(
        hist.final_acc > 0.5,
        "accuracy after link failures {}",
        hist.final_acc
    );
}

#[test]
fn churn_with_drift_combined() {
    let (train, val) = dataset();
    let hist = experiment(saps_spec(), &train, &val)
        .bandwidth(BandwidthModel::Drifting {
            baseline: BandwidthMatrix::constant(N, 2.0),
            volatility: 0.2,
            range: 4.0,
            seed: 7,
            refresh_every: 20,
        })
        .rounds(140)
        .eval_every(35)
        .event(40, ScenarioEvent::WorkerLeave { rank: 0 })
        .event(40, ScenarioEvent::WorkerLeave { rank: 3 })
        .event(80, ScenarioEvent::WorkerJoin { rank: 0 })
        .event(80, ScenarioEvent::WorkerJoin { rank: 3 })
        .run(&registry())
        .unwrap();
    assert!(
        hist.final_acc > 0.5,
        "accuracy after churn + drift {}",
        hist.final_acc
    );
}

/// The acceptance scenario: one churn + bandwidth-shift schedule, reused
/// verbatim against SAPS-PSGD, D-PSGD and FedAvg. The driver applies the
/// identical events to each; every run completes with finite metrics,
/// full length, and (per algorithm) bit-identical repeats.
#[test]
fn one_scenario_runs_identically_across_algorithms() {
    let (train, val) = dataset();
    let reg = registry();
    let scenario = |spec: AlgorithmSpec| {
        experiment(spec, &train, &val)
            .rounds(60)
            .eval_every(15)
            .event(15, ScenarioEvent::WorkerLeave { rank: 6 })
            .event(15, ScenarioEvent::WorkerLeave { rank: 7 })
            .event(25, ScenarioEvent::BandwidthShift { scale: 0.25 })
            .event(40, ScenarioEvent::WorkerJoin { rank: 6 })
            .event(40, ScenarioEvent::WorkerJoin { rank: 7 })
            .event(40, ScenarioEvent::BandwidthShift { scale: 4.0 })
    };
    let specs = [
        saps_spec(),
        AlgorithmSpec::DPsgd,
        AlgorithmSpec::FedAvg {
            participation: 0.5,
            local_steps: 5,
        },
    ];
    let check = |h: &RunHistory| {
        assert_eq!(h.points.len(), 60, "{} truncated", h.algorithm);
        for p in &h.points {
            assert!(
                p.train_loss.is_finite(),
                "{} round {}",
                h.algorithm,
                p.round
            );
            assert!(
                p.comm_time_s.is_finite(),
                "{} round {}",
                h.algorithm,
                p.round
            );
        }
        assert!(h.final_acc > 0.25, "{} below chance", h.algorithm);
    };
    for spec in specs {
        let a = scenario(spec).run(&reg).unwrap();
        let b = scenario(spec).run(&reg).unwrap();
        check(&a);
        assert_eq!(a.points, b.points, "{} not deterministic", a.algorithm);
        assert_eq!(a.final_acc, b.final_acc);
    }
}

/// The congestion window is visible in the measured round times: the
/// same rounds cost ~4x more communication time while the shift is in
/// effect.
#[test]
fn bandwidth_shift_is_reflected_in_round_times() {
    let (train, val) = dataset();
    let hist = experiment(saps_spec(), &train, &val)
        .rounds(30)
        .eval_every(30)
        .event(10, ScenarioEvent::BandwidthShift { scale: 0.25 })
        .event(20, ScenarioEvent::BandwidthShift { scale: 4.0 })
        .run(&registry())
        .unwrap();
    let round_time = |p0: usize, p1: usize| {
        (hist.points[p1].comm_time_s - hist.points[p0].comm_time_s) / (p1 - p0) as f64
    };
    let before = round_time(0, 9);
    let during = round_time(10, 19);
    let after = round_time(20, 29);
    assert!(
        during > before * 3.0,
        "congestion invisible: {before:.4} -> {during:.4}"
    );
    assert!(
        after < during / 3.0,
        "recovery invisible: {during:.4} -> {after:.4}"
    );
}

#[test]
fn checkpoint_roundtrip_through_training() {
    use saps::core::checkpoint;
    use saps::core::{SapsConfig, SapsPsgd};
    use saps::netsim::TrafficAccountant;
    let n = 4;
    let ds = SyntheticSpec::tiny().samples(2_000).generate(1);
    let (train, val) = ds.split(0.2, 0);
    let bw = BandwidthMatrix::constant(n, 2.0);
    let cfg = SapsConfig {
        workers: n,
        compression: 8.0,
        lr: 0.1,
        batch_size: 16,
        tthres: 6,
        seed: 11,
        ..SapsConfig::default()
    };
    let mk = || SapsPsgd::new(cfg.clone(), &train, &bw, |rng| zoo::mlp(&[16, 24, 4], rng)).unwrap();
    let mut algo = mk();
    let mut traffic = TrafficAccountant::new(n);
    for _ in 0..50 {
        algo.round(&mut traffic, &bw);
    }
    let acc_before = algo.evaluate(&val, 300);
    // Coordinator collects the final model (Algorithm 1 line 8) and
    // checkpoints it.
    let final_model = algo.average_model();
    let blob = checkpoint::encode(&final_model, 50);
    let (restored, round) = checkpoint::decode(blob).unwrap();
    assert_eq!(round, 50);
    assert_eq!(restored, final_model);
    // A fresh fleet restored from the checkpoint evaluates identically.
    let mut fresh = mk();
    for r in 0..n {
        fresh.set_worker_model(r, &restored);
    }
    let acc_after = fresh.evaluate(&val, 300);
    assert_eq!(acc_before, acc_after);
}
