//! Robustness integration tests: time-varying bandwidth, link failures
//! and worker churn — the "R." column of Table I, exercised end to end.

use saps::core::{SapsConfig, SapsPsgd, Trainer};
use saps::data::SyntheticSpec;
use saps::netsim::dynamics::BandwidthProcess;
use saps::netsim::{BandwidthMatrix, TrafficAccountant};
use saps::nn::zoo;

fn setup(n: usize) -> (SapsPsgd, saps::data::Dataset, BandwidthMatrix) {
    let ds = SyntheticSpec::tiny().samples(2_000).generate(1);
    let (train, val) = ds.split(0.2, 0);
    let bw = BandwidthMatrix::constant(n, 2.0);
    let cfg = SapsConfig {
        workers: n,
        compression: 8.0,
        lr: 0.1,
        batch_size: 16,
        tthres: 6,
        seed: 11,
        ..SapsConfig::default()
    };
    let algo = SapsPsgd::new(cfg, &train, &bw, |rng| zoo::mlp(&[16, 24, 4], rng));
    (algo, val, bw)
}

#[test]
fn training_survives_bandwidth_drift() {
    let n = 8;
    let (mut algo, val, bw) = setup(n);
    let mut process = BandwidthProcess::new(bw, 0.3, 8.0, 5);
    let mut traffic = TrafficAccountant::new(n);
    for round in 0..150 {
        let current = process.step().clone();
        // The coordinator refreshes its measurements every 25 rounds, as
        // the paper's footnote describes ("regularly reported").
        if round % 25 == 0 {
            algo.refresh_bandwidth(&current);
        }
        let rep = algo.round(&mut traffic, &current);
        assert!(rep.mean_loss.is_finite());
        assert!(rep.comm_time_s.is_finite());
    }
    let acc = algo.evaluate(&val, 300);
    assert!(acc > 0.5, "accuracy under drift {acc}");
}

#[test]
fn training_survives_link_failures() {
    let n = 8;
    let (mut algo, val, bw) = setup(n);
    let mut process = BandwidthProcess::new(bw, 0.0, 1.0, 6);
    let mut traffic = TrafficAccountant::new(n);
    // Cut all of worker 7's links except one lifeline mid-run; SAPS must
    // keep converging because any matching that would use a dead link
    // costs infinite time only if chosen — refresh steers around it.
    for round in 0..60 {
        algo.round(&mut traffic, process.current());
        let _ = round;
    }
    for peer in 0..6 {
        process.cut_link(7, peer);
    }
    algo.refresh_bandwidth(process.current());
    for _ in 0..60 {
        let rep = algo.round(&mut traffic, process.current());
        // The round may be slow but never infinitely so: peer selection
        // avoids dead links (they are absent from the PC graph after
        // refresh).
        assert!(
            rep.comm_time_s.is_finite(),
            "round scheduled over a dead link"
        );
    }
    let acc = algo.evaluate(&val, 300);
    assert!(acc > 0.5, "accuracy after link failures {acc}");
}

#[test]
fn churn_with_drift_combined() {
    let n = 8;
    let (mut algo, val, bw) = setup(n);
    let mut process = BandwidthProcess::new(bw, 0.2, 4.0, 7);
    let mut traffic = TrafficAccountant::new(n);
    for _ in 0..40 {
        algo.round(&mut traffic, process.step());
    }
    // Two workers leave...
    algo.set_active(0, false);
    algo.set_active(3, false);
    for _ in 0..40 {
        algo.round(&mut traffic, process.step());
    }
    assert_eq!(algo.active_ranks().len(), 6);
    // ...and rejoin under drifted bandwidths.
    algo.set_active(0, true);
    algo.set_active(3, true);
    algo.refresh_bandwidth(process.current());
    for _ in 0..60 {
        algo.round(&mut traffic, process.step());
    }
    let acc = algo.evaluate(&val, 300);
    assert!(acc > 0.5, "accuracy after churn + drift {acc}");
    // Returning workers were re-absorbed: consensus distance is modest.
    assert!(algo.consensus_distance_sq() < 100.0);
}

#[test]
fn checkpoint_roundtrip_through_training() {
    use saps::core::checkpoint;
    let n = 4;
    let (mut algo, val, bw) = setup(n);
    let mut traffic = TrafficAccountant::new(n);
    for _ in 0..50 {
        algo.round(&mut traffic, &bw);
    }
    let acc_before = algo.evaluate(&val, 300);
    // Coordinator collects the final model (Algorithm 1 line 8) and
    // checkpoints it.
    let final_model = algo.average_model();
    let blob = checkpoint::encode(&final_model, 50);
    let (restored, round) = checkpoint::decode(blob).unwrap();
    assert_eq!(round, 50);
    assert_eq!(restored, final_model);
    // A fresh fleet restored from the checkpoint evaluates identically.
    let (mut fresh, _, _) = setup(n);
    for r in 0..n {
        fresh.set_worker_model(r, &restored);
    }
    let acc_after = fresh.evaluate(&val, 300);
    assert_eq!(acc_before, acc_after);
}
