//! Golden traces for the packet-mode scenario zoo.
//!
//! Three adversarial scenarios run under the packet-level
//! [`TimeModel::packet`] and their per-round trajectories are pinned
//! against committed CSVs in `tests/golden/`:
//!
//! * **partition-heal** — the fleet splits into two islands at round 3
//!   and re-merges at round 8 (`zoo::partition_heal`);
//! * **day-night** — diurnal bandwidth cycles over the paper's Fig. 1
//!   14-city matrix (`zoo::day_night` over `citydata`);
//! * **byzantine-quarantine** — a worker's payloads are corrupted in
//!   flight from round 3 on; the cluster trainer quarantines it and
//!   replays, and the trace records the world after recovery.
//!
//! Regenerate intentionally changed traces with:
//!
//! ```sh
//! SAPS_GOLDEN_REGEN=1 cargo test --test golden_packet
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use saps::baselines::registry;
use saps::cluster::{
    Addr, ClusterTrainer, FaultPlan, FaultScope, FaultyTransport, LoopbackTransport, WireTap,
};
use saps::core::{
    zoo as scenario_zoo, AlgorithmSpec, Experiment, RoundCtx, SapsConfig, TimeModel, Trainer,
};
use saps::data::{partition, Dataset, SyntheticSpec};
use saps::netsim::{citydata, BandwidthMatrix, PacketConfig, TrafficAccountant};
use saps::nn::zoo;
use saps::tensor::rng::{derive_seed, streams};
use std::fmt::Write as _;
use std::path::PathBuf;

const ABS_TOL: f64 = 5e-6;
const REL_TOL: f64 = 1e-4;
const SEED: u64 = 4;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn dataset() -> (Dataset, Dataset) {
    SyntheticSpec::tiny()
        .samples(1_200)
        .generate(2)
        .split(0.25, 0)
}

fn saps_spec() -> AlgorithmSpec {
    AlgorithmSpec::Saps {
        compression: 8.0,
        tthres: 4,
        bthres: None,
    }
}

fn packet_model() -> TimeModel {
    TimeModel::packet(
        PacketConfig::ideal()
            .with_rtt(0.02)
            .with_loss(0.02)
            .with_seed(5),
    )
}

/// Renders an [`Experiment`] history in the shared golden CSV format.
fn render_history(points: &[saps::core::HistoryPoint]) -> String {
    let mut out = String::from("round,train_loss,worker_traffic_mb,comm_time_s\n");
    for p in points {
        let _ = writeln!(
            out,
            "{},{:.6},{:.6},{:.6}",
            p.round + 1,
            p.train_loss,
            p.worker_traffic_mb,
            p.comm_time_s
        );
    }
    out
}

/// Cell 1: a partition across the fleet that heals five rounds later,
/// priced by the packet model.
fn render_partition_heal() -> String {
    const WORKERS: usize = 6;
    let (train, val) = dataset();
    let mut rng = StdRng::seed_from_u64(9);
    let bw = BandwidthMatrix::uniform_random(WORKERS, 5.0, &mut rng);
    let events = scenario_zoo::partition_heal(&bw, &[0, 1], 3, 8);
    let hist = Experiment::new(saps_spec())
        .train(train)
        .validation(val)
        .workers(WORKERS)
        .batch_size(16)
        .lr(0.1)
        .seed(SEED)
        .bandwidth_matrix(bw)
        .model(|rng| zoo::mlp(&[16, 20, 4], rng))
        .rounds(12)
        .eval_every(4)
        .eval_samples(200)
        .events(events)
        .time_model(packet_model())
        .run(&registry())
        .expect("partition-heal workload must run");
    render_history(&hist.points)
}

/// Cell 2: day/night bandwidth cycles over the paper's Fig. 1 matrix,
/// priced by the packet model.
fn render_day_night() -> String {
    let bw = citydata::fig1_bandwidth();
    let workers = bw.len();
    let (train, val) = dataset();
    let events = scenario_zoo::day_night(2, 6, 2, 0.25);
    let hist = Experiment::new(saps_spec())
        .train(train)
        .validation(val)
        .workers(workers)
        .batch_size(16)
        .lr(0.1)
        .seed(SEED)
        .bandwidth_matrix(bw)
        .model(|rng| zoo::mlp(&[16, 20, 4], rng))
        .rounds(12)
        .eval_every(4)
        .eval_samples(200)
        .events(events)
        .time_model(packet_model())
        .run(&registry())
        .expect("day-night workload must run");
    render_history(&hist.points)
}

/// Cell 3: a byzantine worker (corrupt payloads from round 3 on) is
/// quarantined mid-round; the trace records the recovered run. Driven
/// by hand so the fault plan can flip mid-experiment; the columns keep
/// the shared format, with `worker_traffic_mb` the busiest worker's
/// cumulative sent bytes and `comm_time_s` the round's packet-priced
/// transfer time.
fn render_byzantine_quarantine() -> String {
    const WORKERS: usize = 4;
    const ROUNDS: usize = 10;
    const ATTACK_ROUND: usize = 3;
    const EVIL_RANK: u32 = 3;

    let (train, _) = dataset();
    let parts = partition::iid(&train, WORKERS, derive_seed(SEED, 0, streams::DATA));
    let cfg = SapsConfig {
        workers: WORKERS,
        compression: 8.0,
        lr: 0.1,
        batch_size: 16,
        bthres: None,
        tthres: 4,
        seed: SEED,
        shard_size: None,
    };
    let mut rng = StdRng::seed_from_u64(9);
    let bw = BandwidthMatrix::uniform_random(WORKERS, 5.0, &mut rng);
    let tap = WireTap::new();
    let transport = FaultyTransport::new(LoopbackTransport::new(tap.clone()), FaultPlan::none(), 7);
    let handle = transport.plan_handle();
    let mut clu = ClusterTrainer::with_transport(
        cfg,
        parts,
        &bw,
        |rng| zoo::mlp(&[16, 20, 4], rng),
        transport,
        tap,
    )
    .expect("byzantine workload must build");

    let mut traffic = TrafficAccountant::new(WORKERS);
    let mut out = String::from("round,train_loss,worker_traffic_mb,comm_time_s\n");
    for round in 0..ROUNDS {
        if round == ATTACK_ROUND {
            handle.set(
                FaultPlan::none()
                    .with_corrupt(1.0)
                    .scoped(FaultScope::PayloadsFrom(Addr::Worker(EVIL_RANK))),
            );
        }
        let report = {
            let mut ctx =
                RoundCtx::new(round, &bw, &mut traffic, SEED).with_time_model(packet_model());
            Trainer::step(&mut clu, &mut ctx)
        };
        let busiest_mb = (0..WORKERS)
            .map(|r| traffic.worker_sent(r))
            .max()
            .unwrap_or(0) as f64
            / 1e6;
        let _ = writeln!(
            out,
            "{},{:.6},{:.6},{:.6}",
            round + 1,
            report.mean_loss,
            busiest_mb,
            report.comm_time_s
        );
    }
    assert_eq!(
        clu.quarantined(),
        vec![EVIL_RANK],
        "the byzantine golden run must actually quarantine its attacker"
    );
    out
}

fn parse(text: &str, path: &str) -> Vec<(u32, f64, f64, f64)> {
    text.lines()
        .skip(1)
        .filter(|l| !l.trim().is_empty())
        .map(|line| {
            let mut it = line.split(',');
            let mut next = || -> f64 {
                it.next()
                    .unwrap_or_else(|| panic!("{path}: short row {line:?}"))
                    .trim()
                    .parse()
                    .unwrap_or_else(|e| panic!("{path}: bad number in {line:?}: {e}"))
            };
            (next() as u32, next(), next(), next())
        })
        .collect()
}

fn drifted(golden: f64, got: f64) -> bool {
    (golden - got).abs() > ABS_TOL + REL_TOL * golden.abs()
}

#[test]
fn packet_scenario_traces_are_stable() {
    let dir = golden_dir();
    let regen = std::env::var("SAPS_GOLDEN_REGEN").is_ok_and(|v| v == "1");
    if regen {
        std::fs::create_dir_all(&dir).expect("create tests/golden");
    }
    type Cell = (&'static str, fn() -> String);
    let cells: Vec<Cell> = vec![
        ("packet_partition_heal.csv", render_partition_heal),
        ("packet_day_night.csv", render_day_night),
        (
            "packet_byzantine_quarantine.csv",
            render_byzantine_quarantine,
        ),
    ];
    let mut diffs: Vec<String> = Vec::new();
    for (name, render) in cells {
        let path = dir.join(name);
        let fresh = render();
        if regen {
            std::fs::write(&path, &fresh).unwrap_or_else(|e| panic!("write {name}: {e}"));
            eprintln!("regenerated {name}");
            continue;
        }
        let golden_text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden trace {name} ({e}); regenerate with \
                 `SAPS_GOLDEN_REGEN=1 cargo test --test golden_packet`"
            )
        });
        let golden = parse(&golden_text, name);
        let got = parse(&fresh, name);
        if golden.len() != got.len() {
            diffs.push(format!(
                "{name}: {} golden rounds vs {} fresh rounds",
                golden.len(),
                got.len()
            ));
            continue;
        }
        for (g, f) in golden.iter().zip(&got) {
            let fields = [
                ("train_loss", g.1, f.1),
                ("worker_traffic_mb", g.2, f.2),
                ("comm_time_s", g.3, f.3),
            ];
            for (field, gv, fv) in fields {
                if drifted(gv, fv) {
                    diffs.push(format!(
                        "{name} round {}: {field} golden={gv:.6} got={fv:.6} (Δ={:+.2e})",
                        g.0,
                        fv - gv
                    ));
                }
            }
        }
    }
    assert!(
        diffs.is_empty(),
        "packet scenario traces drifted in {} place(s) — if intentional, regenerate with \
         `SAPS_GOLDEN_REGEN=1 cargo test --test golden_packet` and commit the diff:\n  {}",
        diffs.len(),
        diffs.join("\n  ")
    );
}

/// The partition must actually bite: while split, no cross-island link
/// carries traffic, and after healing cross-island pairs reappear.
#[test]
fn partition_rounds_never_price_cross_island_links() {
    const WORKERS: usize = 6;
    let (train, val) = dataset();
    let mut rng = StdRng::seed_from_u64(9);
    let bw = BandwidthMatrix::uniform_random(WORKERS, 5.0, &mut rng);
    let run = |events: Vec<saps::core::ScheduledEvent>| {
        Experiment::new(saps_spec())
            .train(train.clone())
            .validation(val.clone())
            .workers(WORKERS)
            .batch_size(16)
            .lr(0.1)
            .seed(SEED)
            .bandwidth_matrix(bw.clone())
            .model(|rng| zoo::mlp(&[16, 20, 4], rng))
            .rounds(12)
            .eval_every(12)
            .eval_samples(100)
            .events(events)
            .time_model(packet_model())
            .run(&registry())
            .expect("must run")
    };
    let split = run(scenario_zoo::partition_heal(&bw, &[0, 1], 3, 8));
    let clean = run(Vec::new());
    // The runs share rounds 0..3 and diverge while partitioned: the
    // severed links change who gets matched with whom.
    for (p, q) in split.points.iter().zip(&clean.points).take(3) {
        assert_eq!(p.train_loss.to_bits(), q.train_loss.to_bits());
    }
    assert!(
        split
            .points
            .iter()
            .zip(&clean.points)
            .skip(3)
            .any(|(p, q)| p.train_loss != q.train_loss),
        "a healed partition should have altered at least one matched round"
    );
}
