//! Property-based tests tying Section III's theory to the executable
//! system: doubly-stochastic gossip matrices, spectral conditions, mask
//! agreement, matching validity on random bandwidth graphs.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use saps::compress::mask::RandomMask;
use saps::gossip::{consensus, spectral, GossipMatrix};
use saps::graph::{connectivity, matching, topology, Graph};
use saps::netsim::BandwidthMatrix;
use saps_core::GossipGenerator;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any matching yields a doubly stochastic W_t (Assumption 2).
    #[test]
    fn gossip_matrix_always_doubly_stochastic(
        n in 2usize..20,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = topology::complete(n);
        let m = matching::randomly_max_match(&g, &mut rng);
        let w = GossipMatrix::from_matching(&m);
        prop_assert!(w.as_mat().is_doubly_stochastic(1e-9));
    }

    /// Blossom matching on random graphs is valid and maximal (no
    /// augmenting edge remains among unmatched vertices).
    #[test]
    fn blossom_matching_valid_and_maximal(
        n in 2usize..24,
        density in 0.05f64..0.9,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = Graph::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen_bool(density) {
                    g.add_edge(i, j);
                }
            }
        }
        let m = matching::randomly_max_match(&g, &mut rng);
        prop_assert!(m.is_valid_for(&g));
        // Maximality: no edge joins two unmatched vertices.
        let un = m.unmatched();
        for (ai, &a) in un.iter().enumerate() {
            for &b in &un[ai + 1..] {
                prop_assert!(!g.has_edge(a, b), "augmenting edge ({a},{b}) left");
            }
        }
    }

    /// Shared-seed masks agree across "workers" and achieve the requested
    /// density within statistical tolerance.
    #[test]
    fn masks_agree_and_hit_density(
        c in 1.0f64..64.0,
        seed in any::<u64>(),
        round in 0u64..1000,
    ) {
        let n = 20_000usize;
        let a = RandomMask::generate(n, c, seed, round);
        let b = RandomMask::generate(n, c, seed, round);
        prop_assert_eq!(a.indices(), b.indices());
        let p = 1.0 / c;
        let sd = (p * (1.0 - p) / n as f64).sqrt();
        prop_assert!((a.density() - p).abs() < 6.0 * sd + 1e-9,
            "density {} target {}", a.density(), p);
    }

    /// Gossip averaging never increases consensus distance and always
    /// preserves the mean (double stochasticity in action).
    #[test]
    fn gossip_contracts_and_preserves_mean(
        n in 2usize..16,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x0: Vec<f64> = (0..n).map(|_| rng.gen_range(-10.0..10.0)).collect();
        let mean0: f64 = x0.iter().sum::<f64>() / n as f64;
        let mut x = x0.clone();
        let mut last = consensus::consensus_distance_sq(&x);
        for _ in 0..20 {
            let g = topology::complete(n);
            let m = matching::randomly_max_match(&g, &mut rng);
            GossipMatrix::from_matching(&m).mix_row(&mut x);
            let d = consensus::consensus_distance_sq(&x);
            prop_assert!(d <= last + 1e-9);
            last = d;
        }
        let mean: f64 = x.iter().sum::<f64>() / n as f64;
        prop_assert!((mean - mean0).abs() < 1e-9);
    }

    /// The union of matchings generated over any T_thres-sized window of
    /// rounds eventually connects the graph (Algorithm 3's invariant),
    /// provided the PC graph is connected.
    #[test]
    fn generated_matchings_union_is_connected(
        n in 4usize..16,
        tthres in 2u32..8,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let full = topology::complete(n);
        let mut gen = GossipGenerator::new(full.clone(), full, tthres);
        // Collect all edges used over a generous horizon.
        let horizon = (tthres as usize + 1) * n;
        let mut union = Graph::new(n);
        for t in 0..horizon {
            let m = gen.next_matching(t as u64, &mut rng);
            for (a, b) in m.pairs() {
                union.add_edge(a, b);
            }
        }
        prop_assert!(connectivity::is_connected(&union));
    }

    /// Bandwidth symmetrization: B[i][j] == B[j][i] == min of raw pair.
    #[test]
    fn bandwidth_matrix_symmetric(
        n in 2usize..12,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let raw: Vec<f64> = (0..n * n).map(|_| rng.gen_range(0.0..100.0)).collect();
        let bw = BandwidthMatrix::from_raw(n, &raw);
        for i in 0..n {
            prop_assert_eq!(bw.get(i, i), 0.0);
            for j in 0..n {
                if i != j {
                    prop_assert_eq!(bw.get(i, j), bw.get(j, i));
                    prop_assert_eq!(bw.get(i, j), raw[i * n + j].min(raw[j * n + i]));
                }
            }
        }
    }
}

/// ρ of the Algorithm 3 stream is strictly below 1 for a moderate worker
/// count — the load-bearing spectral condition (Assumption 3). Not a
/// proptest (estimation is costly); a fixed spot check on several seeds.
#[test]
fn assumption3_holds_for_generated_streams() {
    for seed in [1u64, 7, 42] {
        let n = 10;
        let full = topology::complete(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gen = GossipGenerator::new(full.clone(), full, 5);
        let rho = spectral::estimate_rho(n, 2_000, |t| {
            GossipMatrix::from_matching(&gen.next_matching(t as u64, &mut rng))
        });
        assert!(rho < 0.999, "seed {seed}: rho = {rho}");
        assert!(spectral::spectral_gap(rho) > 0.001);
    }
}

/// Lemma 2's contraction rate matches measurement for the actual
/// Algorithm 3 stream (not just uniform random matchings).
#[test]
fn lemma2_rate_matches_algorithm3_stream() {
    let n = 8;
    let c = 2.0;
    let full = topology::complete(n);
    let mut rng = StdRng::seed_from_u64(11);
    let mut gen = GossipGenerator::new(full.clone(), full.clone(), 4);
    let rho = spectral::estimate_rho(n, 10_000, |t| {
        GossipMatrix::from_matching(&gen.next_matching(t as u64, &mut rng))
    });
    let x0: Vec<f64> = (0..n).map(|i| i as f64).collect();
    // Average the measured distance over many masked-gossip trials.
    let trials = 600;
    let rounds = 8;
    let mut acc = vec![0.0f64; rounds];
    let mut coin = StdRng::seed_from_u64(12);
    let mut mrng = StdRng::seed_from_u64(13);
    let mut gen = GossipGenerator::new(full.clone(), full, 4);
    for _ in 0..trials {
        let hist = consensus::run_masked_gossip(&x0, rounds, c, &mut coin, |t| {
            GossipMatrix::from_matching(&gen.next_matching(t as u64, &mut mrng))
        });
        for (a, h) in acc.iter_mut().zip(&hist) {
            *a += h;
        }
    }
    for (t, total) in acc.iter().enumerate() {
        let mean = total / trials as f64;
        let bound = consensus::lemma2_bound(&x0, rho, c, t + 1);
        assert!(
            mean <= bound * 1.25 + 1e-9,
            "round {t}: measured {mean:.3} > bound {bound:.3}"
        );
    }
}
