//! The unified telemetry plane's contracts (`docs/OBSERVABILITY.md`):
//!
//! 1. **Bit-identity** — attaching a [`Recorder`] to a run changes
//!    *nothing* about training: for all eight algorithms, under the
//!    in-memory and the cluster driver, the recorder-on trajectory is
//!    bit-identical to the recorder-off trajectory. Telemetry observes;
//!    it never participates. Runs inside the CI determinism matrix
//!    (`SAPS_THREADS ∈ {1, 2}`), so the invariant holds at every
//!    round-engine width.
//! 2. **Flight recorder on typed failures** — a Byzantine quarantine
//!    and a stalled wire each dump a parseable structured trail that
//!    names the offender (rank) / the stalled round, preceded by the
//!    round events leading up to the failure.
//! 3. **Reconciliation** — the recorder's `wire.*` gauges equal the
//!    [`WireTap`] snapshot exactly, and the tap's planes reconcile with
//!    the [`TrafficAccountant`]: masked payload values on the worker
//!    rows (`data_bytes`), everything else on the server row
//!    (`control_bytes`).

use saps::cluster::{
    cluster_registry, Addr, ClusterError, ClusterTrainer, FaultPlan, FaultScope, FaultyTransport,
    LoopbackTransport, WireTap,
};
use saps::core::{
    AlgorithmSpec, Experiment, Recorder, RoundCtx, RunHistory, SapsConfig, ScenarioEvent, Trainer,
};
use saps::data::{partition, Dataset, SyntheticSpec};
use saps::netsim::{BandwidthMatrix, TrafficAccountant};
use saps::nn::zoo;
use saps::telemetry::validate_jsonl;
use saps::tensor::rng::{derive_seed, streams};

const SEED: u64 = 23;

/// The eight registry keys, paper spelling via [`AlgorithmSpec::parse`].
const ALGORITHMS: [&str; 8] = [
    "saps", "psgd", "dpsgd", "dcd", "topk", "fedavg", "sfedavg", "random",
];

fn run(algo: &str, driver: &str, recorder: Option<Recorder>) -> RunHistory {
    let ds = SyntheticSpec::tiny().samples(900).generate(5);
    let (train, val) = ds.split(0.25, 0);
    let spec = AlgorithmSpec::parse(algo).unwrap().with_compression(4.0);
    let mut exp = Experiment::new(spec)
        .train(train)
        .validation(val)
        .workers(4)
        .batch_size(16)
        .seed(SEED)
        .bandwidth_matrix(BandwidthMatrix::constant(4, 1.0))
        .model(|rng| zoo::mlp(&[16, 16, 4], rng))
        .rounds(6)
        .eval_every(3)
        .eval_samples(100);
    if let Some(rec) = recorder {
        exp = exp.telemetry(rec);
    }
    let reg = match driver {
        "cluster" => cluster_registry(WireTap::new()),
        _ => saps::baselines::registry(),
    };
    exp.run(&reg).unwrap()
}

/// The hard constraint of the telemetry plane: recorder on vs off is
/// bit-identical, for every algorithm, under both drivers.
#[test]
fn recorder_on_off_is_bit_identical_for_all_algorithms_and_drivers() {
    for driver in ["memory", "cluster"] {
        for algo in ALGORITHMS {
            let rec = Recorder::new();
            let on = run(algo, driver, Some(rec.clone()));
            let off = run(algo, driver, None);
            assert_eq!(on.points.len(), off.points.len());
            for (a, b) in on.points.iter().zip(&off.points) {
                assert_eq!(
                    a.train_loss.to_bits(),
                    b.train_loss.to_bits(),
                    "{algo}/{driver} round {}: loss drifted with the recorder attached",
                    a.round
                );
                assert_eq!(
                    a.val_acc.to_bits(),
                    b.val_acc.to_bits(),
                    "{algo}/{driver} round {}: accuracy drifted",
                    a.round
                );
                assert_eq!(a.epoch.to_bits(), b.epoch.to_bits());
            }
            assert_eq!(on.final_acc.to_bits(), off.final_acc.to_bits());
            // The recorder actually observed the run it rode along on.
            assert_eq!(rec.counter("train.rounds"), Some(6), "{algo}/{driver}");
            assert!(
                rec.histogram("round.total_s").is_some(),
                "{algo}/{driver} missing round timing histogram"
            );
        }
    }
}

fn parts(workers: usize) -> Vec<Dataset> {
    let (train, _) = SyntheticSpec::tiny()
        .samples(1_600)
        .generate(5)
        .split(0.2, 0);
    partition::iid(&train, workers, derive_seed(SEED, 0, streams::DATA))
}

fn cfg(workers: usize) -> SapsConfig {
    SapsConfig {
        workers,
        compression: 4.0,
        lr: 0.1,
        batch_size: 16,
        bthres: None,
        tthres: 5,
        seed: SEED,
        shard_size: None,
    }
}

fn model(rng: &mut rand::rngs::StdRng) -> saps::nn::Model {
    zoo::mlp(&[16, 20, 4], rng)
}

fn faulty_trainer(
    workers: usize,
    plan: FaultPlan,
    seed: u64,
) -> (
    ClusterTrainer<FaultyTransport<LoopbackTransport>>,
    saps::cluster::PlanHandle,
) {
    let tap = WireTap::new();
    let transport = FaultyTransport::new(LoopbackTransport::new(tap.clone()), plan, seed);
    let handle = transport.plan_handle();
    let clu = ClusterTrainer::with_transport(
        cfg(workers),
        parts(workers),
        &BandwidthMatrix::constant(workers, 1.0),
        model,
        transport,
        tap,
    )
    .unwrap();
    (clu, handle)
}

fn step_with(
    trainer: &mut ClusterTrainer<FaultyTransport<LoopbackTransport>>,
    round: usize,
    traffic: &mut TrafficAccountant,
    rec: &Recorder,
) -> Result<(), ClusterError> {
    let bw = BandwidthMatrix::constant(trainer.worker_count(), 1.0);
    let mut ctx = RoundCtx::new(round, &bw, traffic, SEED).with_telemetry(rec.clone());
    trainer.try_step(&mut ctx).map(|_| ())
}

/// A Byzantine quarantine dumps the flight recorder: the dump names the
/// offender's rank and carries the round events that led up to the
/// attack, and the whole trail serializes as parseable JSONL.
#[test]
fn byzantine_quarantine_dumps_a_parseable_trail_naming_the_offender() {
    const WORKERS: usize = 4;
    const EVIL_RANK: usize = 3;
    const ATTACK_ROUND: usize = 3;

    let rec = Recorder::new();
    let (mut clu, handle) = faulty_trainer(WORKERS, FaultPlan::none(), 7);
    let mut traffic = TrafficAccountant::new(WORKERS);
    for round in 0..6 {
        if round == ATTACK_ROUND {
            handle.set(
                FaultPlan::none()
                    .with_corrupt(1.0)
                    .scoped(FaultScope::PayloadsFrom(Addr::Worker(EVIL_RANK as u32))),
            );
        }
        step_with(&mut clu, round, &mut traffic, &rec).unwrap();
    }
    assert_eq!(clu.quarantined(), vec![EVIL_RANK as u32]);

    let dumps = rec.dumps();
    assert_eq!(dumps.len(), 1, "exactly one quarantine dump");
    let dump = &dumps[0];
    assert_eq!(dump.reason, "byzantine quarantine");
    // The dump's trail contains the quarantine event naming the rank…
    let quarantine = dump
        .events
        .iter()
        .find(|e| e.kind == "byzantine.quarantine")
        .expect("dump carries the quarantine event");
    assert_eq!(
        quarantine.field("rank"),
        Some(&saps::telemetry::Value::U64(EVIL_RANK as u64))
    );
    // …preceded by the round events leading up to the attack.
    let prior_rounds = dump
        .events
        .iter()
        .filter(|e| e.kind == "cluster.round" && e.round < Some(ATTACK_ROUND as u64))
        .count();
    assert_eq!(prior_rounds, ATTACK_ROUND, "preceding rounds in the ring");
    // The whole dump (header + events) is parseable JSONL.
    let lines = validate_jsonl(&dump.to_jsonl()).unwrap();
    assert_eq!(lines, dump.events.len() + 1);
    // And the quarantine landed in the metric registry.
    assert_eq!(rec.counter("cluster.quarantines"), Some(1));
}

/// A wire that eats every frame stalls the round; the typed stall dumps
/// a trail that names the stalled round.
#[test]
fn stalled_run_dumps_a_trail_naming_the_round() {
    const WORKERS: usize = 4;
    let rec = Recorder::new();
    let (mut clu, handle) = faulty_trainer(WORKERS, FaultPlan::none(), 3);
    let mut traffic = TrafficAccountant::new(WORKERS);
    // One healthy round so the dump has context, then the wire dies.
    step_with(&mut clu, 0, &mut traffic, &rec).unwrap();
    handle.set(FaultPlan::none().with_drop(1.0));
    let mut clu = clu.with_stall_limit(50);
    match step_with(&mut clu, 1, &mut traffic, &rec) {
        Err(ClusterError::Protocol(msg)) => {
            assert!(msg.contains("quiescent"), "unexpected stall: {msg}")
        }
        other => panic!("expected a stall, got {other:?}"),
    }

    let dumps = rec.dumps();
    assert_eq!(dumps.len(), 1);
    assert_eq!(dumps[0].reason, "stall");
    let stall = dumps[0]
        .events
        .iter()
        .find(|e| e.kind == "stall")
        .expect("dump carries the stall event");
    assert_eq!(
        stall.field("round"),
        Some(&saps::telemetry::Value::U64(1)),
        "the stall event names the stalled round"
    );
    assert!(validate_jsonl(&dumps[0].to_jsonl()).is_ok());
    assert_eq!(rec.counter("cluster.stalls"), Some(1));
}

/// Satellite 1: three byte meters, one truth. The recorder's `wire.*`
/// gauges are the tap snapshot, and the tap reconciles with the
/// accountant: payload values on worker rows, the rest on the server
/// row.
#[test]
fn wire_gauges_reconcile_with_tap_and_accountant() {
    const WORKERS: usize = 5;
    const ROUNDS: usize = 6;
    let rec = Recorder::new();
    let tap = WireTap::new();
    let clu = ClusterTrainer::loopback(
        cfg(WORKERS),
        parts(WORKERS),
        &BandwidthMatrix::constant(WORKERS, 1.0),
        model,
        tap.clone(),
    )
    .unwrap();
    let mut clu = clu;
    let bw = BandwidthMatrix::constant(WORKERS, 1.0);
    let mut traffic = TrafficAccountant::new(WORKERS);
    for round in 0..ROUNDS {
        let mut ctx = RoundCtx::new(round, &bw, &mut traffic, SEED).with_telemetry(rec.clone());
        clu.try_step(&mut ctx).unwrap();
    }

    let wire = tap.snapshot();
    // Recorder gauges == tap snapshot, per plane.
    let gauge = |name: &str| rec.gauge(name).unwrap() as u64;
    assert_eq!(gauge("wire.data_bytes"), wire.data_bytes);
    assert_eq!(gauge("wire.control_bytes"), wire.control_bytes);
    assert_eq!(gauge("wire.model_bytes"), wire.model_bytes);
    assert_eq!(gauge("wire.serve_bytes"), wire.serve_bytes);
    assert_eq!(gauge("wire.total_bytes"), wire.total_bytes);
    assert_eq!(rec.counter("cluster.rounds"), Some(ROUNDS as u64));

    // Tap == accountant: masked payload values land on worker rows,
    // every other byte on the server (control) row.
    let worker_sum: u64 = (0..WORKERS).map(|w| traffic.worker_sent(w)).sum();
    assert_eq!(worker_sum, wire.data_bytes, "worker rows == data plane");
    assert_eq!(
        traffic.server_total(),
        wire.control_bytes,
        "server row == control plane"
    );
    assert_eq!(
        traffic.grand_total_sent(),
        wire.data_bytes,
        "grand total sums exactly the worker rows (the data plane)"
    );
    assert_eq!(
        traffic.grand_total_sent() + traffic.server_total(),
        wire.data_bytes + wire.control_bytes,
        "worker rows + server row cover exactly the data + control planes"
    );
}

/// Satellite 2 backstop: resync reports surface as structured events on
/// the baseline cluster driver when a worker churns out and back.
#[test]
fn baseline_churn_emits_resync_events() {
    let rec = Recorder::new();
    let ds = SyntheticSpec::tiny().samples(900).generate(5);
    let (train, val) = ds.split(0.25, 0);
    let hist = Experiment::new(AlgorithmSpec::parse("psgd").unwrap())
        .train(train)
        .validation(val)
        .workers(4)
        .batch_size(16)
        .seed(SEED)
        .model(|rng| zoo::mlp(&[16, 16, 4], rng))
        .rounds(8)
        .eval_every(8)
        .eval_samples(100)
        .event(3, ScenarioEvent::WorkerLeave { rank: 2 })
        .event(5, ScenarioEvent::WorkerJoin { rank: 2 })
        .telemetry(rec.clone())
        .run(&cluster_registry(WireTap::new()))
        .unwrap();
    assert_eq!(hist.points.len(), 8);
    let events = rec.events();
    let resync = events
        .iter()
        .find(|e| e.kind == "resync")
        .expect("rejoin must surface a resync event");
    assert_eq!(resync.field("rank"), Some(&saps::telemetry::Value::U64(2)));
    assert!(resync.field("wire_bytes").is_some());
    assert!(resync.field("chunks").is_some());
    assert_eq!(rec.counter("cluster.resyncs"), Some(1));
    // The whole trail round-trips as JSONL.
    assert!(validate_jsonl(&rec.events_jsonl()).unwrap() >= events.len());
}
