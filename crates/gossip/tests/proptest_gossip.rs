//! Property tests for the gossip machinery.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use saps_gossip::{consensus, spectral, GossipMatrix};
use saps_graph::topology::random_perfect_matching;
use saps_graph::Matching;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gossip_matrices_are_projections(
        half in 1usize..10,
        seed in any::<u64>(),
    ) {
        // W built from a perfect matching satisfies W² = W (pairwise
        // averaging is idempotent).
        let n = half * 2;
        let mut rng = StdRng::seed_from_u64(seed);
        let w = GossipMatrix::from_matching(&random_perfect_matching(n, &mut rng));
        let w2 = w.as_mat().matmul(w.as_mat());
        prop_assert!(w2.max_abs_diff(w.as_mat()) < 1e-12);
    }

    #[test]
    fn peer_of_is_symmetric(
        half in 1usize..10,
        seed in any::<u64>(),
    ) {
        let n = half * 2;
        let mut rng = StdRng::seed_from_u64(seed);
        let w = GossipMatrix::from_matching(&random_perfect_matching(n, &mut rng));
        for v in 0..n {
            let p = w.peer_of(v).unwrap();
            prop_assert_eq!(w.peer_of(p), Some(v));
            prop_assert!(p != v);
        }
    }

    #[test]
    fn masked_contraction_monotone_in_c(rho in 0.0f64..1.0) {
        // Less exchange (larger c) can only slow consensus.
        let mut last = 0.0f64;
        for c in [1.0, 2.0, 10.0, 100.0, 1e6] {
            let f = spectral::masked_contraction(rho, c);
            prop_assert!(f >= last - 1e-12);
            prop_assert!((0.0..=1.0).contains(&f));
            last = f;
        }
    }

    #[test]
    fn consensus_distance_invariance(
        xs in proptest::collection::vec(-100.0f64..100.0, 2..20),
        shift in -50.0f64..50.0,
    ) {
        // Translation invariance: d(x + s·1) == d(x).
        let shifted: Vec<f64> = xs.iter().map(|v| v + shift).collect();
        let a = consensus::consensus_distance_sq(&xs);
        let b = consensus::consensus_distance_sq(&shifted);
        prop_assert!((a - b).abs() < 1e-6 * a.abs().max(1.0));
    }

    #[test]
    fn partial_matchings_leave_unmatched_untouched(
        n in 3usize..12,
        seed in any::<u64>(),
    ) {
        // A matching that covers only vertices {0,1} must leave all other
        // coordinates exactly unchanged by mix_row.
        let _ = seed;
        let m = Matching::from_pairs(n, &[(0, 1)]);
        let w = GossipMatrix::from_matching(&m);
        let x0: Vec<f64> = (0..n).map(|i| (i * i) as f64).collect();
        let mut x = x0.clone();
        w.mix_row(&mut x);
        prop_assert_eq!(x[0], x[1]);
        for i in 2..n {
            prop_assert_eq!(x[i], x0[i]);
        }
    }
}

#[test]
fn estimated_rho_close_to_closed_form_random_matchings() {
    // E[W] for uniformly random perfect matchings on n vertices has
    // deflated eigenvalue 1/2 − 1/(2(n−1)); W is a projection so
    // E[WᵀW] = E[W].
    for n in [4usize, 6, 8] {
        let analytic = 0.5 - 0.5 / (n as f64 - 1.0);
        let mut rng = StdRng::seed_from_u64(n as u64);
        let rho = spectral::estimate_rho(n, 40_000, |_| {
            GossipMatrix::from_matching(&random_perfect_matching(n, &mut rng))
        });
        assert!(
            (rho - analytic).abs() < 0.02,
            "n={n}: rho {rho} vs analytic {analytic}"
        );
    }
}
