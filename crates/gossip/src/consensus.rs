//! Gossip-averaging (consensus) simulation.
//!
//! The distributed-averaging recursion of Eq. (4), `X_t = X_{t-1} W_{t-1}`,
//! optionally with the Bernoulli coordinate masks of SAPS-PSGD
//! (Eq. 7's communication part, `X ∘ ¬M + (X ∘ M) W`). Lemma 2 proves the
//! masked recursion contracts the consensus distance at rate
//! `(q + pρ²)` per round *in expectation*; the tests here check that bound
//! empirically, tying Section III's theory to executable code.

use crate::GossipMatrix;
use rand::Rng;

/// The squared consensus distance of a row vector: `‖x − x̄·1‖²`
/// (each worker holds a scalar; `x[i]` is worker i's value).
pub fn consensus_distance_sq(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let mean = x.iter().sum::<f64>() / x.len() as f64;
    x.iter().map(|v| (v - mean) * (v - mean)).sum()
}

/// Runs `rounds` of plain gossip averaging `x ← x W_t` and returns the
/// consensus distance after each round (index 0 = after the first round).
pub fn run_gossip(
    x0: &[f64],
    rounds: usize,
    mut sample: impl FnMut(usize) -> GossipMatrix,
) -> Vec<f64> {
    let mut x = x0.to_vec();
    let mut out = Vec::with_capacity(rounds);
    for t in 0..rounds {
        let w = sample(t);
        w.mix_row(&mut x);
        out.push(consensus_distance_sq(&x));
    }
    out
}

/// Runs `rounds` of **masked** gossip: each round the scalar is exchanged
/// only with probability `p = 1/c` (all workers share the coin, mirroring
/// the shared-seed mask on a single coordinate); otherwise the round is a
/// no-op for that coordinate.
///
/// This is exactly the per-coordinate behaviour of SAPS-PSGD's
/// `X ∘ ¬M + (X ∘ M) W` update, so its contraction matches Lemma 2's
/// `(q + pρ²)` rate.
pub fn run_masked_gossip<R: Rng>(
    x0: &[f64],
    rounds: usize,
    c: f64,
    rng: &mut R,
    mut sample: impl FnMut(usize) -> GossipMatrix,
) -> Vec<f64> {
    assert!(c >= 1.0);
    let p = 1.0 / c;
    let mut x = x0.to_vec();
    let mut out = Vec::with_capacity(rounds);
    for t in 0..rounds {
        let w = sample(t);
        if rng.gen_bool(p) {
            w.mix_row(&mut x);
        }
        out.push(consensus_distance_sq(&x));
    }
    out
}

/// The Lemma 2 bound on the expected squared consensus distance after `t`
/// rounds: `(q + pρ)^t · ‖x_0 − x̄_0·1‖²` (see
/// [`crate::spectral::masked_contraction`] for why the exponent on ρ is 1,
/// not the paper's 2).
pub fn lemma2_bound(x0: &[f64], rho: f64, c: f64, t: usize) -> f64 {
    let rate = crate::spectral::masked_contraction(rho, c);
    rate.powi(t as i32) * consensus_distance_sq(x0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use saps_graph::topology::random_perfect_matching;

    #[test]
    fn consensus_distance_zero_iff_equal() {
        assert_eq!(consensus_distance_sq(&[2.0, 2.0, 2.0]), 0.0);
        assert!(consensus_distance_sq(&[1.0, 2.0]) > 0.0);
        assert_eq!(consensus_distance_sq(&[]), 0.0);
    }

    #[test]
    fn gossip_reaches_consensus() {
        let mut rng = StdRng::seed_from_u64(4);
        let x0: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let hist = run_gossip(&x0, 200, |_| {
            GossipMatrix::from_matching(&random_perfect_matching(16, &mut rng))
        });
        assert!(hist[199] < 1e-9, "final distance {}", hist[199]);
        // Distance is non-increasing under doubly-stochastic mixing.
        for w in hist.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    fn fixed_matching_never_reaches_consensus() {
        // Matching (0,1),(2,3) forever: pairs agree internally but the two
        // pairs never talk — the distance plateaus above zero.
        use saps_graph::Matching;
        let m = Matching::from_pairs(4, &[(0, 1), (2, 3)]);
        let x0 = vec![0.0, 0.0, 10.0, 10.0];
        let hist = run_gossip(&x0, 100, |_| GossipMatrix::from_matching(&m));
        assert!(hist[99] > 1.0, "plateau {}", hist[99]);
    }

    #[test]
    fn masked_gossip_converges_slower_but_converges() {
        let mut coin = StdRng::seed_from_u64(7);
        let mut rng_a = StdRng::seed_from_u64(8);
        let mut rng_b = StdRng::seed_from_u64(8);
        let x0: Vec<f64> = (0..8).map(|i| (i * i) as f64).collect();
        let plain = run_gossip(&x0, 150, |_| {
            GossipMatrix::from_matching(&random_perfect_matching(8, &mut rng_a))
        });
        let masked = run_masked_gossip(&x0, 150, 4.0, &mut coin, |_| {
            GossipMatrix::from_matching(&random_perfect_matching(8, &mut rng_b))
        });
        assert!(masked[149] < x0.len() as f64, "masked still contracting");
        assert!(plain[149] <= masked[149] + 1e-9, "plain at least as fast");
    }

    #[test]
    fn lemma2_bound_holds_in_expectation() {
        // Average the measured masked-gossip distance over many trials and
        // compare with (q + p·rho²)^t · d0. The bound is an upper bound on
        // the expectation (Eq. 12 is an equality for scalar gossip with
        // exact rho, so allow a small statistical margin above it).
        let n = 8;
        let c = 2.0;
        let trials = 800;
        let rounds = 10;
        // First estimate rho of the matching stream.
        let mut rng = StdRng::seed_from_u64(100);
        let rho = crate::spectral::estimate_rho(n, 20_000, |_| {
            GossipMatrix::from_matching(&random_perfect_matching(n, &mut rng))
        });
        let x0: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut acc = vec![0.0; rounds];
        let mut coin = StdRng::seed_from_u64(200);
        let mut mrng = StdRng::seed_from_u64(300);
        for _ in 0..trials {
            let hist = run_masked_gossip(&x0, rounds, c, &mut coin, |_| {
                GossipMatrix::from_matching(&random_perfect_matching(n, &mut mrng))
            });
            for (a, h) in acc.iter_mut().zip(&hist) {
                *a += h;
            }
        }
        for (t, total) in acc.iter().enumerate() {
            let mean = total / trials as f64;
            let bound = lemma2_bound(&x0, rho, c, t + 1);
            assert!(
                mean <= bound * 1.15 + 1e-9,
                "round {t}: mean {mean} > bound {bound}"
            );
        }
    }

    #[test]
    fn mean_is_preserved_through_masked_gossip() {
        let mut coin = StdRng::seed_from_u64(9);
        let mut rng = StdRng::seed_from_u64(10);
        let x0 = vec![5.0, -3.0, 8.0, 2.0, 0.0, 1.0];
        let mean0: f64 = x0.iter().sum::<f64>() / x0.len() as f64;
        let mut x = x0.clone();
        for _ in 0..50 {
            let w = GossipMatrix::from_matching(&random_perfect_matching(6, &mut rng));
            if coin.gen_bool(0.5) {
                w.mix_row(&mut x);
            }
        }
        let mean: f64 = x.iter().sum::<f64>() / x.len() as f64;
        assert!((mean - mean0).abs() < 1e-12);
    }
}
