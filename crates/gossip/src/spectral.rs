//! Spectral analysis of gossip-matrix streams.
//!
//! Assumption 3 of the paper: the second-largest eigenvalue ρ of
//! `E[WᵀW]` must be < 1. Per-round matchings are *not* connected graphs —
//! the expectation over the random matchings is what must mix. This module
//! estimates ρ empirically by averaging `WᵀW` over a stream of sampled
//! matrices, and exposes the spectral gap `1 − ρ`.

use crate::GossipMatrix;
use saps_tensor::Mat;

/// Averages `WᵀW` over matrices drawn from `sample` and returns the
/// estimated ρ (second-largest eigenvalue of the average).
///
/// `sample(t)` must return the gossip matrix the generator would emit at
/// round `t`; `rounds` controls the Monte-Carlo sample size.
pub fn estimate_rho(n: usize, rounds: usize, mut sample: impl FnMut(usize) -> GossipMatrix) -> f64 {
    assert!(rounds > 0, "need at least one sample");
    let mut acc = Mat::zeros(n, n);
    for t in 0..rounds {
        let w = sample(t);
        assert_eq!(w.len(), n, "sampled matrix has wrong size");
        acc = acc.add(&w.wtw());
    }
    let avg = acc.scale(1.0 / rounds as f64);
    avg.second_eigenvalue_stochastic(2000)
}

/// Spectral gap `1 − ρ`; non-positive means no consensus guarantee.
pub fn spectral_gap(rho: f64) -> f64 {
    1.0 - rho
}

/// The per-round contraction factor of the expected squared consensus
/// distance under masked gossip: `q + p·ρ`, where `p = 1/c` is the mask
/// keep probability, `q = 1 − p`, and ρ is the second-largest eigenvalue
/// of `E[WᵀW]`.
///
/// Derivation: for a centered row vector `x ⊥ 1`,
/// `E‖xW‖² = x·E[WWᵀ]·xᵀ ≤ ρ·‖x‖²` — one factor of ρ per mixing step.
/// A masked coordinate mixes with probability `p` and is untouched with
/// probability `q`, giving `E[d_{t+1}] ≤ (q + pρ)·E[d_t]`.
///
/// Note: the paper's Lemma 2 states the rate as `q + pρ²` with ρ defined
/// as the second-largest eigenvalue of `E[WᵀW]`; that overstates the
/// contraction (it would be correct if ρ were instead a contraction
/// factor on the *norm*, i.e. the square root of the eigenvalue — the
/// convention of Boyd et al.'s Eq. (5) source). We implement the factor
/// that the recursion actually achieves, which our property tests verify
/// empirically; the qualitative conclusion (geometric consensus whenever
/// ρ < 1) is unchanged.
pub fn masked_contraction(rho: f64, c: f64) -> f64 {
    assert!(c >= 1.0, "compression ratio must be >= 1");
    let p = 1.0 / c;
    let q = 1.0 - p;
    q + p * rho
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use saps_graph::topology::random_perfect_matching;

    #[test]
    fn rho_of_identity_stream_is_one() {
        let rho = estimate_rho(4, 10, |_| GossipMatrix::identity(4));
        assert!((rho - 1.0).abs() < 1e-9, "rho = {rho}");
        assert!(spectral_gap(rho) < 1e-9);
    }

    #[test]
    fn rho_of_random_matchings_below_one() {
        // Uniformly random perfect matchings on 8 workers: E[WᵀW] mixes,
        // so rho < 1 (Assumption 3 holds for the RandomChoose stream).
        let mut rng = StdRng::seed_from_u64(1);
        let rho = estimate_rho(8, 2000, |_| {
            GossipMatrix::from_matching(&random_perfect_matching(8, &mut rng))
        });
        assert!(rho < 1.0, "rho = {rho}");
        assert!(rho > 0.0);
    }

    #[test]
    fn rho_of_fixed_matching_is_one() {
        // Re-using the SAME matching every round never mixes across pairs:
        // E[WᵀW] = W² has eigenvalue 1 with multiplicity > 1, so rho = 1.
        // This is exactly why the paper needs the T_thres rotation.
        use saps_graph::Matching;
        let m = Matching::from_pairs(4, &[(0, 1), (2, 3)]);
        let rho = estimate_rho(4, 50, |_| GossipMatrix::from_matching(&m));
        assert!((rho - 1.0).abs() < 1e-6, "rho = {rho}");
    }

    #[test]
    fn random_matching_rho_known_value() {
        // For uniformly random perfect matchings on n workers, each
        // off-diagonal pair is matched with probability 1/(n-1);
        // E[WᵀW] = E[W²] = E[W] (W² = W for matching-averages... W²=W
        // since averaging twice = averaging once) = (1-1/2)I' ... rather
        // than deriving, pin the estimate for n=4 against a dense
        // analytical computation: E[W] has diagonal 1/2 + (unmatched
        // prob)·1/2 = 1/2 (perfect matchings always match everyone), and
        // off-diagonal 1/2 · 1/(n-1) = 1/6.
        // W is a projection (W² = W), so E[WᵀW] = E[W].
        let n = 4;
        let mut e = Mat::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                e[(i, j)] = if i == j { 0.5 } else { 0.5 / (n as f64 - 1.0) };
            }
        }
        let analytic = e.second_eigenvalue_stochastic(2000);
        let mut rng = StdRng::seed_from_u64(33);
        let empirical = estimate_rho(n, 30_000, |_| {
            GossipMatrix::from_matching(&random_perfect_matching(n, &mut rng))
        });
        assert!(
            (analytic - empirical).abs() < 0.02,
            "analytic {analytic} vs empirical {empirical}"
        );
        // Known closed form: eigenvalues of E[W] = (1/2 - 1/6) = 1/3 on
        // the deflated subspace.
        assert!((analytic - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn masked_contraction_limits() {
        // c = 1 (no sparsification): contraction = rho per squared-distance
        // step.
        assert!((masked_contraction(0.5, 1.0) - 0.5).abs() < 1e-12);
        // c -> infinity: nothing exchanged, contraction -> 1.
        assert!(masked_contraction(0.5, 1e9) > 0.999_999);
        // rho = 1: no mixing regardless of c.
        assert_eq!(masked_contraction(1.0, 100.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn estimate_rho_rejects_zero_rounds() {
        let _ = estimate_rho(4, 0, |_| GossipMatrix::identity(4));
    }
}
