//! Gossip-matrix machinery for the SAPS-PSGD reproduction.
//!
//! Section II-C of the paper builds, each round, a doubly-stochastic
//! *gossip matrix* `W_t` from a perfect matching of workers, and requires
//! (Assumption 3) that the second-largest eigenvalue ρ of `E[WᵀW]` be
//! strictly below 1 — that, not per-round connectivity, is what drives
//! consensus (Eq. 5 and Lemma 2).
//!
//! This crate provides:
//!
//! * [`GossipMatrix`] — `W_t` built from a [`saps_graph::Matching`]
//!   (`GenerateW`, Algorithm 3 lines 23-26), with doubly-stochastic
//!   guarantees by construction;
//! * [`spectral`] — the empirical estimator of ρ over a stream of sampled
//!   matchings, powered by `saps_tensor::Mat`'s deflated power iteration;
//! * [`consensus`] — the gossip-averaging simulator `X_t = X_{t-1} W_{t-1}`
//!   (Eq. 4), with and without Bernoulli masks, plus the theoretical decay
//!   rate `(q + pρ²)^t` of Lemma 2 so tests can check theory against
//!   measurement.
//!
//! # Example
//!
//! ```
//! use saps_graph::Matching;
//! use saps_gossip::GossipMatrix;
//!
//! let m = Matching::from_pairs(4, &[(0, 1), (2, 3)]);
//! let w = GossipMatrix::from_matching(&m);
//! assert!(w.as_mat().is_doubly_stochastic(1e-12));
//! ```

#![warn(missing_docs)]

pub mod consensus;
mod matrix;
pub mod spectral;

pub use matrix::GossipMatrix;
