//! The per-round gossip matrix `W_t`.

use saps_graph::Matching;
use saps_tensor::Mat;

/// A doubly-stochastic gossip matrix built from a matching
/// (Algorithm 3, `GenerateW`).
///
/// For every matched pair `(i, j)`:
/// `W[i][i] = W[j][j] = W[i][j] = W[j][i] = 1/2` — the two peers average
/// their (masked) models. Unmatched workers keep their model unchanged
/// (`W[i][i] = 1`).
///
/// The paper's pseudo-code sets the whole diagonal to 1/2 because its
/// second matching pass guarantees a *perfect* match; with an odd worker
/// count or an unmatchable leftover that would break row sums, so this
/// implementation uses the identity row for unmatched workers — the unique
/// choice that keeps `W_t` doubly stochastic.
#[derive(Debug, Clone, PartialEq)]
pub struct GossipMatrix {
    mat: Mat,
    pairs: Vec<(usize, usize)>,
    n: usize,
}

impl GossipMatrix {
    /// Builds `W_t` from a matching.
    pub fn from_matching(m: &Matching) -> Self {
        let n = m.vertex_count();
        let mut mat = Mat::zeros(n, n);
        for v in 0..n {
            match m.mate(v) {
                Some(u) => {
                    mat[(v, v)] = 0.5;
                    mat[(v, u)] = 0.5;
                }
                None => {
                    mat[(v, v)] = 1.0;
                }
            }
        }
        GossipMatrix {
            mat,
            pairs: m.pairs(),
            n,
        }
    }

    /// The identity gossip matrix (a round with no exchange).
    pub fn identity(n: usize) -> Self {
        GossipMatrix {
            mat: Mat::eye(n),
            pairs: Vec::new(),
            n,
        }
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix covers zero workers.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The matched pairs this matrix averages.
    pub fn pairs(&self) -> &[(usize, usize)] {
        &self.pairs
    }

    /// The peer of `worker` this round, if any (`W_t[rank]` in
    /// Algorithm 2, line 8).
    pub fn peer_of(&self, worker: usize) -> Option<usize> {
        self.pairs.iter().find_map(|&(a, b)| {
            if a == worker {
                Some(b)
            } else if b == worker {
                Some(a)
            } else {
                None
            }
        })
    }

    /// The underlying `f64` matrix.
    pub fn as_mat(&self) -> &Mat {
        &self.mat
    }

    /// `WᵀW` — the quantity whose *expected* second eigenvalue Assumption
    /// 3 bounds. For symmetric `W` (always true here) this is `W²`.
    pub fn wtw(&self) -> Mat {
        self.mat.transpose().matmul(&self.mat)
    }

    /// Applies the gossip step to a row vector: `x ← x W` (Eq. 4 uses
    /// column convention `X_t = X_{t-1} W_{t-1}`; for our row-major data
    /// each model row is multiplied from the right).
    ///
    /// Because `W` comes from a matching, this is just pairwise averaging —
    /// implemented directly rather than as a dense product.
    pub fn mix_row(&self, x: &mut [f64]) {
        assert_eq!(x.len(), self.n, "vector length must equal worker count");
        for &(i, j) in &self.pairs {
            let avg = 0.5 * (x[i] + x[j]);
            x[i] = avg;
            x[j] = avg;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saps_graph::Matching;

    #[test]
    fn perfect_matching_gives_doubly_stochastic_w() {
        let m = Matching::from_pairs(6, &[(0, 3), (1, 2), (4, 5)]);
        let w = GossipMatrix::from_matching(&m);
        assert!(w.as_mat().is_doubly_stochastic(1e-12));
        assert_eq!(w.pairs().len(), 3);
    }

    #[test]
    fn unmatched_worker_keeps_identity_row() {
        let m = Matching::from_pairs(3, &[(0, 1)]);
        let w = GossipMatrix::from_matching(&m);
        assert!(w.as_mat().is_doubly_stochastic(1e-12));
        assert_eq!(w.as_mat()[(2, 2)], 1.0);
        assert_eq!(w.peer_of(2), None);
        assert_eq!(w.peer_of(0), Some(1));
        assert_eq!(w.peer_of(1), Some(0));
    }

    #[test]
    fn mix_row_averages_pairs() {
        let m = Matching::from_pairs(4, &[(0, 2), (1, 3)]);
        let w = GossipMatrix::from_matching(&m);
        let mut x = vec![0.0, 4.0, 8.0, 10.0];
        w.mix_row(&mut x);
        assert_eq!(x, vec![4.0, 7.0, 4.0, 7.0]);
    }

    #[test]
    fn mix_row_matches_matrix_product() {
        let m = Matching::from_pairs(4, &[(0, 1), (2, 3)]);
        let w = GossipMatrix::from_matching(&m);
        let x = vec![1.0, 5.0, -2.0, 0.0];
        // Row-vector product x W.
        let mut expect = vec![0.0; 4];
        for (j, e) in expect.iter_mut().enumerate() {
            for (i, xi) in x.iter().enumerate() {
                *e += xi * w.as_mat()[(i, j)];
            }
        }
        let mut got = x.clone();
        w.mix_row(&mut got);
        for (g, e) in got.iter().zip(&expect) {
            assert!((g - e).abs() < 1e-12);
        }
    }

    #[test]
    fn wtw_is_symmetric_and_stochastic() {
        let m = Matching::from_pairs(4, &[(0, 1), (2, 3)]);
        let w = GossipMatrix::from_matching(&m);
        let wtw = w.wtw();
        assert!(wtw.is_doubly_stochastic(1e-12));
        assert!(wtw.max_abs_diff(&wtw.transpose()) < 1e-12);
    }

    #[test]
    fn identity_matrix_mixes_nothing() {
        let w = GossipMatrix::identity(3);
        let mut x = vec![1.0, 2.0, 3.0];
        w.mix_row(&mut x);
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
        assert!(w.pairs().is_empty());
    }

    #[test]
    fn gossip_preserves_sum() {
        // Double stochasticity means the global average is invariant.
        let m = Matching::from_pairs(6, &[(0, 5), (1, 4), (2, 3)]);
        let w = GossipMatrix::from_matching(&m);
        let mut x = vec![3.0, -1.0, 7.0, 2.0, 2.0, 0.0];
        let sum: f64 = x.iter().sum();
        w.mix_row(&mut x);
        assert!((x.iter().sum::<f64>() - sum).abs() < 1e-12);
    }
}
