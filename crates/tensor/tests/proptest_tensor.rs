//! Property tests for the tensor substrate.

use proptest::prelude::*;
use saps_tensor::{ops, Mat, Tensor};

fn small_matrix() -> impl Strategy<Value = (usize, usize, Vec<f32>)> {
    (1usize..6, 1usize..6).prop_flat_map(|(r, c)| {
        (
            Just(r),
            Just(c),
            proptest::collection::vec(-10.0f32..10.0, r * c),
        )
    })
}

proptest! {
    #[test]
    fn transpose_is_involution((r, c, data) in small_matrix()) {
        let t = Tensor::from_vec(data, &[r, c]);
        let back = t.transpose().transpose();
        prop_assert_eq!(t.data(), back.data());
        prop_assert_eq!(t.shape(), back.shape());
    }

    #[test]
    fn identity_is_matmul_neutral((r, c, data) in small_matrix()) {
        let t = Tensor::from_vec(data, &[r, c]);
        let left = Tensor::eye(r).matmul(&t);
        let right = t.matmul(&Tensor::eye(c));
        for (a, b) in left.data().iter().zip(t.data()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
        for (a, b) in right.data().iter().zip(t.data()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn matmul_t_consistency((r, c, data) in small_matrix(), extra in 1usize..5) {
        // a: r×c, b: extra×c  =>  a·bᵀ == a·(bᵀ).
        let a = Tensor::from_vec(data, &[r, c]);
        let bdata: Vec<f32> = (0..extra * c).map(|i| (i as f32).sin()).collect();
        let b = Tensor::from_vec(bdata, &[extra, c]);
        let fast = a.matmul_t(&b);
        let slow = a.matmul(&b.transpose());
        for (x, y) in fast.data().iter().zip(slow.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn add_sub_roundtrip((r, c, data) in small_matrix()) {
        let a = Tensor::from_vec(data.clone(), &[r, c]);
        let b = Tensor::from_vec(data.iter().map(|v| v * 0.5 + 1.0).collect(), &[r, c]);
        let back = a.add(&b).sub(&b);
        for (x, y) in back.data().iter().zip(a.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn dot_is_symmetric_and_bilinear(
        v in proptest::collection::vec(-5.0f32..5.0, 1..32),
        alpha in -3.0f32..3.0,
    ) {
        let w: Vec<f32> = v.iter().rev().cloned().collect();
        prop_assert!((ops::dot(&v, &w) - ops::dot(&w, &v)).abs() < 1e-3);
        let scaled: Vec<f32> = v.iter().map(|x| alpha * x).collect();
        prop_assert!((ops::dot(&scaled, &w) - alpha * ops::dot(&v, &w)).abs() < 1e-2);
    }

    #[test]
    fn axpby_matches_manual(
        v in proptest::collection::vec(-5.0f32..5.0, 1..32),
        alpha in -2.0f32..2.0,
        beta in -2.0f32..2.0,
    ) {
        let x: Vec<f32> = v.iter().map(|a| a + 1.0).collect();
        let mut y = v.clone();
        ops::axpby(alpha, &x, beta, &mut y);
        for i in 0..v.len() {
            let expect = v[i] * beta + alpha * x[i];
            prop_assert!((y[i] - expect).abs() < 1e-4);
        }
    }

    #[test]
    fn gather_scatter_identity(
        n in 1usize..64,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let mut idx: Vec<u32> = (0..n as u32).filter(|_| rng.gen_bool(0.5)).collect();
        idx.sort_unstable();
        let g = ops::gather(&x, &idx);
        let mut y = x.clone();
        ops::scatter(&mut y, &idx, &g);
        prop_assert_eq!(x, y);
    }

    #[test]
    fn doubly_stochastic_preserved_by_products(n in 2usize..8) {
        // Product of two doubly stochastic matrices is doubly stochastic.
        let a = Mat::from_vec(n, n, vec![1.0 / n as f64; n * n]);
        let mut b = Mat::eye(n);
        // Mix the identity a bit: lazy cycle.
        for i in 0..n {
            b[(i, i)] = 0.5;
            b[(i, (i + 1) % n)] = 0.5;
        }
        // b is row-stochastic but not symmetric; make it doubly by
        // averaging with its transpose... (still doubly stochastic).
        let b = b.add(&b.transpose()).scale(0.5);
        prop_assert!(a.is_doubly_stochastic(1e-9));
        prop_assert!(b.is_doubly_stochastic(1e-9));
        prop_assert!(a.matmul(&b).is_doubly_stochastic(1e-9));
    }

    #[test]
    fn second_eigenvalue_bounded_by_one(n in 2usize..10, lazy in 0.0f64..1.0) {
        // Lazy complete-mixing matrices: W = lazy·I + (1-lazy)·J/n.
        let mut w = Mat::from_vec(n, n, vec![(1.0 - lazy) / n as f64; n * n]);
        for i in 0..n {
            w[(i, i)] += lazy;
        }
        let rho = w.second_eigenvalue_stochastic(500);
        prop_assert!(rho <= 1.0 + 1e-9);
        // Known closed form: rho = lazy.
        prop_assert!((rho - lazy).abs() < 1e-6, "rho {rho} vs lazy {lazy}");
    }
}
