//! Flat-slice numeric kernels shared by all algorithm implementations.
//!
//! Model exchange in every algorithm of the paper operates on *flattened*
//! parameter vectors (`x ∈ R^N`), so the hot inner loops live here as free
//! functions over `&[f32]`.

/// Dot product of two equal-length slices.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x` (BLAS axpy).
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `y = y * beta + x * alpha`.
pub fn axpby(alpha: f32, x: &[f32], beta: f32, y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = *yi * beta + alpha * xi;
    }
}

/// Squared l2 norm.
pub fn norm_sq(a: &[f32]) -> f32 {
    a.iter().map(|x| x * x).sum()
}

/// l2 norm.
pub fn norm(a: &[f32]) -> f32 {
    norm_sq(a).sqrt()
}

/// Squared l2 distance between two slices.
pub fn dist_sq(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Index of the maximum element (first on ties). Panics on empty input.
pub fn argmax(a: &[f32]) -> usize {
    assert!(!a.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &v) in a.iter().enumerate() {
        if v > a[best] {
            best = i;
        }
    }
    best
}

/// Element-wise mean of `k` equal-length vectors into a fresh vector.
///
/// Panics if `vs` is empty or lengths differ.
pub fn mean_of(vs: &[&[f32]]) -> Vec<f32> {
    assert!(!vs.is_empty(), "mean_of: need at least one vector");
    let n = vs[0].len();
    let mut out = vec![0.0f32; n];
    for v in vs {
        assert_eq!(v.len(), n, "mean_of: length mismatch");
        axpy(1.0, v, &mut out);
    }
    let inv = 1.0 / vs.len() as f32;
    for o in &mut out {
        *o *= inv;
    }
    out
}

/// Masked average used by the SAPS-PSGD exchange step (Algorithm 2, line
/// 10, in its doubly-stochastic form):
///
/// for every index `i` in `mask_indices`:
/// `x[i] = (x[i] + peer[i]) / 2`; all other coordinates are left untouched
/// (`x ∘ ¬m` term).
///
/// `peer_sparse` holds the peer's values *for the masked indices only*, in
/// the same order as `mask_indices`.
pub fn masked_average(x: &mut [f32], mask_indices: &[u32], peer_sparse: &[f32]) {
    debug_assert_eq!(mask_indices.len(), peer_sparse.len());
    for (&i, &pv) in mask_indices.iter().zip(peer_sparse) {
        let xi = &mut x[i as usize];
        *xi = 0.5 * (*xi + pv);
    }
}

/// Gathers the values of `x` at `indices` into a fresh vector.
pub fn gather(x: &[f32], indices: &[u32]) -> Vec<f32> {
    indices.iter().map(|&i| x[i as usize]).collect()
}

/// Scatters `values` into `x` at `indices` (overwrite semantics).
pub fn scatter(x: &mut [f32], indices: &[u32], values: &[f32]) {
    debug_assert_eq!(indices.len(), values.len());
    for (&i, &v) in indices.iter().zip(values) {
        x[i as usize] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        assert_eq!(dot(&a, &b), 32.0);
        assert_eq!(norm_sq(&a), 14.0);
        assert!((norm(&a) - 14.0f32.sqrt()).abs() < 1e-7);
        assert_eq!(dist_sq(&a, &b), 27.0);
    }

    #[test]
    fn axpy_axpby() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
        axpby(1.0, &x, 0.5, &mut y);
        assert_eq!(y, [7.0, 14.0]);
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[-5.0]), 0);
    }

    #[test]
    fn mean_of_vectors() {
        let a = [1.0, 2.0];
        let b = [3.0, 6.0];
        let m = mean_of(&[&a, &b]);
        assert_eq!(m, vec![2.0, 4.0]);
    }

    #[test]
    fn masked_average_touches_only_masked() {
        let mut x = vec![1.0, 2.0, 3.0, 4.0];
        masked_average(&mut x, &[1, 3], &[4.0, 0.0]);
        assert_eq!(x, vec![1.0, 3.0, 3.0, 2.0]);
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let x = vec![10.0, 11.0, 12.0, 13.0];
        let idx = [0u32, 2];
        let g = gather(&x, &idx);
        assert_eq!(g, vec![10.0, 12.0]);
        let mut y = vec![0.0; 4];
        scatter(&mut y, &idx, &g);
        assert_eq!(y, vec![10.0, 0.0, 12.0, 0.0]);
    }
}
