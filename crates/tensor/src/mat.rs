//! `f64` matrices and the deflated power-iteration eigensolver used for the
//! spectral analysis of gossip matrices.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A row-major `f64` matrix.
///
/// Used wherever the workspace needs numerically careful linear algebra —
/// primarily computing the second-largest eigenvalue ρ of `E[WᵀW]`
/// (Assumption 3 in the paper), which governs consensus speed.
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity.
    pub fn eye(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Wraps a buffer; panics if `rows * cols != data.len()`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(rows * cols, data.len(), "Mat::from_vec: bad dimensions");
        Mat { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of the row-major buffer.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Matrix product `self * other`.
    pub fn matmul(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.rows, "Mat::matmul: dimension mismatch");
        let mut out = Mat::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Mat {
        let mut out = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// `self + other`, element-wise.
    pub fn add(&self, other: &Mat) -> Mat {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Mat {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// `self * alpha`, element-wise.
    pub fn scale(&self, alpha: f64) -> Mat {
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|a| a * alpha).collect(),
        }
    }

    /// Matrix–vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "Mat::matvec: dimension mismatch");
        self.data
            .chunks_exact(self.cols)
            .map(|row| row.iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Whether every row and every column sums to 1 (within `tol`) and all
    /// entries are non-negative — i.e. the matrix is doubly stochastic.
    pub fn is_doubly_stochastic(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        if self.data.iter().any(|&v| v < -tol) {
            return false;
        }
        for i in 0..self.rows {
            let rs: f64 = (0..self.cols).map(|j| self[(i, j)]).sum();
            if (rs - 1.0).abs() > tol {
                return false;
            }
        }
        for j in 0..self.cols {
            let cs: f64 = (0..self.rows).map(|i| self[(i, j)]).sum();
            if (cs - 1.0).abs() > tol {
                return false;
            }
        }
        true
    }

    /// Maximum absolute difference to `other`.
    pub fn max_abs_diff(&self, other: &Mat) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Largest eigenvalue (in absolute value) and eigenvector of a
    /// **symmetric** matrix by power iteration.
    ///
    /// Returns `(lambda, v)` with `‖v‖ = 1`. Deterministic: the starting
    /// vector is drawn from a fixed-seed RNG.
    pub fn power_iteration(&self, iters: usize) -> (f64, Vec<f64>) {
        self.power_iteration_deflated(&[], iters)
    }

    /// Power iteration orthogonalized against the given (unit-norm)
    /// `deflate` vectors, so it converges to the dominant eigenpair of the
    /// subspace orthogonal to them.
    pub fn power_iteration_deflated(&self, deflate: &[Vec<f64>], iters: usize) -> (f64, Vec<f64>) {
        assert_eq!(
            self.rows, self.cols,
            "power iteration needs a square matrix"
        );
        let n = self.rows;
        let mut rng = StdRng::seed_from_u64(0x5eed_0123);
        let mut v: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        orthogonalize(&mut v, deflate);
        normalize(&mut v);
        let mut lambda = 0.0;
        for _ in 0..iters {
            let mut w = self.matvec(&v);
            orthogonalize(&mut w, deflate);
            let norm = l2(&w);
            if norm < 1e-300 {
                return (0.0, v);
            }
            for x in &mut w {
                *x /= norm;
            }
            lambda = dot(&w, &self.matvec(&w));
            v = w;
        }
        (lambda, v)
    }

    /// Second-largest eigenvalue (by absolute value) of a **symmetric
    /// doubly-stochastic** matrix, i.e. the dominant eigenvalue after
    /// removing the all-ones eigenvector (eigenvalue 1).
    ///
    /// Rather than Gram–Schmidt inside the iteration (which is numerically
    /// fragile when the deflated spectrum is ~0: the floating-point residue
    /// of `A·v` is exactly parallel to `1`, so renormalization snaps back
    /// to the deflated eigenvector), this subtracts the rank-one component
    /// explicitly: `A' = A − J/n`, whose dominant eigenvalue is ρ.
    ///
    /// For positive semi-definite inputs such as `E[WᵀW]` this equals the
    /// true second-largest eigenvalue — the ρ of the paper's Assumption 3;
    /// consensus requires ρ < 1.
    pub fn second_eigenvalue_stochastic(&self, iters: usize) -> f64 {
        assert_eq!(self.rows, self.cols);
        let n = self.rows;
        let mut deflated = self.clone();
        let inv = 1.0 / n as f64;
        for v in &mut deflated.data {
            *v -= inv;
        }
        let (lambda, _) = deflated.power_iteration(iters);
        lambda.abs()
    }
}

impl std::ops::Index<(usize, usize)> for Mat {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Mat {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn l2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

fn normalize(v: &mut [f64]) {
    let n = l2(v);
    if n > 0.0 {
        for x in v {
            *x /= n;
        }
    }
}

fn orthogonalize(v: &mut [f64], basis: &[Vec<f64>]) {
    for b in basis {
        let proj = dot(v, b);
        for (x, y) in v.iter_mut().zip(b) {
            *x -= proj * y;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let mut a = Mat::zeros(2, 2);
        a[(0, 0)] = 1.0;
        a[(0, 1)] = 2.0;
        a[(1, 0)] = 3.0;
        a[(1, 1)] = 4.0;
        let prod = a.matmul(&Mat::eye(2));
        assert!(prod.max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn power_iteration_finds_dominant_eigenvalue() {
        // diag(3, 1) has dominant eigenvalue 3 with eigenvector e1.
        let mut a = Mat::zeros(2, 2);
        a[(0, 0)] = 3.0;
        a[(1, 1)] = 1.0;
        let (lambda, v) = a.power_iteration(200);
        assert!((lambda - 3.0).abs() < 1e-9, "lambda = {lambda}");
        assert!(v[0].abs() > 0.999);
    }

    #[test]
    fn second_eigenvalue_of_complete_mixing_is_zero() {
        // W = 11ᵀ/n mixes perfectly: eigenvalues are 1, 0, ..., 0.
        let n = 6;
        let w = Mat::from_vec(n, n, vec![1.0 / n as f64; n * n]);
        let rho = w.second_eigenvalue_stochastic(300);
        assert!(rho.abs() < 1e-9, "rho = {rho}");
    }

    #[test]
    fn second_eigenvalue_of_identity_is_one() {
        // Identity never mixes: every eigenvalue is 1, so rho = 1.
        let rho = Mat::eye(5).second_eigenvalue_stochastic(300);
        assert!((rho - 1.0).abs() < 1e-9, "rho = {rho}");
    }

    #[test]
    fn second_eigenvalue_ring_lazy_walk() {
        // Lazy random walk on a 4-cycle: W = I/2 + A/4 where A is the cycle
        // adjacency. Eigenvalues of the cycle: 2cos(2πk/n) ∈ {2, 0, -2, 0};
        // W eigenvalues: 1/2 + cos(2πk/4)/2 ∈ {1, 1/2, 0, 1/2}. rho = 1/2.
        let n = 4;
        let mut w = Mat::zeros(n, n);
        for i in 0..n {
            w[(i, i)] = 0.5;
            w[(i, (i + 1) % n)] = 0.25;
            w[(i, (i + n - 1) % n)] = 0.25;
        }
        assert!(w.is_doubly_stochastic(1e-12));
        let rho = w.second_eigenvalue_stochastic(500);
        assert!((rho - 0.5).abs() < 1e-6, "rho = {rho}");
    }

    #[test]
    fn doubly_stochastic_detects_violations() {
        let mut w = Mat::eye(3);
        assert!(w.is_doubly_stochastic(1e-12));
        w[(0, 1)] = 0.1;
        assert!(!w.is_doubly_stochastic(1e-12));
    }

    #[test]
    fn matvec_known() {
        let a = Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let v = a.matvec(&[1.0, 0.0, -1.0]);
        assert_eq!(v, vec![-2.0, -2.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert!(a.transpose().transpose().max_abs_diff(&a) < 1e-15);
    }
}
