//! The `f32` dense tensor used by the neural-network substrate.

use crate::TensorError;
use rand::distributions::Distribution;
use rand::Rng;

/// A row-major, `f32`, n-dimensional dense tensor.
///
/// `Tensor` is the parameter/activation container for `saps-nn`. It favours
/// simplicity and determinism over raw speed: all operations are
/// single-threaded and allocation-explicit so that distributed-training
/// experiments are bit-for-bit reproducible.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; n],
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let n: usize = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![value; n],
        }
    }

    /// Creates a square identity matrix of side `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Wraps an existing buffer. Panics if `shape` does not cover `data`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        Self::try_from_vec(data, shape).expect("shape must cover data length")
    }

    /// Wraps an existing buffer, returning an error on mismatch.
    pub fn try_from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self, TensorError> {
        let n: usize = shape.iter().product();
        if n != data.len() {
            return Err(TensorError::BadShape {
                shape: shape.to_vec(),
                len: data.len(),
            });
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            data,
        })
    }

    /// Samples each element i.i.d. from `N(0, std²)`.
    pub fn randn<R: Rng>(shape: &[usize], std: f32, rng: &mut R) -> Self {
        let n: usize = shape.iter().product();
        let normal = StandardNormal;
        let data = (0..n).map(|_| normal.sample(rng) * std).collect();
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Samples each element i.i.d. uniformly from `[-bound, bound]`.
    pub fn uniform<R: Rng>(shape: &[usize], bound: f32, rng: &mut R) -> Self {
        let n: usize = shape.iter().product();
        let data = (0..n).map(|_| rng.gen_range(-bound..=bound)).collect();
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying buffer (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reinterprets the buffer with a new shape of equal element count.
    pub fn reshape(mut self, shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(n, self.data.len(), "reshape must preserve element count");
        self.shape = shape.to_vec();
        self
    }

    /// Element at a 2-D index; the tensor must be 2-D.
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 2);
        self.data[r * self.shape[1] + c]
    }

    /// Element-wise sum with `other`. Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "add: shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// In-place element-wise `self += alpha * other`.
    pub fn add_scaled_assign(&mut self, other: &Tensor, alpha: f32) {
        assert_eq!(self.shape, other.shape, "add_scaled_assign: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Element-wise difference `self - other`. Panics on shape mismatch.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "sub: shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Element-wise (Hadamard) product. Panics on shape mismatch.
    pub fn hadamard(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "hadamard: shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .collect();
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Returns `self * alpha`.
    pub fn scale(&self, alpha: f32) -> Tensor {
        let data = self.data.iter().map(|a| a * alpha).collect();
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// In-place scaling `self *= alpha`.
    pub fn scale_assign(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Squared l2 norm of the flattened tensor.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|a| a * a).sum()
    }

    /// 2-D matrix product. Both operands must be 2-D with inner dims equal.
    ///
    /// Uses a cache-friendly ikj loop ordering; good enough for the small
    /// models the paper evaluates.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul: lhs must be 2-D");
        assert_eq!(other.shape.len(), 2, "matmul: rhs must be 2-D");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul: inner dimensions must agree");
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let arow = &self.data[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for (kk, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[kk * n..(kk + 1) * n];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        Tensor {
            shape: vec![m, n],
            data: out,
        }
    }

    /// Matrix product with the *transpose* of `other`: `self * otherᵀ`.
    pub fn matmul_t(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul_t: lhs must be 2-D");
        assert_eq!(other.shape.len(), 2, "matmul_t: rhs must be 2-D");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (n, k2) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul_t: inner dimensions must agree");
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let arow = &self.data[i * k..(i + 1) * k];
            for j in 0..n {
                let brow = &other.data[j * k..(j + 1) * k];
                let mut acc = 0.0;
                for (a, b) in arow.iter().zip(brow) {
                    acc += a * b;
                }
                out[i * n + j] = acc;
            }
        }
        Tensor {
            shape: vec![m, n],
            data: out,
        }
    }

    /// Matrix product of the transpose of `self` with `other`: `selfᵀ * other`.
    pub fn t_matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "t_matmul: lhs must be 2-D");
        assert_eq!(other.shape.len(), 2, "t_matmul: rhs must be 2-D");
        let (k, m) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "t_matmul: inner dimensions must agree");
        let mut out = vec![0.0f32; m * n];
        for kk in 0..k {
            let arow = &self.data[kk * m..(kk + 1) * m];
            let brow = &other.data[kk * n..(kk + 1) * n];
            for (i, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        Tensor {
            shape: vec![m, n],
            data: out,
        }
    }

    /// 2-D transpose.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "transpose: tensor must be 2-D");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor {
            shape: vec![n, m],
            data: out,
        }
    }

    /// Applies `f` element-wise, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&a| f(a)).collect(),
        }
    }
}

/// A Box–Muller standard normal sampler (avoids pulling in `rand_distr`).
struct StandardNormal;

impl Distribution<f32> for StandardNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        // Box–Muller: two uniforms -> one normal (we discard the pair).
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_and_full() {
        let z = Tensor::zeros(&[2, 3]);
        assert_eq!(z.len(), 6);
        assert!(z.data().iter().all(|&v| v == 0.0));
        let f = Tensor::full(&[4], 2.5);
        assert!(f.data().iter().all(|&v| v == 2.5));
    }

    #[test]
    fn eye_is_identity_for_matmul() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Tensor::randn(&[3, 3], 1.0, &mut rng);
        let i = Tensor::eye(3);
        let prod = a.matmul(&i);
        for (x, y) in prod.data().iter().zip(a.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn from_vec_checks_shape() {
        assert!(Tensor::try_from_vec(vec![1.0; 6], &[2, 3]).is_ok());
        assert!(matches!(
            Tensor::try_from_vec(vec![1.0; 5], &[2, 3]),
            Err(TensorError::BadShape { .. })
        ));
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Tensor::randn(&[4, 3], 1.0, &mut rng);
        let b = Tensor::randn(&[5, 3], 1.0, &mut rng);
        let fast = a.matmul_t(&b);
        let slow = a.matmul(&b.transpose());
        for (x, y) in fast.data().iter().zip(slow.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Tensor::randn(&[4, 3], 1.0, &mut rng);
        let b = Tensor::randn(&[4, 5], 1.0, &mut rng);
        let fast = a.t_matmul(&b);
        let slow = a.transpose().matmul(&b);
        for (x, y) in fast.data().iter().zip(slow.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 5.0], &[2]);
        assert_eq!(a.add(&b).data(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).data(), &[2.0, 3.0]);
        assert_eq!(a.hadamard(&b).data(), &[3.0, 10.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0]);
        assert_eq!(a.sum(), 3.0);
        assert_eq!(a.norm_sq(), 5.0);
    }

    #[test]
    fn add_scaled_assign_accumulates() {
        let mut a = Tensor::from_vec(vec![1.0, 1.0], &[2]);
        let g = Tensor::from_vec(vec![2.0, 4.0], &[2]);
        a.add_scaled_assign(&g, -0.5);
        assert_eq!(a.data(), &[0.0, -1.0]);
    }

    #[test]
    fn randn_has_reasonable_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let t = Tensor::randn(&[10_000], 1.0, &mut rng);
        let mean = t.sum() / t.len() as f32;
        let var = t.norm_sq() / t.len() as f32 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).reshape(&[4]);
        assert_eq!(t.shape(), &[4]);
        assert_eq!(t.data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_panics_on_mismatch() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        let _ = a.add(&b);
    }
}
