//! Deterministic seed derivation.
//!
//! The coordinator in the paper broadcasts a single random seed `s` each
//! round; every worker must expand it into *identical* randomness (the mask
//! `m_t`) without further communication. This module provides the one
//! canonical way the whole workspace derives per-round / per-purpose seeds,
//! so independent components can agree on randomness by construction.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Mixes a base seed with a round counter (and an optional stream tag) into
/// a new 64-bit seed using splitmix64 finalization steps.
///
/// Properties relied on across the workspace:
/// * deterministic — same inputs, same output, on every platform;
/// * distinct streams — different `(seed, round, stream)` triples give
///   unrelated RNG streams in practice.
pub fn derive_seed(seed: u64, round: u64, stream: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(round.wrapping_add(1)))
        .wrapping_add(0xBF58_476D_1CE4_E5B9u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Constructs a [`StdRng`] from a derived seed. Convenience wrapper around
/// [`derive_seed`] + `StdRng::seed_from_u64`.
pub fn rng_for(seed: u64, round: u64, stream: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed(seed, round, stream))
}

/// Well-known stream tags, so call sites don't collide by accident.
pub mod streams {
    /// The shared sparsification mask `m_t` (Algorithm 2, line 6).
    pub const MASK: u64 = 1;
    /// Mini-batch sampling on a worker (add the worker rank to this).
    pub const BATCH: u64 = 1000;
    /// Gossip-matrix generation randomness (`RandomlyMaxMatch`).
    pub const MATCHING: u64 = 2;
    /// Client sampling in FedAvg-style algorithms.
    pub const CLIENT_SAMPLE: u64 = 3;
    /// Synthetic data generation.
    pub const DATA: u64 = 4;
    /// Model initialization.
    pub const INIT: u64 = 5;
    /// Bandwidth matrix generation.
    pub const BANDWIDTH: u64 = 6;
    /// Worker churn (join/leave) events.
    pub const CHURN: u64 = 7;
    /// The per-round RNG handed to trainers through `RoundCtx`.
    pub const ROUND: u64 = 8;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic() {
        assert_eq!(derive_seed(42, 7, 1), derive_seed(42, 7, 1));
    }

    #[test]
    fn distinct_rounds_and_streams() {
        let base = derive_seed(42, 0, 0);
        assert_ne!(base, derive_seed(42, 1, 0));
        assert_ne!(base, derive_seed(42, 0, 1));
        assert_ne!(base, derive_seed(43, 0, 0));
    }

    #[test]
    fn rng_streams_agree_across_instances() {
        // Two "workers" deriving the mask RNG for the same round must see
        // identical streams.
        let mut a = rng_for(9, 3, streams::MASK);
        let mut b = rng_for(9, 3, streams::MASK);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn no_trivial_collisions_over_rounds() {
        let mut seen = std::collections::HashSet::new();
        for t in 0..10_000u64 {
            assert!(seen.insert(derive_seed(123, t, streams::MASK)));
        }
    }
}
