//! Reusable `f32` buffers for per-round hot paths.
//!
//! Every communication round used to allocate (and drop) a handful of
//! model-sized vectors per worker — flattened parameters, mean
//! gradients, mixed models. A [`BufferPool`] keeps those vectors alive
//! between rounds: a trainer checks a buffer out at the start of a
//! phase, fills it, and checks it back in when the phase ends, so after
//! the first round the steady state performs no model-sized allocations.
//!
//! The pool is deliberately value-dumb: buffers come back with whatever
//! contents the last user left (sized to the request, zero-filled on
//! growth), so callers must fully overwrite them — which every current
//! user does by construction (`copy_from_slice`, `clear` + `extend`,
//! or writing all `n` coordinates).

/// A last-in-first-out pool of `Vec<f32>` scratch buffers.
///
/// ```
/// use saps_tensor::scratch::BufferPool;
///
/// let mut pool = BufferPool::new();
/// let mut a = pool.take(4);
/// assert_eq!(a.len(), 4);
/// a.copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
/// pool.give(a);
/// // The next taker reuses the allocation.
/// let b = pool.take(4);
/// assert!(b.capacity() >= 4);
/// ```
#[derive(Debug, Default)]
pub struct BufferPool {
    free: Vec<Vec<f32>>,
}

impl BufferPool {
    /// An empty pool.
    pub fn new() -> Self {
        BufferPool { free: Vec::new() }
    }

    /// Checks out a buffer resized to exactly `len` elements, reusing a
    /// previously returned allocation when one is available. Contents
    /// are unspecified (stale values up to the old length, zeros
    /// beyond) — overwrite before reading.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        let mut buf = self.free.pop().unwrap_or_default();
        buf.resize(len, 0.0);
        buf
    }

    /// Like [`BufferPool::take`] but zero-filled, for accumulators.
    pub fn take_zeroed(&mut self, len: usize) -> Vec<f32> {
        let mut buf = self.take(len);
        buf.iter_mut().for_each(|v| *v = 0.0);
        buf
    }

    /// Returns a buffer to the pool for the next [`BufferPool::take`].
    pub fn give(&mut self, buf: Vec<f32>) {
        self.free.push(buf);
    }

    /// Number of buffers currently checked in.
    pub fn available(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_resizes_and_give_recycles() {
        let mut pool = BufferPool::new();
        let a = pool.take(8);
        assert_eq!(a.len(), 8);
        let ptr = a.as_ptr();
        pool.give(a);
        assert_eq!(pool.available(), 1);
        let b = pool.take(6);
        assert_eq!(b.len(), 6);
        assert_eq!(b.as_ptr(), ptr, "allocation was not reused");
        assert_eq!(pool.available(), 0);
    }

    #[test]
    fn take_zeroed_clears_stale_values() {
        let mut pool = BufferPool::new();
        let mut a = pool.take(4);
        a.copy_from_slice(&[9.0; 4]);
        pool.give(a);
        let b = pool.take_zeroed(4);
        assert_eq!(b, vec![0.0; 4]);
    }

    #[test]
    fn growth_zero_fills_the_tail() {
        let mut pool = BufferPool::new();
        let mut a = pool.take(2);
        a.copy_from_slice(&[5.0, 5.0]);
        pool.give(a);
        let b = pool.take(4);
        assert_eq!(&b[2..], &[0.0, 0.0]);
    }
}
