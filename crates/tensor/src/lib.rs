//! Dense tensor and linear-algebra substrate for the SAPS-PSGD reproduction.
//!
//! This crate provides the two numeric workhorses the rest of the workspace
//! builds on:
//!
//! * [`Tensor`] — an `f32`, row-major, n-dimensional dense tensor used by the
//!   neural-network substrate (`saps-nn`) for parameters, activations and
//!   gradients. It is deliberately small: just the operations the paper's
//!   models need (GEMM, element-wise arithmetic, reductions, im2col-friendly
//!   indexing).
//! * [`Mat`] — an `f64`, row-major matrix used for the *spectral* analysis of
//!   gossip matrices (`saps-gossip`): matrix products, symmetrization, and a
//!   deflated power-iteration eigensolver that extracts the second-largest
//!   eigenvalue ρ of `E[WᵀW]` (Assumption 3 of the paper).
//!
//! A handful of free functions in [`ops`] operate directly on `&[f32]`
//! slices; they are the hot path for model exchange (axpy, dot, masked
//! averaging) and are shared by every algorithm implementation.
//!
//! # Example
//!
//! ```
//! use saps_tensor::{Tensor, ops};
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.data(), a.data());
//! assert_eq!(ops::dot(a.data(), b.data()), 5.0);
//! ```

#![warn(missing_docs)]

mod mat;
pub mod ops;
pub mod rng;
pub mod scratch;
mod tensor;

pub use mat::Mat;
pub use tensor::Tensor;

/// Error type for shape mismatches and invalid tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two tensors had incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        lhs: Vec<usize>,
        /// Shape of the right-hand operand.
        rhs: Vec<usize>,
    },
    /// A shape whose element product does not match the data length.
    BadShape {
        /// The offending shape.
        shape: Vec<usize>,
        /// Number of elements actually provided.
        len: usize,
    },
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::ShapeMismatch { lhs, rhs } => {
                write!(f, "shape mismatch: {lhs:?} vs {rhs:?}")
            }
            TensorError::BadShape { shape, len } => {
                write!(f, "shape {shape:?} does not cover {len} elements")
            }
        }
    }
}

impl std::error::Error for TensorError {}
