//! Deterministic parallel execution for the round engine.
//!
//! Every algorithm in this workspace has the same round shape: a
//! *compute phase* where each worker runs an independent local step
//! (SGD on its own model, with its own RNG, over its own data shard),
//! followed by an *exchange phase* that combines the already-computed
//! results. The compute phase is embarrassingly parallel; this crate is
//! the execution layer that fans it out across OS threads without
//! changing a single bit of the result.
//!
//! The crate is dependency-free on purpose (this build environment has
//! no crates.io access): [`Executor::par_map`] is a scoped fork-join
//! built directly on [`std::thread::scope`]. Threads are spawned per
//! call; for the workloads this repo runs (a full forward/backward pass
//! per worker per round) the spawn cost is noise next to the compute.
//!
//! # Determinism
//!
//! [`Executor::par_map`] partitions the items into contiguous chunks,
//! one per thread, and writes each result into a slot indexed by the
//! item's original position. The mapping from item to invocation
//! (`f(index, item)`) and the order of the returned vector are therefore
//! independent of the thread count and of OS scheduling. As long as `f`
//! itself is deterministic per item — true for every per-worker step in
//! this workspace, because each worker owns its model, data shard and
//! RNG — a run at [`ParallelismPolicy::Threads`]`(n)` is bit-identical
//! to a run at [`ParallelismPolicy::Sequential`]. The workspace enforces
//! this with a conformance test over all eight algorithms
//! (`tests/trainer_conformance.rs`).
//!
//! # Example
//!
//! ```
//! use saps_runtime::{Executor, ParallelismPolicy};
//!
//! let mut cells = vec![1u64, 2, 3, 4, 5];
//! let exec = Executor::new(ParallelismPolicy::Threads(3));
//! let doubled = exec.par_map(cells.iter_mut().collect(), |i, c| {
//!     *c *= 2; // mutate in place…
//!     *c + i as u64 // …and return a per-item result, in item order
//! });
//! assert_eq!(doubled, vec![2, 5, 8, 11, 14]);
//! assert_eq!(cells, vec![2, 4, 6, 8, 10]);
//!
//! // The same map on one thread produces the identical result.
//! let seq = Executor::sequential();
//! let mut cells2 = vec![2u64, 4, 6, 8, 10];
//! assert_eq!(seq.par_map(cells2.iter_mut().collect(), |i, c| *c + i as u64), doubled);
//! ```

#![deny(missing_docs)]

/// How many OS threads the round engine may use for per-worker compute.
///
/// The default is [`ParallelismPolicy::Auto`]: use every core the
/// machine offers. [`ParallelismPolicy::Sequential`] exists for
/// debugging (single-stepping, profiling one worker, bisecting) — it is
/// *not* needed for reproducibility, because parallel runs are
/// bit-identical to sequential ones by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParallelismPolicy {
    /// One worker at a time on the calling thread (debugging only).
    Sequential,
    /// Exactly `n` threads (clamped to at least 1).
    Threads(usize),
    /// One thread per available core, capped by the `SAPS_THREADS`
    /// environment variable when set (how CI pins the suite to a given
    /// thread count without touching code).
    #[default]
    Auto,
}

impl ParallelismPolicy {
    /// Resolves the policy to a concrete thread count (>= 1).
    pub fn resolve(self) -> usize {
        match self {
            ParallelismPolicy::Sequential => 1,
            ParallelismPolicy::Threads(n) => n.max(1),
            ParallelismPolicy::Auto => {
                if let Some(n) = std::env::var("SAPS_THREADS")
                    .ok()
                    .and_then(|v| v.parse::<usize>().ok())
                {
                    return n.max(1);
                }
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            }
        }
    }
}

/// The execution lane for per-worker compute: a resolved thread count
/// plus the scoped fork-join that uses it.
///
/// `Executor` is `Copy` — it carries configuration, not threads; the
/// threads live only for the duration of one [`Executor::par_map`]
/// call (scoped, so borrowed data may cross into them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    threads: usize,
}

impl Executor {
    /// An executor for `policy`, resolved now (so `Auto` reads the
    /// environment once, not per round).
    pub fn new(policy: ParallelismPolicy) -> Self {
        Executor {
            threads: policy.resolve(),
        }
    }

    /// The single-threaded executor ([`ParallelismPolicy::Sequential`]).
    pub fn sequential() -> Self {
        Executor { threads: 1 }
    }

    /// The resolved thread count (>= 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether more than one thread will be used.
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }

    /// Applies `f` to every item, fanning out across up to
    /// [`Executor::threads`] scoped threads, and returns the results in
    /// item order.
    ///
    /// `f` receives the item's original index and the item by value
    /// (pass `&mut T`s to mutate in place). Items are split into
    /// contiguous chunks, one chunk per thread, so the assignment of
    /// items to invocations and the output order never depend on
    /// scheduling — see the crate docs for the determinism contract.
    pub fn par_map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        let threads = self.threads.min(n);
        if threads <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, t)| f(i, t))
                .collect();
        }
        let chunk = n.div_ceil(threads);
        // Chunk the (index, item) pairs up front so each thread owns its
        // inputs and writes into a disjoint slice of the output.
        let mut batches: Vec<Vec<(usize, T)>> = Vec::with_capacity(threads);
        let mut current = Vec::with_capacity(chunk);
        for pair in items.into_iter().enumerate() {
            current.push(pair);
            if current.len() == chunk {
                batches.push(std::mem::replace(&mut current, Vec::with_capacity(chunk)));
            }
        }
        if !current.is_empty() {
            batches.push(current);
        }
        let mut out: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
        let f = &f;
        std::thread::scope(|scope| {
            for (slots, batch) in out.chunks_mut(chunk).zip(batches) {
                scope.spawn(move || {
                    for (slot, (i, item)) in slots.iter_mut().zip(batch) {
                        *slot = Some(f(i, item));
                    }
                });
            }
        });
        out.into_iter()
            .map(|r| r.expect("par_map slot not filled"))
            .collect()
    }

    /// Splits `items` into consecutive micro-batches of at most
    /// `batch_size` items, fans the *batches* out with
    /// [`Executor::par_map`], and returns one result per batch, in batch
    /// order.
    ///
    /// This is the serving-plane entry point (`saps-serve` drains each
    /// replica's request queue through it): batching amortizes per-call
    /// overhead while the contiguous split keeps the batch composition —
    /// and therefore every batched forward pass — independent of the
    /// thread count. `f` receives the batch index and the owned batch.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is 0.
    pub fn par_map_batches<T, R, F>(&self, items: Vec<T>, batch_size: usize, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, Vec<T>) -> R + Sync,
    {
        assert!(batch_size > 0, "batch_size must be >= 1");
        let mut batches: Vec<Vec<T>> = Vec::with_capacity(items.len().div_ceil(batch_size));
        let mut current = Vec::with_capacity(batch_size.min(items.len()));
        for item in items {
            current.push(item);
            if current.len() == batch_size {
                batches.push(std::mem::take(&mut current));
            }
        }
        if !current.is_empty() {
            batches.push(current);
        }
        self.par_map(batches, f)
    }
}

impl Default for Executor {
    fn default() -> Self {
        Executor::new(ParallelismPolicy::Auto)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn policies_resolve_to_at_least_one_thread() {
        assert_eq!(ParallelismPolicy::Sequential.resolve(), 1);
        assert_eq!(ParallelismPolicy::Threads(4).resolve(), 4);
        assert_eq!(ParallelismPolicy::Threads(0).resolve(), 1);
        assert!(ParallelismPolicy::Auto.resolve() >= 1);
    }

    #[test]
    fn par_map_preserves_item_order() {
        for threads in [1usize, 2, 3, 7, 64] {
            let exec = Executor::new(ParallelismPolicy::Threads(threads));
            let items: Vec<usize> = (0..23).collect();
            let out = exec.par_map(items, |i, v| {
                assert_eq!(i, v);
                v * 3
            });
            assert_eq!(
                out,
                (0..23).map(|v| v * 3).collect::<Vec<_>>(),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn par_map_runs_every_item_exactly_once() {
        let hits = AtomicUsize::new(0);
        let exec = Executor::new(ParallelismPolicy::Threads(5));
        let out = exec.par_map((0..100).collect::<Vec<_>>(), |_, v: i32| {
            hits.fetch_add(1, Ordering::Relaxed);
            v
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn par_map_mutates_through_references() {
        let mut data = vec![0u32; 17];
        let exec = Executor::new(ParallelismPolicy::Threads(4));
        exec.par_map(data.iter_mut().collect(), |i, slot: &mut u32| {
            *slot = i as u32 + 1;
        });
        assert_eq!(data, (1..=17).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        // A float reduction per item (not across items) must be
        // bit-identical at any thread count.
        let work = |_: usize, k: u64| -> f32 {
            let mut acc = 0.0f32;
            let mut x = k as f32 + 0.5;
            for _ in 0..1000 {
                x = (x * 1.000_1).sin();
                acc += x;
            }
            acc
        };
        let items: Vec<u64> = (0..31).collect();
        let seq = Executor::sequential().par_map(items.clone(), work);
        for threads in [2usize, 4, 8] {
            let par =
                Executor::new(ParallelismPolicy::Threads(threads)).par_map(items.clone(), work);
            assert_eq!(seq, par, "{threads} threads");
        }
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let exec = Executor::new(ParallelismPolicy::Threads(8));
        let empty: Vec<u8> = Vec::new();
        assert!(exec.par_map(empty, |_, v: u8| v).is_empty());
        assert_eq!(exec.par_map(vec![9u8], |i, v| (i, v)), vec![(0, 9u8)]);
    }

    #[test]
    fn par_map_batches_splits_contiguously_at_any_width() {
        // 10 items at batch 4 → [0..4), [4..8), [8..10) — the same
        // batches whatever the thread count, so batched forwards stay
        // bit-identical.
        let expect = vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7], vec![8, 9]];
        for threads in [1usize, 2, 3, 8] {
            let exec = Executor::new(ParallelismPolicy::Threads(threads));
            let got = exec.par_map_batches((0..10).collect::<Vec<i32>>(), 4, |bi, batch| {
                assert_eq!(batch, expect[bi]);
                batch
            });
            assert_eq!(got, expect, "{threads} threads");
        }
    }

    #[test]
    fn par_map_batches_handles_edges() {
        let exec = Executor::new(ParallelismPolicy::Threads(4));
        let empty: Vec<u8> = Vec::new();
        assert!(exec.par_map_batches(empty, 3, |_, b| b).is_empty());
        // batch_size larger than the input → one batch.
        let one = exec.par_map_batches(vec![1u8, 2], 100, |bi, b| (bi, b));
        assert_eq!(one, vec![(0, vec![1u8, 2])]);
    }

    #[test]
    #[should_panic(expected = "batch_size")]
    fn par_map_batches_rejects_zero_batch() {
        Executor::sequential().par_map_batches(vec![1], 0, |_, b: Vec<i32>| b);
    }
}
