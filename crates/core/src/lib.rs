//! SAPS-PSGD: communication-efficient decentralized learning with
//! sparsification and adaptive peer selection (ICDCS 2020).
//!
//! This crate is the paper's primary contribution, built on the substrate
//! crates of the workspace:
//!
//! * [`GossipGenerator`] — Algorithm 3: per-round peer pairing by maximum
//!   matching on the bandwidth-filtered graph, with the recently-connected
//!   (RC) edge window `T_thres` that keeps `E[WᵀW]`'s second eigenvalue
//!   below 1;
//! * [`Coordinator`] — Algorithm 1: the lightweight tracker that
//!   broadcasts `(W_t, t, seed)` and never touches model bytes;
//! * [`Worker`] — Algorithm 2: local SGD plus the shared-seed sparse
//!   model exchange;
//! * [`SapsPsgd`] — the full algorithm wired into the [`Trainer`]
//!   interface shared with every baseline;
//! * [`AlgorithmSpec`] + [`AlgorithmRegistry`] — the declarative,
//!   fallible construction path every binary/example goes through;
//! * [`Experiment`] — the event-driven driver: dataset + partition
//!   strategy + bandwidth model + [`ScenarioEvent`] schedule + observers,
//!   producing the [`experiment::RunHistory`] curves behind Figs. 3-6 and
//!   Tables III/IV;
//! * [`Executor`] / [`ParallelismPolicy`] (re-exported from
//!   `saps-runtime`) — the deterministic multi-threaded round engine:
//!   every round's per-worker compute phase fans out across threads and
//!   produces bit-identical results at any thread count;
//! * [`complexity`] — Table I's analytic communication-cost formulas.
//!
//! The crate map, actor roles and round lifecycle are documented
//! end-to-end in `docs/ARCHITECTURE.md` at the repository root.
//!
//! # Example
//!
//! ```
//! use saps_core::{AlgorithmRegistry, AlgorithmSpec, Experiment};
//! use saps_data::SyntheticSpec;
//!
//! let ds = SyntheticSpec::tiny().samples(512).generate(1);
//! let (train, val) = ds.split(0.25, 0);
//! let spec = AlgorithmSpec::parse("saps").unwrap().with_compression(4.0);
//! let hist = Experiment::new(spec)
//!     .train(train)
//!     .validation(val)
//!     .workers(4)
//!     .batch_size(16)
//!     .model(|rng| saps_nn::zoo::mlp(&[16, 16, 4], rng))
//!     .rounds(5)
//!     .run(&AlgorithmRegistry::core())
//!     .unwrap();
//! assert!(hist.points.iter().all(|p| p.train_loss.is_finite()));
//! ```

#![deny(missing_docs)]

pub mod checkpoint;
pub mod complexity;
mod coordinator;
mod error;
pub mod experiment;
mod gossipgen;
mod registry;
mod scenario;
mod spec;
mod trainer;
mod worker;

pub use coordinator::{Coordinator, RoundPlan, SapsControl};
pub use error::ConfigError;
pub use experiment::{
    CsvSink, Experiment, HistoryPoint, PartitionStrategy, RoundObserver, RunHistory,
};
pub use gossipgen::{GossipGenerator, PeerStrategy};
pub use registry::{AlgorithmRegistry, BuildCtx, BuilderFn, ModelFactory};
pub use saps_netsim::{RoundTiming, TimeModel};
pub use saps_runtime::{Executor, ParallelismPolicy};
pub use saps_telemetry::{Recorder, Value as TelemetryValue};
pub use scenario::{zoo, BandwidthModel, ScenarioEvent, ScheduledEvent};
pub use spec::AlgorithmSpec;
pub use trainer::{RoundCtx, RoundReport, Trainer};
pub use worker::{Worker, WorkerState};

mod saps;
pub use saps::{build_replicas, saps_round_report, SapsConfig, SapsPsgd};
