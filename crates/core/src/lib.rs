//! SAPS-PSGD: communication-efficient decentralized learning with
//! sparsification and adaptive peer selection (ICDCS 2020).
//!
//! This crate is the paper's primary contribution, built on the substrate
//! crates of the workspace:
//!
//! * [`GossipGenerator`] — Algorithm 3: per-round peer pairing by maximum
//!   matching on the bandwidth-filtered graph, with the recently-connected
//!   (RC) edge window `T_thres` that keeps `E[WᵀW]`'s second eigenvalue
//!   below 1;
//! * [`Coordinator`] — Algorithm 1: the lightweight tracker that
//!   broadcasts `(W_t, t, seed)` and never touches model bytes;
//! * [`Worker`] — Algorithm 2: local SGD plus the shared-seed sparse
//!   model exchange;
//! * [`SapsPsgd`] — the full algorithm wired into the [`Trainer`]
//!   interface shared with every baseline;
//! * [`sim`] — the deterministic round-based simulator that runs any
//!   `Trainer` and records accuracy / traffic / time curves (the data
//!   behind Figs. 3, 4, 6 and Tables III, IV);
//! * [`complexity`] — Table I's analytic communication-cost formulas.
//!
//! # Example
//!
//! ```
//! use saps_core::{SapsConfig, SapsPsgd, Trainer};
//! use saps_data::SyntheticSpec;
//! use saps_netsim::{BandwidthMatrix, TrafficAccountant};
//! use rand::SeedableRng;
//!
//! let ds = SyntheticSpec::tiny().samples(256).generate(1);
//! let bw = BandwidthMatrix::constant(4, 1.0);
//! let cfg = SapsConfig {
//!     workers: 4,
//!     compression: 4.0,
//!     lr: 0.1,
//!     batch_size: 16,
//!     ..SapsConfig::default()
//! };
//! let mut algo = SapsPsgd::new(
//!     cfg,
//!     &ds,
//!     &bw,
//!     |rng| saps_nn::zoo::mlp(&[16, 16, 4], rng),
//! );
//! let mut traffic = TrafficAccountant::new(4);
//! let report = algo.round(&mut traffic, &bw);
//! assert!(report.mean_loss.is_finite());
//! ```

#![warn(missing_docs)]

pub mod checkpoint;
pub mod complexity;
mod coordinator;
mod gossipgen;
pub mod sim;
mod trainer;
mod worker;

pub use coordinator::Coordinator;
pub use gossipgen::{GossipGenerator, PeerStrategy};
pub use trainer::{RoundReport, Trainer};
pub use worker::Worker;

mod saps;
pub use saps::{SapsConfig, SapsPsgd};
