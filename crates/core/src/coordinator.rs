//! Algorithm 1: the SAPS-PSGD coordinator.
//!
//! The coordinator is a *tracker*, not a parameter server: per round it
//! ships only `(W_t, t, s)` — a matching, a counter and a 64-bit seed —
//! and receives "ROUND END" notifications. Its total model traffic over a
//! whole run is a single final model (`N`), which is where Table I's
//! server-cost row for SAPS-PSGD comes from.

use crate::{ConfigError, GossipGenerator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use saps_graph::{Graph, Matching};
use saps_netsim::BandwidthMatrix;
use saps_tensor::rng::{derive_seed, streams};

/// What the coordinator broadcasts at the start of a round
/// (Algorithm 1 line 6: `NotifyWorkerToTrain(W_t, t, s)`).
#[derive(Debug, Clone)]
pub struct RoundPlan {
    /// The round counter `t`.
    pub round: u64,
    /// The shared seed `s` from which every worker derives the mask `m_t`.
    pub mask_seed: u64,
    /// The peer pairing defining `W_t`.
    pub matching: Matching,
}

/// The SAPS-PSGD coordinator (Algorithm 1 state).
#[derive(Debug, Clone)]
pub struct Coordinator {
    generator: GossipGenerator,
    rng: StdRng,
    round: u64,
    bthres: f64,
}

impl Coordinator {
    /// Creates the coordinator from the bandwidth matrix.
    ///
    /// `bthres` is the bandwidth threshold of `GetNewConnectedGraph`
    /// (Algorithm 1 lines 9-12); pass `None` to auto-select the largest
    /// threshold that keeps `B*` connected. `tthres` is the RC window of
    /// Algorithm 3.
    pub fn new(bw: &BandwidthMatrix, bthres: Option<f64>, tthres: u32, seed: u64) -> Self {
        let n = bw.len();
        let thres = bthres.unwrap_or_else(|| bw.max_connecting_threshold());
        // A disconnected (e.g. partitioned) matrix auto-selects thres 0;
        // dead links must still never enter B*, so the filter stays
        // strictly positive and matching is confined to live islands.
        let bstar = Graph::from_adjacency(n, &bw.threshold(thres.max(f64::MIN_POSITIVE)));
        let full = Graph::from_threshold(n, bw.as_slice(), f64::MIN_POSITIVE);
        Coordinator {
            generator: GossipGenerator::new(bstar, full, tthres),
            rng: StdRng::seed_from_u64(derive_seed(seed, 0, streams::MATCHING)),
            round: 0,
            bthres: thres,
        }
    }

    /// The bandwidth threshold in effect.
    pub fn bandwidth_threshold(&self) -> f64 {
        self.bthres
    }

    /// Sets the shard ceiling for Algorithm 1's matching pass: `Some(s)`
    /// plans per bandwidth-partition and splits oversized partitions into
    /// ≤ `s`-vertex shards (see
    /// [`saps_graph::matching::sharded_max_match`]); `None` keeps the
    /// monolithic O(n³) blossom pass.
    pub fn set_shard_size(&mut self, shard_size: Option<usize>) {
        self.generator.set_shard_size(shard_size);
    }

    /// Number of workers currently coordinated.
    pub fn worker_count(&self) -> usize {
        self.generator.len()
    }

    /// Rounds started so far (the next plan's `round` field).
    pub fn rounds_done(&self) -> u64 {
        self.round
    }

    /// Runs one round: generates `W_t` (Algorithm 3) and the mask seed,
    /// and advances the round counter. In the real deployment this is the
    /// broadcast to all workers; in the simulator the returned plan is
    /// handed to each [`crate::Worker`] directly.
    pub fn begin_round(&mut self) -> RoundPlan {
        let t = self.round;
        let matching = self.generator.next_matching(t, &mut self.rng);
        let mask_seed = self.rng.gen::<u64>();
        self.round += 1;
        RoundPlan {
            round: t,
            mask_seed,
            matching,
        }
    }

    /// Rebuilds the peer-selection state after membership or bandwidth
    /// changes (worker churn, measured-bandwidth refresh). `keep[i]` maps
    /// new worker index `i` to its previous index, `None` for joiners.
    pub fn rebuild(&mut self, bw: &BandwidthMatrix, keep: &[Option<usize>]) {
        let n = bw.len();
        assert_eq!(n, keep.len());
        let thres = bw.max_connecting_threshold().min(self.bthres);
        // As in `new`: never admit dead links to B*, even when a
        // partitioned matrix drives the auto-selected threshold to 0.
        let bstar = Graph::from_adjacency(n, &bw.threshold(thres.max(f64::MIN_POSITIVE)));
        let full = Graph::from_threshold(n, bw.as_slice(), f64::MIN_POSITIVE);
        self.generator.rebuild(bstar, full, keep);
        self.bthres = thres;
    }
}

/// The coordinator-side *control state* of a SAPS-PSGD deployment:
/// which workers are active, the bandwidth snapshot peer selection plans
/// from, and the [`Coordinator`] generating round plans over the active
/// subset.
///
/// Both execution paths drive the algorithm through this one type — the
/// in-memory [`crate::SapsPsgd`] trainer calls it directly, and the
/// cluster runtime's coordinator node (`saps-cluster`) wraps it behind
/// the wire protocol — so churn semantics, threshold selection and
/// matching RNG streams cannot drift between them.
#[derive(Debug, Clone)]
pub struct SapsControl {
    coordinator: Coordinator,
    active: Vec<bool>,
    /// Bandwidth snapshot used for peer selection (refreshed on demand,
    /// mirroring the paper's "regularly reported" measurements).
    bw_snapshot: BandwidthMatrix,
    bthres: Option<f64>,
    tthres: u32,
    seed: u64,
    shard_size: Option<usize>,
}

impl SapsControl {
    /// Creates the control state for a fully active fleet over `bw`.
    /// `bthres`/`tthres`/`seed` are as in [`Coordinator::new`].
    pub fn new(bw: &BandwidthMatrix, bthres: Option<f64>, tthres: u32, seed: u64) -> Self {
        SapsControl {
            coordinator: Coordinator::new(bw, bthres, tthres, seed),
            active: vec![true; bw.len()],
            bw_snapshot: bw.clone(),
            bthres,
            tthres,
            seed,
            shard_size: None,
        }
    }

    /// Sets the round-planning shard ceiling (see
    /// [`Coordinator::set_shard_size`]); survives churn rebuilds.
    pub fn set_shard_size(&mut self, shard_size: Option<usize>) {
        self.shard_size = shard_size;
        self.coordinator.set_shard_size(shard_size);
    }

    /// Fleet size `n` (inactive workers included).
    pub fn fleet_size(&self) -> usize {
        self.active.len()
    }

    /// The bandwidth threshold currently in effect.
    pub fn bandwidth_threshold(&self) -> f64 {
        self.coordinator.bandwidth_threshold()
    }

    /// Whether worker `rank` is currently active.
    pub fn is_active(&self, rank: usize) -> bool {
        self.active[rank]
    }

    /// Ranks of currently active workers, ascending.
    pub fn active_ranks(&self) -> Vec<usize> {
        (0..self.active.len()).filter(|&r| self.active[r]).collect()
    }

    /// Marks a worker active/inactive (join/leave churn). Peer selection
    /// is rebuilt over the active subset; inactive workers keep their
    /// model and re-join where they left off.
    ///
    /// Fails if `rank` is out of range or deactivation would leave fewer
    /// than two active workers.
    pub fn set_active(&mut self, rank: usize, active: bool) -> Result<(), ConfigError> {
        if rank >= self.active.len() {
            return Err(ConfigError::invalid(
                "SapsControl",
                format!("worker rank {rank} out of range ({})", self.active.len()),
            ));
        }
        if self.active[rank] == active {
            return Ok(());
        }
        if !active && self.active.iter().filter(|&&a| a).count() <= 2 {
            return Err(ConfigError::invalid(
                "SapsControl",
                "cannot deactivate: at least two workers must stay active",
            ));
        }
        self.active[rank] = active;
        self.rebuild();
        Ok(())
    }

    /// The latest reported bandwidth snapshot — the same measurements
    /// peer selection plans over. The cluster runtime ranks chunk-serving
    /// peers for a joiner's catch-up download from this view.
    pub fn bandwidth_snapshot(&self) -> &BandwidthMatrix {
        &self.bw_snapshot
    }

    /// Updates the bandwidth snapshot (the paper's periodically reported
    /// speed measurements) and rebuilds peer selection.
    pub fn refresh_bandwidth(&mut self, bw: &BandwidthMatrix) {
        assert_eq!(bw.len(), self.active.len());
        self.bw_snapshot = bw.clone();
        self.rebuild();
    }

    /// Runs Algorithm 1's per-round step over the active subset: the
    /// returned plan's matching is indexed by *active-subset position*
    /// (translate with [`SapsControl::global_pairs`]).
    pub fn begin_round(&mut self) -> RoundPlan {
        self.coordinator.begin_round()
    }

    /// Rounds started so far (checkpoint exports stamp this counter).
    pub fn rounds_done(&self) -> u64 {
        self.coordinator.rounds_done()
    }

    /// Translates a plan's active-subset matching into global-rank
    /// pairs, in the matching's pair order.
    pub fn global_pairs(&self, matching: &Matching) -> Vec<(usize, usize)> {
        let ranks = self.active_ranks();
        matching
            .pairs()
            .iter()
            .map(|&(ai, aj)| (ranks[ai], ranks[aj]))
            .collect()
    }

    fn rebuild(&mut self) {
        let ranks = self.active_ranks();
        let m = ranks.len();
        // Submatrix of the snapshot over the active ranks.
        let mut raw = vec![0.0f64; m * m];
        for (i, &ri) in ranks.iter().enumerate() {
            for (j, &rj) in ranks.iter().enumerate() {
                raw[i * m + j] = self.bw_snapshot.get(ri, rj);
            }
        }
        let sub = BandwidthMatrix::from_raw(m, &raw);
        // The coordinator indexes the active subset; rebuilding from
        // scratch with fresh timestamps is the simple, always-correct
        // choice (stale timestamps only delay bridging).
        self.coordinator = Coordinator::new(
            &sub,
            self.bthres,
            self.tthres,
            derive_seed(self.seed, ranks.len() as u64, streams::CHURN),
        );
        self.coordinator.set_shard_size(self.shard_size);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_threshold_keeps_bstar_connected() {
        let bw = saps_netsim::citydata::fig1_bandwidth();
        let c = Coordinator::new(&bw, None, 5, 1);
        assert!(c.bandwidth_threshold() > 0.0);
        assert_eq!(c.worker_count(), 14);
    }

    #[test]
    fn rounds_advance_and_seeds_differ() {
        let bw = BandwidthMatrix::constant(6, 1.0);
        let mut c = Coordinator::new(&bw, None, 5, 2);
        let p0 = c.begin_round();
        let p1 = c.begin_round();
        assert_eq!(p0.round, 0);
        assert_eq!(p1.round, 1);
        assert_ne!(p0.mask_seed, p1.mask_seed);
        assert!(p0.matching.is_perfect());
    }

    #[test]
    fn deterministic_given_seed() {
        let bw = BandwidthMatrix::constant(8, 1.0);
        let mut a = Coordinator::new(&bw, None, 5, 42);
        let mut b = Coordinator::new(&bw, None, 5, 42);
        for _ in 0..10 {
            let pa = a.begin_round();
            let pb = b.begin_round();
            assert_eq!(pa.matching.pairs(), pb.matching.pairs());
            assert_eq!(pa.mask_seed, pb.mask_seed);
        }
    }

    #[test]
    fn explicit_threshold_respected() {
        let bw = BandwidthMatrix::constant(4, 2.0);
        let c = Coordinator::new(&bw, Some(1.5), 5, 3);
        assert_eq!(c.bandwidth_threshold(), 1.5);
    }

    #[test]
    fn rebuild_shrinks_worker_set() {
        let bw6 = BandwidthMatrix::constant(6, 1.0);
        let mut c = Coordinator::new(&bw6, None, 5, 4);
        c.begin_round();
        let bw4 = BandwidthMatrix::constant(4, 1.0);
        c.rebuild(&bw4, &[Some(0), Some(1), Some(2), Some(3)]);
        assert_eq!(c.worker_count(), 4);
        let p = c.begin_round();
        assert!(p.matching.is_perfect());
    }
}
