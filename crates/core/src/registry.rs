//! The algorithm registry: one fallible construction path for every
//! trainer.
//!
//! An [`AlgorithmRegistry`] maps [`AlgorithmSpec`] keys to builder
//! functions. `saps-core` registers SAPS-PSGD itself;
//! `saps-baselines::registry()` returns a registry with all eight
//! algorithms. Downstream code never calls a trainer constructor
//! directly — it hands a spec plus a [`BuildCtx`] to the registry and
//! gets a `Box<dyn Trainer>` or a [`ConfigError`].

use crate::{AlgorithmSpec, ConfigError, SapsConfig, SapsPsgd, Trainer};
use rand::rngs::StdRng;
use saps_data::Dataset;
use saps_netsim::BandwidthMatrix;
use saps_nn::Model;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A shared model constructor: builds one replica from a seeded RNG.
/// Called once per worker with identically seeded RNGs so all replicas
/// start from the same parameters.
pub type ModelFactory = Arc<dyn Fn(&mut StdRng) -> Model + Send + Sync>;

/// Everything a builder needs to construct a trainer: the per-worker
/// data partitions, the initial bandwidth matrix, the shared training
/// hyper-parameters and the model factory.
pub struct BuildCtx<'a> {
    /// One dataset per worker (already partitioned).
    pub partitions: Vec<Dataset>,
    /// The bandwidth matrix at construction time (round-0 measurements).
    pub bw: &'a BandwidthMatrix,
    /// Mini-batch size per worker per local step.
    pub batch_size: usize,
    /// Learning rate γ.
    pub lr: f32,
    /// Experiment seed; all randomness derives from it.
    pub seed: u64,
    /// Builds one model replica from a seeded RNG.
    pub factory: ModelFactory,
}

impl std::fmt::Debug for BuildCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BuildCtx")
            .field("workers", &self.partitions.len())
            .field("batch_size", &self.batch_size)
            .field("lr", &self.lr)
            .field("seed", &self.seed)
            .finish()
    }
}

/// A builder: turns a validated spec plus context into a boxed trainer.
///
/// Shared (`Arc`) rather than a plain `fn` pointer so builders can
/// capture state — the cluster runtime registers a closure carrying its
/// wire-statistics tap, for example. Plain functions still register
/// as-is through [`AlgorithmRegistry::register`].
pub type BuilderFn = Arc<
    dyn Fn(&AlgorithmSpec, BuildCtx<'_>) -> Result<Box<dyn Trainer>, ConfigError> + Send + Sync,
>;

/// Maps [`AlgorithmSpec::key`]s to builder functions.
#[derive(Clone)]
pub struct AlgorithmRegistry {
    builders: BTreeMap<&'static str, BuilderFn>,
}

impl AlgorithmRegistry {
    /// A registry with no algorithms registered.
    pub fn empty() -> Self {
        AlgorithmRegistry {
            builders: BTreeMap::new(),
        }
    }

    /// The registry `saps-core` can populate by itself: SAPS-PSGD only.
    /// Use `saps_baselines::registry()` (or the `saps` facade) for all
    /// eight algorithms.
    pub fn core() -> Self {
        let mut reg = Self::empty();
        reg.register("saps", build_saps);
        reg
    }

    /// Registers (or replaces) the builder for `key`.
    pub fn register<F>(&mut self, key: &'static str, builder: F)
    where
        F: Fn(&AlgorithmSpec, BuildCtx<'_>) -> Result<Box<dyn Trainer>, ConfigError>
            + Send
            + Sync
            + 'static,
    {
        self.builders.insert(key, Arc::new(builder));
    }

    /// The registered keys, sorted.
    pub fn keys(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.builders.keys().copied()
    }

    /// Validates `spec` and builds its trainer.
    pub fn build(
        &self,
        spec: &AlgorithmSpec,
        ctx: BuildCtx<'_>,
    ) -> Result<Box<dyn Trainer>, ConfigError> {
        spec.validate()?;
        if ctx.partitions.len() < 2 {
            return Err(ConfigError::invalid(
                "BuildCtx",
                "need at least two workers (partitions)",
            ));
        }
        if ctx.bw.len() != ctx.partitions.len() {
            return Err(ConfigError::invalid(
                "BuildCtx",
                format!(
                    "bandwidth matrix covers {} workers but {} partitions were supplied",
                    ctx.bw.len(),
                    ctx.partitions.len()
                ),
            ));
        }
        let builder = self
            .builders
            .get(spec.key())
            .ok_or_else(|| ConfigError::UnknownAlgorithm(spec.key().to_string()))?;
        builder(spec, ctx)
    }
}

impl Default for AlgorithmRegistry {
    fn default() -> Self {
        Self::core()
    }
}

impl std::fmt::Debug for AlgorithmRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlgorithmRegistry")
            .field("keys", &self.builders.keys().collect::<Vec<_>>())
            .finish()
    }
}

fn build_saps(spec: &AlgorithmSpec, ctx: BuildCtx<'_>) -> Result<Box<dyn Trainer>, ConfigError> {
    let AlgorithmSpec::Saps {
        compression,
        tthres,
        bthres,
    } = *spec
    else {
        return Err(ConfigError::UnknownAlgorithm(spec.key().to_string()));
    };
    let cfg = SapsConfig {
        workers: ctx.partitions.len(),
        compression,
        lr: ctx.lr,
        batch_size: ctx.batch_size,
        bthres,
        tthres,
        seed: ctx.seed,
        shard_size: None,
    };
    let factory = ctx.factory.clone();
    let algo = SapsPsgd::with_partitions(cfg, ctx.partitions, ctx.bw, move |rng| factory(rng))?;
    Ok(Box::new(algo))
}

#[cfg(test)]
mod tests {
    use super::*;
    use saps_data::{partition, SyntheticSpec};
    use saps_nn::zoo;
    use saps_tensor::rng::{derive_seed, streams};

    fn ctx(bw: &BandwidthMatrix, workers: usize) -> BuildCtx<'_> {
        let ds = SyntheticSpec::tiny().samples(400).generate(1);
        BuildCtx {
            partitions: partition::iid(&ds, workers, derive_seed(0, 0, streams::DATA)),
            bw,
            batch_size: 16,
            lr: 0.1,
            seed: 0,
            factory: Arc::new(|rng| zoo::mlp(&[16, 12, 4], rng)),
        }
    }

    #[test]
    fn core_registry_builds_saps() {
        let bw = BandwidthMatrix::constant(4, 1.0);
        let spec = AlgorithmSpec::parse("saps").unwrap().with_compression(4.0);
        let trainer = AlgorithmRegistry::core().build(&spec, ctx(&bw, 4)).unwrap();
        assert_eq!(trainer.name(), "SAPS-PSGD");
        assert_eq!(trainer.worker_count(), 4);
    }

    #[test]
    fn unknown_key_is_an_error() {
        let bw = BandwidthMatrix::constant(4, 1.0);
        match AlgorithmRegistry::core().build(&AlgorithmSpec::Psgd, ctx(&bw, 4)) {
            Err(e) => assert_eq!(e, ConfigError::UnknownAlgorithm("psgd".into())),
            Ok(_) => panic!("psgd must not be in the core registry"),
        }
    }

    #[test]
    fn mismatched_bandwidth_size_is_an_error() {
        let bw = BandwidthMatrix::constant(6, 1.0);
        let spec = AlgorithmSpec::parse("saps").unwrap();
        assert!(AlgorithmRegistry::core().build(&spec, ctx(&bw, 4)).is_err());
    }

    #[test]
    fn invalid_spec_is_rejected_before_building() {
        let bw = BandwidthMatrix::constant(4, 1.0);
        let spec = AlgorithmSpec::parse("saps").unwrap().with_compression(0.1);
        assert!(AlgorithmRegistry::core().build(&spec, ctx(&bw, 4)).is_err());
    }
}
