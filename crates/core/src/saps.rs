//! SAPS-PSGD wired together: Algorithms 1 + 2 + 3 behind the [`Trainer`]
//! interface.

use crate::{ConfigError, RoundCtx, RoundReport, SapsControl, Trainer, Worker};
use rand::rngs::StdRng;
use rand::SeedableRng;
use saps_compress::codec;
use saps_compress::mask::RandomMask;
use saps_data::{partition, Dataset};
use saps_netsim::{BandwidthMatrix, RoundTiming};
use saps_nn::Model;
use saps_tensor::rng::{derive_seed, streams};

/// Configuration of a SAPS-PSGD run.
#[derive(Debug, Clone, PartialEq)]
pub struct SapsConfig {
    /// Number of workers `n`.
    pub workers: usize,
    /// Compression ratio `c` (keep probability `1/c`). The paper uses 100.
    pub compression: f64,
    /// Learning rate γ.
    pub lr: f32,
    /// Mini-batch size per worker per round.
    pub batch_size: usize,
    /// Bandwidth threshold `B_thres`; `None` auto-selects the largest
    /// threshold that keeps `B*` connected.
    pub bthres: Option<f64>,
    /// RC window `T_thres` of Algorithm 3 (rounds).
    pub tthres: u32,
    /// Experiment seed; all randomness derives from it.
    pub seed: u64,
    /// Round-planning shard ceiling: `Some(s)` computes Algorithm 1's
    /// matching per bandwidth-partition (splitting partitions larger
    /// than `s`), so planning is O(s³) per shard instead of O(n³)
    /// global — required for 1k+-worker fleets. `None` keeps the
    /// monolithic pass.
    pub shard_size: Option<usize>,
}

impl Default for SapsConfig {
    fn default() -> Self {
        SapsConfig {
            workers: 32,
            compression: 100.0,
            lr: 0.05,
            batch_size: 50,
            bthres: None,
            tthres: 10,
            seed: 0,
            shard_size: None,
        }
    }
}

impl SapsConfig {
    /// Checks the configuration is internally consistent.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.workers < 2 {
            return Err(ConfigError::invalid(
                "SapsConfig",
                "need at least two workers",
            ));
        }
        if !(self.compression >= 1.0 && self.compression.is_finite()) {
            return Err(ConfigError::invalid(
                "SapsConfig",
                format!(
                    "compression {} must be a finite ratio >= 1",
                    self.compression
                ),
            ));
        }
        if self.tthres == 0 {
            return Err(ConfigError::invalid("SapsConfig", "tthres must be >= 1"));
        }
        if self.batch_size == 0 {
            return Err(ConfigError::invalid(
                "SapsConfig",
                "batch_size must be >= 1",
            ));
        }
        if let Some(s) = self.shard_size {
            if s < 2 {
                return Err(ConfigError::invalid(
                    "SapsConfig",
                    "shard_size must be >= 2 (a shard needs two workers to pair)",
                ));
            }
        }
        Ok(())
    }
}

/// Builds the worker fleet plus the shared evaluation replica from the
/// per-worker data partitions, exactly as both execution paths must:
/// every model replica (and the evaluation model) is constructed from an
/// identically seeded RNG so all replicas start equal
/// (`‖X_0 − X̄_0‖² = 0`), and worker `rank` derives its private
/// batch-sampling stream from `(seed, rank)`.
///
/// Shared by the in-memory [`SapsPsgd`] constructor and the cluster
/// runtime (`saps-cluster`), so a cluster-driven run starts from the
/// bit-identical state an in-memory run does.
pub fn build_replicas(
    parts: Vec<Dataset>,
    seed: u64,
    factory: impl Fn(&mut StdRng) -> Model,
) -> (Vec<Worker>, Model) {
    let make_model = || {
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, 0, streams::INIT));
        factory(&mut rng)
    };
    let workers: Vec<Worker> = parts
        .into_iter()
        .enumerate()
        .map(|(rank, data)| Worker::new(rank, make_model(), data, seed))
        .collect();
    (workers, make_model())
}

/// Assembles a SAPS-PSGD [`RoundReport`] from one round's raw
/// measurements: per-worker training statistics (in ascending rank
/// order), the exchanged pairs (in plan order), the bandwidth view, and
/// the priced timing.
///
/// Shared by the in-memory [`SapsPsgd::step`] and the cluster driver so
/// both reduce the identical floating-point arithmetic in the identical
/// order — the per-round loss of a cluster run is bit-equal to the
/// in-memory run's, not merely close.
pub fn saps_round_report(
    stats: &[(f32, f32)],
    pairs: &[(usize, usize)],
    bw: &BandwidthMatrix,
    timing: &RoundTiming,
    batch_size: usize,
    mean_partition_len: f64,
) -> RoundReport {
    let mut loss_acc = 0.0f64;
    let mut acc_acc = 0.0f64;
    for &(l, a) in stats {
        loss_acc += l as f64;
        acc_acc += a as f64;
    }
    let mut link_bw_sum = 0.0f64;
    let mut link_bw_min = f64::INFINITY;
    for &(ri, rj) in pairs {
        link_bw_sum += bw.get(ri, rj);
        link_bw_min = link_bw_min.min(bw.get(ri, rj));
    }
    let workers = stats.len().max(1) as f64;
    let mut rep = RoundReport::new();
    rep.mean_loss = (loss_acc / workers) as f32;
    rep.mean_acc = (acc_acc / workers) as f32;
    rep.set_timing(timing);
    rep.epochs_advanced = batch_size as f64 / mean_partition_len.max(1.0);
    rep.mean_link_bandwidth = if pairs.is_empty() {
        0.0
    } else {
        link_bw_sum / pairs.len() as f64
    };
    rep.min_link_bandwidth = if pairs.is_empty() { 0.0 } else { link_bw_min };
    rep
}

/// The SAPS-PSGD algorithm: a coordinator plus `n` workers, exchanging
/// shared-seed sparse models over adaptively selected peers.
pub struct SapsPsgd {
    cfg: SapsConfig,
    control: SapsControl,
    workers: Vec<Worker>,
    eval_model: Model,
    n_params: usize,
    /// The shared per-round mask, regenerated in place each round so its
    /// index buffer is reused instead of reallocated.
    mask: RandomMask,
    /// The two payload buffers of the pairwise exchange, reused across
    /// pairs and rounds.
    pay_a: Vec<f32>,
    pay_b: Vec<f32>,
}

impl std::fmt::Debug for SapsPsgd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SapsPsgd")
            .field("cfg", &self.cfg)
            .field("n_params", &self.n_params)
            .finish()
    }
}

impl SapsPsgd {
    /// Creates the algorithm with an IID partition of `train`.
    ///
    /// `factory` builds one model replica from a seeded RNG; it is called
    /// once per worker with identically seeded RNGs so all replicas start
    /// from the same parameters (making `‖X_0 − X̄_0‖² = 0`, the
    /// consensus-friendly initialization the paper's Theorem 1 remarks
    /// on).
    pub fn new(
        cfg: SapsConfig,
        train: &Dataset,
        bw: &BandwidthMatrix,
        factory: impl Fn(&mut StdRng) -> Model,
    ) -> Result<Self, ConfigError> {
        let parts = partition::iid(train, cfg.workers, derive_seed(cfg.seed, 0, streams::DATA));
        Self::with_partitions(cfg, parts, bw, factory)
    }

    /// Creates the algorithm with explicit per-worker datasets (use
    /// [`saps_data::partition::dirichlet`] or
    /// [`saps_data::partition::shards`] for non-IID experiments).
    pub fn with_partitions(
        cfg: SapsConfig,
        parts: Vec<Dataset>,
        bw: &BandwidthMatrix,
        factory: impl Fn(&mut StdRng) -> Model,
    ) -> Result<Self, ConfigError> {
        cfg.validate()?;
        if parts.len() != cfg.workers {
            return Err(ConfigError::invalid(
                "SapsConfig",
                format!(
                    "{} partitions for {} workers (need one each)",
                    parts.len(),
                    cfg.workers
                ),
            ));
        }
        if bw.len() != cfg.workers {
            return Err(ConfigError::invalid(
                "SapsConfig",
                format!(
                    "bandwidth matrix covers {} workers, config has {}",
                    bw.len(),
                    cfg.workers
                ),
            ));
        }
        let (workers, eval_model) = build_replicas(parts, cfg.seed, factory);
        let n_params = eval_model.num_params();
        let mut control = SapsControl::new(bw, cfg.bthres, cfg.tthres, cfg.seed);
        control.set_shard_size(cfg.shard_size);
        Ok(SapsPsgd {
            cfg,
            control,
            workers,
            eval_model,
            n_params,
            mask: RandomMask::from_indices(n_params, Vec::new()),
            pay_a: Vec::new(),
            pay_b: Vec::new(),
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &SapsConfig {
        &self.cfg
    }

    /// Direct access to a worker (tests, churn experiments).
    pub fn worker(&self, rank: usize) -> &Worker {
        &self.workers[rank]
    }

    /// Overwrites one worker's model from a flat parameter vector —
    /// restoring from a [`crate::checkpoint`], or re-seeding a joiner
    /// with the current consensus model.
    pub fn set_worker_model(&mut self, rank: usize, flat: &[f32]) {
        assert_eq!(flat.len(), self.n_params, "flat parameter size");
        self.workers[rank].set_flat(flat);
    }

    /// Marks a worker active/inactive (join/leave churn). Peer selection
    /// is rebuilt over the active subset. Inactive workers keep their
    /// model and re-join where they left off.
    ///
    /// Fails if `rank` is out of range or deactivation would leave fewer
    /// than two active workers.
    pub fn set_active(&mut self, rank: usize, active: bool) -> Result<(), ConfigError> {
        self.control.set_active(rank, active)
    }

    /// Updates the coordinator's bandwidth snapshot (the paper's
    /// periodically reported speed measurements).
    pub fn refresh_bandwidth(&mut self, bw: &BandwidthMatrix) {
        assert_eq!(bw.len(), self.workers.len());
        self.control.refresh_bandwidth(bw);
    }

    /// Ranks of currently active workers.
    pub fn active_ranks(&self) -> Vec<usize> {
        self.control.active_ranks()
    }

    /// The consensus (average) model over active workers, as flat params.
    pub fn average_model(&self) -> Vec<f32> {
        let ranks = self.active_ranks();
        assert!(!ranks.is_empty(), "no active workers");
        let mut acc = vec![0.0f32; self.n_params];
        for &r in &ranks {
            let f = self.workers[r].flat();
            for (a, v) in acc.iter_mut().zip(&f) {
                *a += v;
            }
        }
        let inv = 1.0 / ranks.len() as f32;
        for a in &mut acc {
            *a *= inv;
        }
        acc
    }

    /// Squared consensus distance `Σ_i ‖x_i − x̄‖²` over active workers —
    /// the quantity Theorem 1 bounds.
    pub fn consensus_distance_sq(&self) -> f64 {
        let avg = self.average_model();
        let mut total = 0.0f64;
        for &r in &self.active_ranks() {
            let f = self.workers[r].flat();
            total += f
                .iter()
                .zip(&avg)
                .map(|(a, b)| ((a - b) as f64).powi(2))
                .sum::<f64>();
        }
        total
    }
}

impl Trainer for SapsPsgd {
    fn name(&self) -> &'static str {
        "SAPS-PSGD"
    }

    fn step(&mut self, ctx: &mut RoundCtx<'_>) -> RoundReport {
        let bw = ctx.bw;
        let exec = ctx.exec;
        let traffic = &mut *ctx.traffic;
        let ranks = self.control.active_ranks();
        let plan = self.control.begin_round();

        // Local SGD on every active worker (Algorithm 2, line 5) — the
        // compute phase, fanned out across the round executor. Each
        // worker owns its model/data/RNG, and the results are reduced in
        // rank order, so any thread count yields identical numbers.
        let (bs, lr) = (self.cfg.batch_size, self.cfg.lr);
        let control = &self.control;
        let step_workers: Vec<&mut Worker> = self
            .workers
            .iter_mut()
            .enumerate()
            .filter_map(|(r, w)| control.is_active(r).then_some(w))
            .collect();
        let stats = exec.par_map(step_workers, |_, w| w.sgd_step(bs, lr));

        // Shared-seed mask (line 6); identical on every worker,
        // regenerated in place to reuse the index buffer.
        self.mask.regenerate(
            self.n_params,
            self.cfg.compression,
            plan.mask_seed,
            plan.round,
        );
        let payload_bytes = codec::sparse_shared_mask_bytes(self.mask.nnz());

        // Exchange over the matched pairs (lines 8-10) on the deltas the
        // compute phase produced. The matching is over active-subset
        // indices; translate to global ranks.
        let pairs = self.control.global_pairs(&plan.matching);
        let mut transfers = Vec::with_capacity(2 * pairs.len());
        for &(ri, rj) in &pairs {
            let SapsPsgd {
                workers,
                mask,
                pay_a,
                pay_b,
                ..
            } = self;
            workers[ri].sparse_payload_into(mask, pay_a);
            workers[rj].sparse_payload_into(mask, pay_b);
            workers[ri].merge_sparse(mask, pay_b);
            workers[rj].merge_sparse(mask, pay_a);
            traffic.record_p2p(ri, rj, payload_bytes);
            traffic.record_p2p(rj, ri, payload_bytes);
            transfers.push((ri, rj, payload_bytes));
            transfers.push((rj, ri, payload_bytes));
        }
        traffic.end_round();

        let timing = ctx.price_p2p(&transfers);
        let mean_part = ranks
            .iter()
            .map(|&r| self.workers[r].data_len())
            .sum::<usize>() as f64
            / ranks.len().max(1) as f64;
        saps_round_report(&stats, &pairs, bw, &timing, self.cfg.batch_size, mean_part)
    }

    fn evaluate(&mut self, val: &Dataset, max_samples: usize) -> f32 {
        let avg = self.average_model();
        self.eval_model.set_flat_params(&avg);
        self.eval_model.evaluate(val, max_samples)
    }

    fn model_len(&self) -> usize {
        self.n_params
    }

    fn worker_count(&self) -> usize {
        self.workers.len()
    }

    fn set_worker_active(&mut self, rank: usize, active: bool) -> Result<(), ConfigError> {
        self.set_active(rank, active)
    }

    fn refresh_bandwidth(&mut self, bw: &BandwidthMatrix) {
        SapsPsgd::refresh_bandwidth(self, bw);
    }

    fn export_checkpoint(&mut self) -> Result<Vec<u8>, ConfigError> {
        let avg = self.average_model();
        Ok(crate::checkpoint::encode(&avg, self.control.rounds_done()).to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saps_data::SyntheticSpec;
    use saps_netsim::TrafficAccountant;
    use saps_nn::zoo;

    fn setup(workers: usize, c: f64) -> (SapsPsgd, Dataset, BandwidthMatrix) {
        let ds = SyntheticSpec::tiny().samples(1_600).generate(1);
        let (train, val) = ds.split(0.2, 0);
        let bw = BandwidthMatrix::constant(workers, 1.0);
        let cfg = SapsConfig {
            workers,
            compression: c,
            lr: 0.1,
            batch_size: 20,
            tthres: 5,
            ..SapsConfig::default()
        };
        let algo = SapsPsgd::new(cfg, &train, &bw, |rng| zoo::mlp(&[16, 24, 4], rng)).unwrap();
        (algo, val, bw)
    }

    #[test]
    fn workers_start_identical() {
        let (algo, _, _) = setup(4, 10.0);
        let f0 = algo.worker(0).flat();
        for r in 1..4 {
            assert_eq!(f0, algo.worker(r).flat());
        }
        assert!(algo.consensus_distance_sq() < 1e-12);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let ds = SyntheticSpec::tiny().samples(200).generate(1);
        let bw = BandwidthMatrix::constant(1, 1.0);
        let cfg = SapsConfig {
            workers: 1,
            ..SapsConfig::default()
        };
        assert!(SapsPsgd::new(cfg, &ds, &bw, |rng| zoo::mlp(&[16, 8, 4], rng)).is_err());
        let bw = BandwidthMatrix::constant(4, 1.0);
        let cfg = SapsConfig {
            workers: 4,
            compression: 0.5,
            ..SapsConfig::default()
        };
        assert!(SapsPsgd::new(cfg, &ds, &bw, |rng| zoo::mlp(&[16, 8, 4], rng)).is_err());
        let cfg = SapsConfig {
            workers: 4,
            ..SapsConfig::default()
        };
        let small = BandwidthMatrix::constant(3, 1.0);
        assert!(SapsPsgd::new(cfg, &ds, &small, |rng| zoo::mlp(&[16, 8, 4], rng)).is_err());
    }

    #[test]
    fn round_reports_sane_numbers() {
        let (mut algo, _, bw) = setup(4, 10.0);
        let mut traffic = TrafficAccountant::new(4);
        let rep = algo.round(&mut traffic, &bw);
        assert!(rep.mean_loss.is_finite());
        assert!(rep.comm_time_s > 0.0);
        assert!(rep.epochs_advanced > 0.0);
        assert!((rep.mean_link_bandwidth - 1.0).abs() < 1e-9);
        // Each worker exchanged one sparse payload both ways.
        let expected = 2 * traffic.rounds()[0].max_worker_sent;
        assert_eq!(traffic.worker_total(0), expected);
    }

    #[test]
    fn traffic_matches_mask_nnz() {
        let (mut algo, _, bw) = setup(4, 4.0);
        let mut traffic = TrafficAccountant::new(4);
        algo.round(&mut traffic, &bw);
        // Payload = 4 bytes per kept coordinate; nnz ≈ N/4.
        let n = algo.model_len() as f64;
        let sent = traffic.worker_sent(0) as f64;
        assert!(
            (sent / (4.0 * n / 4.0) - 1.0).abs() < 0.35,
            "sent {sent}, N {n}"
        );
    }

    #[test]
    fn training_improves_accuracy() {
        let (mut algo, val, bw) = setup(4, 4.0);
        let mut traffic = TrafficAccountant::new(4);
        let before = algo.evaluate(&val, 300);
        for _ in 0..120 {
            algo.round(&mut traffic, &bw);
        }
        let after = algo.evaluate(&val, 300);
        assert!(
            after > before + 0.2,
            "accuracy {before} -> {after} (chance 0.25)"
        );
    }

    #[test]
    fn consensus_distance_stays_bounded() {
        let (mut algo, _, bw) = setup(8, 4.0);
        let mut traffic = TrafficAccountant::new(8);
        for _ in 0..60 {
            algo.round(&mut traffic, &bw);
        }
        let d = algo.consensus_distance_sq();
        // Workers drift apart through local SGD but the gossip keeps them
        // within a modest envelope.
        assert!(d.is_finite() && d < 50.0, "consensus distance {d}");
    }

    #[test]
    fn deterministic_runs() {
        let (mut a, _, bw) = setup(4, 10.0);
        let (mut b, _, _) = setup(4, 10.0);
        let mut ta = TrafficAccountant::new(4);
        let mut tb = TrafficAccountant::new(4);
        for _ in 0..5 {
            a.round(&mut ta, &bw);
            b.round(&mut tb, &bw);
        }
        assert_eq!(a.worker(2).flat(), b.worker(2).flat());
        assert_eq!(ta.worker_total(1), tb.worker_total(1));
    }

    #[test]
    fn churn_worker_leaves_and_rejoins() {
        let (mut algo, val, bw) = setup(6, 4.0);
        let mut traffic = TrafficAccountant::new(6);
        for _ in 0..10 {
            algo.round(&mut traffic, &bw);
        }
        algo.set_active(5, false).unwrap();
        assert_eq!(algo.active_ranks().len(), 5);
        let frozen = algo.worker(5).flat();
        for _ in 0..10 {
            algo.round(&mut traffic, &bw);
        }
        // The inactive worker's model is untouched.
        assert_eq!(algo.worker(5).flat(), frozen);
        algo.set_active(5, true).unwrap();
        for _ in 0..10 {
            algo.round(&mut traffic, &bw);
        }
        assert_ne!(algo.worker(5).flat(), frozen);
        let acc = algo.evaluate(&val, 200);
        assert!(acc > 0.25, "post-churn accuracy {acc}");
    }

    #[test]
    fn churn_guards_minimum_active_fleet() {
        let (mut algo, _, _) = setup(4, 10.0);
        algo.set_active(0, false).unwrap();
        algo.set_active(1, false).unwrap();
        // Two active workers left — dropping another must fail.
        assert!(algo.set_active(2, false).is_err());
        assert!(algo.set_active(9, false).is_err());
        assert_eq!(algo.active_ranks(), vec![2, 3]);
    }

    #[test]
    fn odd_worker_count_trains_with_one_idle_per_round() {
        let (mut algo, val, bw) = setup(5, 4.0);
        let mut traffic = TrafficAccountant::new(5);
        for _ in 0..80 {
            let rep = algo.round(&mut traffic, &bw);
            assert!(rep.mean_loss.is_finite());
        }
        // Every round matches 2 pairs, leaving one worker out; over many
        // rounds everyone must still have communicated.
        for r in 0..5 {
            assert!(traffic.worker_sent(r) > 0, "worker {r} never exchanged");
        }
        let acc = algo.evaluate(&val, 300);
        assert!(acc > 0.4, "odd-fleet accuracy {acc}");
    }

    #[test]
    fn churn_to_odd_active_count() {
        let (mut algo, _, bw) = setup(6, 4.0);
        let mut traffic = TrafficAccountant::new(6);
        algo.set_active(2, false).unwrap(); // 5 active
        for _ in 0..20 {
            let rep = algo.round(&mut traffic, &bw);
            assert!(rep.mean_loss.is_finite());
        }
        assert_eq!(traffic.worker_total(2), 0, "inactive worker exchanged");
    }

    #[test]
    fn compression_reduces_traffic_proportionally() {
        let (mut lo, _, bw) = setup(4, 2.0);
        let (mut hi, _, _) = setup(4, 20.0);
        let mut tl = TrafficAccountant::new(4);
        let mut th = TrafficAccountant::new(4);
        for _ in 0..10 {
            lo.round(&mut tl, &bw);
            hi.round(&mut th, &bw);
        }
        let ratio = tl.worker_total(0) as f64 / th.worker_total(0) as f64;
        assert!(
            (ratio / 10.0 - 1.0).abs() < 0.25,
            "traffic ratio {ratio}, expected ~10"
        );
    }
}
