//! Algorithm 2: the SAPS-PSGD worker.

use rand::rngs::StdRng;
use rand::SeedableRng;
use saps_compress::mask::RandomMask;
use saps_data::Dataset;
use saps_nn::Model;
use saps_tensor::rng::{derive_seed, streams};

/// A training worker: a local model, a local data shard and a private
/// batch-sampling RNG.
pub struct Worker {
    rank: usize,
    model: Model,
    data: Dataset,
    rng: StdRng,
}

impl std::fmt::Debug for Worker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Worker")
            .field("rank", &self.rank)
            .field("data_len", &self.data.len())
            .field("model", &self.model)
            .finish()
    }
}

impl Worker {
    /// Creates worker `rank` with its model replica and data shard.
    /// `seed` is the experiment seed; the worker derives its private
    /// batch-sampling stream from `(seed, rank)`.
    pub fn new(rank: usize, model: Model, data: Dataset, seed: u64) -> Self {
        Worker {
            rank,
            model,
            data,
            rng: StdRng::seed_from_u64(derive_seed(seed, rank as u64, streams::BATCH)),
        }
    }

    /// This worker's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of local examples.
    pub fn data_len(&self) -> usize {
        self.data.len()
    }

    /// The local dataset.
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// Replaces the local dataset (e.g. when a worker re-joins with new
    /// data).
    pub fn set_data(&mut self, data: Dataset) {
        self.data = data;
    }

    /// Immutable model access.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Mutable model access.
    pub fn model_mut(&mut self) -> &mut Model {
        &mut self.model
    }

    /// One local mini-batch SGD step (Algorithm 2's `SGD` procedure).
    /// Returns `(loss, accuracy)` on the sampled batch.
    pub fn sgd_step(&mut self, batch_size: usize, lr: f32) -> (f32, f32) {
        let batch = self.data.sample_batch(batch_size, &mut self.rng);
        self.model.train_step(&batch, lr)
    }

    /// Accumulates gradients on one mini-batch without updating
    /// parameters (for all-reduce style algorithms that average
    /// gradients). Returns `(loss, accuracy)`.
    pub fn accumulate_grads(&mut self, batch_size: usize) -> (f32, f32) {
        let batch = self.data.sample_batch(batch_size, &mut self.rng);
        self.model.compute_grads(&batch)
    }

    /// The sparse payload `x̃ = x ∘ m_t` (Algorithm 2 line 7): the model's
    /// values at the mask's surviving indices.
    pub fn sparse_payload(&self, mask: &RandomMask) -> Vec<f32> {
        mask.apply(&self.model.flat_params())
    }

    /// The exchange-and-average step (Algorithm 2 lines 9-10):
    /// `x ← x ∘ ¬m + (x̃ + x̃_peer)/2` on the masked coordinates.
    pub fn merge_sparse(&mut self, mask: &RandomMask, peer_values: &[f32]) {
        let mut flat = self.model.flat_params();
        mask.average_into(&mut flat, peer_values);
        self.model.set_flat_params(&flat);
    }

    /// Overwrites the whole model from a flat vector (used by PS-style
    /// baselines and final model collection).
    pub fn set_flat(&mut self, flat: &[f32]) {
        self.model.set_flat_params(flat);
    }

    /// Copies the whole model to a flat vector.
    pub fn flat(&self) -> Vec<f32> {
        self.model.flat_params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saps_data::SyntheticSpec;
    use saps_nn::zoo;

    fn worker(rank: usize, seed: u64) -> Worker {
        let mut rng = StdRng::seed_from_u64(99);
        let model = zoo::mlp(&[16, 12, 4], &mut rng);
        let data = SyntheticSpec::tiny().samples(200).generate(1);
        Worker::new(rank, model, data, seed)
    }

    #[test]
    fn sgd_step_changes_params() {
        let mut w = worker(0, 7);
        let before = w.flat();
        let (loss, acc) = w.sgd_step(16, 0.1);
        assert!(loss.is_finite() && (0.0..=1.0).contains(&acc));
        assert_ne!(before, w.flat());
    }

    #[test]
    fn different_ranks_sample_different_batches() {
        let mut a = worker(0, 7);
        let mut b = worker(1, 7);
        // Same initial model, same data, different private batch streams:
        // one step must diverge them.
        let (la, _) = a.sgd_step(8, 0.1);
        let (lb, _) = b.sgd_step(8, 0.1);
        // Losses may coincide numerically, but parameters should differ.
        assert_ne!(a.flat(), b.flat(), "la {la} lb {lb}");
    }

    #[test]
    fn sparse_exchange_agrees_on_masked_coords() {
        let mut a = worker(0, 1);
        let mut b = worker(1, 1);
        a.sgd_step(8, 0.2);
        b.sgd_step(8, 0.2);
        let n = a.model().num_params();
        let mask = RandomMask::generate(n, 4.0, 123, 9);
        let pa = a.sparse_payload(&mask);
        let pb = b.sparse_payload(&mask);
        a.merge_sparse(&mask, &pb);
        b.merge_sparse(&mask, &pa);
        let fa = a.flat();
        let fb = b.flat();
        for &i in mask.indices() {
            assert_eq!(fa[i as usize], fb[i as usize]);
        }
        // Unmasked coordinates still differ (local SGD diverged them).
        let dense = mask.to_dense();
        assert!((0..n).any(|i| !dense[i] && fa[i] != fb[i]));
    }

    #[test]
    fn merge_preserves_pair_mean_on_masked_coords() {
        let mut a = worker(0, 2);
        let mut b = worker(1, 2);
        a.sgd_step(8, 0.3);
        let n = a.model().num_params();
        let mask = RandomMask::generate(n, 2.0, 5, 0);
        let fa0 = a.flat();
        let fb0 = b.flat();
        let pa = a.sparse_payload(&mask);
        let pb = b.sparse_payload(&mask);
        a.merge_sparse(&mask, &pb);
        b.merge_sparse(&mask, &pa);
        let fa1 = a.flat();
        for &i in mask.indices() {
            let i = i as usize;
            let expect = 0.5 * (fa0[i] + fb0[i]);
            assert!((fa1[i] - expect).abs() < 1e-7);
        }
    }

    #[test]
    fn set_flat_roundtrip() {
        let mut w = worker(0, 3);
        let mut flat = w.flat();
        flat[0] = 42.0;
        w.set_flat(&flat);
        assert_eq!(w.flat()[0], 42.0);
    }
}
