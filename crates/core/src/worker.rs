//! Algorithm 2: the SAPS-PSGD worker.

use rand::rngs::StdRng;
use rand::SeedableRng;
use saps_compress::mask::RandomMask;
use saps_data::Dataset;
use saps_nn::Model;
use saps_tensor::rng::{derive_seed, streams};

/// A training worker: a local model, a local data shard and a private
/// batch-sampling RNG.
///
/// Workers are self-contained — model, data and RNG are owned, nothing
/// is shared — which is what lets the round engine fan their compute
/// phase out across threads without changing any result.
pub struct Worker {
    rank: usize,
    model: Model,
    data: Dataset,
    rng: StdRng,
    /// Model-sized scratch reused by every flat read-modify-write
    /// ([`Worker::update_flat`]) so steady-state rounds allocate nothing
    /// model-sized.
    flat_scratch: Vec<f32>,
}

impl std::fmt::Debug for Worker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Worker")
            .field("rank", &self.rank)
            .field("data_len", &self.data.len())
            .field("model", &self.model)
            .finish()
    }
}

impl Worker {
    /// Creates worker `rank` with its model replica and data shard.
    /// `seed` is the experiment seed; the worker derives its private
    /// batch-sampling stream from `(seed, rank)`.
    pub fn new(rank: usize, model: Model, data: Dataset, seed: u64) -> Self {
        Worker {
            rank,
            model,
            data,
            rng: StdRng::seed_from_u64(derive_seed(seed, rank as u64, streams::BATCH)),
            flat_scratch: Vec::new(),
        }
    }

    /// This worker's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of local examples.
    pub fn data_len(&self) -> usize {
        self.data.len()
    }

    /// The local dataset.
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// Replaces the local dataset (e.g. when a worker re-joins with new
    /// data).
    pub fn set_data(&mut self, data: Dataset) {
        self.data = data;
    }

    /// Immutable model access.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Mutable model access.
    pub fn model_mut(&mut self) -> &mut Model {
        &mut self.model
    }

    /// One local mini-batch SGD step (Algorithm 2's `SGD` procedure).
    /// Returns `(loss, accuracy)` on the sampled batch.
    pub fn sgd_step(&mut self, batch_size: usize, lr: f32) -> (f32, f32) {
        let batch = self.data.sample_batch(batch_size, &mut self.rng);
        self.model.train_step(&batch, lr)
    }

    /// Accumulates gradients on one mini-batch without updating
    /// parameters (for all-reduce style algorithms that average
    /// gradients). Returns `(loss, accuracy)`.
    pub fn accumulate_grads(&mut self, batch_size: usize) -> (f32, f32) {
        let batch = self.data.sample_batch(batch_size, &mut self.rng);
        self.model.compute_grads(&batch)
    }

    /// The sparse payload `x̃ = x ∘ m_t` (Algorithm 2 line 7): the model's
    /// values at the mask's surviving indices.
    pub fn sparse_payload(&self, mask: &RandomMask) -> Vec<f32> {
        mask.apply(&self.model.flat_params())
    }

    /// [`Worker::sparse_payload`] into a caller-owned buffer, staging
    /// the flat parameters through this worker's scratch — the
    /// allocation-free form the per-round exchange uses.
    pub fn sparse_payload_into(&mut self, mask: &RandomMask, out: &mut Vec<f32>) {
        self.model.copy_flat_params_into(&mut self.flat_scratch);
        mask.apply_into(&self.flat_scratch, out);
    }

    /// Flat read-modify-write through the worker's reusable scratch:
    /// loads the model into the scratch buffer, lets `f` rewrite it,
    /// and stores it back. The building block for every dense update
    /// (`merge_sparse`, ring mixing, all-reduce application) that used
    /// to allocate a fresh `N`-vector per call.
    pub fn update_flat(&mut self, f: impl FnOnce(&mut [f32])) {
        self.model.copy_flat_params_into(&mut self.flat_scratch);
        f(&mut self.flat_scratch);
        self.model.set_flat_params(&self.flat_scratch);
    }

    /// `x ← x + scale · v` over the flat parameters (allocation-free).
    pub fn add_scaled(&mut self, scale: f32, v: &[f32]) {
        self.update_flat(|flat| saps_tensor::ops::axpy(scale, v, flat));
    }

    /// The exchange-and-average step (Algorithm 2 lines 9-10):
    /// `x ← x ∘ ¬m + (x̃ + x̃_peer)/2` on the masked coordinates.
    pub fn merge_sparse(&mut self, mask: &RandomMask, peer_values: &[f32]) {
        self.update_flat(|flat| mask.average_into(flat, peer_values));
    }

    /// Overwrites the whole model from a flat vector (used by PS-style
    /// baselines and final model collection).
    pub fn set_flat(&mut self, flat: &[f32]) {
        self.model.set_flat_params(flat);
    }

    /// Copies the whole model to a flat vector.
    pub fn flat(&self) -> Vec<f32> {
        self.model.flat_params()
    }

    /// Captures everything a later [`Worker::rollback`] needs to replay
    /// this worker from the current instant: the flat parameters and
    /// the private batch-sampling RNG. Batch sampling depends only on
    /// this state — never on who the worker was matched with — so a
    /// rolled-back worker re-run under a different matching still draws
    /// the same batches.
    pub fn save_state(&self) -> WorkerState {
        WorkerState {
            params: self.model.flat_params(),
            rng: self.rng.clone(),
        }
    }

    /// Restores a [`Worker::save_state`] snapshot: parameters and RNG
    /// return to the captured instant bit-exactly.
    pub fn rollback(&mut self, state: &WorkerState) {
        self.model.set_flat_params(&state.params);
        self.rng = state.rng.clone();
    }
}

/// A point-in-time snapshot of a worker's replayable state — see
/// [`Worker::save_state`]. The dataset and rank are not captured: they
/// never change mid-round.
#[derive(Debug, Clone)]
pub struct WorkerState {
    params: Vec<f32>,
    rng: StdRng,
}

#[cfg(test)]
mod tests {
    use super::*;
    use saps_data::SyntheticSpec;
    use saps_nn::zoo;

    fn worker(rank: usize, seed: u64) -> Worker {
        let mut rng = StdRng::seed_from_u64(99);
        let model = zoo::mlp(&[16, 12, 4], &mut rng);
        let data = SyntheticSpec::tiny().samples(200).generate(1);
        Worker::new(rank, model, data, seed)
    }

    #[test]
    fn sgd_step_changes_params() {
        let mut w = worker(0, 7);
        let before = w.flat();
        let (loss, acc) = w.sgd_step(16, 0.1);
        assert!(loss.is_finite() && (0.0..=1.0).contains(&acc));
        assert_ne!(before, w.flat());
    }

    #[test]
    fn different_ranks_sample_different_batches() {
        let mut a = worker(0, 7);
        let mut b = worker(1, 7);
        // Same initial model, same data, different private batch streams:
        // one step must diverge them.
        let (la, _) = a.sgd_step(8, 0.1);
        let (lb, _) = b.sgd_step(8, 0.1);
        // Losses may coincide numerically, but parameters should differ.
        assert_ne!(a.flat(), b.flat(), "la {la} lb {lb}");
    }

    #[test]
    fn sparse_exchange_agrees_on_masked_coords() {
        let mut a = worker(0, 1);
        let mut b = worker(1, 1);
        a.sgd_step(8, 0.2);
        b.sgd_step(8, 0.2);
        let n = a.model().num_params();
        let mask = RandomMask::generate(n, 4.0, 123, 9);
        let pa = a.sparse_payload(&mask);
        let pb = b.sparse_payload(&mask);
        a.merge_sparse(&mask, &pb);
        b.merge_sparse(&mask, &pa);
        let fa = a.flat();
        let fb = b.flat();
        for &i in mask.indices() {
            assert_eq!(fa[i as usize], fb[i as usize]);
        }
        // Unmasked coordinates still differ (local SGD diverged them).
        let dense = mask.to_dense();
        assert!((0..n).any(|i| !dense[i] && fa[i] != fb[i]));
    }

    #[test]
    fn merge_preserves_pair_mean_on_masked_coords() {
        let mut a = worker(0, 2);
        let mut b = worker(1, 2);
        a.sgd_step(8, 0.3);
        let n = a.model().num_params();
        let mask = RandomMask::generate(n, 2.0, 5, 0);
        let fa0 = a.flat();
        let fb0 = b.flat();
        let pa = a.sparse_payload(&mask);
        let pb = b.sparse_payload(&mask);
        a.merge_sparse(&mask, &pb);
        b.merge_sparse(&mask, &pa);
        let fa1 = a.flat();
        for &i in mask.indices() {
            let i = i as usize;
            let expect = 0.5 * (fa0[i] + fb0[i]);
            assert!((fa1[i] - expect).abs() < 1e-7);
        }
    }

    #[test]
    fn update_flat_and_add_scaled_reuse_scratch() {
        let mut w = worker(0, 3);
        let before = w.flat();
        w.add_scaled(-1.0, &before);
        assert!(w.flat().iter().all(|&v| v == 0.0));
        w.update_flat(|flat| flat.copy_from_slice(&before));
        assert_eq!(w.flat(), before);
    }

    #[test]
    fn sparse_payload_into_matches_allocating_form() {
        let mut w = worker(0, 5);
        let n = w.model().num_params();
        let mask = RandomMask::generate(n, 4.0, 3, 1);
        let expect = w.sparse_payload(&mask);
        let mut buf = Vec::new();
        w.sparse_payload_into(&mask, &mut buf);
        assert_eq!(buf, expect);
    }

    #[test]
    fn set_flat_roundtrip() {
        let mut w = worker(0, 3);
        let mut flat = w.flat();
        flat[0] = 42.0;
        w.set_flat(&flat);
        assert_eq!(w.flat()[0], 42.0);
    }

    #[test]
    fn rollback_replays_bit_identically() {
        let mut w = worker(0, 11);
        w.sgd_step(8, 0.1);
        let snap = w.save_state();
        let (l1, _) = w.sgd_step(8, 0.1);
        let after_one = w.flat();
        w.sgd_step(8, 0.1);
        // Roll back two steps, replay one: parameters and RNG must land
        // exactly where the first replayed step originally did.
        w.rollback(&snap);
        let (l2, _) = w.sgd_step(8, 0.1);
        assert_eq!(l1, l2);
        assert_eq!(w.flat(), after_one);
    }
}
