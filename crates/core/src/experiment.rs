//! The experiment driver: declarative spec → registry → event-driven run.
//!
//! [`Experiment`] is the one supported way to run an algorithm (the old
//! free `sim::run` + `RunOptions` pair is gone after its deprecation
//! window). It owns the whole recipe of one run — dataset and partition strategy,
//! bandwidth model, algorithm spec, event schedule, evaluation cadence,
//! early stop — builds the trainer through an
//! [`crate::AlgorithmRegistry`], and drives it round by round through
//! [`crate::RoundCtx`], applying [`ScenarioEvent`]s uniformly to every
//! algorithm. Observers ([`RoundObserver`], [`CsvSink`]) watch the run
//! without owning it, so figure binaries shrink to spec + formatting.
//!
//! ```
//! use saps_core::{AlgorithmRegistry, AlgorithmSpec, Experiment};
//! use saps_data::SyntheticSpec;
//! use saps_nn::zoo;
//!
//! let ds = SyntheticSpec::tiny().samples(600).generate(1);
//! let (train, val) = ds.split(0.25, 0);
//! let hist = Experiment::new(AlgorithmSpec::parse("saps").unwrap().with_compression(4.0))
//!     .train(train)
//!     .validation(val)
//!     .workers(4)
//!     .batch_size(16)
//!     .lr(0.1)
//!     .model(|rng| zoo::mlp(&[16, 16, 4], rng))
//!     .rounds(10)
//!     .eval_every(5)
//!     .run(&AlgorithmRegistry::core())
//!     .unwrap();
//! assert_eq!(hist.points.len(), 10);
//! ```

use crate::scenario::BandwidthState;
use crate::{
    AlgorithmRegistry, AlgorithmSpec, BandwidthModel, BuildCtx, ConfigError, ModelFactory,
    RoundCtx, ScenarioEvent, ScheduledEvent, Trainer,
};
use rand::rngs::StdRng;
use saps_data::{partition, Dataset};
use saps_netsim::{to_mb, BandwidthMatrix, TimeModel, TrafficAccountant};
use saps_nn::Model;
use saps_runtime::{Executor, ParallelismPolicy};
use saps_telemetry::Recorder;
use saps_tensor::rng::{derive_seed, streams};
use std::io::Write;
use std::sync::Arc;
use std::time::Instant;

/// One sampled point of a training run.
///
/// `#[non_exhaustive]` so future metric fields are not breaking changes;
/// construct via [`HistoryPoint::new`] (the driver fills every field).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[non_exhaustive]
pub struct HistoryPoint {
    /// Communication round index (0-based, recorded *after* the round).
    pub round: usize,
    /// Epochs of local data processed so far.
    pub epoch: f64,
    /// Top-1 validation accuracy of the consensus model, in `[0, 1]`.
    /// Between evaluations this repeats the last measured value (so
    /// curves stay dense without paying evaluation cost each round);
    /// check [`HistoryPoint::evaluated`] before treating it as fresh.
    pub val_acc: f32,
    /// Whether `val_acc` was measured *at this round* (true) or carried
    /// forward from the last evaluation (false).
    pub evaluated: bool,
    /// Mean training loss at this round.
    pub train_loss: f32,
    /// Busiest worker's cumulative traffic so far (MB) — Fig. 4's x-axis.
    pub worker_traffic_mb: f64,
    /// Cumulative communication time so far (seconds) — Fig. 6's x-axis.
    pub comm_time_s: f64,
    /// Cumulative compute-phase time so far (seconds); 0 unless the
    /// experiment models compute time ([`Experiment::compute_time`]).
    pub compute_time_s: f64,
    /// Cumulative mean per-worker idle time so far (seconds) — the
    /// "waiting on stragglers / slow links" share of the critical path.
    pub idle_time_s: f64,
    /// Cumulative full round time so far: the sum of every round's
    /// [`crate::RoundReport::round_time_s`] critical path
    /// (`compute_time_s + comm_time_s` up to float rounding).
    pub total_time_s: f64,
    /// Mean bandwidth of this round's peer links (MB/s).
    pub link_bandwidth: f64,
    /// Bottleneck bandwidth of this round's peer links (MB/s) — the
    /// effective iteration bandwidth Fig. 5 ranks algorithms by.
    pub bottleneck_bandwidth: f64,
}

impl HistoryPoint {
    /// An all-zero point; the driver assigns every field.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A completed run: the algorithm name plus its sampled trajectory.
#[derive(Debug, Clone)]
pub struct RunHistory {
    /// Algorithm name (paper spelling).
    pub algorithm: String,
    /// Sampled points, in round order.
    pub points: Vec<HistoryPoint>,
    /// Final consensus-model validation accuracy.
    pub final_acc: f32,
    /// Total traffic on the busiest worker (MB).
    pub total_worker_traffic_mb: f64,
    /// Total server traffic (MB); 0 for serverless algorithms.
    pub total_server_traffic_mb: f64,
    /// Total logical traffic of the whole run (MB): bytes sent by every
    /// worker plus the server row. This is the in-memory analog of the
    /// cluster driver's framed wire total, so memory and cluster
    /// throughput rows stay comparable.
    pub total_traffic_mb: f64,
    /// Total communication time (seconds).
    pub total_comm_time_s: f64,
    /// Total compute-phase time (seconds); 0 unless compute is modeled.
    pub total_compute_time_s: f64,
    /// Total mean per-worker idle time (seconds).
    pub total_idle_time_s: f64,
    /// Wall-clock time the driver spent stepping and evaluating
    /// (seconds) — the throughput denominator of
    /// `BENCH_round_throughput.json`. Unlike every other field it is
    /// *not* deterministic, so comparisons of run equality should skip
    /// it.
    pub wall_time_s: f64,
}

impl RunHistory {
    /// The first *freshly evaluated* point at which validation accuracy
    /// reached `target`, if ever — the paper's "at reaching target
    /// accuracy" rows (Table IV).
    ///
    /// Only points with [`HistoryPoint::evaluated`] set are considered:
    /// points between evaluations reuse the last measured accuracy, so
    /// matching them would attribute the crossing up to `eval_every − 1`
    /// rounds early.
    pub fn first_reaching(&self, target: f32) -> Option<&HistoryPoint> {
        self.points
            .iter()
            .find(|p| p.evaluated && p.val_acc >= target)
    }

    /// Mean link bandwidth across all sampled rounds (Fig. 5 summary).
    pub fn mean_link_bandwidth(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|p| p.link_bandwidth).sum::<f64>() / self.points.len() as f64
    }
}

/// How the training set is split across workers.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum PartitionStrategy {
    /// Uniform random split (the paper's default).
    Iid,
    /// Dirichlet(α) label-skewed split (non-IID federated setting).
    Dirichlet {
        /// Concentration parameter; smaller = more skew.
        alpha: f64,
    },
    /// Sort-by-label shards, `per_worker` shards each (pathological
    /// non-IID).
    Shards {
        /// Shards per worker.
        per_worker: usize,
    },
}

impl PartitionStrategy {
    /// Splits `train` into one dataset per worker, exactly as
    /// [`Experiment::run`] does for experiment seed `seed`.
    pub fn apply(&self, train: &Dataset, workers: usize, seed: u64) -> Vec<Dataset> {
        let pseed = derive_seed(seed, 0, streams::DATA);
        match *self {
            PartitionStrategy::Iid => partition::iid(train, workers, pseed),
            PartitionStrategy::Dirichlet { alpha } => {
                partition::dirichlet(train, workers, alpha, pseed)
            }
            PartitionStrategy::Shards { per_worker } => {
                partition::shards(train, workers, per_worker, pseed)
            }
        }
    }
}

/// Watches a run without owning it: called after every round and once at
/// the end.
pub trait RoundObserver {
    /// Called after each round with the freshly recorded point.
    fn on_point(&mut self, point: &HistoryPoint);

    /// Called once when the run finishes.
    fn on_complete(&mut self, history: &RunHistory) {
        let _ = history;
    }
}

impl<F: FnMut(&HistoryPoint)> RoundObserver for F {
    fn on_point(&mut self, point: &HistoryPoint) {
        self(point)
    }
}

/// An observer that streams each point as a CSV row (header first) to any
/// writer — the downstream-user path from `run_experiment` to a plot.
pub struct CsvSink<W: Write> {
    out: W,
    wrote_header: bool,
}

impl<W: Write> CsvSink<W> {
    /// Wraps a writer. The header row is emitted before the first point.
    pub fn new(out: W) -> Self {
        CsvSink {
            out,
            wrote_header: false,
        }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write> RoundObserver for CsvSink<W> {
    fn on_point(&mut self, p: &HistoryPoint) {
        if !self.wrote_header {
            let _ = writeln!(
                self.out,
                "round,epoch,val_acc,evaluated,train_loss,worker_traffic_mb,comm_time_s,link_bw,bottleneck_bw,compute_s,idle_s,total_s"
            );
            self.wrote_header = true;
        }
        let _ = writeln!(
            self.out,
            "{},{:.4},{:.4},{},{:.5},{:.6},{:.6},{:.4},{:.4},{:.6},{:.6},{:.6}",
            p.round + 1,
            p.epoch,
            p.val_acc,
            u8::from(p.evaluated),
            p.train_loss,
            p.worker_traffic_mb,
            p.comm_time_s,
            p.link_bandwidth,
            p.bottleneck_bandwidth,
            p.compute_time_s,
            p.idle_time_s,
            p.total_time_s,
        );
    }

    fn on_complete(&mut self, _history: &RunHistory) {
        let _ = self.out.flush();
    }
}

/// A declarative experiment: algorithm spec + data + network + schedule.
///
/// Build it with chained setters, then call [`Experiment::run`] with a
/// registry that knows the algorithm. Defaults: IID partition, 8
/// workers, batch 32, lr 0.1, seed 0, constant 1 MB/s bandwidth, 100
/// rounds, evaluation every 10 rounds on up to 1000 samples, no epoch
/// cap, no early stop.
pub struct Experiment {
    spec: AlgorithmSpec,
    train: Option<Dataset>,
    val: Option<Dataset>,
    partition: PartitionStrategy,
    workers: usize,
    batch_size: usize,
    lr: f32,
    seed: u64,
    bandwidth: Option<BandwidthModel>,
    rounds: usize,
    eval_every: usize,
    eval_samples: usize,
    max_epochs: f64,
    target_acc: Option<f32>,
    events: Vec<ScheduledEvent>,
    factory: Option<ModelFactory>,
    observers: Vec<Box<dyn RoundObserver>>,
    after_round: Option<AfterRoundHook>,
    parallelism: ParallelismPolicy,
    time_model: TimeModel,
    compute_time: f64,
    pipeline: bool,
    telemetry: Recorder,
}

/// A per-round hook with mutable trainer access — unlike a
/// [`RoundObserver`] it may *act* on the trainer (export a checkpoint,
/// announce it to a serving plane) between rounds.
type AfterRoundHook = Box<dyn FnMut(&mut dyn Trainer, &HistoryPoint)>;

impl std::fmt::Debug for Experiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Experiment")
            .field("spec", &self.spec)
            .field("workers", &self.workers)
            .field("rounds", &self.rounds)
            .field("events", &self.events.len())
            .finish()
    }
}

impl Experiment {
    /// Starts an experiment for `spec` with the defaults listed on the
    /// type.
    pub fn new(spec: AlgorithmSpec) -> Self {
        Experiment {
            spec,
            train: None,
            val: None,
            partition: PartitionStrategy::Iid,
            workers: 8,
            batch_size: 32,
            lr: 0.1,
            seed: 0,
            bandwidth: None,
            rounds: 100,
            eval_every: 10,
            eval_samples: 1_000,
            max_epochs: f64::INFINITY,
            target_acc: None,
            events: Vec::new(),
            factory: None,
            observers: Vec::new(),
            after_round: None,
            parallelism: ParallelismPolicy::Auto,
            time_model: TimeModel::Analytic,
            compute_time: 0.0,
            pipeline: false,
            telemetry: Recorder::disabled(),
        }
    }

    /// The training set (required); partitioned across workers by the
    /// [`PartitionStrategy`].
    pub fn train(mut self, ds: Dataset) -> Self {
        self.train = Some(ds);
        self
    }

    /// The validation set (required); consensus accuracy is measured on
    /// it.
    pub fn validation(mut self, ds: Dataset) -> Self {
        self.val = Some(ds);
        self
    }

    /// How the training set is split across workers (default IID).
    pub fn partition(mut self, strategy: PartitionStrategy) -> Self {
        self.partition = strategy;
        self
    }

    /// Fleet size `n` (default 8).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Mini-batch size per worker per local step (default 32).
    pub fn batch_size(mut self, b: usize) -> Self {
        self.batch_size = b;
        self
    }

    /// Learning rate γ (default 0.1).
    pub fn lr(mut self, lr: f32) -> Self {
        self.lr = lr;
        self
    }

    /// Experiment seed; all randomness (partitioning, initialization,
    /// masks, per-round RNGs) derives from it (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The bandwidth model (default: constant 1 MB/s between all pairs).
    pub fn bandwidth(mut self, model: BandwidthModel) -> Self {
        self.bandwidth = Some(model);
        self
    }

    /// Shorthand for a static bandwidth matrix.
    pub fn bandwidth_matrix(self, bw: BandwidthMatrix) -> Self {
        self.bandwidth(BandwidthModel::Static(bw))
    }

    /// The model constructor (required): builds one replica from a
    /// seeded RNG; called with identically seeded RNGs so all replicas
    /// start equal.
    pub fn model(mut self, factory: impl Fn(&mut StdRng) -> Model + Send + Sync + 'static) -> Self {
        self.factory = Some(Arc::new(factory));
        self
    }

    /// Total communication rounds to run (default 100).
    pub fn rounds(mut self, rounds: usize) -> Self {
        self.rounds = rounds;
        self
    }

    /// Evaluate validation accuracy every `n` rounds (default 10).
    pub fn eval_every(mut self, n: usize) -> Self {
        self.eval_every = n;
        self
    }

    /// Cap on validation examples per evaluation (default 1000).
    pub fn eval_samples(mut self, n: usize) -> Self {
        self.eval_samples = n;
        self
    }

    /// Stop once this many epochs of local data have been processed
    /// (whichever of rounds / epochs hits first). The paper's Fig. 3
    /// compares algorithms at equal *epochs*.
    pub fn max_epochs(mut self, epochs: f64) -> Self {
        self.max_epochs = epochs;
        self
    }

    /// Stop early at the first fresh evaluation reaching `acc` (the
    /// paper's "at reaching target accuracy" protocol, Table IV).
    pub fn target_accuracy(mut self, acc: f32) -> Self {
        self.target_acc = Some(acc);
        self
    }

    /// Schedules one [`ScenarioEvent`] before round `round`.
    pub fn event(mut self, round: usize, event: ScenarioEvent) -> Self {
        self.events.push(ScheduledEvent { round, event });
        self
    }

    /// Schedules many events at once.
    pub fn events(mut self, events: impl IntoIterator<Item = ScheduledEvent>) -> Self {
        self.events.extend(events);
        self
    }

    /// Attaches an observer (e.g. a [`CsvSink`]).
    pub fn observer(mut self, obs: Box<dyn RoundObserver>) -> Self {
        self.observers.push(obs);
        self
    }

    /// Attaches a per-round callback.
    pub fn on_round(self, f: impl FnMut(&HistoryPoint) + 'static) -> Self {
        self.observer(Box::new(f))
    }

    /// Installs a hook called after every round *with mutable trainer
    /// access*, once the round's observers have seen the point. This is
    /// the train-and-serve seam: a `saps-serve` plane exports the
    /// trainer's consensus checkpoint here
    /// ([`Trainer::export_checkpoint`]) and announces it to its replicas
    /// while requests keep flowing. Only one hook can be installed; a
    /// second call replaces the first.
    pub fn after_round(mut self, f: impl FnMut(&mut dyn Trainer, &HistoryPoint) + 'static) -> Self {
        self.after_round = Some(Box::new(f));
        self
    }

    /// How many threads the per-worker compute phase of each round may
    /// use (default [`ParallelismPolicy::Auto`]: all cores). Every
    /// policy produces the bit-identical [`RunHistory`] — switch to
    /// [`ParallelismPolicy::Sequential`] only to debug or profile a
    /// single lane.
    pub fn parallelism(mut self, policy: ParallelismPolicy) -> Self {
        self.parallelism = policy;
        self
    }

    /// How each round's transfer set is priced into communication time
    /// (default [`TimeModel::Analytic`], the paper's closed-form
    /// accounting). Switching to [`TimeModel::EventDriven`] changes
    /// *only* time and idle accounting — losses, models and traffic are
    /// bit-identical under every model (pinned by
    /// `tests/trainer_conformance.rs`).
    pub fn time_model(mut self, model: TimeModel) -> Self {
        self.time_model = model;
        self
    }

    /// Seconds of local compute per round at nominal speed (default 0:
    /// compute is not modeled). With a non-zero base, scheduled
    /// [`ScenarioEvent::Straggler`] slowdowns stagger when each
    /// worker's transfers can start, and the per-round critical-path
    /// breakdown (compute vs transfer vs idle) becomes non-trivial.
    ///
    /// Compute is modeled *fleet-wide*: every active worker is assumed
    /// to spend the base × slowdown seconds each round, including
    /// parameter-server clients that happen not to be sampled that
    /// round — the driver does not see algorithm-internal sampling.
    /// Departed workers ([`ScenarioEvent::WorkerLeave`]) do no compute
    /// and are excluded from the idle accounting.
    pub fn compute_time(mut self, seconds_per_round: f64) -> Self {
        self.compute_time = seconds_per_round;
        self
    }

    /// Overlap each round's compute phase with the previous round's
    /// payload drain (default off). With pipelining on, a worker begins
    /// round `t+1`'s local steps while round `t`'s transfers are still
    /// in flight, so the DES gates round `t+1`'s flow releases on only
    /// the compute that *outlasts* the drain:
    /// `max(0, compute × slowdown − prev_round_comm_time)`.
    ///
    /// Pipelining changes the time model only — the exchange arithmetic
    /// and its rank-ordered reductions are untouched, so a pipelined
    /// run is bit-identical in training state (params, loss, traffic)
    /// to the sequential run, and no round can take *longer* (the
    /// compute gates only ever shrink). A no-op unless
    /// [`Experiment::compute_time`] is non-zero.
    pub fn pipeline(mut self, on: bool) -> Self {
        self.pipeline = on;
        self
    }

    /// Attaches a telemetry [`Recorder`] (default: disabled). The
    /// driver stamps the recorder's virtual clock with the cumulative
    /// simulated round time, emits per-round metrics
    /// (`train.*`, `round.*` histograms) and span-style `phase` events
    /// (plan → compute → comm → drain), and hands the recorder to every
    /// [`RoundCtx`] so trainers and the pricing layer feed the same
    /// registry. Telemetry observes without perturbing: a run with the
    /// recorder enabled is bit-identical to the same run with it off
    /// (pinned by `tests/telemetry.rs`).
    pub fn telemetry(mut self, recorder: Recorder) -> Self {
        self.telemetry = recorder;
        self
    }

    /// Builds the trainer through `registry` and drives the full run.
    pub fn run(mut self, registry: &AlgorithmRegistry) -> Result<RunHistory, ConfigError> {
        self.spec.validate()?;
        let train = self
            .train
            .take()
            .ok_or_else(|| ConfigError::invalid("Experiment", "no training set (call .train())"))?;
        let val = self.val.take().ok_or_else(|| {
            ConfigError::invalid("Experiment", "no validation set (call .validation())")
        })?;
        let factory = self.factory.take().ok_or_else(|| {
            ConfigError::invalid("Experiment", "no model factory (call .model())")
        })?;
        if self.workers < 2 {
            return Err(ConfigError::invalid(
                "Experiment",
                "need at least 2 workers",
            ));
        }
        if self.rounds == 0 {
            return Err(ConfigError::invalid("Experiment", "need at least 1 round"));
        }
        if self.eval_every == 0 {
            return Err(ConfigError::invalid(
                "Experiment",
                "eval_every must be >= 1",
            ));
        }
        let bandwidth = self.bandwidth.take().unwrap_or_else(|| {
            BandwidthModel::Static(BandwidthMatrix::constant(self.workers, 1.0))
        });
        bandwidth.validate()?;
        if bandwidth.len() != self.workers {
            return Err(ConfigError::invalid(
                "Experiment",
                format!(
                    "bandwidth model covers {} workers, experiment has {}",
                    bandwidth.len(),
                    self.workers
                ),
            ));
        }
        for ev in &self.events {
            ev.validate(self.workers)?;
        }
        if !(self.compute_time.is_finite() && self.compute_time >= 0.0) {
            return Err(ConfigError::invalid(
                "Experiment",
                "compute_time must be finite and >= 0",
            ));
        }

        let partitions = self.partition.apply(&train, self.workers, self.seed);
        let mut bw_state = BandwidthState::new(bandwidth);
        let initial_bw = bw_state.current();
        let mut trainer = registry.build(
            &self.spec,
            BuildCtx {
                partitions,
                bw: &initial_bw,
                batch_size: self.batch_size,
                lr: self.lr,
                seed: self.seed,
                factory,
            },
        )?;

        // Events sorted by round; stable so same-round events keep their
        // scheduling order.
        let mut events = std::mem::take(&mut self.events);
        events.sort_by_key(|e| e.round);
        let mut next_event = 0usize;

        let exec = Executor::new(self.parallelism);
        let started = Instant::now();
        let mut traffic = TrafficAccountant::new(self.workers);
        let mut points = Vec::with_capacity(self.rounds);
        let mut epoch = 0.0f64;
        let mut time_s = 0.0f64;
        let mut compute_s = 0.0f64;
        let mut idle_s = 0.0f64;
        let mut total_s = 0.0f64;
        let mut last_acc = trainer.evaluate(&val, self.eval_samples);
        let refresh_every = bw_state.refresh_every();
        // Straggler / membership state for the compute schedule: only
        // active workers contribute compute time to the round's
        // critical path.
        let mut slowdowns = vec![1.0f64; self.workers];
        let mut active = vec![true; self.workers];
        // Pipelining carry: seconds the previous round's payload kept
        // draining — compute that fits inside it is hidden.
        let mut prev_comm = 0.0f64;

        for round in 0..self.rounds {
            // Discrete events scheduled before this round. A failing
            // event (e.g. churn below an algorithm's minimum fleet) ends
            // the run as an error — but only after flushing observers, so
            // a streaming CSV sink is not truncated mid-row.
            let mut bw_changed = false;
            while next_event < events.len() && events[next_event].round <= round {
                let ev = &events[next_event].event;
                let applied = match ev {
                    ScenarioEvent::WorkerLeave { rank } => {
                        let applied = trainer.set_worker_active(*rank, false);
                        if applied.is_ok() {
                            active[*rank] = false;
                        }
                        applied
                    }
                    ScenarioEvent::WorkerJoin { rank } => {
                        let applied = trainer.set_worker_active(*rank, true);
                        if applied.is_ok() {
                            active[*rank] = true;
                        }
                        applied
                    }
                    ScenarioEvent::Straggler { rank, slowdown } => {
                        slowdowns[*rank] = *slowdown;
                        Ok(())
                    }
                    _ => {
                        bw_changed |= bw_state.apply(ev);
                        Ok(())
                    }
                };
                if applied.is_ok() && self.telemetry.is_enabled() {
                    // Scenario churn lands in the event trail so a
                    // flight dump shows what the fleet looked like
                    // before a failure.
                    self.telemetry.event(
                        "scenario",
                        Some(round as u64),
                        vec![("detail", format!("{ev:?}").into())],
                    );
                }
                if let Err(e) = applied {
                    let partial = RunHistory {
                        algorithm: trainer.name().to_string(),
                        final_acc: last_acc,
                        total_worker_traffic_mb: to_mb(traffic.max_worker_total()),
                        total_server_traffic_mb: to_mb(traffic.server_total()),
                        total_traffic_mb: to_mb(
                            traffic.grand_total_sent() + traffic.server_total(),
                        ),
                        total_comm_time_s: time_s,
                        total_compute_time_s: compute_s,
                        total_idle_time_s: idle_s,
                        wall_time_s: started.elapsed().as_secs_f64(),
                        points,
                    };
                    for obs in &mut self.observers {
                        obs.on_complete(&partial);
                    }
                    return Err(ConfigError::invalid(
                        "Experiment",
                        format!("event at round {round} failed: {e} ({ev:?})"),
                    ));
                }
                next_event += 1;
            }
            // Continuous drift, then refresh the trainer's planning view
            // when events changed the matrix or the report cadence hit.
            let current = bw_state.advance();
            if bw_changed
                || (refresh_every != usize::MAX && round % refresh_every == 0 && round > 0)
            {
                trainer.refresh_bandwidth(&current);
            }

            // Compute schedule for this round: active workers finish
            // their local steps at base × slowdown; departed workers
            // are marked NaN so the pricing layer neither gates flow
            // releases on them nor bills them idle time. All-zero
            // schedules skip the allocation.
            let overlap = if self.pipeline { prev_comm } else { 0.0 };
            let starts: Vec<f64> = if self.compute_time > 0.0 {
                (0..self.workers)
                    .map(|r| {
                        if active[r] {
                            (self.compute_time * slowdowns[r] - overlap).max(0.0)
                        } else {
                            f64::NAN
                        }
                    })
                    .collect()
            } else {
                Vec::new()
            };
            let rep = {
                let mut ctx = RoundCtx::new(round, &current, &mut traffic, self.seed)
                    .with_executor(exec)
                    .with_time_model(self.time_model)
                    .with_compute_starts(starts)
                    .with_telemetry(self.telemetry.clone());
                trainer.step(&mut ctx)
            };
            epoch += rep.epochs_advanced;
            prev_comm = rep.comm_time_s;
            time_s += rep.comm_time_s;
            compute_s += rep.compute_time_s;
            idle_s += rep.idle_time_s;
            total_s += rep.round_time_s;
            let done = round + 1 == self.rounds || epoch >= self.max_epochs;
            let evaluated = (round + 1) % self.eval_every == 0 || done;
            if evaluated {
                last_acc = trainer.evaluate(&val, self.eval_samples);
            }
            let mut point = HistoryPoint::new();
            point.round = round;
            point.epoch = epoch;
            point.val_acc = last_acc;
            point.evaluated = evaluated;
            point.train_loss = rep.mean_loss;
            point.worker_traffic_mb = to_mb(traffic.max_worker_total());
            point.comm_time_s = time_s;
            point.compute_time_s = compute_s;
            point.idle_time_s = idle_s;
            point.total_time_s = total_s;
            point.link_bandwidth = rep.mean_link_bandwidth;
            point.bottleneck_bandwidth = rep.min_link_bandwidth;
            if self.telemetry.is_enabled() {
                // Stamp the recorder clock with cumulative *virtual*
                // round time (never wall clock) and lay down the
                // round's metrics and phase spans.
                let t_end = total_s;
                let t0 = t_end - rep.round_time_s;
                self.telemetry.set_vtime(t_end);
                self.telemetry.add("train.rounds", 1);
                self.telemetry
                    .set_gauge("train.loss", f64::from(rep.mean_loss));
                self.telemetry.set_gauge("train.epoch", epoch);
                if evaluated {
                    self.telemetry
                        .set_gauge("train.val_acc", f64::from(last_acc));
                }
                self.telemetry.observe("round.total_s", rep.round_time_s);
                self.telemetry
                    .observe("round.compute_s", rep.compute_time_s);
                self.telemetry.observe("round.comm_s", rep.comm_time_s);
                self.telemetry.event(
                    "round",
                    Some(round as u64),
                    vec![
                        ("loss", f64::from(rep.mean_loss).into()),
                        ("val_acc", f64::from(last_acc).into()),
                        ("evaluated", evaluated.into()),
                        ("epoch", epoch.into()),
                    ],
                );
                // Span-style phase trail in virtual time. `plan` is
                // zero-width (planning is not priced by the time
                // model); `drain` is zero-width except that it carries
                // the round's mean idle seconds — under pipelining the
                // next round's compute overlaps this span.
                let spans = [
                    ("plan", t0, t0, 0.0),
                    ("compute", t0, t0 + rep.compute_time_s, 0.0),
                    (
                        "comm",
                        t0 + rep.compute_time_s,
                        t0 + rep.compute_time_s + rep.comm_time_s,
                        0.0,
                    ),
                    ("drain", t_end, t_end, rep.idle_time_s),
                ];
                for (name, start_s, end_s, span_idle) in spans {
                    let mut fields = vec![
                        ("name", name.into()),
                        ("start_s", start_s.into()),
                        ("end_s", end_s.into()),
                    ];
                    if span_idle > 0.0 {
                        fields.push(("idle_s", span_idle.into()));
                    }
                    self.telemetry.event("phase", Some(round as u64), fields);
                }
            }
            for obs in &mut self.observers {
                obs.on_point(&point);
            }
            if let Some(hook) = self.after_round.as_mut() {
                hook(&mut *trainer, &point);
            }
            points.push(point);
            if evaluated && self.target_acc.is_some_and(|t| last_acc >= t) {
                break;
            }
            if epoch >= self.max_epochs {
                break;
            }
        }

        let history = RunHistory {
            algorithm: trainer.name().to_string(),
            final_acc: last_acc,
            total_worker_traffic_mb: to_mb(traffic.max_worker_total()),
            total_server_traffic_mb: to_mb(traffic.server_total()),
            total_traffic_mb: to_mb(traffic.grand_total_sent() + traffic.server_total()),
            total_comm_time_s: time_s,
            total_compute_time_s: compute_s,
            total_idle_time_s: idle_s,
            wall_time_s: started.elapsed().as_secs_f64(),
            points,
        };
        for obs in &mut self.observers {
            obs.on_complete(&history);
        }
        Ok(history)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saps_data::SyntheticSpec;
    use saps_nn::zoo;

    fn base() -> Experiment {
        let ds = SyntheticSpec::tiny().samples(800).generate(1);
        let (train, val) = ds.split(0.25, 0);
        Experiment::new(AlgorithmSpec::Saps {
            compression: 4.0,
            tthres: 4,
            bthres: None,
        })
        .train(train)
        .validation(val)
        .workers(4)
        .batch_size(16)
        .lr(0.1)
        .model(|rng| zoo::mlp(&[16, 16, 4], rng))
    }

    #[test]
    fn run_produces_monotone_axes() {
        let hist = base()
            .rounds(30)
            .eval_every(5)
            .eval_samples(200)
            .run(&AlgorithmRegistry::core())
            .unwrap();
        assert_eq!(hist.points.len(), 30);
        for w in hist.points.windows(2) {
            assert!(w[1].epoch > w[0].epoch);
            assert!(w[1].worker_traffic_mb >= w[0].worker_traffic_mb);
            assert!(w[1].comm_time_s >= w[0].comm_time_s);
        }
        assert_eq!(hist.algorithm, "SAPS-PSGD");
        assert_eq!(hist.total_server_traffic_mb, 0.0);
        assert!(hist.total_worker_traffic_mb > 0.0);
    }

    #[test]
    fn eval_cadence_marks_fresh_points() {
        let hist = base()
            .rounds(20)
            .eval_every(5)
            .eval_samples(100)
            .run(&AlgorithmRegistry::core())
            .unwrap();
        for p in &hist.points {
            assert_eq!(p.evaluated, (p.round + 1) % 5 == 0, "round {}", p.round);
        }
    }

    #[test]
    fn first_reaching_skips_stale_points() {
        let mk = |round: usize, acc: f32, evaluated: bool| {
            let mut p = HistoryPoint::new();
            p.round = round;
            p.val_acc = acc;
            p.evaluated = evaluated;
            p
        };
        // Accuracy measured 0.9 at round 4; rounds 0-3 carry a stale 0.9
        // from nowhere (simulating the old bug's shape): only round 4 may
        // match.
        let h = RunHistory {
            algorithm: "x".into(),
            points: vec![
                mk(0, 0.9, false),
                mk(1, 0.9, false),
                mk(2, 0.9, false),
                mk(3, 0.9, false),
                mk(4, 0.9, true),
            ],
            final_acc: 0.9,
            total_worker_traffic_mb: 0.0,
            total_server_traffic_mb: 0.0,
            total_traffic_mb: 0.0,
            total_comm_time_s: 0.0,
            total_compute_time_s: 0.0,
            total_idle_time_s: 0.0,
            wall_time_s: 0.0,
        };
        assert_eq!(h.first_reaching(0.5).unwrap().round, 4);
        assert!(h.first_reaching(0.99).is_none());
    }

    #[test]
    fn target_accuracy_stops_early() {
        let hist = base()
            .rounds(300)
            .eval_every(5)
            .eval_samples(300)
            .target_accuracy(0.5)
            .run(&AlgorithmRegistry::core())
            .unwrap();
        assert!(hist.final_acc >= 0.5);
        assert!(
            hist.points.len() < 300,
            "early stop did not trigger ({} rounds)",
            hist.points.len()
        );
        let last = hist.points.last().unwrap();
        assert!(last.evaluated && last.val_acc >= 0.5);
    }

    #[test]
    fn churn_events_drive_saps_membership() {
        let ds = SyntheticSpec::tiny().samples(1_200).generate(2);
        let (train, val) = ds.split(0.25, 0);
        let hist = Experiment::new(AlgorithmSpec::Saps {
            compression: 4.0,
            tthres: 4,
            bthres: None,
        })
        .train(train)
        .validation(val)
        .workers(6)
        .batch_size(16)
        .model(|rng| zoo::mlp(&[16, 16, 4], rng))
        .rounds(30)
        .eval_every(10)
        .eval_samples(200)
        .event(10, ScenarioEvent::WorkerLeave { rank: 5 })
        .event(20, ScenarioEvent::WorkerJoin { rank: 5 })
        .run(&AlgorithmRegistry::core())
        .unwrap();
        assert_eq!(hist.points.len(), 30);
        assert!(hist.points.iter().all(|p| p.train_loss.is_finite()));
    }

    #[test]
    fn bandwidth_shift_slows_rounds() {
        let run = |events: Vec<ScheduledEvent>| {
            base()
                .rounds(10)
                .eval_every(10)
                .eval_samples(100)
                .events(events)
                .run(&AlgorithmRegistry::core())
                .unwrap()
        };
        let normal = run(vec![]);
        let congested = run(vec![ScheduledEvent {
            round: 0,
            event: ScenarioEvent::BandwidthShift { scale: 0.25 },
        }]);
        assert!(
            congested.total_comm_time_s > normal.total_comm_time_s * 3.0,
            "shift {} !>> {}",
            congested.total_comm_time_s,
            normal.total_comm_time_s
        );
    }

    #[test]
    fn event_driven_pricing_changes_time_but_not_learning() {
        let run = |model: TimeModel| {
            base()
                .rounds(8)
                .eval_every(4)
                .eval_samples(150)
                .time_model(model)
                .run(&AlgorithmRegistry::core())
                .unwrap()
        };
        let analytic = run(TimeModel::Analytic);
        let des = run(TimeModel::event_driven(0.05));
        for (a, d) in analytic.points.iter().zip(&des.points) {
            assert_eq!(a.train_loss, d.train_loss);
            assert_eq!(a.val_acc, d.val_acc);
            assert_eq!(a.worker_traffic_mb, d.worker_traffic_mb);
        }
        assert_eq!(analytic.final_acc, des.final_acc);
        // 50 ms of per-link latency must make the DES run strictly
        // slower than the closed-form accounting.
        assert!(des.total_comm_time_s > analytic.total_comm_time_s);
    }

    #[test]
    fn stragglers_stretch_the_critical_path() {
        let run = |events: Vec<ScheduledEvent>| {
            base()
                .rounds(10)
                .eval_every(10)
                .eval_samples(100)
                .compute_time(0.5)
                .time_model(TimeModel::event_driven(0.0))
                .events(events)
                .run(&AlgorithmRegistry::core())
                .unwrap()
        };
        let nominal = run(vec![]);
        let straggled = run(vec![ScheduledEvent {
            round: 0,
            event: ScenarioEvent::Straggler {
                rank: 1,
                slowdown: 6.0,
            },
        }]);
        // Learning dynamics identical; only the clock moves.
        for (a, b) in nominal.points.iter().zip(&straggled.points) {
            assert_eq!(a.train_loss, b.train_loss);
        }
        // Compute critical path: 0.5 s/round nominal vs 3 s/round with
        // the straggler gating every round.
        assert!((nominal.total_compute_time_s - 5.0).abs() < 1e-9);
        assert!((straggled.total_compute_time_s - 30.0).abs() < 1e-9);
        assert!(straggled.total_idle_time_s > nominal.total_idle_time_s);
        for p in &straggled.points {
            assert!((p.total_time_s - (p.compute_time_s + p.comm_time_s)).abs() < 1e-9);
        }
    }

    #[test]
    fn departed_workers_are_not_billed_idle() {
        // 4 equal workers computing 1 s/round: nobody waits at the
        // barrier, so idle must be 0 — and must stay 0 after a worker
        // leaves (a departed worker is not "waiting", under either
        // time model).
        for model in [TimeModel::Analytic, TimeModel::event_driven(0.0)] {
            let run = |events: Vec<ScheduledEvent>| {
                base()
                    .rounds(6)
                    .eval_every(6)
                    .eval_samples(100)
                    .compute_time(1.0)
                    .time_model(model)
                    .events(events)
                    .run(&AlgorithmRegistry::core())
                    .unwrap()
            };
            let full = run(vec![]);
            let churned = run(vec![ScheduledEvent {
                round: 1,
                event: ScenarioEvent::WorkerLeave { rank: 3 },
            }]);
            assert!((full.total_compute_time_s - 6.0).abs() < 1e-9, "{model:?}");
            assert!(
                (churned.total_compute_time_s - 6.0).abs() < 1e-9,
                "{model:?}"
            );
            if matches!(model, TimeModel::Analytic) {
                assert_eq!(full.total_idle_time_s, 0.0, "{model:?}");
                assert_eq!(
                    churned.total_idle_time_s, 0.0,
                    "{model:?} billed a departed worker as idle"
                );
            } else {
                // DES idle includes the (tiny, millisecond-scale)
                // transfer waits; the old bug billed the departed
                // worker the full 1 s compute barrier every round
                // (≥ 1.25 s over 5 churned rounds at the 1/4 mean).
                assert!(
                    churned.total_idle_time_s < 0.5,
                    "{model:?}: departed worker billed idle ({} s)",
                    churned.total_idle_time_s
                );
            }
        }
    }

    #[test]
    fn compute_time_must_be_finite() {
        let err = base()
            .compute_time(f64::NAN)
            .run(&AlgorithmRegistry::core());
        assert!(err.is_err());
    }

    #[test]
    fn csv_sink_writes_header_and_rows() {
        let buf: Vec<u8> = Vec::new();
        let mut sink = CsvSink::new(buf);
        let mut p = HistoryPoint::new();
        p.round = 0;
        p.evaluated = true;
        sink.on_point(&p);
        p.round = 1;
        p.evaluated = false;
        sink.on_point(&p);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("round,epoch,val_acc,evaluated"));
        assert!(lines[1].starts_with("1,"));
        assert!(lines[2].starts_with("2,"));
    }

    #[test]
    fn missing_pieces_are_config_errors() {
        let spec = AlgorithmSpec::parse("saps").unwrap();
        let reg = AlgorithmRegistry::core();
        assert!(Experiment::new(spec).run(&reg).is_err());
        let ds = SyntheticSpec::tiny().samples(200).generate(1);
        let (train, val) = ds.split(0.25, 0);
        // Event rank out of range.
        let err = Experiment::new(spec)
            .train(train)
            .validation(val)
            .workers(4)
            .model(|rng| zoo::mlp(&[16, 8, 4], rng))
            .event(0, ScenarioEvent::WorkerLeave { rank: 9 })
            .run(&reg)
            .unwrap_err();
        assert!(matches!(err, ConfigError::InvalidParameter { .. }));
    }

    #[test]
    fn failing_mid_run_event_flushes_observers_before_erroring() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let seen = Rc::new(RefCell::new((0usize, false)));
        let seen_obs = Rc::clone(&seen);
        struct Probe(Rc<RefCell<(usize, bool)>>);
        impl RoundObserver for Probe {
            fn on_point(&mut self, _p: &HistoryPoint) {
                self.0.borrow_mut().0 += 1;
            }
            fn on_complete(&mut self, h: &RunHistory) {
                let mut s = self.0.borrow_mut();
                assert_eq!(s.0, h.points.len());
                s.1 = true;
            }
        }
        // SAPS keeps >= 2 active: the third leave must fail at round 3,
        // after 3 recorded rounds.
        let err = base()
            .rounds(10)
            .eval_every(5)
            .eval_samples(100)
            .event(1, ScenarioEvent::WorkerLeave { rank: 0 })
            .event(2, ScenarioEvent::WorkerLeave { rank: 1 })
            .event(3, ScenarioEvent::WorkerLeave { rank: 2 })
            .observer(Box::new(Probe(seen_obs)))
            .run(&AlgorithmRegistry::core())
            .unwrap_err();
        assert!(err.to_string().contains("round 3"), "{err}");
        let s = seen.borrow();
        assert_eq!(s.0, 3, "three rounds should have streamed");
        assert!(s.1, "on_complete must flush the partial history");
    }

    #[test]
    fn parallel_policy_is_bit_identical_to_sequential() {
        let run = |p: ParallelismPolicy| {
            base()
                .rounds(10)
                .eval_every(5)
                .eval_samples(150)
                .parallelism(p)
                .run(&AlgorithmRegistry::core())
                .unwrap()
        };
        let seq = run(ParallelismPolicy::Sequential);
        let par = run(ParallelismPolicy::Threads(3));
        assert_eq!(seq.points, par.points);
        assert_eq!(seq.final_acc, par.final_acc);
        assert_eq!(seq.total_comm_time_s, par.total_comm_time_s);
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            base()
                .rounds(15)
                .eval_every(5)
                .eval_samples(200)
                .run(&AlgorithmRegistry::core())
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.final_acc, b.final_acc);
        assert_eq!(a.points, b.points);
    }
}
