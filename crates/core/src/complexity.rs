//! Table I: analytic communication-cost formulas.
//!
//! The paper compares eight algorithms by their total server-side and
//! per-worker communication over a `T`-round run of an `N`-parameter
//! model on `n` workers with compression ratio `c` (and `np` = maximum
//! neighbour count for the D-PSGD family). This module encodes those
//! closed forms so the Table I bench can print them, and so tests can
//! check the *measured* traffic of each implementation against its
//! formula.

/// The inputs of Table I's formulas.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostParams {
    /// Model size (scalar parameters).
    pub n_params: f64,
    /// Worker count `n`.
    pub workers: f64,
    /// Compression ratio `c`.
    pub compression: f64,
    /// Total communication rounds `T`.
    pub rounds: f64,
    /// Maximum neighbours per worker `np` (> 1) for D-PSGD / DCD-PSGD.
    pub neighbors: f64,
}

/// One Table I row.
#[derive(Debug, Clone, PartialEq)]
pub struct CostRow {
    /// Algorithm name (paper spelling).
    pub algorithm: &'static str,
    /// Total traffic through the server, in parameters (`None` = no
    /// server at all, the paper's "-").
    pub server: Option<f64>,
    /// Total traffic per worker, in parameters.
    pub worker: f64,
    /// "SP.": supports sparsification.
    pub sparsification: bool,
    /// "C.B.": considers client bandwidth.
    pub considers_bandwidth: bool,
    /// "R.": robust to network dynamics.
    pub robust: bool,
}

/// All eight Table I rows for the given parameters.
pub fn table1(p: CostParams) -> Vec<CostRow> {
    let CostParams {
        n_params: nn,
        workers: n,
        compression: c,
        rounds: t,
        neighbors: np,
    } = p;
    vec![
        CostRow {
            algorithm: "PS-PSGD",
            server: Some(2.0 * nn * n * t),
            worker: 2.0 * nn * t,
            sparsification: false,
            considers_bandwidth: false,
            robust: false,
        },
        CostRow {
            algorithm: "PSGD (all-reduce)",
            server: None,
            worker: 2.0 * nn * t,
            sparsification: false,
            considers_bandwidth: false,
            robust: false,
        },
        CostRow {
            algorithm: "TopK-PSGD",
            server: None,
            worker: 2.0 * n * (nn / c) * t,
            sparsification: true,
            considers_bandwidth: false,
            robust: false,
        },
        CostRow {
            algorithm: "FedAvg",
            server: Some(2.0 * nn * n * t),
            worker: 2.0 * nn * t,
            sparsification: false,
            considers_bandwidth: false,
            robust: false,
        },
        CostRow {
            algorithm: "S-FedAvg",
            server: Some((nn + 2.0 * nn / c) * n * t),
            worker: (nn + 2.0 * nn / c) * t,
            sparsification: true,
            considers_bandwidth: false,
            robust: false,
        },
        CostRow {
            algorithm: "D-PSGD",
            server: Some(nn),
            worker: 4.0 * np * nn * t,
            sparsification: false,
            considers_bandwidth: false,
            robust: false,
        },
        CostRow {
            algorithm: "DCD-PSGD",
            server: Some(nn),
            worker: 4.0 * np * (nn / c) * t,
            sparsification: true,
            considers_bandwidth: false,
            robust: false,
        },
        CostRow {
            algorithm: "SAPS-PSGD",
            server: Some(nn),
            worker: 2.0 * (nn / c) * t,
            sparsification: true,
            considers_bandwidth: true,
            robust: true,
        },
    ]
}

/// SAPS-PSGD's per-worker traffic in *bytes* for a run (values-only
/// payloads, 4 bytes each, expected nnz = N/c, both directions).
pub fn saps_worker_bytes(n_params: usize, c: f64, rounds: usize) -> f64 {
    2.0 * (n_params as f64 / c) * 4.0 * rounds as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> CostParams {
        CostParams {
            n_params: 1e6,
            workers: 32.0,
            compression: 100.0,
            rounds: 1000.0,
            neighbors: 2.0,
        }
    }

    #[test]
    fn saps_has_lowest_worker_cost() {
        let rows = table1(params());
        let saps = rows.iter().find(|r| r.algorithm == "SAPS-PSGD").unwrap();
        for r in &rows {
            if r.algorithm != "SAPS-PSGD" {
                assert!(
                    saps.worker < r.worker,
                    "SAPS {} !< {} {}",
                    saps.worker,
                    r.algorithm,
                    r.worker
                );
            }
        }
    }

    #[test]
    fn serverless_rows_have_no_server_cost() {
        let rows = table1(params());
        for r in &rows {
            match r.algorithm {
                "PSGD (all-reduce)" | "TopK-PSGD" => assert!(r.server.is_none()),
                _ => assert!(r.server.is_some()),
            }
        }
    }

    #[test]
    fn decentralized_server_cost_is_single_model() {
        let rows = table1(params());
        for name in ["D-PSGD", "DCD-PSGD", "SAPS-PSGD"] {
            let r = rows.iter().find(|r| r.algorithm == name).unwrap();
            assert_eq!(r.server, Some(1e6));
        }
    }

    #[test]
    fn only_saps_claims_bandwidth_and_robustness() {
        let rows = table1(params());
        for r in &rows {
            let is_saps = r.algorithm == "SAPS-PSGD";
            assert_eq!(r.considers_bandwidth, is_saps, "{}", r.algorithm);
            assert_eq!(r.robust, is_saps, "{}", r.algorithm);
        }
    }

    #[test]
    fn formulas_match_paper_ratios() {
        // With c = 100, SAPS's worker cost is 100× below PSGD's and
        // 2·np·... below DCD's.
        let rows = table1(params());
        let get = |n: &str| rows.iter().find(|r| r.algorithm == n).unwrap().worker;
        assert!((get("PSGD (all-reduce)") / get("SAPS-PSGD") - 100.0).abs() < 1e-9);
        assert!((get("DCD-PSGD") / get("SAPS-PSGD") - 4.0).abs() < 1e-9); // 4np/2 with np=2
        assert!((get("TopK-PSGD") / get("SAPS-PSGD") - 32.0).abs() < 1e-9); // n
    }

    #[test]
    fn byte_formula() {
        // N=1000, c=10, 5 rounds: 2 * 100 * 4 * 5 = 4000 bytes.
        assert_eq!(saps_worker_bytes(1000, 10.0, 5), 4000.0);
    }
}
