//! Model checkpointing.
//!
//! The coordinator's final act (Algorithm 1, line 8) is collecting one
//! full model from a worker. In a deployment that model needs a durable,
//! versioned wire format; this module provides it: a small header (magic,
//! version, parameter count) followed by little-endian `f32`s and a
//! trailing checksum, so a truncated or corrupted file is detected rather
//! than silently loaded.

use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"SAPS";
const VERSION: u16 = 1;

/// Errors produced when decoding a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The buffer is too short to contain a header.
    Truncated,
    /// The magic bytes don't match.
    BadMagic,
    /// The format version is newer than this library understands.
    UnsupportedVersion(u16),
    /// The payload length disagrees with the header.
    LengthMismatch {
        /// Parameters promised by the header.
        expected: u64,
        /// Parameters actually present.
        actual: u64,
    },
    /// The checksum doesn't match the payload.
    ChecksumMismatch,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::BadMagic => write!(f, "not a SAPS checkpoint"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v}")
            }
            CheckpointError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: header {expected}, payload {actual}")
            }
            CheckpointError::ChecksumMismatch => write!(f, "checksum mismatch"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Serializes a flat parameter vector (with the round it was taken at)
/// into the checkpoint wire format.
pub fn encode(params: &[f32], round: u64) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + 2 + 8 + 8 + 4 * params.len() + 8);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u64_le(round);
    buf.put_u64_le(params.len() as u64);
    for &p in params {
        buf.put_f32_le(p);
    }
    buf.put_u64_le(fnv1a(&buf));
    buf.freeze()
}

/// Decodes a checkpoint, returning `(params, round)`.
pub fn decode(mut buf: Bytes) -> Result<(Vec<f32>, u64), CheckpointError> {
    if buf.len() < 4 + 2 + 8 + 8 + 8 {
        return Err(CheckpointError::Truncated);
    }
    // Verify the checksum over everything except the trailing 8 bytes.
    let body = buf.slice(..buf.len() - 8);
    let stored = (&buf[buf.len() - 8..]).get_u64_le();
    if fnv1a(&body) != stored {
        return Err(CheckpointError::ChecksumMismatch);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(CheckpointError::UnsupportedVersion(version));
    }
    let round = buf.get_u64_le();
    let n = buf.get_u64_le();
    let available = (buf.remaining() - 8) as u64 / 4;
    if available != n {
        return Err(CheckpointError::LengthMismatch {
            expected: n,
            actual: available,
        });
    }
    let mut params = Vec::with_capacity(n as usize);
    for _ in 0..n {
        params.push(buf.get_f32_le());
    }
    Ok((params, round))
}

/// Reads the round stamp from a checkpoint header without decoding (or
/// validating) the payload. Returns `None` when the buffer is too short
/// to hold a header or the magic/version don't match.
///
/// The serving plane uses this to tag `ModelAnnounce` frames with the
/// round the checkpoint was taken at; replicas still run the full
/// checksummed [`decode`] before swapping the model in.
pub fn peek_round(buf: &[u8]) -> Option<u64> {
    if buf.len() < 4 + 2 + 8 + 8 + 8 || &buf[..4] != MAGIC {
        return None;
    }
    if u16::from_le_bytes([buf[4], buf[5]]) != VERSION {
        return None;
    }
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&buf[6..14]);
    Some(u64::from_le_bytes(raw))
}

/// FNV-1a 64-bit hash — dependency-free integrity check, adequate for
/// detecting truncation/corruption (not an adversarial MAC).
fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let params = vec![1.5f32, -2.25, 0.0, f32::MIN_POSITIVE, 1e30];
        let enc = encode(&params, 42);
        let (dec, round) = decode(enc).unwrap();
        assert_eq!(dec, params);
        assert_eq!(round, 42);
    }

    #[test]
    fn empty_model_roundtrips() {
        let enc = encode(&[], 0);
        let (dec, round) = decode(enc).unwrap();
        assert!(dec.is_empty());
        assert_eq!(round, 0);
    }

    #[test]
    fn detects_truncation() {
        let enc = encode(&[1.0, 2.0, 3.0], 1);
        let cut = enc.slice(..10);
        assert_eq!(decode(cut), Err(CheckpointError::Truncated));
        // Cutting mid-payload breaks the checksum.
        let cut = enc.slice(..enc.len() - 4);
        assert!(matches!(
            decode(cut),
            Err(CheckpointError::ChecksumMismatch) | Err(CheckpointError::Truncated)
        ));
    }

    #[test]
    fn detects_corruption() {
        let enc = encode(&[1.0, 2.0, 3.0], 1);
        let mut raw = enc.to_vec();
        raw[20] ^= 0xFF;
        assert_eq!(
            decode(Bytes::from(raw)),
            Err(CheckpointError::ChecksumMismatch)
        );
    }

    #[test]
    fn detects_bad_magic() {
        let enc = encode(&[1.0], 1);
        let mut raw = enc.to_vec();
        raw[0] = b'X';
        // Re-stamp the checksum so only the magic is wrong.
        let body_len = raw.len() - 8;
        let sum = fnv1a(&raw[..body_len]).to_le_bytes();
        raw[body_len..].copy_from_slice(&sum);
        assert_eq!(decode(Bytes::from(raw)), Err(CheckpointError::BadMagic));
    }

    #[test]
    fn detects_version_skew() {
        let enc = encode(&[1.0], 1);
        let mut raw = enc.to_vec();
        raw[4] = 99;
        let body_len = raw.len() - 8;
        let sum = fnv1a(&raw[..body_len]).to_le_bytes();
        raw[body_len..].copy_from_slice(&sum);
        assert_eq!(
            decode(Bytes::from(raw)),
            Err(CheckpointError::UnsupportedVersion(99))
        );
    }

    #[test]
    fn peek_round_reads_header_only() {
        let enc = encode(&[1.0, 2.0], 17);
        assert_eq!(peek_round(&enc), Some(17));
        // Too short / wrong magic → None, no panic.
        assert_eq!(peek_round(&enc[..8]), None);
        let mut raw = enc.to_vec();
        raw[0] = b'X';
        assert_eq!(peek_round(&raw), None);
    }

    #[test]
    fn large_checkpoint_roundtrips() {
        let params: Vec<f32> = (0..100_000).map(|i| (i as f32).sin()).collect();
        let enc = encode(&params, 7);
        let (dec, _) = decode(enc).unwrap();
        assert_eq!(dec.len(), params.len());
        assert_eq!(dec[99_999], params[99_999]);
    }
}
