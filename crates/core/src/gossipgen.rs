//! Algorithm 3: `GenerateGossipMatrix`.
//!
//! Each round the coordinator pairs workers by maximum matching. Two
//! competing goals are balanced exactly as in the paper:
//!
//! 1. **Bandwidth exploitation** — matching is done over the filtered
//!    graph `B*` (links above `B_thres`), so chosen peers have fast links.
//! 2. **Information propagation** (Assumption 3) — a timestamp matrix `R`
//!    tracks when each edge last communicated. If the *recently connected*
//!    edges (those with `R_ij > t − T_thres`) no longer form a connected
//!    graph, the round's matching is instead drawn from **bridge edges**
//!    linking the stale components back together, forcing the union of
//!    edges used in any `T_thres` window to be connected.
//!
//! After the first matching pass, any still-unmatched workers are matched
//! among themselves *ignoring bandwidth* (lines 6-9), so every worker gets
//! a peer whenever possible.

use rand::Rng;
use saps_graph::{connectivity, matching, Graph, Matching};

/// How the per-round matching is chosen when the RC graph is healthy.
///
/// The paper's Algorithm 3 uses maximum-*cardinality* matching over the
/// thresholded graph `B*` ([`PeerStrategy::ThresholdMatching`]);
/// [`PeerStrategy::GreedyWeight`] is an extension this crate adds for the
/// ablation benches: a greedy maximum-weight matching over the raw
/// bandwidths, which chases fast links harder but concentrates on the
/// same few edges (worse mixing). The bridging/leftover machinery is
/// identical for both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PeerStrategy {
    /// Algorithm 3 as published: blossom matching on `B*`.
    #[default]
    ThresholdMatching,
    /// Greedy max-weight matching on raw bandwidths (ablation extension).
    GreedyWeight,
}

/// The adaptive peer-selection engine (Algorithm 3 state).
#[derive(Debug, Clone)]
pub struct GossipGenerator {
    n: usize,
    /// Bandwidth-filtered candidate graph `B*` (edges above threshold).
    bstar: Graph,
    /// All positive-bandwidth edges (the PC-edge graph; used for the
    /// leftover pass and for bridging).
    full: Graph,
    /// `R[i][j]` = last round at which `(i, j)` communicated, or -1.
    last_used: Vec<i64>,
    /// The RC window.
    tthres: i64,
    /// Matching policy for healthy rounds.
    strategy: PeerStrategy,
    /// Symmetrized bandwidths (MB/s) for [`PeerStrategy::GreedyWeight`];
    /// empty when unused.
    weights: Vec<f64>,
    /// Shard ceiling for the healthy-round matching pass: `Some(s)`
    /// plans per bandwidth-partition (connected component of the
    /// candidate graph), splitting oversized partitions into ≤ `s`
    /// vertex shards — O(s³) per shard instead of O(n³) global. `None`
    /// keeps the monolithic blossom pass.
    shard_size: Option<usize>,
}

impl GossipGenerator {
    /// Creates the generator.
    ///
    /// * `bstar` — the thresholded graph the coordinator computed in
    ///   Algorithm 1 (`GetNewConnectedGraph`);
    /// * `full` — every pair that *can* communicate (PC edges). Must be
    ///   connected for Assumption 3 to be satisfiable.
    /// * `tthres` — the RC window `T_thres` (rounds).
    pub fn new(bstar: Graph, full: Graph, tthres: u32) -> Self {
        assert_eq!(bstar.len(), full.len(), "graphs must cover same workers");
        assert!(tthres >= 1, "T_thres must be at least 1");
        let n = bstar.len();
        GossipGenerator {
            n,
            bstar,
            full,
            last_used: vec![-1; n * n],
            tthres: tthres as i64,
            strategy: PeerStrategy::ThresholdMatching,
            weights: Vec::new(),
            shard_size: None,
        }
    }

    /// Sets the shard ceiling for round planning (see
    /// [`saps_graph::matching::sharded_max_match`]). `None` restores the
    /// monolithic pass; `Some(s)` requires `s ≥ 2`.
    pub fn set_shard_size(&mut self, shard_size: Option<usize>) {
        if let Some(s) = shard_size {
            assert!(s >= 2, "shard_size must be at least 2");
        }
        self.shard_size = shard_size;
    }

    /// Creates a generator using greedy maximum-weight matching over the
    /// given symmetrized bandwidth matrix (row-major `n × n`, MB/s)
    /// instead of cardinality matching on `B*`.
    pub fn with_greedy_weights(full: Graph, weights: Vec<f64>, tthres: u32) -> Self {
        let n = full.len();
        assert_eq!(weights.len(), n * n, "weights must be n*n");
        let mut g = Self::new(full.clone(), full, tthres);
        g.strategy = PeerStrategy::GreedyWeight;
        g.weights = weights;
        g
    }

    /// The matching policy in use.
    pub fn strategy(&self) -> PeerStrategy {
        self.strategy
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the generator covers zero workers.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The graph of *recently connected* edges at round `t`:
    /// `(i,j)` with `R_ij > t − T_thres`.
    pub fn rc_graph(&self, t: i64) -> Graph {
        let mut g = Graph::new(self.n);
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                if self.last_used[i * self.n + j] > t - self.tthres {
                    g.add_edge(i, j);
                }
            }
        }
        g
    }

    /// Runs one round of Algorithm 3, returning the matching that defines
    /// `W_t`, and records it in the timestamp matrix `R`.
    pub fn next_matching<R: Rng>(&mut self, t: u64, rng: &mut R) -> Matching {
        let t = t as i64;
        let rc = self.rc_graph(t);
        // Line 1: if the RC edges still form a connected graph, match for
        // bandwidth; otherwise match over bridge edges that reconnect the
        // stale components (lines 3-4).
        let candidate = if connectivity::is_connected(&rc) {
            self.bstar.clone()
        } else {
            let bridges = connectivity::bridge_graph(&rc, &self.full);
            if bridges.edge_count() == 0 {
                // The PC graph itself cannot reconnect the components
                // (disconnected full graph); fall back to bandwidth.
                self.bstar.clone()
            } else {
                bridges
            }
        };
        // Line 5: RandomlyMaxMatch over the candidate edges (or, for the
        // GreedyWeight extension on healthy rounds, the heaviest-first
        // greedy matching over the raw bandwidths).
        let rc_healthy = connectivity::is_connected(&rc);
        let mut match_ = if self.strategy == PeerStrategy::GreedyWeight && rc_healthy {
            matching::greedy_weight_matching(self.n, &self.weights)
        } else if let Some(s) = self.shard_size {
            matching::sharded_max_match(&candidate, s, rng)
        } else {
            matching::randomly_max_match(&candidate, rng)
        };
        // Lines 6-8: pair the leftovers over any PC edge, ignoring
        // bandwidth.
        if match_.len() * 2 < self.n {
            let unmatched = match_.unmatched();
            let mut leftover = Graph::new(self.n);
            for (ai, &a) in unmatched.iter().enumerate() {
                for &b in &unmatched[ai + 1..] {
                    if self.full.has_edge(a, b) {
                        leftover.add_edge(a, b);
                    }
                }
            }
            let second = matching::randomly_max_match(&leftover, rng);
            match_.absorb(&second);
        }
        // Record round stamps.
        for (i, j) in match_.pairs() {
            self.last_used[i * self.n + j] = t;
            self.last_used[j * self.n + i] = t;
        }
        match_
    }

    /// Resizes bookkeeping after a topology change (worker churn): keeps
    /// timestamps for surviving pairs. `bstar` and `full` are the new
    /// candidate graphs; `keep[i]` maps new index `i` to the old index
    /// (or `None` for a fresh worker).
    pub fn rebuild(&mut self, bstar: Graph, full: Graph, keep: &[Option<usize>]) {
        assert_eq!(bstar.len(), full.len());
        assert_eq!(bstar.len(), keep.len());
        let m = bstar.len();
        let mut last = vec![-1i64; m * m];
        for (ni, oi) in keep.iter().enumerate() {
            for (nj, oj) in keep.iter().enumerate() {
                if let (Some(oi), Some(oj)) = (oi, oj) {
                    last[ni * m + nj] = self.last_used[oi * self.n + oj];
                }
            }
        }
        self.n = m;
        self.bstar = bstar;
        self.full = full;
        self.last_used = last;
        // Greedy weights no longer index correctly after a rebuild; fall
        // back to the paper's strategy until new weights are supplied.
        if !self.weights.is_empty() {
            self.weights.clear();
            self.strategy = PeerStrategy::ThresholdMatching;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use saps_graph::topology::complete;

    fn generator(n: usize, tthres: u32) -> GossipGenerator {
        GossipGenerator::new(complete(n), complete(n), tthres)
    }

    #[test]
    fn produces_perfect_matchings_on_complete_graphs() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut g = generator(8, 10);
        for t in 0..50 {
            let m = g.next_matching(t, &mut rng);
            assert!(m.is_perfect(), "round {t}");
        }
    }

    #[test]
    fn odd_worker_count_leaves_one_unmatched() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut g = generator(7, 10);
        let m = g.next_matching(0, &mut rng);
        assert_eq!(m.len(), 3);
        assert_eq!(m.unmatched().len(), 1);
    }

    #[test]
    fn rc_window_forces_edge_rotation() {
        // With T_thres large relative to the pair count, the generator
        // must eventually use bridge edges: the union of all edges used in
        // any window must connect the graph.
        let n = 8;
        let mut rng = StdRng::seed_from_u64(3);
        let mut g = generator(n, 6);
        let mut union_edges = std::collections::HashSet::new();
        for t in 0..200 {
            let m = g.next_matching(t, &mut rng);
            for p in m.pairs() {
                union_edges.insert(p);
            }
        }
        // All workers participate in many distinct pairs over time.
        assert!(
            union_edges.len() >= n, // strictly more than a fixed matching's n/2
            "only {} distinct edges used",
            union_edges.len()
        );
        // The union graph is connected.
        let mut ug = Graph::new(n);
        for &(a, b) in &union_edges {
            ug.add_edge(a, b);
        }
        assert!(connectivity::is_connected(&ug));
    }

    #[test]
    fn rc_graph_tracks_recent_edges() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut g = generator(4, 3);
        let m = g.next_matching(10, &mut rng);
        let rc = g.rc_graph(10);
        for (a, b) in m.pairs() {
            assert!(rc.has_edge(a, b));
        }
        // After the window passes, the edges age out.
        let rc_later = g.rc_graph(14);
        assert_eq!(rc_later.edge_count(), 0);
    }

    #[test]
    fn restricted_bstar_still_connects_via_bridges() {
        // B* is a disconnected pairing {0-1, 2-3}, but the full PC graph
        // is complete. The RC-window logic must inject bridge edges so
        // information crosses between {0,1} and {2,3}.
        let n = 4;
        let mut bstar = Graph::new(n);
        bstar.add_edge(0, 1);
        bstar.add_edge(2, 3);
        let mut g = GossipGenerator::new(bstar, complete(n), 4);
        let mut rng = StdRng::seed_from_u64(5);
        let mut crossed = false;
        for t in 0..40 {
            let m = g.next_matching(t, &mut rng);
            for (a, b) in m.pairs() {
                let group = |v: usize| usize::from(v >= 2);
                if group(a) != group(b) {
                    crossed = true;
                }
            }
        }
        assert!(crossed, "no cross-component edge ever chosen");
    }

    #[test]
    fn disconnected_full_graph_does_not_panic() {
        // Two isolated pairs with no PC edges between them: the generator
        // can never connect them, but it must still match within pairs.
        let n = 4;
        let mut gph = Graph::new(n);
        gph.add_edge(0, 1);
        gph.add_edge(2, 3);
        let mut g = GossipGenerator::new(gph.clone(), gph, 2);
        let mut rng = StdRng::seed_from_u64(6);
        for t in 0..20 {
            let m = g.next_matching(t, &mut rng);
            assert_eq!(m.len(), 2);
        }
    }

    #[test]
    fn rebuild_preserves_surviving_timestamps() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut g = generator(4, 100);
        let m = g.next_matching(5, &mut rng);
        let pairs = m.pairs();
        // Drop worker 3, keep 0,1,2 (new index = old index).
        g.rebuild(complete(3), complete(3), &[Some(0), Some(1), Some(2)]);
        let rc = g.rc_graph(6);
        for (a, b) in pairs {
            if a < 3 && b < 3 {
                assert!(rc.has_edge(a, b), "surviving edge ({a},{b}) lost");
            }
        }
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn greedy_weight_strategy_prefers_fast_links() {
        // Weights: edge (0,1) and (2,3) are fast, everything else slow.
        let n = 4;
        let mut weights = vec![1.0; n * n];
        for i in 0..n {
            weights[i * n + i] = 0.0;
        }
        weights[1] = 50.0;
        weights[n] = 50.0;
        weights[2 * n + 3] = 50.0;
        weights[3 * n + 2] = 50.0;
        let mut g = GossipGenerator::with_greedy_weights(complete(n), weights.clone(), 8);
        assert_eq!(g.strategy(), PeerStrategy::GreedyWeight);
        let mut rng = StdRng::seed_from_u64(1);
        // Count how often the fast pairing {(0,1),(2,3)} is chosen on
        // healthy (non-bridging) rounds; greedy should pick it whenever
        // the RC window allows.
        let mut fast = 0;
        let mut total = 0;
        for t in 0..60 {
            let m = g.next_matching(t, &mut rng);
            total += 1;
            if m.pairs() == vec![(0, 1), (2, 3)] {
                fast += 1;
            }
        }
        assert!(
            fast * 2 > total,
            "fast pairing chosen only {fast}/{total} rounds"
        );
    }

    #[test]
    fn greedy_weight_stream_still_mixes() {
        // Even while chasing fast links, the RC-window bridging must keep
        // rho < 1. Same setup as above.
        use saps_gossip::{spectral, GossipMatrix};
        let n = 6;
        let mut weights = vec![1.0; n * n];
        for i in 0..n {
            weights[i * n + i] = 0.0;
        }
        weights[1] = 50.0;
        weights[n] = 50.0;
        let mut g = GossipGenerator::with_greedy_weights(complete(n), weights, 4);
        let mut rng = StdRng::seed_from_u64(2);
        let rho = spectral::estimate_rho(n, 2_000, |t| {
            GossipMatrix::from_matching(&g.next_matching(t as u64, &mut rng))
        });
        assert!(rho < 0.999, "rho = {rho}");
    }

    #[test]
    fn rebuild_resets_greedy_to_threshold() {
        let n = 4;
        let mut g = GossipGenerator::with_greedy_weights(complete(n), vec![1.0; n * n], 4);
        g.rebuild(complete(3), complete(3), &[Some(0), Some(1), Some(2)]);
        assert_eq!(g.strategy(), PeerStrategy::ThresholdMatching);
    }

    #[test]
    fn spectral_condition_holds_for_generated_stream() {
        // The paper's whole point: the generated W_t stream satisfies
        // rho(E[WᵀW]) < 1 even though each round is only a matching.
        use saps_gossip::{spectral, GossipMatrix};
        let mut rng = StdRng::seed_from_u64(8);
        let mut g = generator(8, 5);
        let rho = spectral::estimate_rho(8, 3000, |t| {
            GossipMatrix::from_matching(&g.next_matching(t as u64, &mut rng))
        });
        assert!(rho < 0.999, "rho = {rho}");
    }
}
