//! Declarative algorithm identification.
//!
//! An [`AlgorithmSpec`] names one of the paper's eight algorithms plus its
//! hyper-parameters, without constructing anything. Specs are plain data:
//! they can be parsed from a CLI string, stored in a scenario file, and
//! handed to an [`crate::AlgorithmRegistry`] to build the actual
//! [`crate::Trainer`]. This is the single construction path the figure
//! binaries, examples and tests go through — no more hand-wired
//! constructors at every call site.

use crate::ConfigError;

/// One of the paper's eight algorithms with its hyper-parameters.
///
/// Defaults (via [`AlgorithmSpec::parse`] or the `from_str` impl) follow
/// Section IV-A: SAPS `c = 100`, TopK `c = 1000`, S-FedAvg `c = 100`,
/// DCD `c = 4`, FedAvg-style participation `0.5` with 5 local steps.
///
/// # Example
///
/// ```
/// use saps_core::AlgorithmSpec;
///
/// // Parse by CLI key or paper label, then tweak hyper-parameters.
/// let spec = AlgorithmSpec::parse("SAPS-PSGD").unwrap().with_compression(10.0);
/// assert_eq!(spec.key(), "saps");
/// assert_eq!(spec.label(), "SAPS-PSGD");
/// assert_eq!(spec.compression(), Some(10.0));
/// assert!(spec.validate().is_ok());
///
/// // Specs are plain data: hand one to `Experiment::new` and run it
/// // against a registry that knows the key (see `Experiment`'s docs).
/// assert_eq!(AlgorithmSpec::paper_defaults().len(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AlgorithmSpec {
    /// SAPS-PSGD (the paper's algorithm).
    Saps {
        /// Compression ratio `c` (keep probability `1/c`).
        compression: f64,
        /// RC window `T_thres` of Algorithm 3 (rounds).
        tthres: u32,
        /// Bandwidth threshold `B_thres`; `None` auto-selects the largest
        /// threshold that keeps `B*` connected.
        bthres: Option<f64>,
    },
    /// PSGD with ring all-reduce (dense, centralized update).
    Psgd,
    /// TopK-PSGD: sparse allgather with error feedback.
    TopK {
        /// Compression ratio `c`.
        compression: f64,
    },
    /// FedAvg: dense parameter-server rounds.
    FedAvg {
        /// Fraction of workers selected per round.
        participation: f64,
        /// Local SGD steps per selected worker per round.
        local_steps: usize,
    },
    /// S-FedAvg: FedAvg with random-mask sparsified uploads.
    SFedAvg {
        /// Fraction of workers selected per round.
        participation: f64,
        /// Local SGD steps per selected worker per round.
        local_steps: usize,
        /// Compression ratio `c` of the upload mask.
        compression: f64,
    },
    /// D-PSGD on the fixed ring (dense, decentralized).
    DPsgd,
    /// DCD-PSGD: ring with difference compression.
    DcdPsgd {
        /// Compression ratio `c` (the paper uses 4).
        compression: f64,
    },
    /// SAPS exchange with uniformly random peers (Fig. 5 ablation).
    RandomChoose {
        /// Compression ratio `c`.
        compression: f64,
    },
}

impl AlgorithmSpec {
    /// The registry key / CLI name (`saps`, `psgd`, `topk`, `fedavg`,
    /// `sfedavg`, `dpsgd`, `dcd`, `random`).
    pub fn key(&self) -> &'static str {
        match self {
            AlgorithmSpec::Saps { .. } => "saps",
            AlgorithmSpec::Psgd => "psgd",
            AlgorithmSpec::TopK { .. } => "topk",
            AlgorithmSpec::FedAvg { .. } => "fedavg",
            AlgorithmSpec::SFedAvg { .. } => "sfedavg",
            AlgorithmSpec::DPsgd => "dpsgd",
            AlgorithmSpec::DcdPsgd { .. } => "dcd",
            AlgorithmSpec::RandomChoose { .. } => "random",
        }
    }

    /// The paper's spelling of the algorithm name.
    pub fn label(&self) -> &'static str {
        match self {
            AlgorithmSpec::Saps { .. } => "SAPS-PSGD",
            AlgorithmSpec::Psgd => "PSGD",
            AlgorithmSpec::TopK { .. } => "TopK-PSGD",
            AlgorithmSpec::FedAvg { .. } => "FedAvg",
            AlgorithmSpec::SFedAvg { .. } => "S-FedAvg",
            AlgorithmSpec::DPsgd => "D-PSGD",
            AlgorithmSpec::DcdPsgd { .. } => "DCD-PSGD",
            AlgorithmSpec::RandomChoose { .. } => "RandomChoose",
        }
    }

    /// Parses a spec from a name string (CLI key or paper label,
    /// case-insensitive), with the paper's Section IV-A hyper-parameter
    /// defaults.
    pub fn parse(name: &str) -> Result<Self, ConfigError> {
        let spec = match name.to_ascii_lowercase().as_str() {
            "saps" | "saps-psgd" => AlgorithmSpec::Saps {
                compression: 100.0,
                tthres: 10,
                bthres: None,
            },
            "psgd" => AlgorithmSpec::Psgd,
            "topk" | "topk-psgd" => AlgorithmSpec::TopK {
                compression: 1000.0,
            },
            "fedavg" => AlgorithmSpec::FedAvg {
                participation: 0.5,
                local_steps: 5,
            },
            "sfedavg" | "s-fedavg" => AlgorithmSpec::SFedAvg {
                participation: 0.5,
                local_steps: 5,
                compression: 100.0,
            },
            "dpsgd" | "d-psgd" => AlgorithmSpec::DPsgd,
            "dcd" | "dcd-psgd" => AlgorithmSpec::DcdPsgd { compression: 4.0 },
            "random" | "randomchoose" | "random-choose" => {
                AlgorithmSpec::RandomChoose { compression: 100.0 }
            }
            _ => return Err(ConfigError::UnknownAlgorithm(name.to_string())),
        };
        Ok(spec)
    }

    /// Returns the spec with its compression ratio replaced, for the
    /// variants that have one; dense algorithms are returned unchanged.
    pub fn with_compression(self, c: f64) -> Self {
        match self {
            AlgorithmSpec::Saps { tthres, bthres, .. } => AlgorithmSpec::Saps {
                compression: c,
                tthres,
                bthres,
            },
            AlgorithmSpec::TopK { .. } => AlgorithmSpec::TopK { compression: c },
            AlgorithmSpec::SFedAvg {
                participation,
                local_steps,
                ..
            } => AlgorithmSpec::SFedAvg {
                participation,
                local_steps,
                compression: c,
            },
            AlgorithmSpec::DcdPsgd { .. } => AlgorithmSpec::DcdPsgd { compression: c },
            AlgorithmSpec::RandomChoose { .. } => AlgorithmSpec::RandomChoose { compression: c },
            dense @ (AlgorithmSpec::Psgd | AlgorithmSpec::FedAvg { .. } | AlgorithmSpec::DPsgd) => {
                dense
            }
        }
    }

    /// The compression ratio, if this algorithm sparsifies.
    pub fn compression(&self) -> Option<f64> {
        match self {
            AlgorithmSpec::Saps { compression, .. }
            | AlgorithmSpec::TopK { compression }
            | AlgorithmSpec::SFedAvg { compression, .. }
            | AlgorithmSpec::DcdPsgd { compression }
            | AlgorithmSpec::RandomChoose { compression } => Some(*compression),
            AlgorithmSpec::Psgd | AlgorithmSpec::FedAvg { .. } | AlgorithmSpec::DPsgd => None,
        }
    }

    /// Checks the hyper-parameters are in range.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if let Some(c) = self.compression() {
            if !(c >= 1.0 && c.is_finite()) {
                return Err(ConfigError::invalid(
                    "AlgorithmSpec",
                    format!(
                        "{}: compression {c} must be a finite ratio >= 1",
                        self.key()
                    ),
                ));
            }
        }
        match self {
            AlgorithmSpec::Saps { tthres, bthres, .. } => {
                if *tthres == 0 {
                    return Err(ConfigError::invalid(
                        "AlgorithmSpec",
                        "saps: tthres must be >= 1 round",
                    ));
                }
                if let Some(b) = bthres {
                    if !(b.is_finite() && *b >= 0.0) {
                        return Err(ConfigError::invalid(
                            "AlgorithmSpec",
                            format!("saps: bthres {b} must be finite and non-negative"),
                        ));
                    }
                }
            }
            AlgorithmSpec::FedAvg {
                participation,
                local_steps,
            }
            | AlgorithmSpec::SFedAvg {
                participation,
                local_steps,
                ..
            } => {
                if !(*participation > 0.0 && *participation <= 1.0) {
                    return Err(ConfigError::invalid(
                        "AlgorithmSpec",
                        format!(
                            "{}: participation {participation} must be in (0, 1]",
                            self.key()
                        ),
                    ));
                }
                if *local_steps == 0 {
                    return Err(ConfigError::invalid(
                        "AlgorithmSpec",
                        format!("{}: local_steps must be >= 1", self.key()),
                    ));
                }
            }
            _ => {}
        }
        Ok(())
    }

    /// All eight algorithms with their paper-default hyper-parameters, in
    /// Table I order.
    pub fn paper_defaults() -> Vec<AlgorithmSpec> {
        [
            "psgd", "topk", "fedavg", "sfedavg", "dpsgd", "dcd", "random", "saps",
        ]
        .iter()
        .map(|k| AlgorithmSpec::parse(k).expect("built-in key"))
        .collect()
    }
}

impl std::str::FromStr for AlgorithmSpec {
    type Err = ConfigError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        AlgorithmSpec::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_cli_keys_and_paper_labels() {
        for (name, key) in [
            ("saps", "saps"),
            ("SAPS-PSGD", "saps"),
            ("psgd", "psgd"),
            ("TopK-PSGD", "topk"),
            ("fedavg", "fedavg"),
            ("S-FedAvg", "sfedavg"),
            ("D-PSGD", "dpsgd"),
            ("dcd", "dcd"),
            ("RandomChoose", "random"),
        ] {
            assert_eq!(AlgorithmSpec::parse(name).unwrap().key(), key, "{name}");
        }
        assert!(AlgorithmSpec::parse("adam").is_err());
    }

    #[test]
    fn with_compression_applies_where_meaningful() {
        let s = AlgorithmSpec::parse("saps").unwrap().with_compression(10.0);
        assert_eq!(s.compression(), Some(10.0));
        let p = AlgorithmSpec::Psgd.with_compression(10.0);
        assert_eq!(p.compression(), None);
    }

    #[test]
    fn validate_rejects_bad_parameters() {
        assert!(AlgorithmSpec::TopK { compression: 0.5 }.validate().is_err());
        assert!(AlgorithmSpec::FedAvg {
            participation: 0.0,
            local_steps: 5
        }
        .validate()
        .is_err());
        assert!(AlgorithmSpec::FedAvg {
            participation: 0.5,
            local_steps: 0
        }
        .validate()
        .is_err());
        assert!(AlgorithmSpec::Saps {
            compression: 100.0,
            tthres: 0,
            bthres: None
        }
        .validate()
        .is_err());
        for spec in AlgorithmSpec::paper_defaults() {
            spec.validate().unwrap();
        }
    }

    #[test]
    fn paper_defaults_cover_all_eight() {
        let specs = AlgorithmSpec::paper_defaults();
        assert_eq!(specs.len(), 8);
        let labels: std::collections::HashSet<&str> = specs.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), 8);
    }
}
