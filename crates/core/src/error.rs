//! The error type of the experiment surface.
//!
//! Every fallible construction or configuration path in the workspace —
//! parsing an [`crate::AlgorithmSpec`], building a trainer through the
//! [`crate::AlgorithmRegistry`], validating an [`crate::Experiment`],
//! applying a [`crate::ScenarioEvent`] — reports through this one enum,
//! replacing the `assert!`-on-bad-input style the constructors used to
//! have.

/// Why an experiment could not be configured or driven.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// The algorithm name is not in the registry (or not parseable).
    UnknownAlgorithm(String),
    /// A parameter is out of its valid range, or two parameters are
    /// mutually inconsistent. `context` names the component that
    /// rejected it.
    InvalidParameter {
        /// The component that rejected the parameter (e.g. `"SapsConfig"`).
        context: &'static str,
        /// Human-readable description of the violation.
        message: String,
    },
    /// The algorithm does not support the requested runtime feature
    /// (e.g. worker churn on a trainer without a membership concept).
    Unsupported {
        /// Algorithm name (paper spelling).
        algorithm: String,
        /// The unsupported feature.
        feature: String,
    },
}

impl ConfigError {
    /// Shorthand for [`ConfigError::InvalidParameter`].
    pub fn invalid(context: &'static str, message: impl Into<String>) -> Self {
        ConfigError::InvalidParameter {
            context,
            message: message.into(),
        }
    }

    /// Shorthand for [`ConfigError::Unsupported`].
    pub fn unsupported(algorithm: impl Into<String>, feature: impl Into<String>) -> Self {
        ConfigError::Unsupported {
            algorithm: algorithm.into(),
            feature: feature.into(),
        }
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::UnknownAlgorithm(name) => {
                write!(f, "unknown algorithm {name:?}")
            }
            ConfigError::InvalidParameter { context, message } => {
                write!(f, "invalid parameter for {context}: {message}")
            }
            ConfigError::Unsupported { algorithm, feature } => {
                write!(f, "{algorithm} does not support {feature}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ConfigError::UnknownAlgorithm("sapz".into());
        assert!(e.to_string().contains("sapz"));
        let e = ConfigError::invalid("SapsConfig", "compression must be >= 1");
        assert!(e.to_string().contains("SapsConfig"));
        let e = ConfigError::unsupported("PSGD", "worker churn");
        assert!(e.to_string().contains("PSGD"));
    }
}
