//! Declarative network/membership scenarios.
//!
//! The paper motivates SAPS-PSGD with *dynamic* federated networks —
//! workers leave and join, links drift and fail — but evaluates on static
//! matrices. Here a scenario is data: a [`BandwidthModel`] for the
//! continuous part and a schedule of [`ScenarioEvent`]s for the discrete
//! part. The [`crate::Experiment`] driver applies both uniformly to
//! *every* algorithm, so churn robustness is no longer a SAPS-only side
//! door.

use crate::ConfigError;
use saps_netsim::dynamics::BandwidthProcess;
use saps_netsim::BandwidthMatrix;

/// A discrete change to the world, applied at the start of its scheduled
/// round, before the round's local computation and exchange.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ScenarioEvent {
    /// Worker `rank` leaves the fleet (battery, network loss). Its model
    /// is frozen until it rejoins.
    WorkerLeave {
        /// Rank of the leaving worker.
        rank: usize,
    },
    /// Worker `rank` rejoins the fleet with whatever model it left with.
    WorkerJoin {
        /// Rank of the joining worker.
        rank: usize,
    },
    /// Every link's bandwidth is multiplied by `scale` (congestion when
    /// `< 1`, recovery when `> 1`). Scales compose across events.
    BandwidthShift {
        /// Multiplicative factor applied to all links.
        scale: f64,
    },
    /// One link is set to `mbps` (0 severs it). Under a
    /// [`BandwidthModel::Drifting`] process, 0 cuts the link and any
    /// positive value restores it to its baseline.
    LinkChange {
        /// One endpoint.
        a: usize,
        /// The other endpoint.
        b: usize,
        /// New bandwidth in MB/s; 0 severs the link.
        mbps: f64,
    },
    /// Worker `rank`'s local compute slows down by `slowdown`× from this
    /// round on (thermal throttling, background load). Affects only the
    /// round's *timing* — flows release later, never the training
    /// dynamics. `1.0` restores nominal speed; values below 1 model a
    /// speedup. Requires the experiment to model compute time
    /// (`Experiment::compute_time`), otherwise a multiple of zero stays
    /// zero.
    Straggler {
        /// Rank of the straggling worker.
        rank: usize,
        /// Multiplier on the worker's per-round compute time; must be
        /// finite and positive.
        slowdown: f64,
    },
}

/// An event bound to the round it fires at.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledEvent {
    /// 0-based round index the event is applied before.
    pub round: usize,
    /// What happens.
    pub event: ScenarioEvent,
}

impl ScheduledEvent {
    /// Bounds-checks the event against the fleet size.
    pub fn validate(&self, workers: usize) -> Result<(), ConfigError> {
        let check = |rank: usize| {
            if rank >= workers {
                Err(ConfigError::invalid(
                    "ScheduledEvent",
                    format!(
                        "round {}: worker rank {rank} out of range (fleet size {workers})",
                        self.round
                    ),
                ))
            } else {
                Ok(())
            }
        };
        match &self.event {
            ScenarioEvent::WorkerLeave { rank } | ScenarioEvent::WorkerJoin { rank } => {
                check(*rank)
            }
            ScenarioEvent::BandwidthShift { scale } => {
                if !(scale.is_finite() && *scale >= 0.0) {
                    return Err(ConfigError::invalid(
                        "ScheduledEvent",
                        format!(
                            "round {}: bandwidth scale {scale} must be finite and >= 0",
                            self.round
                        ),
                    ));
                }
                Ok(())
            }
            ScenarioEvent::LinkChange { a, b, mbps } => {
                check(*a)?;
                check(*b)?;
                if !(mbps.is_finite() && *mbps >= 0.0) {
                    return Err(ConfigError::invalid(
                        "ScheduledEvent",
                        format!(
                            "round {}: link bandwidth {mbps} must be finite and >= 0",
                            self.round
                        ),
                    ));
                }
                Ok(())
            }
            ScenarioEvent::Straggler { rank, slowdown } => {
                check(*rank)?;
                if !(slowdown.is_finite() && *slowdown > 0.0) {
                    return Err(ConfigError::invalid(
                        "ScheduledEvent",
                        format!(
                            "round {}: straggler slowdown {slowdown} must be finite and > 0",
                            self.round
                        ),
                    ));
                }
                Ok(())
            }
        }
    }
}

/// How link bandwidths evolve over the run, independent of scheduled
/// events.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum BandwidthModel {
    /// The matrix stays fixed (the paper's evaluation setting), modulo
    /// scheduled events.
    Static(BandwidthMatrix),
    /// Per-link multiplicative random walk around a baseline
    /// ([`saps_netsim::dynamics::BandwidthProcess`]); the trainer's
    /// topology-planning view is refreshed every `refresh_every` rounds,
    /// mirroring the paper's "regularly reported" measurements.
    Drifting {
        /// The matrix the walk reverts around.
        baseline: BandwidthMatrix,
        /// Per-step log-space drift scale (e.g. 0.05 ≈ ±5 % per round).
        volatility: f64,
        /// Links stay within `[baseline/range, baseline*range]`.
        range: f64,
        /// Seed of the walk (independent of the experiment seed).
        seed: u64,
        /// How often (rounds) the trainer's bandwidth view is refreshed.
        refresh_every: usize,
    },
}

impl BandwidthModel {
    /// Number of workers the model covers.
    pub fn len(&self) -> usize {
        match self {
            BandwidthModel::Static(m) => m.len(),
            BandwidthModel::Drifting { baseline, .. } => baseline.len(),
        }
    }

    /// Whether the model covers zero workers.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Checks the model parameters.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if let BandwidthModel::Drifting {
            volatility,
            range,
            refresh_every,
            ..
        } = self
        {
            if *volatility < 0.0 || !volatility.is_finite() {
                return Err(ConfigError::invalid(
                    "BandwidthModel",
                    "volatility must be finite and non-negative",
                ));
            }
            if *range < 1.0 || !range.is_finite() {
                return Err(ConfigError::invalid(
                    "BandwidthModel",
                    "range must be finite and at least 1",
                ));
            }
            if *refresh_every == 0 {
                return Err(ConfigError::invalid(
                    "BandwidthModel",
                    "refresh_every must be >= 1 round",
                ));
            }
        }
        Ok(())
    }
}

/// Runtime state of a [`BandwidthModel`] inside the driver: the evolving
/// matrix plus the composed scale of all `BandwidthShift` events so far.
#[derive(Debug)]
pub(crate) enum BandwidthState {
    Static {
        current: BandwidthMatrix,
    },
    Drifting {
        process: BandwidthProcess,
        scale: f64,
        refresh_every: usize,
    },
}

impl BandwidthState {
    pub(crate) fn new(model: BandwidthModel) -> Self {
        match model {
            BandwidthModel::Static(current) => BandwidthState::Static { current },
            BandwidthModel::Drifting {
                baseline,
                volatility,
                range,
                seed,
                refresh_every,
            } => BandwidthState::Drifting {
                process: BandwidthProcess::new(baseline, volatility, range, seed),
                scale: 1.0,
                refresh_every,
            },
        }
    }

    /// Advances the continuous part one round and returns the matrix the
    /// round sees.
    pub(crate) fn advance(&mut self) -> BandwidthMatrix {
        match self {
            BandwidthState::Static { current } => current.clone(),
            BandwidthState::Drifting { process, scale, .. } => {
                let stepped = process.step().clone();
                scaled(&stepped, *scale)
            }
        }
    }

    /// The matrix as of the last [`BandwidthState::advance`] (without
    /// stepping).
    pub(crate) fn current(&self) -> BandwidthMatrix {
        match self {
            BandwidthState::Static { current } => current.clone(),
            BandwidthState::Drifting { process, scale, .. } => scaled(process.current(), *scale),
        }
    }

    /// Rounds between topology-view refreshes. `usize::MAX` for static
    /// models: a static matrix only changes through events, and the
    /// driver refreshes eagerly after every bandwidth-affecting event.
    pub(crate) fn refresh_every(&self) -> usize {
        match self {
            BandwidthState::Static { .. } => usize::MAX,
            BandwidthState::Drifting { refresh_every, .. } => *refresh_every,
        }
    }

    /// Applies a bandwidth-affecting event. Returns `true` if the matrix
    /// changed (the driver then refreshes the trainer's view).
    pub(crate) fn apply(&mut self, event: &ScenarioEvent) -> bool {
        match (event, &mut *self) {
            (ScenarioEvent::BandwidthShift { scale }, BandwidthState::Static { current }) => {
                *current = scaled(current, *scale);
                true
            }
            (
                ScenarioEvent::BandwidthShift { scale },
                BandwidthState::Drifting { scale: s, .. },
            ) => {
                *s *= *scale;
                true
            }
            (ScenarioEvent::LinkChange { a, b, mbps }, BandwidthState::Static { current }) => {
                current.set(*a, *b, *mbps);
                true
            }
            (
                ScenarioEvent::LinkChange { a, b, mbps },
                BandwidthState::Drifting { process, .. },
            ) => {
                if *mbps <= 0.0 {
                    process.cut_link(*a, *b);
                } else {
                    process.restore_link(*a, *b);
                }
                true
            }
            (
                ScenarioEvent::WorkerLeave { .. }
                | ScenarioEvent::WorkerJoin { .. }
                | ScenarioEvent::Straggler { .. },
                _,
            ) => false,
        }
    }
}

/// A copy of `bw` with every link multiplied by `factor`.
fn scaled(bw: &BandwidthMatrix, factor: f64) -> BandwidthMatrix {
    let n = bw.len();
    let mut out = bw.clone();
    for i in 0..n {
        for j in (i + 1)..n {
            out.set(i, j, bw.get(i, j) * factor);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_validation_checks_ranks_and_values() {
        let ev = |event| ScheduledEvent { round: 3, event };
        assert!(ev(ScenarioEvent::WorkerLeave { rank: 7 })
            .validate(8)
            .is_ok());
        assert!(ev(ScenarioEvent::WorkerLeave { rank: 8 })
            .validate(8)
            .is_err());
        assert!(ev(ScenarioEvent::BandwidthShift { scale: 0.5 })
            .validate(8)
            .is_ok());
        assert!(ev(ScenarioEvent::BandwidthShift { scale: -1.0 })
            .validate(8)
            .is_err());
        assert!(ev(ScenarioEvent::LinkChange {
            a: 0,
            b: 9,
            mbps: 1.0
        })
        .validate(8)
        .is_err());
        assert!(ev(ScenarioEvent::LinkChange {
            a: 0,
            b: 1,
            mbps: f64::NAN
        })
        .validate(8)
        .is_err());
        assert!(ev(ScenarioEvent::Straggler {
            rank: 3,
            slowdown: 4.0
        })
        .validate(8)
        .is_ok());
        assert!(ev(ScenarioEvent::Straggler {
            rank: 8,
            slowdown: 4.0
        })
        .validate(8)
        .is_err());
        assert!(ev(ScenarioEvent::Straggler {
            rank: 0,
            slowdown: 0.0
        })
        .validate(8)
        .is_err());
    }

    #[test]
    fn straggler_events_leave_bandwidth_untouched() {
        let mut st = BandwidthState::new(BandwidthModel::Static(BandwidthMatrix::constant(3, 2.0)));
        assert!(!st.apply(&ScenarioEvent::Straggler {
            rank: 1,
            slowdown: 3.0
        }));
        assert_eq!(st.current().get(0, 1), 2.0);
    }

    #[test]
    fn static_state_applies_shift_and_link_events() {
        let mut st = BandwidthState::new(BandwidthModel::Static(BandwidthMatrix::constant(3, 2.0)));
        assert!(st.apply(&ScenarioEvent::BandwidthShift { scale: 0.5 }));
        let m = st.advance();
        assert!((m.get(0, 1) - 1.0).abs() < 1e-12);
        assert!(st.apply(&ScenarioEvent::LinkChange {
            a: 0,
            b: 1,
            mbps: 0.0
        }));
        assert_eq!(st.current().get(0, 1), 0.0);
        assert!((st.current().get(1, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn drifting_state_scales_and_cuts() {
        let model = BandwidthModel::Drifting {
            baseline: BandwidthMatrix::constant(3, 2.0),
            volatility: 0.0,
            range: 1.0,
            seed: 1,
            refresh_every: 5,
        };
        model.validate().unwrap();
        let mut st = BandwidthState::new(model);
        st.apply(&ScenarioEvent::BandwidthShift { scale: 2.0 });
        assert!((st.advance().get(0, 1) - 4.0).abs() < 1e-12);
        st.apply(&ScenarioEvent::LinkChange {
            a: 0,
            b: 1,
            mbps: 0.0,
        });
        assert_eq!(st.advance().get(0, 1), 0.0);
        st.apply(&ScenarioEvent::LinkChange {
            a: 0,
            b: 1,
            mbps: 1.0,
        });
        assert!(st.advance().get(0, 1) > 0.0);
    }

    #[test]
    fn drifting_model_validation() {
        let bad = BandwidthModel::Drifting {
            baseline: BandwidthMatrix::constant(3, 2.0),
            volatility: -0.1,
            range: 2.0,
            seed: 1,
            refresh_every: 5,
        };
        assert!(bad.validate().is_err());
    }
}
