//! Declarative network/membership scenarios.
//!
//! The paper motivates SAPS-PSGD with *dynamic* federated networks —
//! workers leave and join, links drift and fail — but evaluates on static
//! matrices. Here a scenario is data: a [`BandwidthModel`] for the
//! continuous part and a schedule of [`ScenarioEvent`]s for the discrete
//! part. The [`crate::Experiment`] driver applies both uniformly to
//! *every* algorithm, so churn robustness is no longer a SAPS-only side
//! door.

use crate::ConfigError;
use saps_netsim::dynamics::BandwidthProcess;
use saps_netsim::BandwidthMatrix;

/// A discrete change to the world, applied at the start of its scheduled
/// round, before the round's local computation and exchange.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ScenarioEvent {
    /// Worker `rank` leaves the fleet (battery, network loss). Its model
    /// is frozen until it rejoins.
    WorkerLeave {
        /// Rank of the leaving worker.
        rank: usize,
    },
    /// Worker `rank` rejoins the fleet with whatever model it left with.
    WorkerJoin {
        /// Rank of the joining worker.
        rank: usize,
    },
    /// Every link's bandwidth is multiplied by `scale` (congestion when
    /// `< 1`, recovery when `> 1`). Scales compose across events.
    BandwidthShift {
        /// Multiplicative factor applied to all links.
        scale: f64,
    },
    /// One link is set to `mbps` (0 severs it). Under a
    /// [`BandwidthModel::Drifting`] process, 0 cuts the link and any
    /// positive value restores it to its baseline.
    LinkChange {
        /// One endpoint.
        a: usize,
        /// The other endpoint.
        b: usize,
        /// New bandwidth in MB/s; 0 severs the link.
        mbps: f64,
    },
    /// Worker `rank`'s local compute slows down by `slowdown`× from this
    /// round on (thermal throttling, background load). Affects only the
    /// round's *timing* — flows release later, never the training
    /// dynamics. `1.0` restores nominal speed; values below 1 model a
    /// speedup. Requires the experiment to model compute time
    /// (`Experiment::compute_time`), otherwise a multiple of zero stays
    /// zero.
    Straggler {
        /// Rank of the straggling worker.
        rank: usize,
        /// Multiplier on the worker's per-round compute time; must be
        /// finite and positive.
        slowdown: f64,
    },
}

/// An event bound to the round it fires at.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledEvent {
    /// 0-based round index the event is applied before.
    pub round: usize,
    /// What happens.
    pub event: ScenarioEvent,
}

impl ScheduledEvent {
    /// Bounds-checks the event against the fleet size.
    pub fn validate(&self, workers: usize) -> Result<(), ConfigError> {
        let check = |rank: usize| {
            if rank >= workers {
                Err(ConfigError::invalid(
                    "ScheduledEvent",
                    format!(
                        "round {}: worker rank {rank} out of range (fleet size {workers})",
                        self.round
                    ),
                ))
            } else {
                Ok(())
            }
        };
        match &self.event {
            ScenarioEvent::WorkerLeave { rank } | ScenarioEvent::WorkerJoin { rank } => {
                check(*rank)
            }
            ScenarioEvent::BandwidthShift { scale } => {
                if !(scale.is_finite() && *scale >= 0.0) {
                    return Err(ConfigError::invalid(
                        "ScheduledEvent",
                        format!(
                            "round {}: bandwidth scale {scale} must be finite and >= 0",
                            self.round
                        ),
                    ));
                }
                Ok(())
            }
            ScenarioEvent::LinkChange { a, b, mbps } => {
                check(*a)?;
                check(*b)?;
                if !(mbps.is_finite() && *mbps >= 0.0) {
                    return Err(ConfigError::invalid(
                        "ScheduledEvent",
                        format!(
                            "round {}: link bandwidth {mbps} must be finite and >= 0",
                            self.round
                        ),
                    ));
                }
                Ok(())
            }
            ScenarioEvent::Straggler { rank, slowdown } => {
                check(*rank)?;
                if !(slowdown.is_finite() && *slowdown > 0.0) {
                    return Err(ConfigError::invalid(
                        "ScheduledEvent",
                        format!(
                            "round {}: straggler slowdown {slowdown} must be finite and > 0",
                            self.round
                        ),
                    ));
                }
                Ok(())
            }
        }
    }
}

/// How link bandwidths evolve over the run, independent of scheduled
/// events.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum BandwidthModel {
    /// The matrix stays fixed (the paper's evaluation setting), modulo
    /// scheduled events.
    Static(BandwidthMatrix),
    /// Per-link multiplicative random walk around a baseline
    /// ([`saps_netsim::dynamics::BandwidthProcess`]); the trainer's
    /// topology-planning view is refreshed every `refresh_every` rounds,
    /// mirroring the paper's "regularly reported" measurements.
    Drifting {
        /// The matrix the walk reverts around.
        baseline: BandwidthMatrix,
        /// Per-step log-space drift scale (e.g. 0.05 ≈ ±5 % per round).
        volatility: f64,
        /// Links stay within `[baseline/range, baseline*range]`.
        range: f64,
        /// Seed of the walk (independent of the experiment seed).
        seed: u64,
        /// How often (rounds) the trainer's bandwidth view is refreshed.
        refresh_every: usize,
    },
}

impl BandwidthModel {
    /// Number of workers the model covers.
    pub fn len(&self) -> usize {
        match self {
            BandwidthModel::Static(m) => m.len(),
            BandwidthModel::Drifting { baseline, .. } => baseline.len(),
        }
    }

    /// Whether the model covers zero workers.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Checks the model parameters.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if let BandwidthModel::Drifting {
            volatility,
            range,
            refresh_every,
            ..
        } = self
        {
            if *volatility < 0.0 || !volatility.is_finite() {
                return Err(ConfigError::invalid(
                    "BandwidthModel",
                    "volatility must be finite and non-negative",
                ));
            }
            if *range < 1.0 || !range.is_finite() {
                return Err(ConfigError::invalid(
                    "BandwidthModel",
                    "range must be finite and at least 1",
                ));
            }
            if *refresh_every == 0 {
                return Err(ConfigError::invalid(
                    "BandwidthModel",
                    "refresh_every must be >= 1 round",
                ));
            }
        }
        Ok(())
    }
}

/// Runtime state of a [`BandwidthModel`] inside the driver: the evolving
/// matrix plus the composed scale of all `BandwidthShift` events so far.
#[derive(Debug)]
pub(crate) enum BandwidthState {
    Static {
        current: BandwidthMatrix,
    },
    Drifting {
        process: BandwidthProcess,
        scale: f64,
        refresh_every: usize,
    },
}

impl BandwidthState {
    pub(crate) fn new(model: BandwidthModel) -> Self {
        match model {
            BandwidthModel::Static(current) => BandwidthState::Static { current },
            BandwidthModel::Drifting {
                baseline,
                volatility,
                range,
                seed,
                refresh_every,
            } => BandwidthState::Drifting {
                process: BandwidthProcess::new(baseline, volatility, range, seed),
                scale: 1.0,
                refresh_every,
            },
        }
    }

    /// Advances the continuous part one round and returns the matrix the
    /// round sees.
    pub(crate) fn advance(&mut self) -> BandwidthMatrix {
        match self {
            BandwidthState::Static { current } => current.clone(),
            BandwidthState::Drifting { process, scale, .. } => {
                let stepped = process.step().clone();
                scaled(&stepped, *scale)
            }
        }
    }

    /// The matrix as of the last [`BandwidthState::advance`] (without
    /// stepping).
    pub(crate) fn current(&self) -> BandwidthMatrix {
        match self {
            BandwidthState::Static { current } => current.clone(),
            BandwidthState::Drifting { process, scale, .. } => scaled(process.current(), *scale),
        }
    }

    /// Rounds between topology-view refreshes. `usize::MAX` for static
    /// models: a static matrix only changes through events, and the
    /// driver refreshes eagerly after every bandwidth-affecting event.
    pub(crate) fn refresh_every(&self) -> usize {
        match self {
            BandwidthState::Static { .. } => usize::MAX,
            BandwidthState::Drifting { refresh_every, .. } => *refresh_every,
        }
    }

    /// Applies a bandwidth-affecting event. Returns `true` if the matrix
    /// changed (the driver then refreshes the trainer's view).
    pub(crate) fn apply(&mut self, event: &ScenarioEvent) -> bool {
        match (event, &mut *self) {
            (ScenarioEvent::BandwidthShift { scale }, BandwidthState::Static { current }) => {
                *current = scaled(current, *scale);
                true
            }
            (
                ScenarioEvent::BandwidthShift { scale },
                BandwidthState::Drifting { scale: s, .. },
            ) => {
                *s *= *scale;
                true
            }
            (ScenarioEvent::LinkChange { a, b, mbps }, BandwidthState::Static { current }) => {
                current.set(*a, *b, *mbps);
                true
            }
            (
                ScenarioEvent::LinkChange { a, b, mbps },
                BandwidthState::Drifting { process, .. },
            ) => {
                if *mbps <= 0.0 {
                    process.cut_link(*a, *b);
                } else {
                    process.restore_link(*a, *b);
                }
                true
            }
            (
                ScenarioEvent::WorkerLeave { .. }
                | ScenarioEvent::WorkerJoin { .. }
                | ScenarioEvent::Straggler { .. },
                _,
            ) => false,
        }
    }
}

/// A copy of `bw` with every link multiplied by `factor`.
fn scaled(bw: &BandwidthMatrix, factor: f64) -> BandwidthMatrix {
    let n = bw.len();
    let mut out = bw.clone();
    for i in 0..n {
        for j in (i + 1)..n {
            out.set(i, j, bw.get(i, j) * factor);
        }
    }
    out
}

pub mod zoo {
    //! Prebuilt adversarial scenarios ("the scenario zoo").
    //!
    //! Each builder returns a plain `Vec<ScheduledEvent>` of the
    //! ordinary event vocabulary — nothing here is a new mechanism, just
    //! named, validated compositions of [`ScenarioEvent`]s that the
    //! paper's dynamic-network story motivates. Feed them to
    //! [`crate::Experiment::events`]; `docs/SCENARIOS.md` catalogues
    //! them with the golden traces that pin their behaviour.

    use super::{ScenarioEvent, ScheduledEvent};
    use saps_netsim::BandwidthMatrix;

    /// A network partition that heals: every link between `group` and
    /// the rest of the fleet is severed at round `at` and restored to
    /// its value in `baseline` at round `heal_at`. While split, peer
    /// matching is confined to each side (dead links are never
    /// matched); after healing, the sides re-mix.
    ///
    /// # Panics
    ///
    /// If `group` is empty or not a proper subset of the fleet, names a
    /// rank outside `baseline`, or `heal_at <= at`.
    pub fn partition_heal(
        baseline: &BandwidthMatrix,
        group: &[usize],
        at: usize,
        heal_at: usize,
    ) -> Vec<ScheduledEvent> {
        let n = baseline.len();
        assert!(
            !group.is_empty() && group.len() < n,
            "partition group must be a non-empty proper subset of the fleet"
        );
        assert!(
            group.iter().all(|&r| r < n),
            "partition group names a rank outside the fleet"
        );
        assert!(heal_at > at, "a partition must heal after it forms");
        let inside = |r: usize| group.contains(&r);
        let mut events = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                if inside(a) == inside(b) {
                    continue;
                }
                events.push(ScheduledEvent {
                    round: at,
                    event: ScenarioEvent::LinkChange { a, b, mbps: 0.0 },
                });
                events.push(ScheduledEvent {
                    round: heal_at,
                    event: ScenarioEvent::LinkChange {
                        a,
                        b,
                        mbps: baseline.get(a, b),
                    },
                });
            }
        }
        events
    }

    /// Day/night bandwidth cycles: starting at round `first_night`,
    /// every link drops to `night_scale`× for the first half of each
    /// `period`-round cycle and recovers at dawn (the shifts compose to
    /// exactly 1 per cycle). Model diurnal congestion over a measured
    /// matrix such as [`saps_netsim::citydata::fig1_bandwidth`].
    ///
    /// # Panics
    ///
    /// If `period < 2`, `cycles == 0`, or `night_scale` is not a finite
    /// positive value.
    pub fn day_night(
        first_night: usize,
        period: usize,
        cycles: usize,
        night_scale: f64,
    ) -> Vec<ScheduledEvent> {
        assert!(period >= 2, "a day/night cycle needs at least 2 rounds");
        assert!(cycles > 0, "at least one cycle");
        assert!(
            night_scale.is_finite() && night_scale > 0.0,
            "night scale must be finite and positive"
        );
        let mut events = Vec::new();
        for c in 0..cycles {
            let night = first_night + c * period;
            events.push(ScheduledEvent {
                round: night,
                event: ScenarioEvent::BandwidthShift { scale: night_scale },
            });
            events.push(ScheduledEvent {
                round: night + period / 2,
                event: ScenarioEvent::BandwidthShift {
                    scale: 1.0 / night_scale,
                },
            });
        }
        events
    }

    /// A flash crowd: the `cohort` all leaves at round `leave_at` and
    /// every member rejoins *simultaneously* at round `rejoin_at` — the
    /// worst case for model distribution, since every joiner needs a
    /// full catch-up at once and the survivors are the only sources.
    /// Events are emitted in ascending rank order within each round.
    ///
    /// # Panics
    ///
    /// If `cohort` is empty, names a duplicate rank, or would leave
    /// fewer than two workers of `fleet` behind; or if
    /// `rejoin_at <= leave_at`.
    pub fn flash_crowd(
        fleet: usize,
        cohort: &[usize],
        leave_at: usize,
        rejoin_at: usize,
    ) -> Vec<ScheduledEvent> {
        assert!(
            !cohort.is_empty(),
            "a flash crowd needs at least one joiner"
        );
        assert!(
            cohort.iter().all(|&r| r < fleet),
            "flash-crowd cohort names a rank outside the fleet"
        );
        let mut sorted = cohort.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            cohort.len(),
            "flash-crowd cohort has duplicate ranks"
        );
        assert!(
            fleet - cohort.len() >= 2,
            "at least two workers must survive to serve the crowd's catch-up"
        );
        assert!(
            rejoin_at > leave_at,
            "the crowd must rejoin after it leaves"
        );
        let mut events = Vec::with_capacity(2 * sorted.len());
        for &rank in &sorted {
            events.push(ScheduledEvent {
                round: leave_at,
                event: ScenarioEvent::WorkerLeave { rank },
            });
        }
        for &rank in &sorted {
            events.push(ScheduledEvent {
                round: rejoin_at,
                event: ScenarioEvent::WorkerJoin { rank },
            });
        }
        events
    }

    /// Day/night churn waves: starting at round `first_night`, the
    /// `cohort` leaves for the first half of each `period`-round cycle
    /// and rejoins at dawn, `cycles` times — the membership counterpart
    /// of [`day_night`]'s bandwidth cycles (intermittently connected
    /// users who drop off together every night).
    ///
    /// # Panics
    ///
    /// Same cohort constraints as [`flash_crowd`]; additionally if
    /// `period < 2` or `cycles == 0`.
    pub fn churn_waves(
        fleet: usize,
        cohort: &[usize],
        first_night: usize,
        period: usize,
        cycles: usize,
    ) -> Vec<ScheduledEvent> {
        assert!(
            period >= 2,
            "a churn wave needs at least 2 rounds per cycle"
        );
        assert!(cycles > 0, "at least one wave");
        let mut events = Vec::with_capacity(2 * cohort.len() * cycles);
        for c in 0..cycles {
            let night = first_night + c * period;
            events.extend(flash_crowd(fleet, cohort, night, night + period / 2));
        }
        events
    }

    /// A slow-loris straggler: worker `rank`'s compute slows by another
    /// `factor`× each round for `steps` rounds (compounding to
    /// `factor^steps`), then snaps back to nominal speed. Only round
    /// *timing* is affected — training dynamics stay bit-identical.
    ///
    /// # Panics
    ///
    /// If `steps == 0` or `factor` is not finite and `> 1`.
    pub fn slow_loris(rank: usize, start: usize, steps: usize, factor: f64) -> Vec<ScheduledEvent> {
        assert!(steps > 0, "at least one slowdown step");
        assert!(
            factor.is_finite() && factor > 1.0,
            "a slow loris must actually slow down (factor > 1)"
        );
        let mut events: Vec<ScheduledEvent> = (1..=steps)
            .map(|k| ScheduledEvent {
                round: start + k - 1,
                event: ScenarioEvent::Straggler {
                    rank,
                    slowdown: factor.powi(k as i32),
                },
            })
            .collect();
        events.push(ScheduledEvent {
            round: start + steps,
            event: ScenarioEvent::Straggler {
                rank,
                slowdown: 1.0,
            },
        });
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_partition_heal_severs_exactly_the_cut_and_restores_baseline() {
        let bw = BandwidthMatrix::constant(4, 3.0);
        let events = zoo::partition_heal(&bw, &[0, 1], 2, 5);
        // The cut {0,1}|{2,3} has 4 cross links, each severed + healed.
        assert_eq!(events.len(), 8);
        for ev in &events {
            ev.validate(4).unwrap();
            let ScenarioEvent::LinkChange { a, b, mbps } = ev.event else {
                panic!("partition emits only link changes");
            };
            assert!((a < 2) != (b < 2), "only cross-partition links touched");
            match ev.round {
                2 => assert_eq!(mbps, 0.0),
                5 => assert_eq!(mbps, 3.0),
                r => panic!("unexpected round {r}"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "proper subset")]
    fn zoo_partition_of_the_whole_fleet_is_rejected() {
        zoo::partition_heal(&BandwidthMatrix::constant(3, 1.0), &[0, 1, 2], 0, 1);
    }

    #[test]
    fn zoo_day_night_shifts_cancel_per_cycle() {
        let events = zoo::day_night(4, 6, 3, 0.25);
        assert_eq!(events.len(), 6);
        let product: f64 = events
            .iter()
            .map(|ev| {
                ev.validate(8).unwrap();
                let ScenarioEvent::BandwidthShift { scale } = ev.event else {
                    panic!("day/night emits only shifts");
                };
                scale
            })
            .product();
        assert!((product - 1.0).abs() < 1e-12, "cycles must compose to 1");
        assert_eq!(events[0].round, 4);
        assert_eq!(events[1].round, 7, "dawn at half period");
        assert_eq!(events[2].round, 10, "next night one period later");
    }

    #[test]
    fn zoo_flash_crowd_leaves_and_rejoins_in_one_round_each() {
        let events = zoo::flash_crowd(8, &[5, 2, 3], 4, 9);
        assert_eq!(events.len(), 6);
        for ev in &events {
            ev.validate(8).unwrap();
        }
        let (leaves, joins): (Vec<_>, Vec<_>) = events
            .iter()
            .partition(|ev| matches!(ev.event, ScenarioEvent::WorkerLeave { .. }));
        assert!(leaves.iter().all(|ev| ev.round == 4));
        assert!(joins.iter().all(|ev| ev.round == 9));
        // Ascending rank order within each round (deterministic apply order).
        let join_ranks: Vec<usize> = joins
            .iter()
            .map(|ev| match ev.event {
                ScenarioEvent::WorkerJoin { rank } => rank,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(join_ranks, vec![2, 3, 5]);
    }

    #[test]
    #[should_panic(expected = "at least two workers must survive")]
    fn zoo_flash_crowd_must_leave_survivors() {
        zoo::flash_crowd(4, &[0, 1, 2], 0, 1);
    }

    #[test]
    fn zoo_churn_waves_cycle_the_cohort() {
        let events = zoo::churn_waves(6, &[4, 5], 3, 6, 2);
        assert_eq!(events.len(), 8);
        for ev in &events {
            ev.validate(6).unwrap();
        }
        // Wave 1: leave @3, rejoin @6; wave 2: leave @9, rejoin @12.
        let rounds: Vec<usize> = events.iter().map(|ev| ev.round).collect();
        assert_eq!(rounds, vec![3, 3, 6, 6, 9, 9, 12, 12]);
    }

    #[test]
    fn zoo_slow_loris_compounds_then_recovers() {
        let events = zoo::slow_loris(2, 3, 4, 2.0);
        assert_eq!(events.len(), 5);
        for (k, ev) in events.iter().enumerate() {
            ev.validate(4).unwrap();
            assert_eq!(ev.round, 3 + k);
            let ScenarioEvent::Straggler { rank, slowdown } = ev.event else {
                panic!("slow loris emits only stragglers");
            };
            assert_eq!(rank, 2);
            let expect = if k < 4 {
                2.0f64.powi(k as i32 + 1)
            } else {
                1.0
            };
            assert_eq!(slowdown, expect);
        }
    }

    #[test]
    fn event_validation_checks_ranks_and_values() {
        let ev = |event| ScheduledEvent { round: 3, event };
        assert!(ev(ScenarioEvent::WorkerLeave { rank: 7 })
            .validate(8)
            .is_ok());
        assert!(ev(ScenarioEvent::WorkerLeave { rank: 8 })
            .validate(8)
            .is_err());
        assert!(ev(ScenarioEvent::BandwidthShift { scale: 0.5 })
            .validate(8)
            .is_ok());
        assert!(ev(ScenarioEvent::BandwidthShift { scale: -1.0 })
            .validate(8)
            .is_err());
        assert!(ev(ScenarioEvent::LinkChange {
            a: 0,
            b: 9,
            mbps: 1.0
        })
        .validate(8)
        .is_err());
        assert!(ev(ScenarioEvent::LinkChange {
            a: 0,
            b: 1,
            mbps: f64::NAN
        })
        .validate(8)
        .is_err());
        assert!(ev(ScenarioEvent::Straggler {
            rank: 3,
            slowdown: 4.0
        })
        .validate(8)
        .is_ok());
        assert!(ev(ScenarioEvent::Straggler {
            rank: 8,
            slowdown: 4.0
        })
        .validate(8)
        .is_err());
        assert!(ev(ScenarioEvent::Straggler {
            rank: 0,
            slowdown: 0.0
        })
        .validate(8)
        .is_err());
    }

    #[test]
    fn straggler_events_leave_bandwidth_untouched() {
        let mut st = BandwidthState::new(BandwidthModel::Static(BandwidthMatrix::constant(3, 2.0)));
        assert!(!st.apply(&ScenarioEvent::Straggler {
            rank: 1,
            slowdown: 3.0
        }));
        assert_eq!(st.current().get(0, 1), 2.0);
    }

    #[test]
    fn static_state_applies_shift_and_link_events() {
        let mut st = BandwidthState::new(BandwidthModel::Static(BandwidthMatrix::constant(3, 2.0)));
        assert!(st.apply(&ScenarioEvent::BandwidthShift { scale: 0.5 }));
        let m = st.advance();
        assert!((m.get(0, 1) - 1.0).abs() < 1e-12);
        assert!(st.apply(&ScenarioEvent::LinkChange {
            a: 0,
            b: 1,
            mbps: 0.0
        }));
        assert_eq!(st.current().get(0, 1), 0.0);
        assert!((st.current().get(1, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn drifting_state_scales_and_cuts() {
        let model = BandwidthModel::Drifting {
            baseline: BandwidthMatrix::constant(3, 2.0),
            volatility: 0.0,
            range: 1.0,
            seed: 1,
            refresh_every: 5,
        };
        model.validate().unwrap();
        let mut st = BandwidthState::new(model);
        st.apply(&ScenarioEvent::BandwidthShift { scale: 2.0 });
        assert!((st.advance().get(0, 1) - 4.0).abs() < 1e-12);
        st.apply(&ScenarioEvent::LinkChange {
            a: 0,
            b: 1,
            mbps: 0.0,
        });
        assert_eq!(st.advance().get(0, 1), 0.0);
        st.apply(&ScenarioEvent::LinkChange {
            a: 0,
            b: 1,
            mbps: 1.0,
        });
        assert!(st.advance().get(0, 1) > 0.0);
    }

    #[test]
    fn drifting_model_validation() {
        let bad = BandwidthModel::Drifting {
            baseline: BandwidthMatrix::constant(3, 2.0),
            volatility: -0.1,
            range: 2.0,
            seed: 1,
            refresh_every: 5,
        };
        assert!(bad.validate().is_err());
    }
}
