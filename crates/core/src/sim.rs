//! The round-based experiment engine.
//!
//! Drives any [`Trainer`] for a number of rounds over a fixed bandwidth
//! matrix, recording the full measurement tuple the paper plots:
//! validation accuracy × {epochs (Fig. 3), per-worker traffic (Fig. 4),
//! communication time (Fig. 6), per-round link bandwidth (Fig. 5)}.

use crate::Trainer;
use saps_data::Dataset;
use saps_netsim::{to_mb, BandwidthMatrix, TrafficAccountant};

/// One sampled point of a training run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistoryPoint {
    /// Communication round index (0-based, recorded *after* the round).
    pub round: usize,
    /// Epochs of local data processed so far.
    pub epoch: f64,
    /// Top-1 validation accuracy of the consensus model, in `[0, 1]`.
    pub val_acc: f32,
    /// Mean training loss at this round.
    pub train_loss: f32,
    /// Busiest worker's cumulative traffic so far (MB) — Fig. 4's x-axis.
    pub worker_traffic_mb: f64,
    /// Cumulative communication time so far (seconds) — Fig. 6's x-axis.
    pub comm_time_s: f64,
    /// Mean bandwidth of this round's peer links (MB/s).
    pub link_bandwidth: f64,
    /// Bottleneck bandwidth of this round's peer links (MB/s) — the
    /// effective iteration bandwidth Fig. 5 ranks algorithms by.
    pub bottleneck_bandwidth: f64,
}

/// A completed run: the algorithm name plus its sampled trajectory.
#[derive(Debug, Clone)]
pub struct RunHistory {
    /// Algorithm name (paper spelling).
    pub algorithm: String,
    /// Sampled points, in round order.
    pub points: Vec<HistoryPoint>,
    /// Final consensus-model validation accuracy.
    pub final_acc: f32,
    /// Total traffic on the busiest worker (MB).
    pub total_worker_traffic_mb: f64,
    /// Total server traffic (MB); 0 for serverless algorithms.
    pub total_server_traffic_mb: f64,
    /// Total communication time (seconds).
    pub total_comm_time_s: f64,
}

impl RunHistory {
    /// The first point at which validation accuracy reached `target`,
    /// if ever — the paper's "at reaching target accuracy" rows
    /// (Table IV).
    pub fn first_reaching(&self, target: f32) -> Option<&HistoryPoint> {
        self.points.iter().find(|p| p.val_acc >= target)
    }

    /// Mean link bandwidth across all sampled rounds (Fig. 5 summary).
    pub fn mean_link_bandwidth(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|p| p.link_bandwidth).sum::<f64>() / self.points.len() as f64
    }
}

/// Experiment-loop options.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Total communication rounds to run.
    pub rounds: usize,
    /// Evaluate validation accuracy every `eval_every` rounds (the points
    /// between evaluations reuse the last accuracy, so curves stay dense
    /// without paying evaluation cost each round).
    pub eval_every: usize,
    /// Cap on validation examples per evaluation.
    pub eval_samples: usize,
    /// Stop once this many epochs of local data have been processed
    /// (whichever of `rounds` / `max_epochs` hits first). The paper's
    /// Fig. 3 compares algorithms at equal *epochs*, which matters
    /// because FedAvg-style algorithms take several local steps per
    /// communication round.
    pub max_epochs: f64,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            rounds: 100,
            eval_every: 10,
            eval_samples: 1_000,
            max_epochs: f64::INFINITY,
        }
    }
}

/// Runs `trainer` for `opts.rounds` rounds and records its trajectory.
pub fn run(
    trainer: &mut dyn Trainer,
    bw: &BandwidthMatrix,
    val: &Dataset,
    opts: RunOptions,
) -> RunHistory {
    assert!(opts.eval_every >= 1);
    let mut traffic = TrafficAccountant::new(trainer.worker_count());
    let mut points = Vec::with_capacity(opts.rounds);
    let mut epoch = 0.0f64;
    let mut time_s = 0.0f64;
    let mut last_acc = trainer.evaluate(val, opts.eval_samples);
    for round in 0..opts.rounds {
        let rep = trainer.round(&mut traffic, bw);
        epoch += rep.epochs_advanced;
        time_s += rep.comm_time_s;
        let done = round + 1 == opts.rounds || epoch >= opts.max_epochs;
        if (round + 1) % opts.eval_every == 0 || done {
            last_acc = trainer.evaluate(val, opts.eval_samples);
        }
        points.push(HistoryPoint {
            round,
            epoch,
            val_acc: last_acc,
            train_loss: rep.mean_loss,
            worker_traffic_mb: to_mb(traffic.max_worker_total()),
            comm_time_s: time_s,
            link_bandwidth: rep.mean_link_bandwidth,
            bottleneck_bandwidth: rep.min_link_bandwidth,
        });
        if epoch >= opts.max_epochs {
            break;
        }
    }
    RunHistory {
        algorithm: trainer.name().to_string(),
        final_acc: last_acc,
        total_worker_traffic_mb: to_mb(traffic.max_worker_total()),
        total_server_traffic_mb: to_mb(traffic.server_total()),
        total_comm_time_s: time_s,
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SapsConfig, SapsPsgd};
    use saps_data::SyntheticSpec;
    use saps_nn::zoo;

    #[test]
    fn run_produces_monotone_axes() {
        let ds = SyntheticSpec::tiny().samples(800).generate(1);
        let (train, val) = ds.split(0.25, 0);
        let bw = BandwidthMatrix::constant(4, 2.0);
        let cfg = SapsConfig {
            workers: 4,
            compression: 4.0,
            lr: 0.1,
            batch_size: 16,
            tthres: 4,
            ..SapsConfig::default()
        };
        let mut algo = SapsPsgd::new(cfg, &train, &bw, |rng| zoo::mlp(&[16, 16, 4], rng));
        let hist = run(
            &mut algo,
            &bw,
            &val,
            RunOptions {
                rounds: 30,
                eval_every: 5,
                eval_samples: 200,
                max_epochs: f64::INFINITY,
            },
        );
        assert_eq!(hist.points.len(), 30);
        for w in hist.points.windows(2) {
            assert!(w[1].epoch > w[0].epoch);
            assert!(w[1].worker_traffic_mb >= w[0].worker_traffic_mb);
            assert!(w[1].comm_time_s >= w[0].comm_time_s);
        }
        assert_eq!(hist.algorithm, "SAPS-PSGD");
        assert_eq!(hist.total_server_traffic_mb, 0.0);
        assert!(hist.total_worker_traffic_mb > 0.0);
    }

    #[test]
    fn first_reaching_finds_crossing() {
        let mk = |acc: f32, traffic: f64| HistoryPoint {
            round: 0,
            epoch: 0.0,
            val_acc: acc,
            train_loss: 0.0,
            worker_traffic_mb: traffic,
            comm_time_s: 0.0,
            link_bandwidth: 0.0,
            bottleneck_bandwidth: 0.0,
        };
        let h = RunHistory {
            algorithm: "x".into(),
            points: vec![mk(0.3, 1.0), mk(0.6, 2.0), mk(0.9, 3.0)],
            final_acc: 0.9,
            total_worker_traffic_mb: 3.0,
            total_server_traffic_mb: 0.0,
            total_comm_time_s: 0.0,
        };
        assert_eq!(h.first_reaching(0.5).unwrap().worker_traffic_mb, 2.0);
        assert!(h.first_reaching(0.99).is_none());
        assert!(h.mean_link_bandwidth().abs() < 1e-12);
    }
}
