//! Deprecated round-loop shim.
//!
//! The engine behind this module moved to [`crate::experiment`]: the
//! [`crate::Experiment`] builder owns dataset, partition strategy,
//! bandwidth model, event schedule and observers, and is the supported
//! way to run an algorithm. `sim::run` survives for one PR as a thin
//! wrapper for code that already holds a constructed [`Trainer`] and a
//! static matrix.

pub use crate::experiment::{HistoryPoint, RunHistory};
use crate::{RoundCtx, Trainer};
use saps_data::Dataset;
use saps_netsim::{to_mb, BandwidthMatrix, TrafficAccountant};

/// Experiment-loop options.
#[deprecated(
    since = "0.1.0",
    note = "use the `Experiment` builder's rounds/eval_every/eval_samples/max_epochs setters"
)]
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Total communication rounds to run.
    pub rounds: usize,
    /// Evaluate validation accuracy every `eval_every` rounds.
    pub eval_every: usize,
    /// Cap on validation examples per evaluation.
    pub eval_samples: usize,
    /// Stop once this many epochs of local data have been processed.
    pub max_epochs: f64,
}

#[allow(deprecated)]
impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            rounds: 100,
            eval_every: 10,
            eval_samples: 1_000,
            max_epochs: f64::INFINITY,
        }
    }
}

/// Runs `trainer` for `opts.rounds` rounds over a fixed bandwidth matrix
/// and records its trajectory.
#[deprecated(
    since = "0.1.0",
    note = "use the `Experiment` builder (spec + registry + events) instead"
)]
#[allow(deprecated)]
pub fn run(
    trainer: &mut dyn Trainer,
    bw: &BandwidthMatrix,
    val: &Dataset,
    opts: RunOptions,
) -> RunHistory {
    assert!(opts.eval_every >= 1);
    let mut traffic = TrafficAccountant::new(trainer.worker_count());
    let mut points = Vec::with_capacity(opts.rounds);
    let mut epoch = 0.0f64;
    let mut time_s = 0.0f64;
    let mut last_acc = trainer.evaluate(val, opts.eval_samples);
    for round in 0..opts.rounds {
        let rep = {
            let mut ctx = RoundCtx::new(round, bw, &mut traffic, 0);
            trainer.step(&mut ctx)
        };
        epoch += rep.epochs_advanced;
        time_s += rep.comm_time_s;
        let done = round + 1 == opts.rounds || epoch >= opts.max_epochs;
        let evaluated = (round + 1) % opts.eval_every == 0 || done;
        if evaluated {
            last_acc = trainer.evaluate(val, opts.eval_samples);
        }
        let mut point = HistoryPoint::new();
        point.round = round;
        point.epoch = epoch;
        point.val_acc = last_acc;
        point.evaluated = evaluated;
        point.train_loss = rep.mean_loss;
        point.worker_traffic_mb = to_mb(traffic.max_worker_total());
        point.comm_time_s = time_s;
        point.link_bandwidth = rep.mean_link_bandwidth;
        point.bottleneck_bandwidth = rep.min_link_bandwidth;
        points.push(point);
        if epoch >= opts.max_epochs {
            break;
        }
    }
    RunHistory {
        algorithm: trainer.name().to_string(),
        final_acc: last_acc,
        total_worker_traffic_mb: to_mb(traffic.max_worker_total()),
        total_server_traffic_mb: to_mb(traffic.server_total()),
        total_comm_time_s: time_s,
        points,
    }
}
