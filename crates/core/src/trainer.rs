//! The common interface every distributed training algorithm implements.
//!
//! SAPS-PSGD and all seven comparison algorithms expose the same
//! round-based surface so the simulator, benches and examples can treat
//! them interchangeably. A round is driven through a [`RoundCtx`] — the
//! round index, the current bandwidth view, the traffic accountant and a
//! per-round RNG — so the experiment driver can vary the network and the
//! membership between rounds without each algorithm growing its own side
//! channel.

use crate::ConfigError;
use rand::rngs::StdRng;
use saps_data::Dataset;
use saps_netsim::{BandwidthMatrix, RoundTiming, TimeModel, TrafficAccountant};
use saps_runtime::Executor;
use saps_telemetry::Recorder;
use saps_tensor::rng::{rng_for, streams};

/// Everything one communication round is allowed to see and charge.
///
/// Built by the experiment driver (or by [`RoundCtx::new`] in tests);
/// the bandwidth view reflects any [`crate::ScenarioEvent`]s applied
/// before this round.
pub struct RoundCtx<'a> {
    round: usize,
    /// Link speeds in effect for this round's time model.
    pub bw: &'a BandwidthMatrix,
    /// Where every byte moved this round must be charged.
    pub traffic: &'a mut TrafficAccountant,
    /// Per-round randomness, derived deterministically from the
    /// experiment seed and the round index. Algorithms with their own
    /// internal RNG streams may ignore it.
    pub rng: StdRng,
    /// The execution lane for the round's per-worker compute phase.
    /// Parallel and sequential executors produce bit-identical rounds
    /// (see [`saps_runtime`]); [`RoundCtx::new`] defaults to sequential
    /// so hand-driven stepping stays single-threaded, and the
    /// [`crate::Experiment`] driver installs the configured executor via
    /// [`RoundCtx::with_executor`].
    pub exec: Executor,
    /// How this round's transfer set is priced into communication time
    /// ([`TimeModel::Analytic`] by default). Algorithms never read this
    /// directly — they call [`RoundCtx::price_p2p`] and friends, so the
    /// driver can swap the model without touching trainer code.
    pub time: TimeModel,
    /// Per-rank compute-finish times in seconds (straggler modeling);
    /// empty means all workers finish at 0. Installed by the driver via
    /// [`RoundCtx::with_compute_starts`].
    compute_starts: Vec<f64>,
    /// Telemetry handle for this round. Disabled by default (every call
    /// is a no-op); the [`crate::Experiment`] driver installs the
    /// configured recorder via [`RoundCtx::with_telemetry`]. Trainers
    /// may clone it to keep emitting events outside the step path —
    /// observing through it never perturbs training (pinned by the
    /// telemetry conformance suite).
    pub telemetry: Recorder,
}

impl<'a> RoundCtx<'a> {
    /// Builds the context for round `round`. `seed` is the experiment
    /// seed the per-round RNG derives from. The compute executor
    /// defaults to [`Executor::sequential`].
    pub fn new(
        round: usize,
        bw: &'a BandwidthMatrix,
        traffic: &'a mut TrafficAccountant,
        seed: u64,
    ) -> Self {
        RoundCtx {
            round,
            bw,
            traffic,
            rng: rng_for(seed, round as u64, streams::ROUND),
            exec: Executor::sequential(),
            time: TimeModel::Analytic,
            compute_starts: Vec::new(),
            telemetry: Recorder::disabled(),
        }
    }

    /// Replaces the compute executor (builder style).
    pub fn with_executor(mut self, exec: Executor) -> Self {
        self.exec = exec;
        self
    }

    /// Replaces the transfer-time model (builder style).
    pub fn with_time_model(mut self, time: TimeModel) -> Self {
        self.time = time;
        self
    }

    /// Installs per-rank compute-finish times (builder style). The
    /// driver derives them from its compute-time base and any
    /// [`crate::ScenarioEvent::Straggler`] slowdowns in effect.
    pub fn with_compute_starts(mut self, starts: Vec<f64>) -> Self {
        self.compute_starts = starts;
        self
    }

    /// Installs the telemetry recorder (builder style).
    pub fn with_telemetry(mut self, telemetry: Recorder) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The 0-based communication round index.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Prices one round of concurrent pairwise transfers
    /// `(src, dst, bytes)` under this round's time model and compute
    /// schedule (the SAPS-PSGD / D-PSGD / DCD-PSGD / RandomChoose
    /// pattern).
    pub fn price_p2p(&self, transfers: &[(usize, usize, u64)]) -> RoundTiming {
        let t = self
            .time
            .price_p2p(self.bw, transfers, &self.compute_starts);
        self.note_net_stats(&t);
        t
    }

    /// Prices one parameter-server round: each `(worker, up, down)`
    /// client moves its bytes over the worker↔server link (the FedAvg /
    /// S-FedAvg pattern).
    pub fn price_ps(&self, server: usize, clients: &[(usize, u64, u64)]) -> RoundTiming {
        let t = self
            .time
            .price_ps(self.bw, server, clients, &self.compute_starts);
        self.note_net_stats(&t);
        t
    }

    /// Prices a ring all-reduce over `ranks` moving `bytes_per_worker`
    /// through every worker (the PSGD pattern).
    pub fn price_allreduce(&self, ranks: &[usize], bytes_per_worker: u64) -> RoundTiming {
        let t = self
            .time
            .price_allreduce(self.bw, ranks, bytes_per_worker, &self.compute_starts);
        self.note_net_stats(&t);
        t
    }

    /// Prices a sparse allgather over `ranks`, every worker delivering
    /// `bytes` to each of the others (the TopK-PSGD pattern).
    pub fn price_allgather(&self, ranks: &[usize], bytes: u64) -> RoundTiming {
        let t = self
            .time
            .price_allgather(self.bw, ranks, bytes, &self.compute_starts);
        self.note_net_stats(&t);
        t
    }

    /// Feeds a priced round's network statistics into the recorder —
    /// the DES instrumentation point. Under [`TimeModel::Packet`] the
    /// timing carries retransmission and queue-depth stats; under the
    /// fluid/analytic models they are zero and nothing is recorded.
    fn note_net_stats(&self, t: &RoundTiming) {
        if !self.telemetry.is_enabled() {
            return;
        }
        if t.retransmit_segments > 0 {
            self.telemetry
                .add("net.retransmit_segments", t.retransmit_segments);
        }
        if t.peak_queue_bytes > 0.0 {
            self.telemetry
                .max_gauge("net.peak_queue_bytes", t.peak_queue_bytes);
        }
    }
}

impl std::fmt::Debug for RoundCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoundCtx")
            .field("round", &self.round)
            .field("workers", &self.bw.len())
            .finish()
    }
}

/// What one communication round produced.
///
/// `#[non_exhaustive]` so future metric fields are not breaking changes;
/// construct via [`RoundReport::new`] and assign the fields you measure.
#[derive(Debug, Clone, Copy, Default)]
#[non_exhaustive]
pub struct RoundReport {
    /// Mean training loss over the workers' local batches this round.
    pub mean_loss: f32,
    /// Mean training accuracy over the workers' local batches.
    pub mean_acc: f32,
    /// Wall-clock communication time of this round in seconds, under the
    /// bandwidth matrix and [`TimeModel`] of the [`RoundCtx`] — the
    /// transfer segment of the round's critical path
    /// ([`RoundTiming::transfer_s`]).
    pub comm_time_s: f64,
    /// Compute segment of the round's critical path: when the last
    /// active worker finished its local steps
    /// ([`RoundTiming::compute_s`]; 0 unless the experiment models
    /// compute time).
    pub compute_time_s: f64,
    /// Mean per-worker idle time within the round
    /// ([`RoundTiming::idle_s`]).
    pub idle_time_s: f64,
    /// Full wall-clock length of the round
    /// (`compute_time_s + comm_time_s`, [`RoundTiming::total_s`]).
    pub round_time_s: f64,
    /// Fraction of one epoch advanced this round (worker-side samples
    /// processed / local dataset size).
    pub epochs_advanced: f64,
    /// Mean bandwidth (MB/s) of the worker-to-worker links used this
    /// round. 0 when no peer links were used (PS-based algorithms).
    pub mean_link_bandwidth: f64,
    /// Bottleneck (minimum) bandwidth of the links used this round — the
    /// effective bandwidth of a synchronous iteration, and the quantity
    /// whose ordering Fig. 5 shows (the ring's slowest link gates
    /// D-PSGD even though its *mean* link can be fast).
    pub min_link_bandwidth: f64,
}

impl RoundReport {
    /// An all-zero report; assign the fields the round measured.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies a [`RoundTiming`] breakdown into the report's four timing
    /// fields.
    pub fn set_timing(&mut self, t: &RoundTiming) {
        self.comm_time_s = t.transfer_s;
        self.compute_time_s = t.compute_s;
        self.idle_time_s = t.idle_s;
        self.round_time_s = t.total_s;
    }
}

/// A distributed training algorithm driven round by round.
pub trait Trainer {
    /// Algorithm name as the paper spells it (e.g. `"SAPS-PSGD"`).
    fn name(&self) -> &'static str;

    /// Runs one communication round: local computation plus the
    /// algorithm's exchange pattern. Byte movement must be charged to
    /// `ctx.traffic`; `ctx.bw` supplies the link speeds for the time
    /// model.
    fn step(&mut self, ctx: &mut RoundCtx<'_>) -> RoundReport;

    /// Validation accuracy of the algorithm's current *consensus* model
    /// (the average of worker models for decentralized algorithms, the
    /// server model for PS algorithms).
    fn evaluate(&mut self, val: &Dataset, max_samples: usize) -> f32;

    /// Model size `N` (scalar parameters).
    fn model_len(&self) -> usize;

    /// Number of workers `n` (the fleet size; inactive workers count).
    fn worker_count(&self) -> usize;

    /// Convenience wrapper for driving single rounds without an
    /// [`crate::Experiment`]: builds a [`RoundCtx`] whose round index is
    /// the accountant's closed-round count and calls [`Trainer::step`].
    fn round(&mut self, traffic: &mut TrafficAccountant, bw: &BandwidthMatrix) -> RoundReport {
        let round = traffic.rounds().len();
        let mut ctx = RoundCtx::new(round, bw, traffic, 0);
        self.step(&mut ctx)
    }

    /// Marks a worker active/inactive (join/leave churn). The experiment
    /// driver calls this for [`crate::ScenarioEvent::WorkerLeave`] /
    /// [`crate::ScenarioEvent::WorkerJoin`]; algorithms without a
    /// membership concept return [`ConfigError::Unsupported`].
    fn set_worker_active(&mut self, rank: usize, active: bool) -> Result<(), ConfigError> {
        let _ = (rank, active);
        Err(ConfigError::unsupported(self.name(), "worker churn"))
    }

    /// Tells the algorithm the measured bandwidths changed (the paper's
    /// "regularly reported" speed measurements). Algorithms that plan
    /// topology from bandwidth (SAPS-PSGD) rebuild their selection state;
    /// the default is a no-op because most baselines read `ctx.bw`
    /// directly each round.
    fn refresh_bandwidth(&mut self, bw: &BandwidthMatrix) {
        let _ = bw;
    }

    /// Exports the current *consensus* model as a
    /// [`crate::checkpoint`]-encoded blob stamped with the number of
    /// completed rounds — the hand-off the `saps-serve` inference plane
    /// announces to its replicas between training rounds. Algorithms
    /// without a consensus snapshot return [`ConfigError::Unsupported`].
    fn export_checkpoint(&mut self) -> Result<Vec<u8>, ConfigError> {
        Err(ConfigError::unsupported(self.name(), "checkpoint export"))
    }
}
