//! The common interface every distributed training algorithm implements.
//!
//! SAPS-PSGD and all seven comparison algorithms expose the same
//! round-based surface so the simulator, benches and examples can treat
//! them interchangeably.

use saps_data::Dataset;
use saps_netsim::{BandwidthMatrix, TrafficAccountant};

/// What one communication round produced.
#[derive(Debug, Clone, Copy)]
pub struct RoundReport {
    /// Mean training loss over the workers' local batches this round.
    pub mean_loss: f32,
    /// Mean training accuracy over the workers' local batches.
    pub mean_acc: f32,
    /// Wall-clock communication time of this round in seconds, under the
    /// bandwidth matrix passed to [`Trainer::round`].
    pub comm_time_s: f64,
    /// Fraction of one epoch advanced this round (worker-side samples
    /// processed / local dataset size).
    pub epochs_advanced: f64,
    /// Mean bandwidth (MB/s) of the worker-to-worker links used this
    /// round. 0 when no peer links were used (PS-based algorithms).
    pub mean_link_bandwidth: f64,
    /// Bottleneck (minimum) bandwidth of the links used this round — the
    /// effective bandwidth of a synchronous iteration, and the quantity
    /// whose ordering Fig. 5 shows (the ring's slowest link gates
    /// D-PSGD even though its *mean* link can be fast).
    pub min_link_bandwidth: f64,
}

/// A distributed training algorithm driven round by round.
pub trait Trainer {
    /// Algorithm name as the paper spells it (e.g. `"SAPS-PSGD"`).
    fn name(&self) -> &'static str;

    /// Runs one communication round: local computation plus the
    /// algorithm's exchange pattern. Byte movement must be charged to
    /// `traffic`; `bw` supplies the link speeds for the time model.
    fn round(&mut self, traffic: &mut TrafficAccountant, bw: &BandwidthMatrix) -> RoundReport;

    /// Validation accuracy of the algorithm's current *consensus* model
    /// (the average of worker models for decentralized algorithms, the
    /// server model for PS algorithms).
    fn evaluate(&mut self, val: &Dataset, max_samples: usize) -> f32;

    /// Model size `N` (scalar parameters).
    fn model_len(&self) -> usize;

    /// Number of workers `n`.
    fn worker_count(&self) -> usize;
}
