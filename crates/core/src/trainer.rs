//! The common interface every distributed training algorithm implements.
//!
//! SAPS-PSGD and all seven comparison algorithms expose the same
//! round-based surface so the simulator, benches and examples can treat
//! them interchangeably. A round is driven through a [`RoundCtx`] — the
//! round index, the current bandwidth view, the traffic accountant and a
//! per-round RNG — so the experiment driver can vary the network and the
//! membership between rounds without each algorithm growing its own side
//! channel.

use crate::ConfigError;
use rand::rngs::StdRng;
use saps_data::Dataset;
use saps_netsim::{BandwidthMatrix, TrafficAccountant};
use saps_runtime::Executor;
use saps_tensor::rng::{rng_for, streams};

/// Everything one communication round is allowed to see and charge.
///
/// Built by the experiment driver (or by [`RoundCtx::new`] in tests);
/// the bandwidth view reflects any [`crate::ScenarioEvent`]s applied
/// before this round.
pub struct RoundCtx<'a> {
    round: usize,
    /// Link speeds in effect for this round's time model.
    pub bw: &'a BandwidthMatrix,
    /// Where every byte moved this round must be charged.
    pub traffic: &'a mut TrafficAccountant,
    /// Per-round randomness, derived deterministically from the
    /// experiment seed and the round index. Algorithms with their own
    /// internal RNG streams may ignore it.
    pub rng: StdRng,
    /// The execution lane for the round's per-worker compute phase.
    /// Parallel and sequential executors produce bit-identical rounds
    /// (see [`saps_runtime`]); [`RoundCtx::new`] defaults to sequential
    /// so hand-driven stepping stays single-threaded, and the
    /// [`crate::Experiment`] driver installs the configured executor via
    /// [`RoundCtx::with_executor`].
    pub exec: Executor,
}

impl<'a> RoundCtx<'a> {
    /// Builds the context for round `round`. `seed` is the experiment
    /// seed the per-round RNG derives from. The compute executor
    /// defaults to [`Executor::sequential`].
    pub fn new(
        round: usize,
        bw: &'a BandwidthMatrix,
        traffic: &'a mut TrafficAccountant,
        seed: u64,
    ) -> Self {
        RoundCtx {
            round,
            bw,
            traffic,
            rng: rng_for(seed, round as u64, streams::ROUND),
            exec: Executor::sequential(),
        }
    }

    /// Replaces the compute executor (builder style).
    pub fn with_executor(mut self, exec: Executor) -> Self {
        self.exec = exec;
        self
    }

    /// The 0-based communication round index.
    pub fn round(&self) -> usize {
        self.round
    }
}

impl std::fmt::Debug for RoundCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoundCtx")
            .field("round", &self.round)
            .field("workers", &self.bw.len())
            .finish()
    }
}

/// What one communication round produced.
///
/// `#[non_exhaustive]` so future metric fields are not breaking changes;
/// construct via [`RoundReport::new`] and assign the fields you measure.
#[derive(Debug, Clone, Copy, Default)]
#[non_exhaustive]
pub struct RoundReport {
    /// Mean training loss over the workers' local batches this round.
    pub mean_loss: f32,
    /// Mean training accuracy over the workers' local batches.
    pub mean_acc: f32,
    /// Wall-clock communication time of this round in seconds, under the
    /// bandwidth matrix of the [`RoundCtx`].
    pub comm_time_s: f64,
    /// Fraction of one epoch advanced this round (worker-side samples
    /// processed / local dataset size).
    pub epochs_advanced: f64,
    /// Mean bandwidth (MB/s) of the worker-to-worker links used this
    /// round. 0 when no peer links were used (PS-based algorithms).
    pub mean_link_bandwidth: f64,
    /// Bottleneck (minimum) bandwidth of the links used this round — the
    /// effective bandwidth of a synchronous iteration, and the quantity
    /// whose ordering Fig. 5 shows (the ring's slowest link gates
    /// D-PSGD even though its *mean* link can be fast).
    pub min_link_bandwidth: f64,
}

impl RoundReport {
    /// An all-zero report; assign the fields the round measured.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A distributed training algorithm driven round by round.
pub trait Trainer {
    /// Algorithm name as the paper spells it (e.g. `"SAPS-PSGD"`).
    fn name(&self) -> &'static str;

    /// Runs one communication round: local computation plus the
    /// algorithm's exchange pattern. Byte movement must be charged to
    /// `ctx.traffic`; `ctx.bw` supplies the link speeds for the time
    /// model.
    fn step(&mut self, ctx: &mut RoundCtx<'_>) -> RoundReport;

    /// Validation accuracy of the algorithm's current *consensus* model
    /// (the average of worker models for decentralized algorithms, the
    /// server model for PS algorithms).
    fn evaluate(&mut self, val: &Dataset, max_samples: usize) -> f32;

    /// Model size `N` (scalar parameters).
    fn model_len(&self) -> usize;

    /// Number of workers `n` (the fleet size; inactive workers count).
    fn worker_count(&self) -> usize;

    /// Convenience wrapper for driving single rounds without an
    /// [`crate::Experiment`]: builds a [`RoundCtx`] whose round index is
    /// the accountant's closed-round count and calls [`Trainer::step`].
    fn round(&mut self, traffic: &mut TrafficAccountant, bw: &BandwidthMatrix) -> RoundReport {
        let round = traffic.rounds().len();
        let mut ctx = RoundCtx::new(round, bw, traffic, 0);
        self.step(&mut ctx)
    }

    /// Marks a worker active/inactive (join/leave churn). The experiment
    /// driver calls this for [`crate::ScenarioEvent::WorkerLeave`] /
    /// [`crate::ScenarioEvent::WorkerJoin`]; algorithms without a
    /// membership concept return [`ConfigError::Unsupported`].
    fn set_worker_active(&mut self, rank: usize, active: bool) -> Result<(), ConfigError> {
        let _ = (rank, active);
        Err(ConfigError::unsupported(self.name(), "worker churn"))
    }

    /// Tells the algorithm the measured bandwidths changed (the paper's
    /// "regularly reported" speed measurements). Algorithms that plan
    /// topology from bandwidth (SAPS-PSGD) rebuild their selection state;
    /// the default is a no-op because most baselines read `ctx.bw`
    /// directly each round.
    fn refresh_bandwidth(&mut self, bw: &BandwidthMatrix) {
        let _ = bw;
    }
}
