//! Minimal JSON support: string escaping for the emitters and a
//! dependency-free syntax checker for the consumers.
//!
//! The workspace has no serde (fully offline build), so the JSONL
//! exporter hand-renders its lines and CI validates them with the
//! recursive-descent checker below instead of a real parser.

/// Escapes `s` into `out` as JSON string contents (no surrounding
/// quotes).
pub(crate) fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Validates that every non-empty line of `text` is a syntactically
/// well-formed JSON **object**, returning the number of lines checked.
/// This is what the CI leg and `examples/telemetry_demo.rs` run over
/// exported event logs; it is a syntax checker, not a schema checker.
pub fn validate_jsonl(text: &str) -> Result<usize, String> {
    let mut checked = 0;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut p = Parser {
            bytes: line.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        if p.peek() != Some(b'{') {
            return Err(format!("line {}: not a JSON object", lineno + 1));
        }
        p.value().map_err(|e| format!("line {}: {e}", lineno + 1))?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("line {}: trailing garbage", lineno + 1));
        }
        checked += 1;
    }
    Ok(checked)
}

/// Recursive-descent JSON syntax checker over one line.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(()),
                _ => return Err(format!("bad object at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(()),
                _ => return Err(format!("bad array at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        while let Some(b) = self.bump() {
            match b {
                b'"' => return Ok(()),
                b'\\' => match self.bump() {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {}
                    Some(b'u') => {
                        for _ in 0..4 {
                            if !self.bump().is_some_and(|h| h.is_ascii_hexdigit()) {
                                return Err("bad \\u escape".into());
                            }
                        }
                    }
                    _ => return Err("bad escape".into()),
                },
                _ => {}
            }
        }
        Err("unterminated string".into())
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut digits = 0;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
            digits += 1;
        }
        if digits == 0 {
            return Err(format!("bad number at byte {}", self.pos));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let mut frac = 0;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
                frac += 1;
            }
            if frac == 0 {
                return Err("bad fraction".into());
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let mut exp = 0;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
                exp += 1;
            }
            if exp == 0 {
                return Err("bad exponent".into());
            }
        }
        Ok(())
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }
}
