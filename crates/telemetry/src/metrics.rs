//! Metric cells: counters, gauges, and fixed-bucket histograms.
//!
//! Cells live behind `Arc`s in a name-keyed registry; the registry
//! mutex is held only for the name lookup, after which every update is
//! a single atomic operation — cheap enough to leave enabled inside
//! the round loop.

use std::sync::atomic::{AtomicU64, Ordering};

/// Default histogram bucket upper bounds: a log-spaced ladder wide
/// enough for both sub-millisecond round phases and thousand-tick
/// serving latencies. An implicit `+Inf` overflow bucket follows the
/// last bound.
pub const DEFAULT_BUCKETS: &[f64] = &[
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
];

/// A histogram cell: fixed upper bounds plus an overflow bucket, with
/// atomically updated counts and sum.
#[derive(Debug)]
pub(crate) struct HistCell {
    bounds: Vec<f64>,
    /// One count per bound, plus the trailing overflow bucket.
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl HistCell {
    fn new(bounds: &[f64]) -> Self {
        HistCell {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    fn observe(&self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|b| v <= *b)
            .unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // CAS loop: f64 add on an AtomicU64 holding the bit pattern.
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
        }
    }
}

/// A point-in-time copy of a histogram's buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds (an implicit `+Inf` bucket follows).
    pub bounds: Vec<f64>,
    /// Per-bucket counts; `counts.len() == bounds.len() + 1`, the last
    /// entry being the overflow bucket.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) by linear
    /// interpolation inside the bucket containing the target rank.
    /// Values landing in the overflow bucket are reported as the last
    /// finite bound (a floor, not an exact value). Returns `None` when
    /// the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            let prev = cum;
            cum += c;
            if cum >= rank {
                if i >= self.bounds.len() {
                    // Overflow bucket: no finite upper bound to
                    // interpolate toward.
                    return Some(self.bounds.last().copied().unwrap_or(self.sum));
                }
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let upper = self.bounds[i];
                let frac = if *c == 0 {
                    0.0
                } else {
                    (rank - prev) as f64 / *c as f64
                };
                return Some(lower + (upper - lower) * frac);
            }
        }
        self.bounds.last().copied()
    }

    /// Mean of all observations (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        self.sum / self.count as f64
    }
}

/// One registered metric. The variant is fixed at first registration;
/// updates through a mismatched accessor are ignored (no panics in
/// instrumented hot paths).
#[derive(Debug)]
pub(crate) enum Cell {
    Counter(AtomicU64),
    Gauge(AtomicU64),
    Histogram(HistCell),
}

impl Cell {
    pub(crate) fn counter() -> Self {
        Cell::Counter(AtomicU64::new(0))
    }

    pub(crate) fn gauge() -> Self {
        Cell::Gauge(AtomicU64::new(0f64.to_bits()))
    }

    pub(crate) fn histogram(bounds: &[f64]) -> Self {
        Cell::Histogram(HistCell::new(bounds))
    }

    pub(crate) fn add(&self, delta: u64) {
        if let Cell::Counter(c) = self {
            c.fetch_add(delta, Ordering::Relaxed);
        }
    }

    pub(crate) fn counter_value(&self) -> Option<u64> {
        match self {
            Cell::Counter(c) => Some(c.load(Ordering::Relaxed)),
            _ => None,
        }
    }

    pub(crate) fn set_gauge(&self, v: f64) {
        if let Cell::Gauge(g) = self {
            g.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    pub(crate) fn max_gauge(&self, v: f64) {
        if let Cell::Gauge(g) = self {
            let mut cur = g.load(Ordering::Relaxed);
            while v > f64::from_bits(cur) {
                match g.compare_exchange_weak(
                    cur,
                    v.to_bits(),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
    }

    pub(crate) fn gauge_value(&self) -> Option<f64> {
        match self {
            Cell::Gauge(g) => Some(f64::from_bits(g.load(Ordering::Relaxed))),
            _ => None,
        }
    }

    pub(crate) fn observe(&self, v: f64) {
        if let Cell::Histogram(h) = self {
            h.observe(v);
        }
    }

    pub(crate) fn histogram_snapshot(&self) -> Option<HistogramSnapshot> {
        match self {
            Cell::Histogram(h) => Some(h.snapshot()),
            _ => None,
        }
    }

    /// Renders this metric in Prometheus text exposition format.
    pub(crate) fn render_prometheus(&self, name: &str, out: &mut String) {
        let sanitized = sanitize_metric_name(name);
        match self {
            Cell::Counter(c) => {
                out.push_str(&format!("# TYPE {sanitized} counter\n"));
                out.push_str(&format!("{sanitized} {}\n", c.load(Ordering::Relaxed)));
            }
            Cell::Gauge(g) => {
                out.push_str(&format!("# TYPE {sanitized} gauge\n"));
                out.push_str(&format!(
                    "{sanitized} {}\n",
                    f64::from_bits(g.load(Ordering::Relaxed))
                ));
            }
            Cell::Histogram(h) => {
                let snap = h.snapshot();
                out.push_str(&format!("# TYPE {sanitized} histogram\n"));
                let mut cum = 0u64;
                for (i, b) in snap.bounds.iter().enumerate() {
                    cum += snap.counts[i];
                    out.push_str(&format!("{sanitized}_bucket{{le=\"{b}\"}} {cum}\n"));
                }
                out.push_str(&format!(
                    "{sanitized}_bucket{{le=\"+Inf\"}} {}\n",
                    snap.count
                ));
                out.push_str(&format!("{sanitized}_sum {}\n", snap.sum));
                out.push_str(&format!("{sanitized}_count {}\n", snap.count));
            }
        }
    }
}

/// Maps a dot-namespaced metric name to a Prometheus-legal one:
/// `wire.data_bytes` → `saps_wire_data_bytes`.
pub(crate) fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("saps_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}
