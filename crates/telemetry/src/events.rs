//! Structured events, the bounded flight-recorder ring, and crash dumps.
//!
//! Every event is stamped with the recorder's current **virtual time**
//! (DES seconds, never wall clock), so two runs of the same seeded
//! experiment produce byte-identical event logs. The flight recorder
//! keeps the last [`FLIGHT_RING_CAP`] events in a ring; when a typed
//! failure occurs the ring is snapshotted into a [`FlightDump`] that
//! names the failure and preserves the trail leading up to it.

use std::collections::VecDeque;

use crate::json::escape_json;

/// Capacity of the flight-recorder ring: how many recent events a
/// [`FlightDump`](crate::FlightDump) can capture.
pub const FLIGHT_RING_CAP: usize = 256;

/// Capacity of the full event log. Beyond this the log stops growing
/// and [`Recorder::dropped_events`](crate::Recorder::dropped_events)
/// counts the overflow (the flight ring keeps rotating regardless).
pub const EVENT_LOG_CAP: usize = 65_536;

/// A typed field value carried by an [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (counters, ranks, byte counts).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (times, losses). Non-finite values serialize as
    /// JSON `null`.
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Free-form text (error details, mode names).
    Str(String),
}

impl Value {
    /// Renders the value as a JSON token.
    fn render(&self, out: &mut String) {
        match self {
            Value::U64(v) => out.push_str(&v.to_string()),
            Value::I64(v) => out.push_str(&v.to_string()),
            Value::F64(v) if v.is_finite() => out.push_str(&v.to_string()),
            Value::F64(_) => out.push_str("null"),
            Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            Value::Str(s) => {
                out.push('"');
                escape_json(s, out);
                out.push('"');
            }
        }
    }

    /// The value as `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// One structured telemetry event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Monotone sequence number, assigned at emission.
    pub seq: u64,
    /// DES virtual time (seconds) when the event was emitted. Never
    /// wall clock, so traces are deterministic.
    pub vtime_s: f64,
    /// Training round the event belongs to, when there is one.
    pub round: Option<u64>,
    /// Event kind, dot-namespaced (`"round"`, `"phase"`,
    /// `"byzantine.quarantine"`, `"resync"`, `"serve.swap"`, …). The
    /// full catalog lives in `docs/OBSERVABILITY.md`.
    pub kind: String,
    /// Typed key/value payload, in emission order.
    pub fields: Vec<(String, Value)>,
}

impl Event {
    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Serializes the event as a single JSON object (one JSONL line,
    /// without the trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"seq\": ");
        out.push_str(&self.seq.to_string());
        out.push_str(", \"vtime_s\": ");
        if self.vtime_s.is_finite() {
            out.push_str(&self.vtime_s.to_string());
        } else {
            out.push_str("null");
        }
        if let Some(r) = self.round {
            out.push_str(", \"round\": ");
            out.push_str(&r.to_string());
        }
        out.push_str(", \"kind\": \"");
        escape_json(&self.kind, &mut out);
        out.push('"');
        for (k, v) in &self.fields {
            out.push_str(", \"");
            escape_json(k, &mut out);
            out.push_str("\": ");
            v.render(&mut out);
        }
        out.push('}');
        out
    }
}

/// A snapshot of the flight-recorder ring, taken when a typed failure
/// occurred.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightDump {
    /// Why the dump was taken (`"byzantine quarantine"`, `"stall"`,
    /// `"resync failed"`, `"hot-swap rejected"`, …).
    pub reason: String,
    /// Virtual time of the failure.
    pub vtime_s: f64,
    /// Sequence number the dump was taken at (events in the dump have
    /// `seq` at or below this).
    pub seq: u64,
    /// The ring contents at failure time, oldest first.
    pub events: Vec<Event>,
}

impl FlightDump {
    /// Serializes the dump as one JSON object per line: a
    /// `flight.dump` header naming the reason, followed by the
    /// captured events.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"seq\": ");
        out.push_str(&self.seq.to_string());
        out.push_str(", \"vtime_s\": ");
        if self.vtime_s.is_finite() {
            out.push_str(&self.vtime_s.to_string());
        } else {
            out.push_str("null");
        }
        out.push_str(", \"kind\": \"flight.dump\", \"reason\": \"");
        escape_json(&self.reason, &mut out);
        out.push_str("\", \"captured\": ");
        out.push_str(&self.events.len().to_string());
        out.push_str("}\n");
        for ev in &self.events {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }
}

/// The mutable event state behind the recorder's mutex: the full
/// (bounded) log, the flight ring, and accumulated crash dumps.
#[derive(Debug, Default)]
pub(crate) struct EventLog {
    next_seq: u64,
    ring: VecDeque<Event>,
    all: Vec<Event>,
    dropped: u64,
    dumps: Vec<FlightDump>,
}

impl EventLog {
    pub(crate) fn push(
        &mut self,
        vtime_s: f64,
        round: Option<u64>,
        kind: &str,
        fields: Vec<(String, Value)>,
    ) {
        let ev = Event {
            seq: self.next_seq,
            vtime_s,
            round,
            kind: kind.to_string(),
            fields,
        };
        self.next_seq += 1;
        if self.ring.len() == FLIGHT_RING_CAP {
            self.ring.pop_front();
        }
        self.ring.push_back(ev.clone());
        if self.all.len() < EVENT_LOG_CAP {
            self.all.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    pub(crate) fn dump(&mut self, vtime_s: f64, reason: &str) {
        let dump = FlightDump {
            reason: reason.to_string(),
            vtime_s,
            seq: self.next_seq,
            events: self.ring.iter().cloned().collect(),
        };
        self.dumps.push(dump);
    }

    pub(crate) fn all(&self) -> &[Event] {
        &self.all
    }

    pub(crate) fn ring(&self) -> impl Iterator<Item = &Event> {
        self.ring.iter()
    }

    pub(crate) fn dumps(&self) -> &[FlightDump] {
        &self.dumps
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped
    }
}
