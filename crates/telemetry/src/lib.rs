//! Unified telemetry plane for the SAPS-PSGD reproduction.
//!
//! One [`Recorder`] handle flows through every layer — the in-memory
//! [`Experiment`](../saps_core/experiment/struct.Experiment.html) round
//! loop, the cluster runtime, the chunk-distribution plane, the DES,
//! and the serving fleet — and collects three kinds of signal:
//!
//! * **Metrics**: counters, gauges, and fixed-bucket histograms in a
//!   name-keyed registry. The registry mutex is held only for name
//!   lookup; updates are single atomic ops (lock-cheap by design).
//! * **Events**: structured key/value records ([`Event`]) stamped with
//!   DES **virtual time**, never wall clock — so a seeded run emits a
//!   byte-identical trace every time.
//! * **Flight recorder**: a bounded ring of the most recent events,
//!   snapshotted into a [`FlightDump`] when a typed failure occurs
//!   (Byzantine quarantine, resync failure, stall, hot-swap rejection)
//!   so the trail leading up to the failure survives it.
//!
//! The cardinal rule, pinned by `tests/telemetry.rs`: a disabled
//! recorder ([`Recorder::disabled`], the default everywhere) makes
//! every call a no-op, and an *enabled* recorder observes without
//! perturbing — training with telemetry on is bit-identical to
//! training with it off.
//!
//! Exporters: [`Recorder::events_jsonl`] / [`Recorder::write_jsonl`]
//! (JSONL event log, crash dumps appended), and
//! [`Recorder::prometheus_text`] / [`Recorder::write_prometheus`]
//! (Prometheus text exposition snapshot). `docs/OBSERVABILITY.md`
//! documents the metric catalog and event schema.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod events;
mod json;
mod metrics;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

pub use events::{Event, FlightDump, Value, EVENT_LOG_CAP, FLIGHT_RING_CAP};
pub use json::validate_jsonl;
pub use metrics::{HistogramSnapshot, DEFAULT_BUCKETS};

use events::EventLog;
use metrics::Cell;

/// The shared state behind an enabled recorder.
struct Inner {
    metrics: Mutex<BTreeMap<String, Arc<Cell>>>,
    log: Mutex<EventLog>,
    /// Current virtual time, as `f64` bits.
    vtime_bits: AtomicU64,
}

/// A cloneable handle to the telemetry plane.
///
/// `Recorder` is either **enabled** (all clones share one registry,
/// event log, and flight ring) or **disabled** (every call is a no-op
/// and every read returns empty). The disabled state is the default,
/// so instrumented code paths cost one branch when telemetry is off.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

impl Recorder {
    /// Creates an **enabled** recorder with an empty registry.
    pub fn new() -> Self {
        Recorder {
            inner: Some(Arc::new(Inner {
                metrics: Mutex::new(BTreeMap::new()),
                log: Mutex::new(EventLog::default()),
                vtime_bits: AtomicU64::new(0f64.to_bits()),
            })),
        }
    }

    /// Creates a **disabled** recorder: every method is a no-op. This
    /// is also what [`Recorder::default`] returns.
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    // ------------------------------------------------------------------
    // Virtual time.

    /// Sets the current virtual time (DES seconds). Subsequent events
    /// are stamped with this value. Instrumentation must never feed
    /// wall clock here — determinism of the trace depends on it.
    pub fn set_vtime(&self, t: f64) {
        if let Some(inner) = &self.inner {
            inner.vtime_bits.store(t.to_bits(), Ordering::Relaxed);
        }
    }

    /// The current virtual time (0.0 when disabled).
    pub fn vtime(&self) -> f64 {
        self.inner
            .as_ref()
            .map(|i| f64::from_bits(i.vtime_bits.load(Ordering::Relaxed)))
            .unwrap_or(0.0)
    }

    // ------------------------------------------------------------------
    // Metrics.

    /// Looks up or registers `name` with `make`, then applies `f` to
    /// the cell.
    fn with_cell(&self, name: &str, make: fn() -> Cell, f: impl FnOnce(&Cell)) {
        if let Some(inner) = &self.inner {
            let cell = {
                let mut map = inner.metrics.lock().unwrap();
                match map.get(name) {
                    Some(c) => Arc::clone(c),
                    None => {
                        let c = Arc::new(make());
                        map.insert(name.to_string(), Arc::clone(&c));
                        c
                    }
                }
            };
            f(&cell);
        }
    }

    fn read_cell<T>(&self, name: &str, f: impl FnOnce(&Cell) -> Option<T>) -> Option<T> {
        let inner = self.inner.as_ref()?;
        let cell = {
            let map = inner.metrics.lock().unwrap();
            Arc::clone(map.get(name)?)
        };
        f(&cell)
    }

    /// Increments the counter `name` by `delta` (registering it on
    /// first use).
    pub fn add(&self, name: &str, delta: u64) {
        self.with_cell(name, Cell::counter, |c| c.add(delta));
    }

    /// Reads counter `name`; `None` when disabled, unregistered, or
    /// not a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.read_cell(name, Cell::counter_value)
    }

    /// Sets gauge `name` to `v`.
    pub fn set_gauge(&self, name: &str, v: f64) {
        self.with_cell(name, Cell::gauge, |c| c.set_gauge(v));
    }

    /// Raises gauge `name` to `v` if `v` is larger (high-water mark).
    pub fn max_gauge(&self, name: &str, v: f64) {
        self.with_cell(name, Cell::gauge, |c| c.max_gauge(v));
    }

    /// Reads gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.read_cell(name, Cell::gauge_value)
    }

    /// Observes `v` into histogram `name` with [`DEFAULT_BUCKETS`].
    pub fn observe(&self, name: &str, v: f64) {
        self.with_cell(name, || Cell::histogram(DEFAULT_BUCKETS), |c| c.observe(v));
    }

    /// Snapshot of histogram `name`.
    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        self.read_cell(name, Cell::histogram_snapshot)
    }

    /// Estimated `q`-quantile of histogram `name` (see
    /// [`HistogramSnapshot::quantile`]).
    pub fn quantile(&self, name: &str, q: f64) -> Option<f64> {
        self.histogram(name)?.quantile(q)
    }

    /// Names of all registered metrics, sorted.
    pub fn metric_names(&self) -> Vec<String> {
        self.inner
            .as_ref()
            .map(|i| i.metrics.lock().unwrap().keys().cloned().collect())
            .unwrap_or_default()
    }

    // ------------------------------------------------------------------
    // Events and the flight recorder.

    /// Emits a structured event stamped with the current virtual time.
    /// `fields` values convert from plain Rust types via
    /// `Into<Value>`.
    pub fn event(&self, kind: &str, round: Option<u64>, fields: Vec<(&str, Value)>) {
        if let Some(inner) = &self.inner {
            let vtime = f64::from_bits(inner.vtime_bits.load(Ordering::Relaxed));
            let fields = fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect();
            inner.log.lock().unwrap().push(vtime, round, kind, fields);
        }
    }

    /// Snapshots the flight-recorder ring into a [`FlightDump`]
    /// labeled `reason`. Called by the runtimes when a typed failure
    /// occurs; returns `true` when a dump was actually taken.
    pub fn crash_dump(&self, reason: &str) -> bool {
        if let Some(inner) = &self.inner {
            let vtime = f64::from_bits(inner.vtime_bits.load(Ordering::Relaxed));
            inner.log.lock().unwrap().dump(vtime, reason);
            true
        } else {
            false
        }
    }

    /// All crash dumps taken so far, in order.
    pub fn dumps(&self) -> Vec<FlightDump> {
        self.inner
            .as_ref()
            .map(|i| i.log.lock().unwrap().dumps().to_vec())
            .unwrap_or_default()
    }

    /// The full event log (bounded at [`EVENT_LOG_CAP`]).
    pub fn events(&self) -> Vec<Event> {
        self.inner
            .as_ref()
            .map(|i| i.log.lock().unwrap().all().to_vec())
            .unwrap_or_default()
    }

    /// The current flight-ring contents (the most recent
    /// [`FLIGHT_RING_CAP`] events), oldest first.
    pub fn recent_events(&self) -> Vec<Event> {
        self.inner
            .as_ref()
            .map(|i| i.log.lock().unwrap().ring().cloned().collect())
            .unwrap_or_default()
    }

    /// Events dropped from the full log after it hit
    /// [`EVENT_LOG_CAP`] (the flight ring keeps rotating regardless).
    pub fn dropped_events(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.log.lock().unwrap().dropped())
            .unwrap_or(0)
    }

    // ------------------------------------------------------------------
    // Exporters.

    /// Serializes the full event log as JSONL, crash dumps appended
    /// (each dump is a `flight.dump` header line followed by its
    /// captured events). Every line passes [`validate_jsonl`].
    pub fn events_jsonl(&self) -> String {
        let Some(inner) = &self.inner else {
            return String::new();
        };
        let log = inner.log.lock().unwrap();
        let mut out = String::new();
        for ev in log.all() {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        for dump in log.dumps() {
            out.push_str(&dump.to_jsonl());
        }
        out
    }

    /// Renders every registered metric in Prometheus text exposition
    /// format (names prefixed `saps_`, dots mapped to underscores).
    pub fn prometheus_text(&self) -> String {
        let Some(inner) = &self.inner else {
            return String::new();
        };
        let map = inner.metrics.lock().unwrap();
        let mut out = String::new();
        for (name, cell) in map.iter() {
            cell.render_prometheus(name, &mut out);
        }
        out
    }

    /// Writes [`Recorder::events_jsonl`] to `path`.
    pub fn write_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.events_jsonl())
    }

    /// Writes [`Recorder::prometheus_text`] to `path`.
    pub fn write_prometheus(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.prometheus_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let r = Recorder::disabled();
        r.add("c", 5);
        r.set_gauge("g", 1.0);
        r.observe("h", 1.0);
        r.event("round", Some(1), vec![("x", 1u64.into())]);
        assert!(!r.crash_dump("nope"));
        assert_eq!(r.counter("c"), None);
        assert_eq!(r.gauge("g"), None);
        assert!(r.histogram("h").is_none());
        assert!(r.events().is_empty());
        assert!(r.dumps().is_empty());
        assert_eq!(r.events_jsonl(), "");
        assert_eq!(r.prometheus_text(), "");
        assert!(!r.is_enabled());
        assert!(!Recorder::default().is_enabled());
    }

    #[test]
    fn counters_gauges_histograms_roundtrip() {
        let r = Recorder::new();
        r.add("wire.frames", 3);
        r.add("wire.frames", 2);
        assert_eq!(r.counter("wire.frames"), Some(5));

        r.set_gauge("train.loss", 0.75);
        assert_eq!(r.gauge("train.loss"), Some(0.75));
        r.max_gauge("net.peak_queue_bytes", 10.0);
        r.max_gauge("net.peak_queue_bytes", 4.0);
        assert_eq!(r.gauge("net.peak_queue_bytes"), Some(10.0));

        for v in [0.5, 1.5, 2.0, 8.0] {
            r.observe("round.total_s", v);
        }
        let h = r.histogram("round.total_s").unwrap();
        assert_eq!(h.count, 4);
        assert!((h.sum - 12.0).abs() < 1e-12);
        let p50 = h.quantile(0.5).unwrap();
        assert!(p50 > 0.5 && p50 <= 2.5, "p50 = {p50}");
        let p99 = h.quantile(0.99).unwrap();
        assert!(p99 > 2.5 && p99 <= 10.0, "p99 = {p99}");
        assert!(h.quantile(0.0).is_some());

        // Clones share the registry.
        let r2 = r.clone();
        r2.add("wire.frames", 1);
        assert_eq!(r.counter("wire.frames"), Some(6));

        // Mismatched accessor on an existing name is ignored, not a
        // panic.
        r.add("train.loss", 1);
        assert_eq!(r.gauge("train.loss"), Some(0.75));

        let names = r.metric_names();
        assert!(names.contains(&"wire.frames".to_string()));
        assert!(names.contains(&"round.total_s".to_string()));
    }

    #[test]
    fn events_are_vtime_stamped_and_sequenced() {
        let r = Recorder::new();
        r.set_vtime(1.5);
        r.event("round", Some(0), vec![("loss", 0.5.into())]);
        r.set_vtime(3.0);
        r.event(
            "byzantine.quarantine",
            Some(1),
            vec![("rank", 3u64.into()), ("detail", "bad checksum".into())],
        );
        let evs = r.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].seq, 0);
        assert_eq!(evs[0].vtime_s, 1.5);
        assert_eq!(evs[1].seq, 1);
        assert_eq!(evs[1].round, Some(1));
        assert_eq!(evs[1].field("rank").unwrap().as_u64(), Some(3));
        assert_eq!(
            evs[1].field("detail").unwrap().as_str(),
            Some("bad checksum")
        );
    }

    #[test]
    fn flight_ring_rotates_and_dumps_capture_the_trail() {
        let r = Recorder::new();
        for i in 0..(FLIGHT_RING_CAP as u64 + 10) {
            r.event("round", Some(i), vec![]);
        }
        let ring = r.recent_events();
        assert_eq!(ring.len(), FLIGHT_RING_CAP);
        assert_eq!(ring[0].round, Some(10)); // oldest 10 rotated out
        assert!(r.crash_dump("stall"));
        let dumps = r.dumps();
        assert_eq!(dumps.len(), 1);
        assert_eq!(dumps[0].reason, "stall");
        assert_eq!(dumps[0].events.len(), FLIGHT_RING_CAP);
        assert_eq!(
            dumps[0].events.last().unwrap().round,
            Some(FLIGHT_RING_CAP as u64 + 9)
        );
    }

    #[test]
    fn event_log_caps_and_counts_drops() {
        let r = Recorder::new();
        for _ in 0..(EVENT_LOG_CAP + 7) {
            r.event("tick", None, vec![]);
        }
        assert_eq!(r.events().len(), EVENT_LOG_CAP);
        assert_eq!(r.dropped_events(), 7);
    }

    #[test]
    fn jsonl_export_validates_including_dumps_and_escapes() {
        let r = Recorder::new();
        r.set_vtime(0.25);
        r.event(
            "resync",
            Some(2),
            vec![
                ("rank", 4u64.into()),
                ("mode", "chunked \"fast\"\npath".into()),
                ("ratio", f64::NAN.into()),
                ("ok", true.into()),
                ("delta", Value::I64(-3)),
            ],
        );
        r.crash_dump("resync failed");
        let text = r.events_jsonl();
        let lines = validate_jsonl(&text).expect("exported JSONL must parse");
        // 1 event + 1 dump header + 1 captured event inside the dump.
        assert_eq!(lines, 3);
        assert!(text.contains("\"kind\": \"flight.dump\""));
        assert!(text.contains("null"), "NaN serializes as null");
    }

    #[test]
    fn prometheus_snapshot_has_all_three_types() {
        let r = Recorder::new();
        r.add("train.rounds", 12);
        r.set_gauge("wire.data_bytes", 1024.0);
        r.observe("serve.latency_ticks", 3.0);
        let text = r.prometheus_text();
        assert!(text.contains("# TYPE saps_train_rounds counter"));
        assert!(text.contains("saps_train_rounds 12"));
        assert!(text.contains("# TYPE saps_wire_data_bytes gauge"));
        assert!(text.contains("saps_wire_data_bytes 1024"));
        assert!(text.contains("# TYPE saps_serve_latency_ticks histogram"));
        assert!(text.contains("saps_serve_latency_ticks_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("saps_serve_latency_ticks_count 1"));
    }

    #[test]
    fn validate_jsonl_rejects_garbage() {
        assert!(validate_jsonl("{\"a\": 1}\n{\"b\": [1, 2, {\"c\": null}]}").is_ok());
        assert!(validate_jsonl("not json").is_err());
        assert!(
            validate_jsonl("[1, 2]").is_err(),
            "top level must be an object"
        );
        assert!(validate_jsonl("{\"a\": }").is_err());
        assert!(validate_jsonl("{\"a\": 1} trailing").is_err());
        assert!(validate_jsonl("{\"a\": \"unterminated}").is_err());
        assert_eq!(validate_jsonl("\n\n").unwrap(), 0);
    }

    #[test]
    fn vtime_is_never_wall_clock() {
        // The recorder only knows the time it is told: fresh recorder
        // reads 0.0, and stamps follow set_vtime exactly.
        let r = Recorder::new();
        assert_eq!(r.vtime(), 0.0);
        r.set_vtime(42.5);
        assert_eq!(r.vtime(), 42.5);
        r.event("round", None, vec![]);
        assert_eq!(r.events()[0].vtime_s, 42.5);
    }
}
