//! Disjoint-set forest with union by rank and path halving.

/// A union–find (disjoint-set) structure over `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Representative of `x`'s set (with path halving).
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were
    /// previously distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets remaining.
    pub fn component_count(&self) -> usize {
        self.components
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.component_count(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert_eq!(uf.component_count(), 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
    }

    #[test]
    fn chains_compress() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.component_count(), 1);
        assert!(uf.connected(0, 99));
    }
}
