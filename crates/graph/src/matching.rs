//! Maximum matching in general graphs — Edmonds' blossom algorithm.
//!
//! The paper (Section II-C) pairs workers each round by computing a maximum
//! matching on the filtered bandwidth graph `B*`, using "the blossom
//! algorithm \[33\] to solve the problem of maximum match in a general
//! graph. And by randomly starting from different node in a graph, we
//! implement the RandomlyMaxMatch function."
//!
//! [`maximum_matching`] is the deterministic O(V³) Edmonds implementation;
//! [`randomly_max_match`] shuffles the augmenting order with a caller
//! -provided RNG, reproducing the paper's randomized variant (different
//! rounds explore different maximum matchings, which is what makes every
//! PC edge reachable and keeps ρ < 1).

use crate::Graph;
use rand::seq::SliceRandom;
use rand::Rng;

/// A matching: a set of vertex-disjoint edges.
///
/// Stored both as `mate[v] -> Option<peer>` and as an edge list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matching {
    mate: Vec<Option<usize>>,
}

impl Matching {
    /// An empty matching over `n` vertices.
    pub fn empty(n: usize) -> Self {
        Matching {
            mate: vec![None; n],
        }
    }

    /// Builds a matching from an explicit edge list; panics if a vertex is
    /// repeated or out of range.
    pub fn from_pairs(n: usize, pairs: &[(usize, usize)]) -> Self {
        let mut m = Matching::empty(n);
        for &(u, v) in pairs {
            assert!(u < n && v < n && u != v, "invalid pair ({u}, {v})");
            assert!(
                m.mate[u].is_none() && m.mate[v].is_none(),
                "vertex repeated in matching"
            );
            m.mate[u] = Some(v);
            m.mate[v] = Some(u);
        }
        m
    }

    /// The peer matched to `v`, if any.
    pub fn mate(&self, v: usize) -> Option<usize> {
        self.mate[v]
    }

    /// Number of matched edges.
    pub fn len(&self) -> usize {
        self.mate.iter().flatten().count() / 2
    }

    /// Whether no edge is matched.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of vertices (matched or not).
    pub fn vertex_count(&self) -> usize {
        self.mate.len()
    }

    /// Matched edges as `(u, v)` pairs with `u < v`, sorted.
    pub fn pairs(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (u, m) in self.mate.iter().enumerate() {
            if let Some(v) = *m {
                if u < v {
                    out.push((u, v));
                }
            }
        }
        out
    }

    /// Vertices left unmatched.
    pub fn unmatched(&self) -> Vec<usize> {
        self.mate
            .iter()
            .enumerate()
            .filter(|(_, m)| m.is_none())
            .map(|(v, _)| v)
            .collect()
    }

    /// Whether all vertices are matched (a perfect matching).
    pub fn is_perfect(&self) -> bool {
        self.mate.iter().all(Option::is_some)
    }

    /// Adds all edges of `other` whose endpoints are unmatched here.
    /// Used for Algorithm 3's second pass (lines 6-9): after matching on
    /// the bandwidth-filtered graph, leftovers are matched "without
    /// considering bandwidth".
    pub fn absorb(&mut self, other: &Matching) {
        assert_eq!(self.mate.len(), other.mate.len());
        for (u, v) in other.pairs() {
            if self.mate[u].is_none() && self.mate[v].is_none() {
                self.mate[u] = Some(v);
                self.mate[v] = Some(u);
            }
        }
    }

    /// Validates the matching against a graph: every matched edge must
    /// exist in `g` and the mate relation must be symmetric.
    pub fn is_valid_for(&self, g: &Graph) -> bool {
        if self.mate.len() != g.len() {
            return false;
        }
        for (u, m) in self.mate.iter().enumerate() {
            if let Some(v) = *m {
                if v >= self.mate.len() || self.mate[v] != Some(u) || !g.has_edge(u, v) {
                    return false;
                }
            }
        }
        true
    }
}

/// Edmonds' blossom algorithm: maximum-cardinality matching in a general
/// graph, deterministic augmenting order `0..n`.
pub fn maximum_matching(g: &Graph) -> Matching {
    let order: Vec<usize> = (0..g.len()).collect();
    maximum_matching_with_order(g, &order)
}

/// The paper's `RandomlyMaxMatch`: Edmonds' algorithm with the augmenting
/// order shuffled by `rng`, so repeated calls explore different maximum
/// matchings of the same graph.
pub fn randomly_max_match<R: Rng>(g: &Graph, rng: &mut R) -> Matching {
    let mut order: Vec<usize> = (0..g.len()).collect();
    order.shuffle(rng);
    maximum_matching_with_order(g, &order)
}

/// Sharded `RandomlyMaxMatch`: the planning-cost escape hatch for
/// 1k–10k-worker rounds, where the monolithic O(V³) blossom pass is the
/// coordinator bottleneck.
///
/// The graph is first split into its connected components (the
/// bandwidth partitions of the filtered graph `B*` — no matching edge
/// can ever cross a component boundary, so this split is lossless);
/// components larger than `max_shard` are further cut into contiguous
/// chunks of at most `max_shard` vertices in sorted-vertex order. Each
/// shard is matched independently with [`randomly_max_match`] — same
/// RNG, shards processed in ascending order of their smallest vertex —
/// and the shard matchings are stitched into one global [`Matching`].
///
/// Guarantees:
/// * when no component is split (`max_shard` ≥ largest component), the
///   stitched matching has exactly the monolithic maximum cardinality
///   (per-shard matchings are maximum by Berge's theorem and components
///   are independent);
/// * when the whole graph fits in a single shard, the result is
///   **bit-identical** to `randomly_max_match(g, rng)` — same RNG
///   draws, same augmenting order, same matching;
/// * splitting an oversized component trades matching cardinality for
///   O(`max_shard`³) planning per shard — edges crossing a chunk
///   boundary are invisible to the matcher.
pub fn sharded_max_match<R: Rng>(g: &Graph, max_shard: usize, rng: &mut R) -> Matching {
    assert!(max_shard >= 2, "a shard needs at least 2 vertices to pair");
    let n = g.len();
    // Degenerate case first so it is *exactly* the monolithic call (the
    // induced-subgraph rebuild below preserves edges but not neighbour
    // order, which steers the blossom search).
    if n <= max_shard {
        return randomly_max_match(g, rng);
    }
    let mut out = Matching::empty(n);
    for comp in crate::connectivity::connected_components(g) {
        for chunk in comp.chunks(max_shard) {
            if chunk.len() < 2 {
                continue;
            }
            // Induced subgraph on the chunk, vertices relabelled to
            // 0..chunk.len() in sorted order.
            let mut sub = Graph::new(chunk.len());
            for (a, &u) in chunk.iter().enumerate() {
                for (b, &v) in chunk.iter().enumerate().skip(a + 1) {
                    if g.has_edge(u, v) {
                        sub.add_edge(a, b);
                    }
                }
            }
            for (a, b) in randomly_max_match(&sub, rng).pairs() {
                out.mate[chunk[a]] = Some(chunk[b]);
                out.mate[chunk[b]] = Some(chunk[a]);
            }
        }
    }
    out
}

/// Edmonds' algorithm with an explicit augmenting order. The resulting
/// matching is maximum regardless of order (Berge's theorem: a matching is
/// maximum iff it admits no augmenting path), but *which* maximum matching
/// is found depends on the order.
pub fn maximum_matching_with_order(g: &Graph, order: &[usize]) -> Matching {
    let n = g.len();
    assert_eq!(order.len(), n, "order must be a permutation of 0..n");
    let mut state = Blossom::new(g);
    for &v in order {
        if state.mate[v] == USIZE_NONE {
            state.augment_from(v);
        }
    }
    let mate = state
        .mate
        .iter()
        .map(|&m| if m == USIZE_NONE { None } else { Some(m) })
        .collect();
    Matching { mate }
}

/// Greedy maximum-*weight* matching: repeatedly picks the heaviest edge
/// with both endpoints free. A 1/2-approximation; used only as an
/// analysis/bench comparator for bandwidth matchings, never by the
/// algorithms themselves.
pub fn greedy_weight_matching(n: usize, weights: &[f64]) -> Matching {
    assert_eq!(weights.len(), n * n);
    let mut edges: Vec<(usize, usize, f64)> = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let w = weights[i * n + j].min(weights[j * n + i]);
            if w > 0.0 {
                edges.push((i, j, w));
            }
        }
    }
    edges.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap().then(a.0.cmp(&b.0)));
    let mut m = Matching::empty(n);
    for (u, v, _) in edges {
        if m.mate[u].is_none() && m.mate[v].is_none() {
            m.mate[u] = Some(v);
            m.mate[v] = Some(u);
        }
    }
    m
}

/// Exhaustive maximum matching by branch and bound; exponential, for
/// cross-checking the blossom implementation in tests (n ≤ ~16).
pub fn brute_force_maximum_matching(g: &Graph) -> usize {
    fn rec(g: &Graph, v: usize, used: &mut [bool]) -> usize {
        let n = g.len();
        let mut v = v;
        while v < n && used[v] {
            v += 1;
        }
        if v >= n {
            return 0;
        }
        // Option 1: leave v unmatched.
        let mut best = rec(g, v + 1, used);
        // Option 2: match v with a free neighbour.
        used[v] = true;
        for &u in g.neighbors(v) {
            if !used[u] {
                used[u] = true;
                best = best.max(1 + rec(g, v + 1, used));
                used[u] = false;
            }
        }
        used[v] = false;
        best
    }
    let mut used = vec![false; g.len()];
    rec(g, 0, &mut used)
}

const USIZE_NONE: usize = usize::MAX;

/// Internal state of the O(V³) blossom algorithm (array-based formulation:
/// `mate`, `parent` pointers, blossom `base` contraction, BFS queue).
struct Blossom<'g> {
    g: &'g Graph,
    mate: Vec<usize>,
    parent: Vec<usize>,
    base: Vec<usize>,
    in_queue: Vec<bool>,
    in_blossom: Vec<bool>,
}

impl<'g> Blossom<'g> {
    fn new(g: &'g Graph) -> Self {
        let n = g.len();
        Blossom {
            g,
            mate: vec![USIZE_NONE; n],
            parent: vec![USIZE_NONE; n],
            base: (0..n).collect(),
            in_queue: vec![false; n],
            in_blossom: vec![false; n],
        }
    }

    /// Lowest common ancestor of blossom bases of `a` and `b` in the
    /// alternating forest.
    fn lca(&self, mut a: usize, mut b: usize) -> usize {
        let n = self.g.len();
        let mut visited = vec![false; n];
        loop {
            a = self.base[a];
            visited[a] = true;
            if self.mate[a] == USIZE_NONE {
                break;
            }
            a = self.parent[self.mate[a]];
        }
        loop {
            b = self.base[b];
            if visited[b] {
                return b;
            }
            b = self.parent[self.mate[b]];
        }
    }

    /// Marks the blossom path from `v` up to base `b`, re-rooting parent
    /// pointers through `child`.
    fn mark_path(&mut self, mut v: usize, b: usize, mut child: usize, queue: &mut Vec<usize>) {
        while self.base[v] != b {
            self.in_blossom[self.base[v]] = true;
            self.in_blossom[self.base[self.mate[v]]] = true;
            self.parent[v] = child;
            child = self.mate[v];
            if !self.in_queue[self.mate[v]] {
                self.in_queue[self.mate[v]] = true;
                queue.push(self.mate[v]);
            }
            v = self.parent[self.mate[v]];
        }
    }

    /// Contracts the blossom formed by edge `(u, v)` with LCA `b`.
    fn contract(&mut self, u: usize, v: usize, queue: &mut Vec<usize>) {
        let n = self.g.len();
        let b = self.lca(u, v);
        self.in_blossom.iter_mut().for_each(|x| *x = false);
        self.mark_path(u, b, v, queue);
        self.mark_path(v, b, u, queue);
        for i in 0..n {
            if self.in_blossom[self.base[i]] {
                self.base[i] = b;
                if !self.in_queue[i] {
                    self.in_queue[i] = true;
                    queue.push(i);
                }
            }
        }
    }

    /// BFS from free vertex `root` looking for an augmenting path; flips
    /// it if found. Returns whether an augmentation happened.
    fn augment_from(&mut self, root: usize) -> bool {
        let n = self.g.len();
        self.parent.iter_mut().for_each(|x| *x = USIZE_NONE);
        self.in_queue.iter_mut().for_each(|x| *x = false);
        for i in 0..n {
            self.base[i] = i;
        }
        let mut queue = vec![root];
        self.in_queue[root] = true;
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            for vi in 0..self.g.neighbors(u).len() {
                let v = self.g.neighbors(u)[vi];
                if self.base[u] == self.base[v] || self.mate[u] == v {
                    continue;
                }
                if v == root
                    || (self.mate[v] != USIZE_NONE && self.parent[self.mate[v]] != USIZE_NONE)
                {
                    // Odd cycle: contract the blossom.
                    self.contract(u, v, &mut queue);
                } else if self.parent[v] == USIZE_NONE {
                    self.parent[v] = u;
                    if self.mate[v] == USIZE_NONE {
                        // Augmenting path found: flip along parents.
                        self.flip(v);
                        return true;
                    }
                    let mv = self.mate[v];
                    if !self.in_queue[mv] {
                        self.in_queue[mv] = true;
                        queue.push(mv);
                    }
                }
            }
        }
        false
    }

    /// Flips matched/unmatched edges along the alternating path ending at
    /// free vertex `v`.
    fn flip(&mut self, mut v: usize) {
        while v != USIZE_NONE {
            let pv = self.parent[v];
            let ppv = self.mate[pv];
            self.mate[v] = pv;
            self.mate[pv] = v;
            v = ppv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn complete(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                g.add_edge(i, j);
            }
        }
        g
    }

    fn random_graph(n: usize, p: f64, seed: u64) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = Graph::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen_bool(p) {
                    g.add_edge(i, j);
                }
            }
        }
        g
    }

    use rand::Rng;

    #[test]
    fn perfect_matching_on_complete_even() {
        for n in [2, 4, 8, 16, 32] {
            let m = maximum_matching(&complete(n));
            assert_eq!(m.len(), n / 2);
            assert!(m.is_perfect());
            assert!(m.is_valid_for(&complete(n)));
        }
    }

    #[test]
    fn odd_complete_leaves_one_unmatched() {
        let g = complete(7);
        let m = maximum_matching(&g);
        assert_eq!(m.len(), 3);
        assert_eq!(m.unmatched().len(), 1);
    }

    #[test]
    fn petersen_graph_has_perfect_matching() {
        // The Petersen graph: outer 5-cycle, inner pentagram, spokes.
        let mut g = Graph::new(10);
        for i in 0..5 {
            g.add_edge(i, (i + 1) % 5); // outer cycle
            g.add_edge(5 + i, 5 + (i + 2) % 5); // pentagram
            g.add_edge(i, 5 + i); // spokes
        }
        let m = maximum_matching(&g);
        assert_eq!(m.len(), 5);
        assert!(m.is_valid_for(&g));
    }

    #[test]
    fn odd_cycle_blossom_case() {
        // Triangle with two pendants: 0-1-2-0, 3-0, 4-1. Max matching = 2
        // ... actually {(3,0),(4,1)} leaves 2 free -> plus nothing = 2;
        // but {(0,1),(2,?)}: 2 has no free peer -> 2. With blossom
        // handling, {(3,0),(4,1),(2,..)} -> 2 has only matched nbrs: 2.
        let mut g = Graph::new(5);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        g.add_edge(3, 0);
        g.add_edge(4, 1);
        let m = maximum_matching(&g);
        assert_eq!(m.len(), 2);
        assert_eq!(m.len(), brute_force_maximum_matching(&g));
    }

    #[test]
    fn classic_blossom_trap() {
        // Two triangles joined by a path — requires blossom contraction to
        // find the size-3 matching.
        // Triangle A: 0-1-2; Triangle B: 4-5-6; bridge 2-3, 3-4.
        let mut g = Graph::new(7);
        for (u, v) in [
            (0, 1),
            (1, 2),
            (2, 0),
            (4, 5),
            (5, 6),
            (6, 4),
            (2, 3),
            (3, 4),
        ] {
            g.add_edge(u, v);
        }
        let m = maximum_matching(&g);
        assert_eq!(m.len(), 3);
        assert_eq!(brute_force_maximum_matching(&g), 3);
    }

    #[test]
    fn empty_and_single_vertex() {
        assert_eq!(maximum_matching(&Graph::new(0)).len(), 0);
        assert_eq!(maximum_matching(&Graph::new(1)).len(), 0);
        assert_eq!(maximum_matching(&Graph::new(5)).len(), 0); // no edges
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        for seed in 0..30 {
            for &p in &[0.15, 0.3, 0.6] {
                let g = random_graph(11, p, seed);
                let m = maximum_matching(&g);
                assert!(m.is_valid_for(&g));
                assert_eq!(
                    m.len(),
                    brute_force_maximum_matching(&g),
                    "seed {seed} p {p}"
                );
            }
        }
    }

    #[test]
    fn randomly_max_match_is_still_maximum() {
        let mut rng = StdRng::seed_from_u64(99);
        for seed in 0..15 {
            let g = random_graph(12, 0.35, seed);
            let opt = brute_force_maximum_matching(&g);
            for _ in 0..5 {
                let m = randomly_max_match(&g, &mut rng);
                assert!(m.is_valid_for(&g));
                assert_eq!(m.len(), opt, "seed {seed}");
            }
        }
    }

    #[test]
    fn randomly_max_match_explores_different_matchings() {
        // On K4 there are 3 perfect matchings; with enough draws the
        // randomized variant must produce at least 2 distinct ones.
        let g = complete(4);
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..50 {
            seen.insert(randomly_max_match(&g, &mut rng).pairs());
        }
        assert!(seen.len() >= 2, "only saw {} matchings", seen.len());
    }

    #[test]
    fn greedy_weight_matching_prefers_heavy_edges() {
        // 4 vertices; edge (0,1) weight 10, (2,3) weight 9, (1,2) weight 8.
        let n = 4;
        let mut w = vec![0.0; n * n];
        let set = |i: usize, j: usize, v: f64, w: &mut Vec<f64>| {
            w[i * n + j] = v;
            w[j * n + i] = v;
        };
        set(0, 1, 10.0, &mut w);
        set(2, 3, 9.0, &mut w);
        set(1, 2, 8.0, &mut w);
        let m = greedy_weight_matching(n, &w);
        assert_eq!(m.pairs(), vec![(0, 1), (2, 3)]);
    }

    #[test]
    fn absorb_only_takes_free_vertices() {
        let mut a = Matching::from_pairs(4, &[(0, 1)]);
        let b = Matching::from_pairs(4, &[(1, 2)]);
        // b matches (1,2); 1 is taken in a, so absorb adds nothing.
        a.absorb(&b);
        assert_eq!(a.pairs(), vec![(0, 1)]);
        let c = Matching::from_pairs(4, &[(2, 3)]);
        a.absorb(&c);
        assert_eq!(a.pairs(), vec![(0, 1), (2, 3)]);
    }

    #[test]
    fn from_pairs_round_trip() {
        let m = Matching::from_pairs(6, &[(0, 5), (1, 3)]);
        assert_eq!(m.mate(0), Some(5));
        assert_eq!(m.mate(5), Some(0));
        assert_eq!(m.mate(2), None);
        assert_eq!(m.unmatched(), vec![2, 4]);
        assert!(!m.is_perfect());
        assert_eq!(m.vertex_count(), 6);
    }

    #[test]
    #[should_panic(expected = "vertex repeated")]
    fn from_pairs_rejects_repeats() {
        let _ = Matching::from_pairs(4, &[(0, 1), (1, 2)]);
    }

    #[test]
    fn sharded_is_bit_identical_when_the_graph_fits_one_shard() {
        for seed in 0..10 {
            let g = random_graph(12, 0.35, seed);
            let mut r1 = StdRng::seed_from_u64(seed ^ 0xabcd);
            let mut r2 = StdRng::seed_from_u64(seed ^ 0xabcd);
            let mono = randomly_max_match(&g, &mut r1);
            let shard = sharded_max_match(&g, 12, &mut r2);
            assert_eq!(mono.pairs(), shard.pairs(), "seed {seed}");
            // The RNGs advanced identically too.
            assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
        }
    }

    #[test]
    fn sharded_keeps_maximum_cardinality_when_components_fit() {
        // Three disjoint components of ≤ 6 vertices each; a shard
        // ceiling of 6 splits nothing, so the stitched matching must
        // have the monolithic maximum cardinality.
        let mut g = Graph::new(16);
        for i in 0..6 {
            for j in (i + 1)..6 {
                g.add_edge(i, j); // K6 on 0..6
            }
        }
        for (u, v) in [(6, 7), (7, 8), (8, 9), (9, 10), (10, 6)] {
            g.add_edge(u, v); // 5-cycle on 6..11
        }
        for (u, v) in [(11, 12), (12, 13), (13, 14), (14, 15)] {
            g.add_edge(u, v); // path on 11..16
        }
        let mut rng = StdRng::seed_from_u64(3);
        let m = sharded_max_match(&g, 6, &mut rng);
        assert!(m.is_valid_for(&g));
        assert_eq!(m.len(), maximum_matching(&g).len());
    }

    #[test]
    fn sharded_split_component_is_valid_and_never_crosses_chunks() {
        // One big component forcibly split: every matched edge must
        // still exist in the graph, and no pair may cross a chunk
        // boundary (chunks are contiguous runs of the sorted vertices).
        let g = complete(20);
        let mut rng = StdRng::seed_from_u64(7);
        let m = sharded_max_match(&g, 8, &mut rng);
        assert!(m.is_valid_for(&g));
        for (u, v) in m.pairs() {
            assert_eq!(u / 8, v / 8, "pair ({u}, {v}) crosses a chunk");
        }
        // Chunks of 8/8/4 over K20 still pair everyone within chunks.
        assert_eq!(m.len(), 10);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn sharded_rejects_degenerate_shard_size() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = sharded_max_match(&complete(4), 1, &mut rng);
    }

    #[test]
    fn larger_random_graphs_agree_with_bruteforce() {
        for seed in 100..110 {
            let g = random_graph(14, 0.25, seed);
            assert_eq!(maximum_matching(&g).len(), brute_force_maximum_matching(&g));
        }
    }
}
