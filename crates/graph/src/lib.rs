//! Graph algorithms for the SAPS-PSGD reproduction.
//!
//! Algorithm 3 of the paper ("GenerateGossipMatrix") needs, each round:
//!
//! * connectivity queries over the *recently connected* (RC) edge set
//!   (`IfConnected`, `FindConnectedSubgraph`);
//! * a **maximum matching in a general graph** — solved with Edmonds'
//!   blossom algorithm ([`matching::maximum_matching`]), randomized over
//!   vertex order to implement the paper's `RandomlyMaxMatch`;
//! * helpers to bridge connected sub-graphs (`GetOvertimeMatrix`) and to
//!   match leftovers ignoring bandwidth (`GetUnmatch`).
//!
//! The crate also provides the topologies the paper compares against:
//! the ring used by D-PSGD/DCD-PSGD and uniformly random matchings
//! (`RandomChoose` in Fig. 5).
//!
//! # Example
//!
//! ```
//! use saps_graph::{Graph, matching};
//!
//! // A triangle plus a pendant vertex: maximum matching has 2 edges.
//! let mut g = Graph::new(4);
//! g.add_edge(0, 1);
//! g.add_edge(1, 2);
//! g.add_edge(2, 0);
//! g.add_edge(2, 3);
//! let m = matching::maximum_matching(&g);
//! assert_eq!(m.len(), 2);
//! ```

#![warn(missing_docs)]

pub mod connectivity;
mod graph;
pub mod matching;
pub mod topology;
mod unionfind;

pub use graph::Graph;
pub use matching::Matching;
pub use unionfind::UnionFind;
