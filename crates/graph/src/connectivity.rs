//! Connectivity queries used by Algorithm 3 (`IfConnected`,
//! `FindConnectedSubgraph`) and by the PC-edge connectivity requirement of
//! Section II-C ("all possible communication edges should construct a
//! connected graph").

use crate::{Graph, UnionFind};

/// Whether the graph is connected (a single component covering every
/// vertex). The empty graph and the 1-vertex graph are connected.
pub fn is_connected(g: &Graph) -> bool {
    component_count(g) <= 1
}

/// Number of connected components.
pub fn component_count(g: &Graph) -> usize {
    let mut uf = UnionFind::new(g.len());
    for (u, v) in g.edges() {
        uf.union(u, v);
    }
    uf.component_count()
}

/// Connected components as sorted vertex lists, ordered by smallest member
/// (the paper's `FindConnectedSubgraph`).
pub fn connected_components(g: &Graph) -> Vec<Vec<usize>> {
    let n = g.len();
    let mut uf = UnionFind::new(n);
    for (u, v) in g.edges() {
        uf.union(u, v);
    }
    let mut by_root: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    // Iterating in vertex order keys each component by its smallest vertex
    // only if find() of the smallest vertex is used; use a canonical map.
    let mut canon: std::collections::HashMap<usize, usize> = Default::default();
    for v in 0..n {
        let r = uf.find(v);
        let key = *canon.entry(r).or_insert(v);
        by_root.entry(key).or_default().push(v);
    }
    by_root.into_values().collect()
}

/// Component id per vertex (ids are dense, ordered by smallest member).
pub fn component_ids(g: &Graph) -> Vec<usize> {
    let comps = connected_components(g);
    let mut ids = vec![0usize; g.len()];
    for (ci, comp) in comps.iter().enumerate() {
        for &v in comp {
            ids[v] = ci;
        }
    }
    ids
}

/// Builds the "bridge" graph of Algorithm 3's `GetOvertimeMatrix` (lines
/// 15-19): all edges of `candidates` whose endpoints lie in *different*
/// components of `rc`. Matching over these edges reconnects the RC
/// sub-graphs.
pub fn bridge_graph(rc: &Graph, candidates: &Graph) -> Graph {
    assert_eq!(rc.len(), candidates.len());
    let ids = component_ids(rc);
    let mut out = Graph::new(rc.len());
    for (u, v) in candidates.edges() {
        if ids[u] != ids[v] {
            out.add_edge(u, v);
        }
    }
    out
}

/// BFS distances from `src` (`usize::MAX` marks unreachable vertices).
pub fn bfs_distances(g: &Graph, src: usize) -> Vec<usize> {
    let n = g.len();
    let mut dist = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    dist[src] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        for &v in g.neighbors(u) {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Diameter of a connected graph; `None` if disconnected or empty.
pub fn diameter(g: &Graph) -> Option<usize> {
    if g.is_empty() || !is_connected(g) {
        return None;
    }
    let mut best = 0;
    for v in 0..g.len() {
        let d = bfs_distances(g, v);
        best = best.max(*d.iter().max().unwrap());
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 1..n {
            g.add_edge(i - 1, i);
        }
        g
    }

    #[test]
    fn path_is_connected() {
        assert!(is_connected(&path(5)));
        assert_eq!(component_count(&path(5)), 1);
        assert_eq!(diameter(&path(5)), Some(4));
    }

    #[test]
    fn two_components() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        assert!(!is_connected(&g));
        assert_eq!(component_count(&g), 2);
        assert_eq!(connected_components(&g), vec![vec![0, 1], vec![2, 3]]);
        assert_eq!(component_ids(&g), vec![0, 0, 1, 1]);
        assert_eq!(diameter(&g), None);
    }

    #[test]
    fn isolated_vertices_are_components() {
        let g = Graph::new(3);
        assert_eq!(component_count(&g), 3);
        assert_eq!(connected_components(&g), vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn bridge_graph_links_only_across_components() {
        // RC graph: {0,1} and {2,3}. Candidates: complete graph.
        let mut rc = Graph::new(4);
        rc.add_edge(0, 1);
        rc.add_edge(2, 3);
        let mut all = Graph::new(4);
        for i in 0..4 {
            for j in (i + 1)..4 {
                all.add_edge(i, j);
            }
        }
        let b = bridge_graph(&rc, &all);
        // Edges inside a component (0-1, 2-3) must be absent.
        assert!(!b.has_edge(0, 1));
        assert!(!b.has_edge(2, 3));
        // Cross edges present.
        assert!(b.has_edge(0, 2) && b.has_edge(0, 3) && b.has_edge(1, 2) && b.has_edge(1, 3));
    }

    #[test]
    fn bfs_distances_on_path() {
        let d = bfs_distances(&path(4), 0);
        assert_eq!(d, vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g = Graph::new(0);
        assert!(is_connected(&g));
        assert_eq!(diameter(&g), None);
    }
}
