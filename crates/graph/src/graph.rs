//! A simple undirected graph over vertices `0..n`.

/// An undirected simple graph stored as an adjacency matrix plus adjacency
/// lists (the sizes involved — tens of workers — make density irrelevant).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    adj_matrix: Vec<bool>,
    adj: Vec<Vec<usize>>,
}

impl Graph {
    /// Creates an edgeless graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        Graph {
            n,
            adj_matrix: vec![false; n * n],
            adj: vec![Vec::new(); n],
        }
    }

    /// Builds a graph from a symmetric boolean adjacency matrix given in
    /// row-major order. The diagonal is ignored. Entries are OR-ed with
    /// their transpose so an asymmetric input still yields an undirected
    /// graph.
    pub fn from_adjacency(n: usize, m: &[bool]) -> Self {
        assert_eq!(m.len(), n * n, "adjacency matrix must be n*n");
        let mut g = Graph::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                if m[i * n + j] || m[j * n + i] {
                    g.add_edge(i, j);
                }
            }
        }
        g
    }

    /// Builds the graph whose edges are pairs with `weight >= threshold`
    /// (the paper's `B* = [B_ij >= B_thres]`, Algorithm 1 lines 9-12).
    pub fn from_threshold(n: usize, weights: &[f64], threshold: f64) -> Self {
        assert_eq!(weights.len(), n * n, "weight matrix must be n*n");
        let mut g = Graph::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                // The paper symmetrizes with min(B_ij, B_ji): the slower
                // direction is the bottleneck.
                let w = weights[i * n + j].min(weights[j * n + i]);
                if w >= threshold {
                    g.add_edge(i, j);
                }
            }
        }
        g
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds the undirected edge `(u, v)`. Self-loops and duplicates are
    /// ignored.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(u < self.n && v < self.n, "vertex out of range");
        if u == v || self.adj_matrix[u * self.n + v] {
            return;
        }
        self.adj_matrix[u * self.n + v] = true;
        self.adj_matrix[v * self.n + u] = true;
        self.adj[u].push(v);
        self.adj[v].push(u);
    }

    /// Whether the undirected edge `(u, v)` exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj_matrix[u * self.n + v]
    }

    /// Neighbours of `u`.
    pub fn neighbors(&self, u: usize) -> &[usize] {
        &self.adj[u]
    }

    /// Degree of `u`.
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// All edges as `(u, v)` with `u < v`.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.edge_count());
        for u in 0..self.n {
            for &v in &self.adj[u] {
                if u < v {
                    out.push((u, v));
                }
            }
        }
        out
    }

    /// The union of this graph's edges with another's (same vertex count).
    pub fn union(&self, other: &Graph) -> Graph {
        assert_eq!(self.n, other.n, "union: vertex counts differ");
        let mut g = self.clone();
        for (u, v) in other.edges() {
            g.add_edge(u, v);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_edge_dedupes_and_skips_self_loops() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(2, 2);
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(2, 2));
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn from_threshold_uses_min_symmetrization() {
        // B[0][1] = 5 but B[1][0] = 1: bottleneck is 1, below threshold.
        let n = 2;
        let mut w = vec![0.0; n * n];
        w[1] = 5.0;
        w[2] = 1.0;
        let g = Graph::from_threshold(n, &w, 2.0);
        assert_eq!(g.edge_count(), 0);
        let g2 = Graph::from_threshold(n, &w, 1.0);
        assert_eq!(g2.edge_count(), 1);
    }

    #[test]
    fn from_adjacency_symmetrizes() {
        let n = 3;
        let mut m = vec![false; 9];
        m[1] = true; // 0 -> 1 only
        let g = Graph::from_adjacency(n, &m);
        assert!(g.has_edge(1, 0));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn edges_listing() {
        let mut g = Graph::new(4);
        g.add_edge(2, 0);
        g.add_edge(3, 1);
        let mut e = g.edges();
        e.sort();
        assert_eq!(e, vec![(0, 2), (1, 3)]);
    }

    #[test]
    fn union_combines_edges() {
        let mut a = Graph::new(3);
        a.add_edge(0, 1);
        let mut b = Graph::new(3);
        b.add_edge(1, 2);
        let u = a.union(&b);
        assert_eq!(u.edge_count(), 2);
        assert!(u.has_edge(0, 1) && u.has_edge(1, 2));
    }
}
