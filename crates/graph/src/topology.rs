//! Communication topologies the paper compares against.
//!
//! * the **ring** used by D-PSGD / DCD-PSGD (Section IV-D fixes the order
//!   `1 → 2 → … → 32 → 1`);
//! * **uniformly random perfect matchings** — the `RandomChoose` strategy
//!   of Fig. 5;
//! * a complete graph helper for PSGD-style all-to-all analyses.

use crate::{matching, Graph, Matching};
use rand::seq::SliceRandom;
use rand::Rng;

/// The fixed ring `0 → 1 → … → n-1 → 0` as a graph.
pub fn ring(n: usize) -> Graph {
    let mut g = Graph::new(n);
    if n >= 2 {
        for i in 0..n {
            g.add_edge(i, (i + 1) % n);
        }
    }
    g
}

/// Ring edges in order: `(0,1), (1,2), …, (n-1,0)`.
pub fn ring_edges(n: usize) -> Vec<(usize, usize)> {
    let all: Vec<usize> = (0..n).collect();
    ring_edges_over(&all)
}

/// The ring closed over an explicit vertex list, in list order — the
/// D-PSGD/DCD-PSGD topology when churn has shrunk the live fleet.
/// Returns `(ranks[i], ranks[i+1 mod m])` successor edges.
pub fn ring_edges_over(ranks: &[usize]) -> Vec<(usize, usize)> {
    let m = ranks.len();
    if m < 2 {
        return Vec::new();
    }
    if m == 2 {
        return vec![(ranks[0], ranks[1])];
    }
    (0..m).map(|i| (ranks[i], ranks[(i + 1) % m])).collect()
}

/// The complete graph on `n` vertices.
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            g.add_edge(i, j);
        }
    }
    g
}

/// A uniformly random perfect matching on `0..n` (n must be even): the
/// `RandomChoose` peer-selection baseline of Fig. 5. Pairs a random
/// shuffle `(v0,v1), (v2,v3), …`.
pub fn random_perfect_matching<R: Rng>(n: usize, rng: &mut R) -> Matching {
    assert!(
        n.is_multiple_of(2),
        "a perfect matching needs an even vertex count"
    );
    let mut perm: Vec<usize> = (0..n).collect();
    perm.shuffle(rng);
    let pairs: Vec<(usize, usize)> = perm.chunks(2).map(|c| (c[0], c[1])).collect();
    Matching::from_pairs(n, &pairs)
}

/// A random maximum matching restricted to the edges of `g` (used when
/// "random" selection must still respect connectivity constraints).
pub fn random_matching_in<R: Rng>(g: &Graph, rng: &mut R) -> Matching {
    matching::randomly_max_match(g, rng)
}

/// Average link weight of a matching under a (possibly asymmetric) weight
/// matrix, symmetrized with `min` per the paper's bottleneck rule.
/// Returns 0 for an empty matching.
pub fn matching_avg_weight(m: &Matching, n: usize, weights: &[f64]) -> f64 {
    assert_eq!(weights.len(), n * n);
    let pairs = m.pairs();
    if pairs.is_empty() {
        return 0.0;
    }
    let total: f64 = pairs
        .iter()
        .map(|&(u, v)| weights[u * n + v].min(weights[v * n + u]))
        .sum();
    total / pairs.len() as f64
}

/// Minimum (bottleneck) link weight across a set of edges; `f64::INFINITY`
/// for an empty set. The round time of a synchronous exchange is governed
/// by this link.
pub fn edges_min_weight(edges: &[(usize, usize)], n: usize, weights: &[f64]) -> f64 {
    edges
        .iter()
        .map(|&(u, v)| weights[u * n + v].min(weights[v * n + u]))
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ring_structure() {
        let g = ring(5);
        assert_eq!(g.edge_count(), 5);
        for i in 0..5 {
            assert_eq!(g.degree(i), 2);
        }
        assert_eq!(ring_edges(5).len(), 5);
        assert_eq!(ring_edges(2), vec![(0, 1)]);
        assert!(ring_edges(1).is_empty());
    }

    #[test]
    fn complete_edge_count() {
        assert_eq!(complete(6).edge_count(), 15);
    }

    #[test]
    fn random_perfect_matching_is_perfect() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let m = random_perfect_matching(8, &mut rng);
            assert!(m.is_perfect());
            assert_eq!(m.len(), 4);
        }
    }

    #[test]
    fn random_perfect_matching_is_roughly_uniform() {
        // On 4 vertices there are 3 perfect matchings; each should appear
        // with frequency ~1/3.
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = std::collections::HashMap::new();
        let trials = 3000;
        for _ in 0..trials {
            *counts
                .entry(random_perfect_matching(4, &mut rng).pairs())
                .or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 3);
        for (_, c) in counts {
            let f = c as f64 / trials as f64;
            assert!((f - 1.0 / 3.0).abs() < 0.05, "frequency {f}");
        }
    }

    #[test]
    fn matching_avg_weight_uses_min_symmetrization() {
        let n = 2;
        let mut w = vec![0.0; 4];
        w[1] = 10.0; // 0 -> 1
        w[2] = 4.0; // 1 -> 0
        let m = Matching::from_pairs(2, &[(0, 1)]);
        assert_eq!(matching_avg_weight(&m, n, &w), 4.0);
    }

    #[test]
    fn edges_min_weight_bottleneck() {
        let n = 3;
        let mut w = vec![0.0; 9];
        let set = |i: usize, j: usize, v: f64, w: &mut Vec<f64>| {
            w[i * n + j] = v;
            w[j * n + i] = v;
        };
        set(0, 1, 5.0, &mut w);
        set(1, 2, 2.0, &mut w);
        assert_eq!(edges_min_weight(&[(0, 1), (1, 2)], n, &w), 2.0);
        assert_eq!(edges_min_weight(&[], n, &w), f64::INFINITY);
    }

    #[test]
    fn empty_matching_avg_weight_is_zero() {
        let m = Matching::empty(4);
        assert_eq!(matching_avg_weight(&m, 4, &[1.0; 16]), 0.0);
    }
}
