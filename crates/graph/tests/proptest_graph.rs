//! Property tests for the graph substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use saps_graph::{connectivity, matching, topology, Graph, UnionFind};

fn random_graph(n: usize, density: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(density) {
                g.add_edge(i, j);
            }
        }
    }
    g
}

proptest! {
    #[test]
    fn blossom_equals_bruteforce(
        n in 2usize..12,
        density in 0.05f64..0.95,
        seed in any::<u64>(),
    ) {
        let g = random_graph(n, density, seed);
        let m = matching::maximum_matching(&g);
        prop_assert!(m.is_valid_for(&g));
        prop_assert_eq!(m.len(), matching::brute_force_maximum_matching(&g));
    }

    #[test]
    fn unionfind_agrees_with_bfs(
        n in 1usize..24,
        density in 0.0f64..0.6,
        seed in any::<u64>(),
    ) {
        let g = random_graph(n, density, seed);
        // Union-find connectivity (used by is_connected) must agree with
        // per-pair BFS reachability.
        let mut uf = UnionFind::new(n);
        for (u, v) in g.edges() {
            uf.union(u, v);
        }
        for src in 0..n {
            let dist = connectivity::bfs_distances(&g, src);
            for (dst, &d) in dist.iter().enumerate() {
                prop_assert_eq!(
                    d != usize::MAX,
                    uf.connected(src, dst),
                    "pair ({}, {})", src, dst
                );
            }
        }
    }

    #[test]
    fn components_partition_vertices(
        n in 1usize..24,
        density in 0.0f64..0.6,
        seed in any::<u64>(),
    ) {
        let g = random_graph(n, density, seed);
        let comps = connectivity::connected_components(&g);
        let total: usize = comps.iter().map(Vec::len).sum();
        prop_assert_eq!(total, n);
        let mut seen = std::collections::HashSet::new();
        for comp in &comps {
            for &v in comp {
                prop_assert!(seen.insert(v), "vertex {} in two components", v);
            }
        }
        prop_assert_eq!(comps.len(), connectivity::component_count(&g));
    }

    #[test]
    fn bridge_graph_reconnects(
        n in 2usize..16,
        seed in any::<u64>(),
    ) {
        // Any disconnected RC graph + complete candidate graph: the
        // union of RC and one bridge matching must have fewer components.
        let rc = random_graph(n, 0.1, seed);
        if connectivity::is_connected(&rc) {
            return Ok(()); // nothing to bridge
        }
        let bridges = connectivity::bridge_graph(&rc, &topology::complete(n));
        prop_assert!(bridges.edge_count() > 0);
        let m = matching::maximum_matching(&bridges);
        prop_assert!(!m.is_empty());
        let mut merged = rc.clone();
        for (u, v) in m.pairs() {
            merged.add_edge(u, v);
        }
        prop_assert!(
            connectivity::component_count(&merged) < connectivity::component_count(&rc)
        );
    }

    #[test]
    fn greedy_weight_matching_valid(
        n in 2usize..16,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut w = vec![0.0f64; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let v: f64 = rng.gen_range(0.0..10.0);
                w[i * n + j] = v;
                w[j * n + i] = v;
            }
        }
        let m = matching::greedy_weight_matching(n, &w);
        prop_assert!(m.is_valid_for(&topology::complete(n)));
        // Greedy achieves at least half the optimum weight — checked
        // against the trivially-computable max single edge bound:
        // total >= heaviest edge.
        let heaviest = w.iter().cloned().fold(0.0, f64::max);
        let total: f64 = m
            .pairs()
            .iter()
            .map(|&(a, b)| w[a * n + b])
            .sum();
        prop_assert!(total >= heaviest - 1e-12);
    }

    #[test]
    fn ring_has_n_edges_and_degree_two(n in 3usize..64) {
        let g = topology::ring(n);
        prop_assert_eq!(g.edge_count(), n);
        for v in 0..n {
            prop_assert_eq!(g.degree(v), 2);
        }
        prop_assert!(connectivity::is_connected(&g));
        prop_assert_eq!(connectivity::diameter(&g), Some(n / 2));
    }

    #[test]
    fn sharded_matching_preserves_cardinality_when_no_component_splits(
        n in 2usize..20,
        density in 0.05f64..0.6,
        seed in any::<u64>(),
    ) {
        // Shard ceiling at least the largest component: per-partition
        // planning stitched back together must reach the monolithic
        // maximum cardinality (and stay a valid matching).
        let g = random_graph(n, density, seed);
        let largest = connectivity::connected_components(&g)
            .iter()
            .map(Vec::len)
            .max()
            .unwrap_or(0)
            .max(2);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let m = matching::sharded_max_match(&g, largest, &mut rng);
        prop_assert!(m.is_valid_for(&g));
        prop_assert_eq!(m.len(), matching::maximum_matching(&g).len());
    }

    #[test]
    fn sharded_matching_degenerates_to_monolithic_on_a_single_shard(
        n in 2usize..16,
        density in 0.05f64..0.95,
        seed in any::<u64>(),
    ) {
        // Whole graph within one shard: bit-identical to the
        // monolithic randomized pass, RNG advanced identically.
        let g = random_graph(n, density, seed);
        let mut r1 = StdRng::seed_from_u64(seed ^ 0xf00d);
        let mut r2 = StdRng::seed_from_u64(seed ^ 0xf00d);
        let mono = matching::randomly_max_match(&g, &mut r1);
        let shard = matching::sharded_max_match(&g, n.max(2), &mut r2);
        prop_assert_eq!(mono.pairs(), shard.pairs());
        prop_assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
    }

    #[test]
    fn random_perfect_matching_covers_everyone(
        half in 1usize..16,
        seed in any::<u64>(),
    ) {
        let n = half * 2;
        let mut rng = StdRng::seed_from_u64(seed);
        let m = topology::random_perfect_matching(n, &mut rng);
        prop_assert!(m.is_perfect());
        prop_assert_eq!(m.len(), half);
        // mate is an involution without fixed points.
        for v in 0..n {
            let u = m.mate(v).unwrap();
            prop_assert!(u != v);
            prop_assert_eq!(m.mate(u), Some(v));
        }
    }
}
