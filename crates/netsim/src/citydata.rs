//! The 14-city inter-VM bandwidth measurements of Fig. 1.
//!
//! Transcribed from the paper: network speeds (Mbit/s) measured between
//! virtual machines of Alibaba Cloud and Amazon AWS located at 14 cities.
//! Row `i`, column `j` is the measured speed from city `i` to city `j`;
//! the diagonal (self-transfer) is not defined and stored as `NaN`, which
//! [`crate::BandwidthMatrix::from_mbits`] maps to 0.
//!
//! The paper's Fig. 5(a) 14-worker environment simulates its bandwidths
//! from exactly this matrix.

use crate::BandwidthMatrix;

/// Number of cities in the Fig. 1 measurement.
pub const NUM_CITIES: usize = 14;

/// City (VM location) names, in matrix order.
pub const CITY_NAMES: [&str; NUM_CITIES] = [
    "AliBeijing",
    "AliShanghai",
    "AliShenzhen",
    "AliZhangjiakou",
    "AmaColumbus",
    "AmaDublin",
    "AmaFrankfurtamMain",
    "AmaLondon",
    "AmaMontreal",
    "AmaMumbai",
    "AmaParis",
    "AmaPortland",
    "AmaSanFrancisco",
    "AmaSaoPaulo",
];

const NAN: f64 = f64::NAN;

/// The raw Fig. 1 matrix in Mbit/s, row-major.
#[rustfmt::skip]
pub const FIG1_MBITS: [f64; NUM_CITIES * NUM_CITIES] = [
    //  Bei   Sha   She   Zha   Col   Dub   Fra   Lon   Mon   Mum   Par   Por   SF    SaoP
    NAN,   1.3,  1.5,  1.2,  1.6,  1.6,  1.5,  1.6,  1.7,  1.4,  1.7,  1.5,  1.6,  1.5,
    1.3,   NAN,  1.5,  1.2,  1.5,  1.5,  1.5,  1.6,  1.5,  1.2,  1.5,  1.5,  1.4,  1.6,
    1.4,   1.3,  NAN,  1.3,  1.5,  1.6,  1.4,  1.7,  1.3,  1.6,  1.7,  1.4,  1.6,  1.4,
    1.2,   1.3,  1.4,  NAN,  1.5,  1.4,  1.5,  1.5,  1.5,  1.2,  1.5,  1.6,  1.6,  1.6,
    11.0,  2.2, 27.7,  6.8,  NAN, 82.5, 73.1, 82.2, 132.5, 49.1, 69.5, 84.8, 98.0, 57.4,
    6.8,   1.1, 20.2,  4.7, 82.6,  NAN, 129.2, 269.2, 78.3, 73.3, 147.1, 50.3, 54.4, 37.0,
    27.3,  1.1, 15.1, 21.8, 83.2, 184.8,  NAN, 331.2, 86.4, 76.8, 261.1, 62.4, 70.6, 42.3,
    0.2,  13.9, 27.6, 14.8, 60.8, 195.3, 276.2,  NAN, 63.3, 75.4, 323.1, 50.3, 62.6, 39.8,
    0.2,  16.9,  5.7,  1.1, 166.8, 83.9, 64.0, 61.6,  NAN, 40.7, 54.0, 80.4, 65.9, 39.1,
    36.2, 27.4,  1.7, 22.0, 37.5, 48.6, 54.7, 50.0, 35.8,  NAN, 45.0, 33.5, 39.0, 22.5,
    36.0,  0.6, 16.8, 21.1, 27.9, 115.1, 247.8, 317.4, 51.6, 47.5,  NAN, 48.1, 36.8, 24.4,
    15.6, 28.6, 10.6,  8.1, 94.8, 45.4, 43.8, 46.3, 70.4, 27.0, 45.8,  NAN, 172.9, 39.4,
    2.3,   3.9, 22.5,  5.7, 78.3, 45.6, 32.7, 34.5, 47.3, 23.2, 23.7, 134.5,  NAN, 31.2,
    0.1,  15.1,  8.2, 15.4, 41.8, 32.7, 39.9, 37.9, 59.6, 25.0, 38.4, 38.2, 39.9,  NAN,
];

/// The Fig. 1 environment as a symmetrized [`BandwidthMatrix`] in MB/s.
pub fn fig1_bandwidth() -> BandwidthMatrix {
    BandwidthMatrix::from_mbits(NUM_CITIES, &FIG1_MBITS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_dimensions() {
        assert_eq!(FIG1_MBITS.len(), NUM_CITIES * NUM_CITIES);
        assert_eq!(CITY_NAMES.len(), NUM_CITIES);
    }

    #[test]
    fn diagonal_is_nan_and_offdiagonal_positive() {
        for i in 0..NUM_CITIES {
            for j in 0..NUM_CITIES {
                let v = FIG1_MBITS[i * NUM_CITIES + j];
                if i == j {
                    assert!(v.is_nan());
                } else {
                    assert!(v > 0.0, "entry ({i},{j}) = {v}");
                }
            }
        }
    }

    #[test]
    fn symmetrized_matrix_uses_min_direction() {
        let b = fig1_bandwidth();
        // London -> Beijing is 0.2 Mbit/s, Beijing -> London 1.6:
        // bottleneck is 0.2 Mbit/s = 0.025 MB/s.
        let lon = 7;
        let bei = 0;
        assert!((b.get(lon, bei) - 0.2 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn intra_china_links_are_slow_inter_aws_fast() {
        // The paper's observation: Alibaba-China links sit ~1.5 Mbit/s
        // while intra-AWS links reach hundreds of Mbit/s.
        let b = fig1_bandwidth();
        let ali_pairs = [(0, 1), (0, 2), (1, 3)];
        for (i, j) in ali_pairs {
            assert!(b.get(i, j) < 0.25, "Ali pair ({i},{j})");
        }
        // Frankfurt <-> London is fast in both directions.
        assert!(b.get(6, 7) > 30.0);
    }

    #[test]
    fn fig1_graph_connected_at_low_threshold() {
        let b = fig1_bandwidth();
        let t = b.max_connecting_threshold();
        assert!(t > 0.0, "fig1 graph must be connectable");
    }
}
