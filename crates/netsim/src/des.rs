//! Round pricing: the closed-form analytic model vs the discrete-event
//! flow simulator, behind one [`TimeModel`] switch.
//!
//! Trainers describe *what* moved (a transfer set in one of the paper's
//! four communication patterns); a `TimeModel` decides *how long* it
//! took:
//!
//! * [`TimeModel::Analytic`] — the closed-form formulas of
//!   [`crate::timemodel`] (slowest-link max). Zero latency, no
//!   contention between pairs, no straggler overlap. This is the
//!   paper's own accounting and the default.
//! * [`TimeModel::EventDriven`] — each transfer becomes a flow in the
//!   [`crate::flows`] simulator: per-link latency, fair-share bandwidth
//!   splitting among concurrent flows on a link, and staggered flow
//!   releases when stragglers finish their local compute late.
//! * [`TimeModel::Packet`] — the same flow sets priced by the
//!   packet-level engine ([`crate::packet`]): per-flow AIMD congestion
//!   windows, finite link queues, seeded random loss and RTT. With an
//!   ideal [`PacketConfig`] (zero RTT, zero loss) it reproduces the
//!   event-driven prices bit-for-bit.
//!
//! All models price the *same* transfer set — switching the model can
//! change time and nothing else. For the peer-to-peer,
//! parameter-server and ring all-reduce (m ≥ 3) patterns the
//! event-driven model with zero latency reproduces the analytic
//! numbers exactly and latency/stragglers only add time. The sparse
//! allgather is the loose pattern: the analytic formula is deliberately
//! conservative (every chunk gated by the global bottleneck link), and
//! the simulated serialized-sender schedule usually prices under it,
//! never beyond 2× (duplex-direction collisions on a shared pair).
//! `crates/netsim/tests/proptest_des.rs` pins these relationships.
//!
//! Every pricing call returns a [`RoundTiming`] critical-path breakdown
//! (compute vs transfer vs idle), which the experiment driver surfaces
//! per round in `RunHistory`.

use crate::flows::{simulate, FlowSpec, SimConfig, SimReport};
use crate::packet::{simulate_packets, PacketConfig};
use crate::timemodel;
use crate::BandwidthMatrix;

/// How a round's communication time is computed from its transfer set.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[non_exhaustive]
pub enum TimeModel {
    /// Closed-form slowest-link formulas ([`crate::timemodel`]) — the
    /// paper's accounting and the default.
    #[default]
    Analytic,
    /// Discrete-event fluid simulation ([`crate::flows`]).
    EventDriven {
        /// One-way per-link latency in seconds (paid per transfer, or
        /// per step for multi-step collectives).
        latency: f64,
        /// Fair-share bandwidth splitting among concurrent flows on the
        /// same link. `false` idealizes links as uncontended.
        contention: bool,
    },
    /// Packet-level simulation ([`crate::packet`]): the event-driven
    /// flow sets priced with per-flow AIMD congestion windows, finite
    /// link queues, seeded random loss and round-trip latency.
    /// Contention is always on.
    Packet(PacketConfig),
}

impl TimeModel {
    /// An event-driven model with `latency` seconds per link and
    /// fair-share contention enabled.
    pub fn event_driven(latency: f64) -> Self {
        TimeModel::EventDriven {
            latency,
            contention: true,
        }
    }

    /// A packet-level model with the given link configuration.
    pub fn packet(cfg: PacketConfig) -> Self {
        TimeModel::Packet(cfg)
    }

    /// A short stable name for bench records: `"analytic"`, `"des"` or
    /// `"packet"`.
    pub fn label(&self) -> &'static str {
        match self {
            TimeModel::Analytic => "analytic",
            TimeModel::EventDriven { .. } => "des",
            TimeModel::Packet(_) => "packet",
        }
    }

    fn sim_config(&self) -> SimConfig {
        match *self {
            TimeModel::Analytic | TimeModel::Packet(_) => SimConfig::default(),
            TimeModel::EventDriven {
                latency,
                contention,
            } => SimConfig {
                latency_s: latency,
                contention,
            },
        }
    }

    /// Prices an already-built flow set through whichever simulator this
    /// model selects. Callers guarantee the model is not `Analytic`.
    fn run_flows(&self, bw: &BandwidthMatrix, flows: &[FlowSpec]) -> SimReport {
        match self {
            TimeModel::Analytic => unreachable!("analytic pricing never builds flows"),
            TimeModel::EventDriven { .. } => simulate(bw, &self.sim_config(), flows, &[]),
            TimeModel::Packet(cfg) => simulate_packets(bw, cfg, flows, &[]),
        }
    }
}

/// Critical-path breakdown of one synchronous round.
///
/// `total_s = compute_s + transfer_s`; `idle_s` is diagnostic (mean
/// seconds a worker spent neither computing nor transferring while the
/// round ran) and is not part of the identity.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RoundTiming {
    /// Wall-clock length of the whole round (compute + exchange).
    pub total_s: f64,
    /// When the last worker finished local compute (the compute phase's
    /// critical path; 0 when compute is not modeled).
    pub compute_s: f64,
    /// Time from the last compute finish to the last byte delivered —
    /// the round's communication time. With no compute modeling this is
    /// exactly the transfer makespan.
    pub transfer_s: f64,
    /// Mean per-worker idle time: round length minus the worker's own
    /// compute and the time it had at least one active transfer.
    pub idle_s: f64,
    /// Segments retransmitted while pricing this round
    /// ([`SimReport::retransmit_segments`]); 0 except under
    /// [`TimeModel::Packet`].
    pub retransmit_segments: u64,
    /// Deepest receiver queue observed while pricing this round
    /// ([`SimReport::peak_queue_bytes`], bytes); 0 except under
    /// [`TimeModel::Packet`].
    pub peak_queue_bytes: f64,
}

/// Per-rank compute-finish times. An empty slice means "all zero"
/// (compute not modeled); missing ranks read as 0. A `NaN` entry marks
/// a rank that sat the round out entirely (a departed worker): it never
/// gates a release or the compute barrier and is excluded from the
/// idle mean.
fn start_of(starts: &[f64], rank: usize) -> f64 {
    starts.get(rank).copied().unwrap_or(0.0)
}

fn max_start(starts: &[f64]) -> f64 {
    // `f64::max` ignores a NaN operand, so departed ranks drop out.
    starts.iter().copied().fold(0.0f64, f64::max)
}

/// Mean of `per_rank(r)` over the ranks participating in the round
/// (finite start), 0 when nobody participates.
fn idle_mean(n: usize, starts: &[f64], per_rank: impl Fn(usize, f64) -> f64) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for r in 0..n {
        let start = start_of(starts, r);
        if start.is_finite() {
            sum += per_rank(r, start);
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

/// Breakdown for the analytic model: the round barriers on the slowest
/// compute, then the closed-form transfer time; idle is the mean
/// barrier wait.
fn analytic_timing(n: usize, starts: &[f64], transfer_s: f64) -> RoundTiming {
    let compute_s = max_start(starts);
    RoundTiming {
        total_s: compute_s + transfer_s,
        compute_s,
        transfer_s,
        idle_s: idle_mean(n, starts, |_, start| compute_s - start),
        retransmit_segments: 0,
        peak_queue_bytes: 0.0,
    }
}

/// Breakdown from a simulator report: the round ends when the last flow
/// lands (but no earlier than the last compute finish).
fn des_timing(bw: &BandwidthMatrix, starts: &[f64], rep: &SimReport) -> RoundTiming {
    let compute_s = max_start(starts);
    let total_s = rep.makespan_s.max(compute_s);
    let idle_s = if !total_s.is_finite() {
        0.0
    } else {
        idle_mean(bw.len(), starts, |r, start| {
            (total_s - start - rep.busy_s[r]).max(0.0)
        })
    };
    RoundTiming {
        total_s,
        compute_s,
        transfer_s: total_s - compute_s,
        idle_s,
        retransmit_segments: rep.retransmit_segments,
        peak_queue_bytes: rep.peak_queue_bytes,
    }
}

impl TimeModel {
    /// Prices one round of concurrent pairwise transfers (the
    /// SAPS-PSGD / D-PSGD / DCD-PSGD / RandomChoose pattern).
    ///
    /// `transfers` lists `(src, dst, bytes)`; `starts` gives per-rank
    /// compute-finish times (empty = all zero). Each transfer is
    /// released once **both** endpoints finished computing (a pairwise
    /// exchange needs both parties).
    pub fn price_p2p(
        &self,
        bw: &BandwidthMatrix,
        transfers: &[(usize, usize, u64)],
        starts: &[f64],
    ) -> RoundTiming {
        match self {
            TimeModel::Analytic => {
                analytic_timing(bw.len(), starts, timemodel::p2p_round_time(bw, transfers))
            }
            TimeModel::EventDriven { .. } | TimeModel::Packet(_) => {
                let flows: Vec<FlowSpec> = transfers
                    .iter()
                    .map(|&(src, dst, bytes)| {
                        // `f64::max` drops NaN (departed-rank) starts;
                        // the trailing .max(0.0) keeps the release
                        // finite even if a caller lists a transfer
                        // between two departed ranks.
                        let release = start_of(starts, src).max(start_of(starts, dst)).max(0.0);
                        FlowSpec::new(src, dst, bytes as f64).released_at(release)
                    })
                    .collect();
                let rep = self.run_flows(bw, &flows);
                des_timing(bw, starts, &rep)
            }
        }
    }

    /// Prices one parameter-server round (FedAvg / S-FedAvg): each
    /// `(worker, up_bytes, down_bytes)` client moves its bytes over the
    /// worker↔server link, upload then download chained per client (the
    /// two directions of one client never overlap, matching the
    /// analytic `(up+down)/bw` rule). A client co-located with the
    /// server is free.
    pub fn price_ps(
        &self,
        bw: &BandwidthMatrix,
        server: usize,
        clients: &[(usize, u64, u64)],
        starts: &[f64],
    ) -> RoundTiming {
        match self {
            TimeModel::Analytic => analytic_timing(
                bw.len(),
                starts,
                timemodel::ps_round_time(bw, server, clients),
            ),
            TimeModel::EventDriven { .. } | TimeModel::Packet(_) => {
                let mut flows = Vec::with_capacity(2 * clients.len());
                for (chain, &(w, up, down)) in clients.iter().enumerate() {
                    if w == server {
                        continue;
                    }
                    let release = start_of(starts, w).max(start_of(starts, server)).max(0.0);
                    flows.push(
                        FlowSpec::new(w, server, up as f64)
                            .released_at(release)
                            .on_chain(chain),
                    );
                    flows.push(
                        FlowSpec::new(server, w, down as f64)
                            .released_at(release)
                            .on_chain(chain),
                    );
                }
                let rep = self.run_flows(bw, &flows);
                des_timing(bw, starts, &rep)
            }
        }
    }

    /// Prices a ring all-reduce over `ranks` in order (the PSGD
    /// pattern): `2(m−1)` steps, each moving a `1/(2(m−1))` chunk of
    /// `bytes_per_worker` over every ring link concurrently. In the
    /// event-driven model each ring link carries one flow of the full
    /// per-worker payload paying `2(m−1)` step latencies, released at
    /// the collective's barrier (the slowest compute). For `m = 2` the
    /// two ring directions share the single duplex pair under
    /// contention, pricing 2× the analytic formula.
    pub fn price_allreduce(
        &self,
        bw: &BandwidthMatrix,
        ranks: &[usize],
        bytes_per_worker: u64,
        starts: &[f64],
    ) -> RoundTiming {
        match self {
            TimeModel::Analytic => analytic_timing(
                bw.len(),
                starts,
                timemodel::allreduce_ring_time_over(bw, ranks, bytes_per_worker),
            ),
            TimeModel::EventDriven { .. } | TimeModel::Packet(_) => {
                let m = ranks.len();
                let barrier = max_start(starts);
                let mut flows = Vec::with_capacity(m);
                if m >= 2 {
                    let steps = 2 * (m as u32 - 1);
                    for i in 0..m {
                        flows.push(
                            FlowSpec::new(ranks[i], ranks[(i + 1) % m], bytes_per_worker as f64)
                                .released_at(barrier)
                                .with_latency_units(steps),
                        );
                    }
                }
                let rep = self.run_flows(bw, &flows);
                des_timing(bw, starts, &rep)
            }
        }
    }

    /// Prices a sparse allgather over `ranks` (the TopK-PSGD pattern):
    /// every worker delivers `bytes` to each of the other `m−1`. The
    /// analytic model conservatively gates all `m−1` chunks on the
    /// slowest mesh link; the event-driven model serializes each
    /// sender's `m−1` transfers on a chain (a node sends to one peer at
    /// a time) using the shifted schedule `k ↦ (i+k+1) mod m`, released
    /// at the collective's barrier. On heterogeneous meshes it usually
    /// prices *under* the analytic bound, and never beyond 2× of it
    /// (each pair carries exactly one transfer per direction, so fair
    /// sharing at worst halves a link).
    pub fn price_allgather(
        &self,
        bw: &BandwidthMatrix,
        ranks: &[usize],
        bytes: u64,
        starts: &[f64],
    ) -> RoundTiming {
        match self {
            TimeModel::Analytic => analytic_timing(
                bw.len(),
                starts,
                timemodel::allgather_time_over(bw, ranks, bytes),
            ),
            TimeModel::EventDriven { .. } | TimeModel::Packet(_) => {
                let m = ranks.len();
                let barrier = max_start(starts);
                let mut flows = Vec::with_capacity(m.saturating_sub(1) * m);
                if m >= 2 {
                    for i in 0..m {
                        for k in 0..(m - 1) {
                            let j = (i + k + 1) % m;
                            flows.push(
                                FlowSpec::new(ranks[i], ranks[j], bytes as f64)
                                    .released_at(barrier)
                                    .on_chain(i),
                            );
                        }
                    }
                }
                let rep = self.run_flows(bw, &flows);
                des_timing(bw, starts, &rep)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) {
        assert!(
            (a - b).abs() <= 1e-9 * b.abs().max(1.0),
            "expected {b}, got {a}"
        );
    }

    #[test]
    fn labels_and_default() {
        assert_eq!(TimeModel::default(), TimeModel::Analytic);
        assert_eq!(TimeModel::Analytic.label(), "analytic");
        assert_eq!(TimeModel::event_driven(0.01).label(), "des");
        assert_eq!(TimeModel::packet(PacketConfig::ideal()).label(), "packet");
    }

    #[test]
    fn ideal_packet_model_prices_like_zero_latency_des() {
        let mut bw = BandwidthMatrix::constant(4, 10.0);
        bw.set(2, 3, 1.0);
        let transfers = [
            (0usize, 1usize, 10_000_000u64),
            (1, 0, 10_000_000),
            (2, 3, 1_000_000),
            (3, 2, 1_000_000),
        ];
        let ranks = [0usize, 1, 2, 3];
        let clients = [(0usize, 1_000_000u64, 1_000_000u64), (1, 500_000, 500_000)];
        let des = TimeModel::event_driven(0.0);
        let pkt = TimeModel::packet(PacketConfig::ideal());
        approx(
            pkt.price_p2p(&bw, &transfers, &[]).transfer_s,
            des.price_p2p(&bw, &transfers, &[]).transfer_s,
        );
        approx(
            pkt.price_ps(&bw, 2, &clients, &[]).transfer_s,
            des.price_ps(&bw, 2, &clients, &[]).transfer_s,
        );
        approx(
            pkt.price_allreduce(&bw, &ranks, 8_000_000, &[]).transfer_s,
            des.price_allreduce(&bw, &ranks, 8_000_000, &[]).transfer_s,
        );
        approx(
            pkt.price_allgather(&bw, &ranks, 1_000_000, &[]).transfer_s,
            des.price_allgather(&bw, &ranks, 1_000_000, &[]).transfer_s,
        );
    }

    #[test]
    fn lossy_packet_model_only_adds_time() {
        let bw = BandwidthMatrix::constant(4, 1.0);
        let transfers = [(0usize, 1usize, 5_000_000u64), (2, 3, 5_000_000)];
        let clean = TimeModel::packet(PacketConfig::ideal());
        let rough = TimeModel::packet(
            PacketConfig::ideal()
                .with_loss(0.05)
                .with_rtt(0.02)
                .with_seed(3),
        );
        let c = clean.price_p2p(&bw, &transfers, &[]);
        let r = rough.price_p2p(&bw, &transfers, &[]);
        assert!(
            r.transfer_s > c.transfer_s,
            "loss + rtt must add time ({} vs {})",
            r.transfer_s,
            c.transfer_s
        );
    }

    #[test]
    fn p2p_zero_latency_matches_analytic() {
        let mut bw = BandwidthMatrix::constant(4, 10.0);
        bw.set(2, 3, 1.0);
        let transfers = [
            (0usize, 1usize, 10_000_000u64),
            (1, 0, 10_000_000),
            (2, 3, 1_000_000),
            (3, 2, 1_000_000),
        ];
        let a = TimeModel::Analytic.price_p2p(&bw, &transfers, &[]);
        let d = TimeModel::event_driven(0.0).price_p2p(&bw, &transfers, &[]);
        approx(d.transfer_s, a.transfer_s);
        approx(d.total_s, 2.0);
    }

    #[test]
    fn p2p_latency_adds_time() {
        let bw = BandwidthMatrix::constant(2, 1.0);
        let transfers = [(0usize, 1usize, 1_000_000u64)];
        let d = TimeModel::event_driven(0.5).price_p2p(&bw, &transfers, &[]);
        approx(d.total_s, 1.5);
    }

    #[test]
    fn straggler_staggers_releases_and_shows_in_breakdown() {
        let bw = BandwidthMatrix::constant(4, 1.0);
        // Pairs (0,1) and (2,3); worker 3 computes until t=2.
        let transfers = [
            (0usize, 1usize, 1_000_000u64),
            (1, 0, 1_000_000),
            (2, 3, 1_000_000),
            (3, 2, 1_000_000),
        ];
        let starts = [0.0, 0.0, 0.0, 2.0];
        let d = TimeModel::event_driven(0.0).price_p2p(&bw, &transfers, &starts);
        // Pair (0,1) finishes at 2.0; pair (2,3) runs from 2.0 to 4.0.
        approx(d.total_s, 4.0);
        approx(d.compute_s, 2.0);
        approx(d.transfer_s, 2.0);
        assert!(d.idle_s > 0.0);
        // The analytic model barriers: compute 2.0 + transfer 2.0.
        let a = TimeModel::Analytic.price_p2p(&bw, &transfers, &starts);
        approx(a.total_s, 4.0);
        approx(a.compute_s, 2.0);
    }

    #[test]
    fn ps_zero_latency_matches_analytic() {
        let mut bw = BandwidthMatrix::constant(3, 10.0);
        bw.set(0, 2, 1.0);
        let clients = [
            (0usize, 1_000_000u64, 1_000_000u64),
            (1, 1_000_000, 1_000_000),
        ];
        let a = TimeModel::Analytic.price_ps(&bw, 2, &clients, &[]);
        let d = TimeModel::event_driven(0.0).price_ps(&bw, 2, &clients, &[]);
        approx(d.transfer_s, a.transfer_s);
        approx(d.total_s, 2.0);
    }

    #[test]
    fn ps_colocated_client_is_free() {
        let bw = BandwidthMatrix::constant(2, 1.0);
        let d = TimeModel::event_driven(0.0).price_ps(&bw, 0, &[(0, 1_000_000, 1_000_000)], &[]);
        assert_eq!(d.total_s, 0.0);
    }

    #[test]
    fn allreduce_zero_latency_matches_analytic() {
        let mut bw = BandwidthMatrix::constant(4, 10.0);
        bw.set(1, 2, 2.0);
        let ranks = [0usize, 1, 2, 3];
        let a = TimeModel::Analytic.price_allreduce(&bw, &ranks, 8_000_000, &[]);
        let d = TimeModel::event_driven(0.0).price_allreduce(&bw, &ranks, 8_000_000, &[]);
        approx(d.transfer_s, a.transfer_s);
        approx(d.total_s, 4.0);
    }

    #[test]
    fn allreduce_pays_step_latencies() {
        let bw = BandwidthMatrix::constant(4, 1.0);
        let ranks = [0usize, 1, 2, 3];
        let zero = TimeModel::event_driven(0.0).price_allreduce(&bw, &ranks, 1_000_000, &[]);
        let lat = TimeModel::event_driven(0.1).price_allreduce(&bw, &ranks, 1_000_000, &[]);
        // 2(m-1) = 6 steps of 0.1 s latency on top.
        approx(lat.total_s - zero.total_s, 0.6);
    }

    #[test]
    fn allgather_constant_mesh_matches_analytic() {
        // On a homogeneous mesh the serialized-sender schedule hits the
        // analytic (m−1)·bytes/bw exactly.
        let bw = BandwidthMatrix::constant(5, 1.0);
        let ranks = [0usize, 1, 2, 3, 4];
        let a = TimeModel::Analytic.price_allgather(&bw, &ranks, 1_000_000, &[]);
        let d = TimeModel::event_driven(0.0).price_allgather(&bw, &ranks, 1_000_000, &[]);
        approx(d.transfer_s, a.transfer_s);
    }

    #[test]
    fn allgather_heterogeneous_mesh_undercuts_analytic() {
        let mut bw = BandwidthMatrix::constant(5, 10.0);
        bw.set(0, 1, 1.0);
        let ranks = [0usize, 1, 2, 3, 4];
        let a = TimeModel::Analytic.price_allgather(&bw, &ranks, 1_000_000, &[]);
        let d = TimeModel::event_driven(0.0).price_allgather(&bw, &ranks, 1_000_000, &[]);
        assert!(
            d.transfer_s <= a.transfer_s + 1e-9,
            "des {} > analytic {}",
            d.transfer_s,
            a.transfer_s
        );
    }

    #[test]
    fn degenerate_collectives_are_zero() {
        let bw = BandwidthMatrix::constant(1, 5.0);
        let d = TimeModel::event_driven(0.1);
        assert_eq!(d.price_allreduce(&bw, &[0], 100, &[]).total_s, 0.0);
        assert_eq!(d.price_allgather(&bw, &[0], 100, &[]).total_s, 0.0);
    }

    #[test]
    fn timing_identity_holds() {
        let bw = BandwidthMatrix::constant(3, 1.0);
        let starts = [0.5, 1.0, 0.0];
        for model in [TimeModel::Analytic, TimeModel::event_driven(0.02)] {
            let t = model.price_p2p(&bw, &[(0, 1, 500_000)], &starts);
            approx(t.total_s, t.compute_s + t.transfer_s);
        }
    }
}
