//! Packet-level extension of the fluid simulator: per-flow AIMD
//! congestion windows, finite per-link queues, seeded random loss and
//! round-trip latency.
//!
//! The fluid core ([`crate::flows`]) moves bytes at the fair-share rate
//! the instant a flow starts — an idealized transport with a perfect
//! congestion controller and loss-free links. Real WAN transfers ramp a
//! congestion window, queue behind other traffic, and retransmit lost
//! segments. This module prices the same [`FlowSpec`] sets under those
//! effects without simulating individual packets: each flow carries a
//! window-based AIMD controller and the engine advances the clock
//! event-to-event exactly like the fluid core, with three extra event
//! kinds (RTT ticks, random-loss crossings, congestion drops).
//!
//! **Transport model.** Every flow is its own connection with a
//! congestion window `cwnd` (bytes), initialized to
//! [`INIT_WINDOW_SEGMENTS`] segments. While active its send rate is
//!
//! ```text
//! rate = min(capacity / load, cwnd / rtt_eff)
//! ```
//!
//! where `capacity / load` is the fluid fair share of the flow's
//! unordered link pair and `rtt_eff = rtt + queue_bytes / capacity` adds
//! the queueing delay of the pair's standing buffer. Once per RTT the
//! window grows by one segment (additive increase) unless the pair's
//! aggregate window overran `BDP + queue` — then the queue overflowed,
//! one segment is retransmitted and the window halves (multiplicative
//! decrease, floored at one segment). Independently, every segment is
//! lost with probability [`PacketConfig::loss`]: loss distances are
//! drawn per flow from a geometric distribution using a seeded RNG, and
//! each loss costs one segment retransmission plus a window halving.
//!
//! **Degeneration contract.** With `rtt_s = 0` the window and queue
//! dynamics are disabled entirely — a zero-RTT connection is perfectly
//! ACK-clocked, so the controller tracks the fair share exactly — and
//! with `loss = 0` no retransmissions occur: an ideal
//! [`PacketConfig`] reproduces the fluid simulator bit-for-bit. Loss
//! and RTT only ever *add* time. `crates/netsim/tests/proptest_packet.rs`
//! pins both directions of this contract against
//! [`crate::flows::simulate`] on all four traffic patterns.
//!
//! **Cost.** The engine stays event-driven — no per-packet simulation —
//! but window ticks fire once per RTT per active flow, so a run costs
//! `O(flows · makespan / rtt_s)` events (plus one event per random
//! loss). Price long transfers over slow links with a proportionate
//! RTT, or with `rtt_s = 0` when only loss matters.
//!
//! **Determinism.** All randomness comes from per-flow RNGs seeded by
//! hashing `(cfg.seed, src, dst, bytes)` — never the flow's position in
//! the submission list — so a run is a pure function of its inputs and
//! the p2p makespan is invariant under permutation of the transfer
//! list, loss and all.

use crate::flows::{FlowOutcome, FlowSpec, RateUpdate, SimReport};
use crate::BandwidthMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Initial congestion window in segments (RFC 6928's IW10).
pub const INIT_WINDOW_SEGMENTS: u32 = 10;

/// Fraction of a flow's original bytes below which the remainder is
/// considered delivered (mirrors the fluid core's completion epsilon).
const COMPLETION_EPS: f64 = 1e-9;

/// Knobs of the packet-level link model, shared by every flow of a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacketConfig {
    /// Segment size in bytes (the retransmission and window-increment
    /// unit). Default 1500.
    pub mss: f64,
    /// Base round-trip time in seconds. `0` disables window and queue
    /// dynamics entirely (see the module docs' degeneration contract);
    /// flows pay `rtt_s / 2` of one-way latency per
    /// [`FlowSpec::latency_units`].
    pub rtt_s: f64,
    /// Per-segment random loss probability in `[0, 1)`. Each loss costs
    /// one segment retransmission and (at positive RTT) halves the
    /// flow's window.
    pub loss: f64,
    /// Per-link queue capacity in segments: how far the pair's
    /// aggregate window may overrun the bandwidth-delay product before
    /// ticks register congestion drops. Irrelevant at `rtt_s = 0`.
    pub queue_segments: u32,
    /// Seed for the per-flow loss RNGs.
    pub seed: u64,
}

impl Default for PacketConfig {
    fn default() -> Self {
        PacketConfig {
            mss: 1500.0,
            rtt_s: 0.0,
            loss: 0.0,
            queue_segments: 64,
            seed: 0,
        }
    }
}

impl PacketConfig {
    /// The ideal configuration: zero RTT, zero loss. By the
    /// degeneration contract this prices identically to the fluid
    /// simulator.
    pub fn ideal() -> Self {
        PacketConfig::default()
    }

    /// Sets the base RTT in seconds (builder style).
    pub fn with_rtt(mut self, rtt_s: f64) -> Self {
        self.rtt_s = rtt_s;
        self
    }

    /// Sets the per-segment loss probability (builder style).
    pub fn with_loss(mut self, loss: f64) -> Self {
        self.loss = loss;
        self
    }

    /// Sets the per-link queue capacity in segments (builder style).
    pub fn with_queue(mut self, segments: u32) -> Self {
        self.queue_segments = segments;
        self
    }

    /// Sets the loss-RNG seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the segment size in bytes (builder style).
    pub fn with_mss(mut self, mss: f64) -> Self {
        self.mss = mss;
        self
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum St {
    WaitChain,
    Latency { ready: f64 },
    Active,
    Done(f64),
}

/// Seeds a flow's loss RNG from its identity, not its list position:
/// FNV-1a over `(seed, src, dst, bytes)`.
fn flow_seed(seed: u64, f: &FlowSpec) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in [seed, f.src as u64, f.dst as u64, f.bytes.to_bits()] {
        h ^= w;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Draws the number of bytes this flow will send before its next random
/// segment loss (geometric with per-segment probability `loss`).
fn draw_loss_bytes(rng: &mut StdRng, loss: f64, mss: f64) -> f64 {
    if loss <= 0.0 {
        return f64::INFINITY;
    }
    let u: f64 = rng.gen(); // [0, 1)
                            // Continuous inversion of the geometric CDF; the lost segment is
                            // number floor(k)+1, counting from 1.
    let k = ((1.0 - u).ln() / (1.0 - loss).ln()).floor() + 1.0;
    k * mss
}

/// Aggregate state of one unordered link pair over an inter-event
/// interval.
#[derive(Debug, Clone, Copy)]
struct PairState {
    a: usize,
    b: usize,
    /// Number of active flows on the pair (fluid fair-share divisor).
    load: u32,
    /// Sum of the active flows' congestion windows (bytes).
    wnd: f64,
}

/// Runs the packet-level simulation of `flows` over `bw`, applying
/// `updates` (sorted by [`RateUpdate::at_s`]) as the clock passes them.
/// The report has the same shape and semantics as the fluid core's.
///
/// # Panics
///
/// Panics under the same input conditions as [`crate::flows::simulate`],
/// plus a non-finite/non-positive `mss`, negative or non-finite
/// `rtt_s`, or `loss` outside `[0, 1)`.
pub fn simulate_packets(
    bw: &BandwidthMatrix,
    cfg: &PacketConfig,
    flows: &[FlowSpec],
    updates: &[RateUpdate],
) -> SimReport {
    let n = bw.len();
    assert!(
        cfg.mss.is_finite() && cfg.mss > 0.0,
        "mss must be finite and positive"
    );
    assert!(
        cfg.rtt_s.is_finite() && cfg.rtt_s >= 0.0,
        "rtt must be finite and non-negative"
    );
    assert!(
        (0.0..1.0).contains(&cfg.loss),
        "loss probability must be in [0, 1)"
    );
    for f in flows {
        assert!(f.src < n && f.dst < n, "flow endpoint out of range");
        assert!(
            f.bytes.is_finite() && f.bytes >= 0.0,
            "flow bytes must be finite and non-negative"
        );
        assert!(
            f.release_s.is_finite() && f.release_s >= 0.0,
            "flow release must be finite and non-negative"
        );
    }
    for w in updates.windows(2) {
        assert!(w[0].at_s <= w[1].at_s, "rate updates must be sorted");
    }
    for u in updates {
        assert_eq!(u.bw.len(), n, "rate update matrix size mismatch");
        assert!(u.at_s.is_finite() && u.at_s >= 0.0);
    }

    let mut report = SimReport {
        makespan_s: 0.0,
        flows: vec![
            FlowOutcome {
                start_s: 0.0,
                finish_s: f64::INFINITY,
            };
            flows.len()
        ],
        busy_s: vec![0.0; n],
        retransmit_segments: 0,
        peak_queue_bytes: 0.0,
    };
    if flows.is_empty() {
        return report;
    }

    let windowed = cfg.rtt_s > 0.0;
    let one_way = cfg.rtt_s / 2.0;
    let queue_cap = f64::from(cfg.queue_segments) * cfg.mss;

    // Chain bookkeeping, identical to the fluid core.
    let mut chain_pred: Vec<Option<usize>> = vec![None; flows.len()];
    let mut chain_succ: Vec<Option<usize>> = vec![None; flows.len()];
    {
        let mut last_of_chain: Vec<(usize, usize)> = Vec::new();
        for (i, f) in flows.iter().enumerate() {
            if let Some(c) = f.chain {
                if let Some(entry) = last_of_chain.iter_mut().find(|(cc, _)| *cc == c) {
                    chain_pred[i] = Some(entry.1);
                    chain_succ[entry.1] = Some(i);
                    entry.1 = i;
                } else {
                    last_of_chain.push((c, i));
                }
            }
        }
    }

    let mut state: Vec<St> = flows
        .iter()
        .enumerate()
        .map(|(i, f)| {
            if chain_pred[i].is_some() {
                St::WaitChain
            } else {
                report.flows[i].start_s = f.release_s;
                St::Latency {
                    ready: f.release_s + one_way * f.latency_units as f64,
                }
            }
        })
        .collect();
    // `remaining` counts bytes still to deliver, retransmissions
    // included; it can grow past the original size under loss.
    let mut remaining: Vec<f64> = flows.iter().map(|f| f.bytes).collect();
    let eps: Vec<f64> = flows
        .iter()
        .map(|f| COMPLETION_EPS * f.bytes.max(1.0))
        .collect();
    let loss_eps = COMPLETION_EPS * cfg.mss;

    let mut cwnd: Vec<f64> = vec![f64::from(INIT_WINDOW_SEGMENTS) * cfg.mss; flows.len()];
    let mut next_tick: Vec<f64> = vec![f64::INFINITY; flows.len()];
    let mut rngs: Vec<StdRng> = flows
        .iter()
        .map(|f| StdRng::seed_from_u64(flow_seed(cfg.seed, f)))
        .collect();
    let mut to_loss: Vec<f64> = rngs
        .iter_mut()
        .map(|rng| draw_loss_bytes(rng, cfg.loss, cfg.mss))
        .collect();

    let mut current = bw.clone();
    let mut next_update = 0usize;
    let mut t = 0.0f64;
    let mut done = 0usize;

    macro_rules! complete {
        ($i:expr, $at:expr, $state:ident, $report:ident) => {{
            let i = $i;
            $state[i] = St::Done($at);
            $report.flows[i].finish_s = $at;
            done += 1;
            if let Some(s) = chain_succ[i] {
                let start = flows[s].release_s.max($at);
                $report.flows[s].start_s = start;
                $state[s] = St::Latency {
                    ready: start + one_way * flows[s].latency_units as f64,
                };
            }
        }};
    }

    while done < flows.len() {
        // Promote latency expiries, completing empty flows on the spot.
        // A freshly active flow schedules its first window tick one RTT
        // out.
        loop {
            let mut promoted = false;
            for i in 0..flows.len() {
                if let St::Latency { ready } = state[i] {
                    if ready <= t {
                        if remaining[i] <= eps[i] {
                            complete!(i, ready.max(t), state, report);
                        } else {
                            state[i] = St::Active;
                            if windowed {
                                next_tick[i] = t + cfg.rtt_s;
                            }
                        }
                        promoted = true;
                    }
                }
            }
            if !promoted {
                break;
            }
        }
        if done == flows.len() {
            break;
        }

        // Per-pair aggregates over the active set: fluid load plus (at
        // positive RTT) the summed windows that determine queueing.
        let mut pairs: Vec<PairState> = Vec::new();
        for (i, f) in flows.iter().enumerate() {
            if matches!(state[i], St::Active) {
                let key = (f.src.min(f.dst), f.src.max(f.dst));
                match pairs.iter_mut().find(|p| (p.a, p.b) == key) {
                    Some(p) => {
                        p.load += 1;
                        p.wnd += cwnd[i];
                    }
                    None => pairs.push(PairState {
                        a: key.0,
                        b: key.1,
                        load: 1,
                        wnd: cwnd[i],
                    }),
                }
            }
        }
        let pair_of = |i: usize| -> PairState {
            let f = &flows[i];
            let key = (f.src.min(f.dst), f.src.max(f.dst));
            *pairs
                .iter()
                .find(|p| (p.a, p.b) == key)
                .expect("active flow has a pair entry")
        };
        // Send rate of active flow `i` over this interval: the fluid
        // fair share, additionally clamped to cwnd / rtt_eff when
        // window dynamics are on.
        let rate = |i: usize| -> f64 {
            let f = &flows[i];
            let cap = current.get(f.src, f.dst) * 1e6; // MB/s → bytes/s
            if cap <= 0.0 {
                return 0.0;
            }
            let p = pair_of(i);
            let share = cap / f64::from(p.load);
            if !windowed {
                return share;
            }
            let bdp = cfg.rtt_s * cap;
            let queue_bytes = (p.wnd - bdp).clamp(0.0, queue_cap);
            let rtt_eff = cfg.rtt_s + queue_bytes / cap;
            share.min(cwnd[i] / rtt_eff)
        };
        // Whether flow `i`'s pair overran BDP + queue this interval —
        // its next tick registers a congestion drop instead of growing.
        let congested = |i: usize| -> bool {
            let f = &flows[i];
            let cap = current.get(f.src, f.dst) * 1e6;
            if cap <= 0.0 {
                return false;
            }
            pair_of(i).wnd - cfg.rtt_s * cap > queue_cap + loss_eps
        };

        // Telemetry: the deepest receiver queue this interval, by the
        // same overrun formula `rate` prices (windows past BDP back up
        // in the queue, clamped at its capacity).
        if windowed {
            for (i, f) in flows.iter().enumerate() {
                if matches!(state[i], St::Active) {
                    let cap = current.get(f.src, f.dst) * 1e6;
                    if cap > 0.0 {
                        let q = (pair_of(i).wnd - cfg.rtt_s * cap).clamp(0.0, queue_cap);
                        if q > report.peak_queue_bytes {
                            report.peak_queue_bytes = q;
                        }
                    }
                }
            }
        }

        // Next event: completion, random-loss crossing, window tick,
        // latency expiry, or rate update. Starved flows (dead link)
        // schedule nothing — only a rate update can rescue them.
        let mut t_next = f64::INFINITY;
        for i in 0..flows.len() {
            match state[i] {
                St::Active => {
                    let r = rate(i);
                    if r > 0.0 {
                        t_next = t_next.min(t + remaining[i] / r);
                        if to_loss[i].is_finite() {
                            t_next = t_next.min(t + to_loss[i] / r);
                        }
                        if windowed {
                            t_next = t_next.min(next_tick[i]);
                        }
                    }
                }
                St::Latency { ready } => t_next = t_next.min(ready),
                _ => {}
            }
        }
        if next_update < updates.len() {
            t_next = t_next.min(updates[next_update].at_s.max(t));
        }
        if !t_next.is_finite() {
            report.makespan_s = f64::INFINITY;
            return report;
        }

        // Advance bytes (delivered and toward the next loss) and busy
        // clocks over [t, t_next].
        let dt = (t_next - t).max(0.0);
        if dt > 0.0 {
            let mut engaged = vec![false; n];
            for i in 0..flows.len() {
                if matches!(state[i], St::Active) {
                    let r = rate(i);
                    if r > 0.0 {
                        remaining[i] = (remaining[i] - r * dt).max(0.0);
                        if to_loss[i].is_finite() {
                            to_loss[i] = (to_loss[i] - r * dt).max(0.0);
                        }
                        engaged[flows[i].src] = true;
                        engaged[flows[i].dst] = true;
                    }
                }
            }
            for (b, e) in report.busy_s.iter_mut().zip(&engaged) {
                if *e {
                    *b += dt;
                }
            }
        }
        let stale_rate: Vec<f64> = (0..flows.len())
            .map(|i| {
                if matches!(state[i], St::Active) {
                    rate(i)
                } else {
                    0.0
                }
            })
            .collect();
        let stale_congested: Vec<bool> = (0..flows.len())
            .map(|i| matches!(state[i], St::Active) && congested(i))
            .collect();
        t = t_next;

        // Apply rate updates that have come due.
        while next_update < updates.len() && updates[next_update].at_s <= t {
            current = updates[next_update].bw.clone();
            next_update += 1;
        }

        // Handle the events that landed at `t`, in flow-index order.
        // Completion wins over a coincident loss (the last byte already
        // arrived); loss and tick may both fire.
        for i in 0..flows.len() {
            if !matches!(state[i], St::Active) {
                continue;
            }
            if remaining[i] <= eps[i] {
                complete!(i, t, state, report);
                continue;
            }
            if to_loss[i] <= loss_eps {
                remaining[i] += cfg.mss;
                report.retransmit_segments += 1;
                to_loss[i] = draw_loss_bytes(&mut rngs[i], cfg.loss, cfg.mss);
                if windowed {
                    cwnd[i] = (cwnd[i] / 2.0).max(cfg.mss);
                }
            }
            if windowed && next_tick[i] <= t && stale_rate[i] > 0.0 {
                if stale_congested[i] {
                    // Queue overflow: one segment retransmitted, window
                    // halved. The retransmission is capped at half the
                    // bytes the flow actually sent this RTT — a flow
                    // draining less than a segment per RTT cannot lose
                    // a full segment per RTT, and an uncapped charge
                    // would grow its debt faster than it drains on a
                    // heavily multiplexed slow link (a livelock: the
                    // flow never finishes and the event loop never
                    // runs out of ticks).
                    let sent = stale_rate[i] * cfg.rtt_s;
                    remaining[i] += cfg.mss.min(0.5 * sent);
                    report.retransmit_segments += 1;
                    cwnd[i] = (cwnd[i] / 2.0).max(cfg.mss);
                } else {
                    cwnd[i] += cfg.mss;
                }
                next_tick[i] = t + cfg.rtt_s;
            }
        }
    }

    report.makespan_s = report
        .flows
        .iter()
        .map(|f| f.finish_s)
        .fold(0.0f64, f64::max);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flows::{simulate, SimConfig};

    fn approx(a: f64, b: f64) {
        assert!(
            (a - b).abs() <= 1e-9 * b.abs().max(1.0),
            "expected {b}, got {a}"
        );
    }

    fn fluid(bw: &BandwidthMatrix, flows: &[FlowSpec]) -> SimReport {
        simulate(bw, &SimConfig::default(), flows, &[])
    }

    #[test]
    fn ideal_config_degenerates_to_fluid() {
        let bw = BandwidthMatrix::constant(4, 2.0);
        let flows = [
            FlowSpec::new(0, 1, 4e6),
            FlowSpec::new(1, 0, 1e6),
            FlowSpec::new(2, 3, 2e6).released_at(0.5),
            FlowSpec::new(3, 2, 2e6).on_chain(1),
            FlowSpec::new(2, 0, 1e6).on_chain(1),
        ];
        let f = fluid(&bw, &flows);
        let p = simulate_packets(&bw, &PacketConfig::ideal(), &flows, &[]);
        assert_eq!(f, p, "ideal packet run must equal the fluid run");
    }

    #[test]
    fn random_loss_adds_time_and_is_seeded() {
        let bw = BandwidthMatrix::constant(2, 1.0);
        let flows = [FlowSpec::new(0, 1, 3e6)];
        let clean = simulate_packets(&bw, &PacketConfig::ideal(), &flows, &[]);
        let lossy_cfg = PacketConfig::ideal().with_loss(0.2).with_seed(7);
        let lossy = simulate_packets(&bw, &lossy_cfg, &flows, &[]);
        assert!(
            lossy.makespan_s > clean.makespan_s,
            "20% loss must stretch a 2000-segment transfer ({} vs {})",
            lossy.makespan_s,
            clean.makespan_s
        );
        let again = simulate_packets(&bw, &lossy_cfg, &flows, &[]);
        assert_eq!(lossy, again, "same seed, same report");
        let other = simulate_packets(&bw, &lossy_cfg.with_seed(8), &flows, &[]);
        assert!(other.makespan_s.is_finite());
    }

    #[test]
    fn window_ramp_slows_the_start() {
        // 2 MB/s with 50 ms RTT: BDP is 100 kB ≈ 66 segments, the
        // window starts at 10 — the ramp (plus the one-way latency)
        // must show up on top of the fluid time.
        let bw = BandwidthMatrix::constant(2, 2.0);
        let flows = [FlowSpec::new(0, 1, 4e6)];
        let f = fluid(&bw, &flows);
        let p = simulate_packets(&bw, &PacketConfig::ideal().with_rtt(0.05), &flows, &[]);
        assert!(
            p.makespan_s > f.makespan_s + 0.025,
            "AIMD ramp priced {} vs fluid {}",
            p.makespan_s,
            f.makespan_s
        );
    }

    #[test]
    fn multiplexed_tiny_flows_on_a_slow_link_terminate() {
        // Dozens of sub-MSS flows (a serving plane's requests and
        // responses) share one slow link: every pair starts congested
        // (40 initial windows ≫ BDP + queue) and the fair share per
        // RTT is far below one segment. An uncapped per-tick
        // retransmission would grow each flow's debt faster than it
        // drains — the run would never terminate.
        let bw = BandwidthMatrix::constant(2, 0.05); // 50 kB/s
        let mut flows = Vec::new();
        for _ in 0..20 {
            flows.push(FlowSpec::new(0, 1, 95.0));
            flows.push(FlowSpec::new(1, 0, 63.0));
        }
        let cfg = PacketConfig::ideal().with_rtt(0.005).with_seed(7);
        let p = simulate_packets(&bw, &cfg, &flows, &[]);
        assert!(
            p.makespan_s.is_finite(),
            "sub-MSS flows must drain, not livelock"
        );
        let f = fluid(&bw, &flows);
        assert!(
            p.makespan_s >= f.makespan_s,
            "window dynamics never beat the fluid bound ({} vs {})",
            p.makespan_s,
            f.makespan_s
        );
    }

    #[test]
    fn shallow_queue_drops_and_still_finishes() {
        // Two big flows on one pair with a zero-segment queue: every
        // window overshoot registers a congestion drop; the transfer
        // still completes, slower than fluid.
        let bw = BandwidthMatrix::constant(2, 2.0);
        let flows = [FlowSpec::new(0, 1, 4e6), FlowSpec::new(1, 0, 4e6)];
        let f = fluid(&bw, &flows);
        let cfg = PacketConfig::ideal().with_rtt(0.02).with_queue(0);
        let p = simulate_packets(&bw, &cfg, &flows, &[]);
        assert!(p.makespan_s.is_finite());
        assert!(
            p.makespan_s > f.makespan_s,
            "congestion drops priced {} vs fluid {}",
            p.makespan_s,
            f.makespan_s
        );
        assert_eq!(p, simulate_packets(&bw, &cfg, &flows, &[]));
    }

    #[test]
    fn dead_link_without_update_is_infinite() {
        let bw = BandwidthMatrix::constant(2, 0.0);
        let rep = simulate_packets(
            &bw,
            &PacketConfig::ideal().with_rtt(0.01),
            &[FlowSpec::new(0, 1, 1e6)],
            &[],
        );
        assert!(rep.makespan_s.is_infinite());
    }

    #[test]
    fn rate_update_rescues_a_dead_link() {
        let bw = BandwidthMatrix::constant(2, 0.0);
        let rep = simulate_packets(
            &bw,
            &PacketConfig::ideal(),
            &[FlowSpec::new(0, 1, 1e6)],
            &[RateUpdate {
                at_s: 5.0,
                bw: BandwidthMatrix::constant(2, 1.0),
            }],
        );
        approx(rep.makespan_s, 6.0);
    }

    #[test]
    fn zero_byte_flow_finishes_at_its_latency() {
        let bw = BandwidthMatrix::constant(2, 1.0);
        let rep = simulate_packets(
            &bw,
            &PacketConfig::ideal().with_rtt(1.0),
            &[FlowSpec::new(0, 1, 0.0)],
            &[],
        );
        approx(rep.makespan_s, 0.5); // one latency unit = rtt/2
    }

    #[test]
    fn loss_distance_draw_is_geometric_shaped() {
        let mss = 1500.0;
        let mut rng = StdRng::seed_from_u64(1);
        assert!(draw_loss_bytes(&mut rng, 0.0, mss).is_infinite());
        let mut total = 0.0;
        let n = 20_000;
        for _ in 0..n {
            let d = draw_loss_bytes(&mut rng, 0.1, mss);
            assert!(d >= mss, "at least the lost segment itself is sent");
            total += d;
        }
        let mean_segments = total / n as f64 / mss;
        // Geometric(p = 0.1) has mean 10.
        assert!(
            (mean_segments - 10.0).abs() < 0.5,
            "mean loss distance {mean_segments} segments, expected ≈10"
        );
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn certain_loss_is_rejected() {
        let bw = BandwidthMatrix::constant(2, 1.0);
        simulate_packets(
            &bw,
            &PacketConfig::ideal().with_loss(1.0),
            &[FlowSpec::new(0, 1, 1.0)],
            &[],
        );
    }
}
