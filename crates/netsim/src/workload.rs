//! Request-arrival processes for the serving plane.
//!
//! Training rounds are driven by the experiment clock; *serving* load is
//! driven by users. This module models that load as a deterministic
//! arrival process: per tick, how many inference requests reach the
//! fleet. `saps-serve` drains each tick's arrivals through its replicas,
//! and the mixed-load benchmark prices the resulting transfers on the
//! same bandwidth matrix as the training round (see `docs/SERVING.md`).
//!
//! All processes are seeded and deterministic: the same seed yields the
//! same arrival sequence, so serving benchmarks are as reproducible as
//! training runs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The shape of a request-arrival process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Exactly `rate` requests per tick on average, spread evenly:
    /// fractional remainders accumulate and emit on the tick that rolls
    /// them over 1 (e.g. rate 2.5 → 2, 3, 2, 3, …).
    Constant {
        /// Mean requests per tick.
        rate: f64,
    },
    /// Poisson-distributed arrivals with mean `rate` per tick — bursty,
    /// like independent users.
    Poisson {
        /// Mean requests per tick (λ).
        rate: f64,
    },
    /// A Poisson process whose rate swings sinusoidally between
    /// `(1 - swing)·rate` and `(1 + swing)·rate` over `period` ticks —
    /// the diurnal load curve a global user base produces.
    Diurnal {
        /// Mean requests per tick at the midline.
        rate: f64,
        /// Relative swing amplitude in `[0, 1]`.
        swing: f64,
        /// Ticks per full cycle.
        period: u64,
    },
}

/// A deterministic stream of per-tick request counts.
///
/// # Example
///
/// ```
/// use saps_netsim::workload::{ArrivalProcess, RequestArrivals};
///
/// let mut a = RequestArrivals::new(ArrivalProcess::Poisson { rate: 8.0 }, 42);
/// let burst: usize = (0..100).map(|_| a.next_tick()).sum();
/// // Mean 8/tick: over 100 ticks the total concentrates near 800.
/// assert!(burst > 600 && burst < 1000);
/// let mut b = RequestArrivals::new(ArrivalProcess::Poisson { rate: 8.0 }, 42);
/// let again: usize = (0..100).map(|_| b.next_tick()).sum();
/// assert_eq!(burst, again); // same seed, same arrivals
/// ```
#[derive(Debug, Clone)]
pub struct RequestArrivals {
    process: ArrivalProcess,
    rng: StdRng,
    tick: u64,
    /// Fractional-request carry for the constant process.
    carry: f64,
}

impl RequestArrivals {
    /// Creates the arrival stream for `process`, seeded with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the process rate is negative or non-finite, if a
    /// diurnal swing is outside `[0, 1]`, or if a diurnal period is 0.
    pub fn new(process: ArrivalProcess, seed: u64) -> Self {
        let rate = match process {
            ArrivalProcess::Constant { rate } | ArrivalProcess::Poisson { rate } => rate,
            ArrivalProcess::Diurnal {
                rate,
                swing,
                period,
            } => {
                assert!((0.0..=1.0).contains(&swing), "swing must be in [0, 1]");
                assert!(period > 0, "period must be >= 1 tick");
                rate
            }
        };
        assert!(
            rate.is_finite() && rate >= 0.0,
            "rate must be finite and >= 0"
        );
        RequestArrivals {
            process,
            rng: StdRng::seed_from_u64(seed),
            tick: 0,
            carry: 0.0,
        }
    }

    /// The number of ticks drawn so far.
    pub fn ticks(&self) -> u64 {
        self.tick
    }

    /// Draws the next tick's request count.
    pub fn next_tick(&mut self) -> usize {
        let t = self.tick;
        self.tick += 1;
        match self.process {
            ArrivalProcess::Constant { rate } => {
                self.carry += rate;
                let whole = self.carry.floor();
                self.carry -= whole;
                whole as usize
            }
            ArrivalProcess::Poisson { rate } => self.poisson(rate),
            ArrivalProcess::Diurnal {
                rate,
                swing,
                period,
            } => {
                let phase = (t % period) as f64 / period as f64;
                let lambda = rate * (1.0 + swing * (phase * std::f64::consts::TAU).sin());
                self.poisson(lambda)
            }
        }
    }

    /// Knuth's product-of-uniforms Poisson sampler — exact for the small
    /// per-tick rates serving benchmarks use, and dependency-free.
    fn poisson(&mut self, lambda: f64) -> usize {
        if lambda <= 0.0 {
            return 0;
        }
        let limit = (-lambda).exp();
        let mut k = 0usize;
        let mut p = 1.0f64;
        loop {
            p *= self.rng.gen::<f64>();
            if p <= limit {
                return k;
            }
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_rate_spreads_fractions() {
        let mut a = RequestArrivals::new(ArrivalProcess::Constant { rate: 2.5 }, 0);
        let counts: Vec<usize> = (0..4).map(|_| a.next_tick()).collect();
        assert_eq!(counts, vec![2, 3, 2, 3]);
        assert_eq!(a.ticks(), 4);
    }

    #[test]
    fn poisson_mean_is_close_to_rate() {
        let mut a = RequestArrivals::new(ArrivalProcess::Poisson { rate: 4.0 }, 7);
        let total: usize = (0..2_000).map(|_| a.next_tick()).sum();
        let mean = total as f64 / 2_000.0;
        assert!((mean - 4.0).abs() < 0.3, "mean {mean}");
    }

    #[test]
    fn same_seed_same_sequence_different_seed_diverges() {
        let draw = |seed| {
            let mut a = RequestArrivals::new(ArrivalProcess::Poisson { rate: 3.0 }, seed);
            (0..50).map(|_| a.next_tick()).collect::<Vec<_>>()
        };
        assert_eq!(draw(1), draw(1));
        assert_ne!(draw(1), draw(2));
    }

    #[test]
    fn diurnal_peak_outdraws_trough() {
        let mut a = RequestArrivals::new(
            ArrivalProcess::Diurnal {
                rate: 20.0,
                swing: 0.9,
                period: 100,
            },
            3,
        );
        // First half-cycle rides the sine peak, second the trough.
        let peak: usize = (0..50).map(|_| a.next_tick()).sum();
        let trough: usize = (0..50).map(|_| a.next_tick()).sum();
        assert!(peak > trough, "peak {peak} !> trough {trough}");
    }

    #[test]
    fn zero_rate_is_silence() {
        let mut a = RequestArrivals::new(ArrivalProcess::Poisson { rate: 0.0 }, 0);
        assert_eq!((0..10).map(|_| a.next_tick()).sum::<usize>(), 0);
    }

    #[test]
    #[should_panic(expected = "rate")]
    fn negative_rate_is_rejected() {
        RequestArrivals::new(ArrivalProcess::Constant { rate: -1.0 }, 0);
    }
}
