//! Network simulation substrate for the SAPS-PSGD reproduction.
//!
//! The paper evaluates communication on *emulated* networks: a 14-worker
//! environment whose pairwise bandwidths come from real speed tests between
//! cloud VMs (Fig. 1), and a 32-worker environment with uniformly random
//! bandwidths in (0, 5] MB/s. This crate provides:
//!
//! * [`BandwidthMatrix`] — pairwise bandwidths with the paper's
//!   `B_ij ← min(B_ij, B_ji)` bottleneck symmetrization and the
//!   `B_thres` filter of Algorithm 1;
//! * [`citydata`] — the 14-city measurement matrix transcribed from
//!   Fig. 1;
//! * [`TrafficAccountant`] — exact per-worker / per-round byte counting
//!   (the source of every traffic number in Table IV and Fig. 4);
//! * [`timemodel`] — closed-form transfer-time models for peer-to-peer
//!   rounds, parameter-server rounds and ring all-reduce (the source of
//!   every "communication time" number in Table IV and Fig. 6);
//! * [`flows`] + [`des`] — the discrete-event network simulator: flows
//!   with per-link latency and fair-share bandwidth splitting, priced
//!   behind the [`TimeModel`] switch (`Analytic` keeps the closed
//!   forms; `EventDriven` simulates latency, contention, stragglers and
//!   mid-flight bandwidth changes). See `docs/NETWORK_SIM.md`.
//! * [`packet`] — the packet-level extension of the flow simulator:
//!   per-flow AIMD congestion windows, finite link queues, seeded
//!   random loss and RTT, selected with [`TimeModel::Packet`]. An
//!   ideal [`PacketConfig`] degenerates to the fluid simulator
//!   exactly.
//! * [`workload`] — deterministic request-arrival processes (constant,
//!   Poisson, diurnal) driving the `saps-serve` inference plane's load
//!   in mixed training + serving scenarios.
//!
//! # Example
//!
//! ```
//! use saps_netsim::BandwidthMatrix;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let b = BandwidthMatrix::uniform_random(32, 5.0, &mut rng);
//! assert_eq!(b.len(), 32);
//! assert!(b.get(0, 1) > 0.0 && b.get(0, 1) <= 5.0);
//! assert_eq!(b.get(0, 1), b.get(1, 0)); // symmetrized
//! ```

#![warn(missing_docs)]

mod bandwidth;
pub mod citydata;
pub mod des;
pub mod dynamics;
pub mod flows;
pub mod packet;
pub mod timemodel;
mod traffic;
pub mod workload;

pub use bandwidth::BandwidthMatrix;
pub use des::{RoundTiming, TimeModel};
pub use packet::PacketConfig;
pub use traffic::{to_mb, RoundTraffic, TrafficAccountant};
