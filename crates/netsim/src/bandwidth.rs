//! Pairwise bandwidth matrices.

use rand::Rng;

/// A symmetric matrix of pairwise bandwidths in **MB/s** between `n`
/// workers. The diagonal is 0 (a worker never transfers to itself).
///
/// Construction always applies the paper's bottleneck symmetrization
/// `B_ij ← min(B_ij, B_ji)` ("the communication bottleneck is decided by
/// the slow one", Section II-C).
#[derive(Debug, Clone, PartialEq)]
pub struct BandwidthMatrix {
    n: usize,
    /// Row-major, MB/s, symmetric, zero diagonal.
    mbps: Vec<f64>,
}

impl BandwidthMatrix {
    /// Builds from a possibly asymmetric matrix in MB/s (row-major,
    /// `n × n`). NaN entries (the paper's diagonal placeholders) are
    /// treated as 0.
    pub fn from_raw(n: usize, raw: &[f64]) -> Self {
        assert_eq!(raw.len(), n * n, "bandwidth matrix must be n*n");
        let mut mbps = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let a = if raw[i * n + j].is_nan() {
                    0.0
                } else {
                    raw[i * n + j]
                };
                let b = if raw[j * n + i].is_nan() {
                    0.0
                } else {
                    raw[j * n + i]
                };
                mbps[i * n + j] = a.min(b);
            }
        }
        BandwidthMatrix { n, mbps }
    }

    /// Builds from a matrix given in **Mbit/s** (Fig. 1's unit), converting
    /// to MB/s by dividing by 8.
    pub fn from_mbits(n: usize, mbits: &[f64]) -> Self {
        let raw: Vec<f64> = mbits.iter().map(|&v| v / 8.0).collect();
        Self::from_raw(n, &raw)
    }

    /// The paper's 32-worker environment: each pair's bandwidth drawn
    /// uniformly from `(0, max_mbps]` MB/s.
    pub fn uniform_random<R: Rng>(n: usize, max_mbps: f64, rng: &mut R) -> Self {
        assert!(max_mbps > 0.0);
        let mut raw = vec![0.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                // Uniform on (0, max]: complement of gen_range([0, max)).
                let v = max_mbps - rng.gen_range(0.0..max_mbps);
                raw[i * n + j] = v;
                raw[j * n + i] = v;
            }
        }
        Self::from_raw(n, &raw)
    }

    /// A matrix where every pair has the same bandwidth (for analytical
    /// tests where topology, not bandwidth, is under study).
    pub fn constant(n: usize, mbps: f64) -> Self {
        let mut raw = vec![mbps; n * n];
        for i in 0..n {
            raw[i * n + i] = 0.0;
        }
        Self::from_raw(n, &raw)
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix covers zero workers.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Bandwidth between `i` and `j` in MB/s (0 on the diagonal).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.mbps[i * self.n + j]
    }

    /// Overrides the bandwidth of pair `(i, j)` (both directions) —
    /// used for dynamic-network robustness experiments.
    pub fn set(&mut self, i: usize, j: usize, mbps: f64) {
        assert!(i != j, "cannot set self-bandwidth");
        self.mbps[i * self.n + j] = mbps;
        self.mbps[j * self.n + i] = mbps;
    }

    /// The full symmetric matrix, row-major, MB/s.
    pub fn as_slice(&self) -> &[f64] {
        &self.mbps
    }

    /// The thresholded 0/1 connectivity of Algorithm 1 (`B* = [B ≥
    /// B_thres]`), as a row-major boolean matrix.
    pub fn threshold(&self, thres_mbps: f64) -> Vec<bool> {
        self.mbps
            .iter()
            .enumerate()
            .map(|(k, &v)| {
                let (i, j) = (k / self.n, k % self.n);
                i != j && v >= thres_mbps
            })
            .collect()
    }

    /// Largest threshold at which the filtered graph `B*` is still
    /// connected (found by sorting candidate values). Returns 0.0 when the
    /// graph is disconnected even with every positive edge.
    ///
    /// The coordinator needs a sensible `B_thres`: too high disconnects
    /// the PC-edge graph and breaks Assumption 3; this helper picks the
    /// highest safe value.
    pub fn max_connecting_threshold(&self) -> f64 {
        let mut values: Vec<f64> = Vec::new();
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                let v = self.get(i, j);
                if v > 0.0 {
                    values.push(v);
                }
            }
        }
        values.sort_by(|a, b| b.partial_cmp(a).unwrap());
        for &t in &values {
            if self.is_connected_at(t) {
                return t;
            }
        }
        0.0
    }

    fn is_connected_at(&self, thres: f64) -> bool {
        if self.n == 0 {
            return true;
        }
        let mut seen = vec![false; self.n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for (v, seen_v) in seen.iter_mut().enumerate() {
                if !*seen_v && self.get(u, v) >= thres && u != v {
                    *seen_v = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == self.n
    }

    /// The `q`-quantile (0..=1) of off-diagonal pair bandwidths — a
    /// principled way to pick an *aggressive* `B_thres`: e.g.
    /// `percentile(0.6)` keeps only the fastest 40% of links in `B*`,
    /// letting maximum matching concentrate exchanges on fast links while
    /// Algorithm 3's bridging pass keeps the slow workers reachable.
    pub fn percentile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let mut values: Vec<f64> = Vec::with_capacity(self.n * (self.n - 1) / 2);
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                values.push(self.get(i, j));
            }
        }
        if values.is_empty() {
            return 0.0;
        }
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let idx = ((values.len() - 1) as f64 * q).round() as usize;
        values[idx]
    }

    /// Index of the worker with the largest total bandwidth to all others
    /// — the paper's rule for placing the FedAvg server ("choosing the
    /// server that has the maximum bandwidth", Section IV-D).
    pub fn best_server(&self) -> usize {
        assert!(self.n > 0, "no workers");
        (0..self.n)
            .max_by(|&a, &b| {
                let sa: f64 = (0..self.n).map(|j| self.get(a, j)).sum();
                let sb: f64 = (0..self.n).map(|j| self.get(b, j)).sum();
                sa.partial_cmp(&sb).unwrap()
            })
            .unwrap()
    }

    /// Mean off-diagonal bandwidth in MB/s.
    pub fn mean(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let total: f64 = self.mbps.iter().sum();
        total / (self.n * (self.n - 1)) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn from_raw_symmetrizes_with_min() {
        let raw = vec![0.0, 5.0, 2.0, 0.0];
        let b = BandwidthMatrix::from_raw(2, &raw);
        assert_eq!(b.get(0, 1), 2.0);
        assert_eq!(b.get(1, 0), 2.0);
        assert_eq!(b.get(0, 0), 0.0);
    }

    #[test]
    fn nan_treated_as_zero() {
        let raw = vec![f64::NAN, 5.0, 5.0, f64::NAN];
        let b = BandwidthMatrix::from_raw(2, &raw);
        assert_eq!(b.get(0, 1), 5.0);
    }

    #[test]
    fn mbits_conversion() {
        let raw = vec![0.0, 80.0, 80.0, 0.0];
        let b = BandwidthMatrix::from_mbits(2, &raw);
        assert_eq!(b.get(0, 1), 10.0); // 80 Mbit/s = 10 MB/s
    }

    #[test]
    fn uniform_random_in_range_and_symmetric() {
        let mut rng = StdRng::seed_from_u64(2);
        let b = BandwidthMatrix::uniform_random(10, 5.0, &mut rng);
        for i in 0..10 {
            assert_eq!(b.get(i, i), 0.0);
            for j in 0..10 {
                if i != j {
                    assert!(b.get(i, j) > 0.0 && b.get(i, j) <= 5.0);
                    assert_eq!(b.get(i, j), b.get(j, i));
                }
            }
        }
    }

    #[test]
    fn threshold_masks_low_links() {
        let b = BandwidthMatrix::constant(3, 2.0);
        let t = b.threshold(3.0);
        assert!(t.iter().all(|&x| !x));
        let t2 = b.threshold(1.0);
        assert_eq!(t2.iter().filter(|&&x| x).count(), 6);
    }

    #[test]
    fn max_connecting_threshold_on_constant_matrix() {
        let b = BandwidthMatrix::constant(4, 2.5);
        assert_eq!(b.max_connecting_threshold(), 2.5);
    }

    #[test]
    fn max_connecting_threshold_respects_bottleneck() {
        // Star around node 0 with one weak spoke: threshold must drop to
        // the weak spoke's bandwidth to stay connected.
        let n = 3;
        let mut raw = vec![0.0; 9];
        raw[1] = 10.0; // 0-1 strong
        raw[3] = 10.0;
        raw[2] = 1.0; // 0-2 weak
        raw[6] = 1.0;
        let b = BandwidthMatrix::from_raw(n, &raw);
        assert_eq!(b.max_connecting_threshold(), 1.0);
    }

    #[test]
    fn percentile_orders_links() {
        let mut bw = BandwidthMatrix::constant(3, 1.0);
        bw.set(0, 1, 10.0);
        bw.set(0, 2, 5.0);
        bw.set(1, 2, 1.0);
        assert_eq!(bw.percentile(0.0), 1.0);
        assert_eq!(bw.percentile(0.5), 5.0);
        assert_eq!(bw.percentile(1.0), 10.0);
    }

    #[test]
    fn best_server_picks_highest_aggregate() {
        let n = 3;
        let mut raw = vec![0.0; 9];
        // Node 2 has the fattest pipes.
        let pairs = [(0usize, 1usize, 1.0), (0, 2, 10.0), (1, 2, 10.0)];
        for (i, j, v) in pairs {
            raw[i * n + j] = v;
            raw[j * n + i] = v;
        }
        let b = BandwidthMatrix::from_raw(n, &raw);
        assert_eq!(b.best_server(), 2);
    }

    #[test]
    fn set_updates_both_directions() {
        let mut b = BandwidthMatrix::constant(3, 1.0);
        b.set(0, 2, 9.0);
        assert_eq!(b.get(0, 2), 9.0);
        assert_eq!(b.get(2, 0), 9.0);
    }

    #[test]
    fn mean_excludes_diagonal() {
        let b = BandwidthMatrix::constant(3, 4.0);
        assert!((b.mean() - 4.0).abs() < 1e-12);
    }
}
