//! Transfer-time models.
//!
//! The paper compares algorithms on *communication time* (Fig. 6, Table
//! IV): bytes moved divided by the bandwidth of the link they moved over,
//! with synchronous rounds gated by the slowest concurrent transfer. This
//! module implements that accounting for the three communication patterns
//! in the evaluation:
//!
//! * [`p2p_round_time`] — concurrent pairwise exchanges (SAPS-PSGD,
//!   D-PSGD, DCD-PSGD, RandomChoose): the round lasts as long as its
//!   slowest link;
//! * [`ps_round_time`] — parameter-server rounds (FedAvg, S-FedAvg): the
//!   slowest chosen client–server link gates the round; the server is the
//!   best-connected node per the paper;
//! * [`allreduce_ring_time`] / [`allgather_time`] — ring all-reduce
//!   (PSGD) and sparse allgather (TopK-PSGD); the `*_over` variants take
//!   an explicit active-rank list for churned fleets.

use crate::BandwidthMatrix;

/// Duration of one synchronous round of concurrent pairwise transfers.
///
/// `transfers` lists `(src, dst, bytes)`. Transfers on the same unordered
/// pair are summed (full-duplex links are *not* assumed: the two
/// directions of one exchange share the pair's bottleneck bandwidth,
/// matching the paper's `min(B_ij, B_ji)` rule). The round time is the
/// maximum per-pair time. Per-pair byte sums saturate at `u64::MAX`
/// rather than wrapping, so absurdly large transfer sets price as "very
/// long" instead of silently short. Returns seconds.
pub fn p2p_round_time(bw: &BandwidthMatrix, transfers: &[(usize, usize, u64)]) -> f64 {
    use std::collections::HashMap;
    let mut per_pair: HashMap<(usize, usize), u64> = HashMap::new();
    for &(src, dst, bytes) in transfers {
        let key = (src.min(dst), src.max(dst));
        let sum = per_pair.entry(key).or_insert(0);
        *sum = sum.saturating_add(bytes);
    }
    let mut worst: f64 = 0.0;
    for ((i, j), bytes) in per_pair {
        let mbps = bw.get(i, j);
        let t = if mbps <= 0.0 {
            f64::INFINITY
        } else {
            bytes as f64 / (mbps * 1e6)
        };
        worst = worst.max(t);
    }
    worst
}

/// Duration of one parameter-server round.
///
/// Each `(worker, up_bytes, down_bytes)` entry moves bytes over the
/// worker↔server link; upload and download share the link's bandwidth.
/// The round lasts as long as the slowest client. Returns seconds.
pub fn ps_round_time(bw: &BandwidthMatrix, server: usize, clients: &[(usize, u64, u64)]) -> f64 {
    let mut worst: f64 = 0.0;
    for &(w, up, down) in clients {
        if w == server {
            // Co-located client: no network transfer.
            continue;
        }
        let mbps = bw.get(w, server);
        let t = if mbps <= 0.0 {
            f64::INFINITY
        } else {
            (up + down) as f64 / (mbps * 1e6)
        };
        worst = worst.max(t);
    }
    worst
}

/// Duration of a ring all-reduce moving `bytes_per_worker` through each
/// worker (the PSGD pattern; `bytes_per_worker ≈ 2N` for a dense model).
///
/// A ring all-reduce performs `2(n−1)` steps, each transferring a
/// `1/n`-chunk over every ring link concurrently, so the wall time is
/// `bytes_per_worker / min_link_bandwidth` — the slowest ring link gates
/// every step. Returns seconds.
pub fn allreduce_ring_time(bw: &BandwidthMatrix, bytes_per_worker: u64) -> f64 {
    let all: Vec<usize> = (0..bw.len()).collect();
    allreduce_ring_time_over(bw, &all, bytes_per_worker)
}

/// [`allreduce_ring_time`] restricted to a ring over `ranks` (in order) —
/// the PSGD pattern when churn has shrunk the live fleet.
pub fn allreduce_ring_time_over(
    bw: &BandwidthMatrix,
    ranks: &[usize],
    bytes_per_worker: u64,
) -> f64 {
    let m = ranks.len();
    if m < 2 {
        return 0.0;
    }
    let mut min_bw = f64::INFINITY;
    for i in 0..m {
        min_bw = min_bw.min(bw.get(ranks[i], ranks[(i + 1) % m]));
    }
    if min_bw <= 0.0 {
        return f64::INFINITY;
    }
    bytes_per_worker as f64 / (min_bw * 1e6)
}

/// Duration of a sparse allgather where every worker sends `bytes` to all
/// `n−1` others (the TopK-PSGD pattern). Modeled as sequential pairwise
/// sends over each worker's slowest outgoing link used.
pub fn allgather_time(bw: &BandwidthMatrix, bytes: u64) -> f64 {
    let all: Vec<usize> = (0..bw.len()).collect();
    allgather_time_over(bw, &all, bytes)
}

/// [`allgather_time`] restricted to the mesh over `ranks` — the
/// TopK-PSGD pattern when churn has shrunk the live fleet.
pub fn allgather_time_over(bw: &BandwidthMatrix, ranks: &[usize], bytes: u64) -> f64 {
    let m = ranks.len();
    if m < 2 {
        return 0.0;
    }
    // Each worker must deliver its payload to m-1 peers; with all links
    // active concurrently, the slowest link in the whole mesh carrying
    // (m-1) sequential chunks gates the operation.
    let mut min_bw = f64::INFINITY;
    for i in 0..m {
        for j in 0..m {
            if i != j {
                min_bw = min_bw.min(bw.get(ranks[i], ranks[j]));
            }
        }
    }
    if min_bw <= 0.0 {
        return f64::INFINITY;
    }
    (bytes * (m as u64 - 1)) as f64 / (min_bw * 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2p_round_gated_by_slowest_pair() {
        let mut bw = BandwidthMatrix::constant(4, 10.0); // 10 MB/s
        bw.set(2, 3, 1.0);
        // Pair (0,1): 10 MB both ways -> 20 MB over 10 MB/s = 2 s.
        // Pair (2,3): 1 MB both ways -> 2 MB over 1 MB/s = 2 s.
        let t = p2p_round_time(
            &bw,
            &[
                (0, 1, 10_000_000),
                (1, 0, 10_000_000),
                (2, 3, 1_000_000),
                (3, 2, 1_000_000),
            ],
        );
        assert!((t - 2.0).abs() < 1e-9, "t = {t}");
    }

    #[test]
    fn p2p_zero_bandwidth_is_infinite() {
        let bw = BandwidthMatrix::constant(2, 0.0);
        let t = p2p_round_time(&bw, &[(0, 1, 1)]);
        assert!(t.is_infinite());
    }

    #[test]
    fn p2p_empty_round_is_zero() {
        let bw = BandwidthMatrix::constant(2, 1.0);
        assert_eq!(p2p_round_time(&bw, &[]), 0.0);
    }

    #[test]
    fn p2p_huge_transfers_saturate_instead_of_wrapping() {
        // Two near-max transfers on one pair used to wrap the u64 sum to
        // almost zero in release builds; now they saturate and price as
        // an enormous (finite) time.
        let bw = BandwidthMatrix::constant(2, 1.0);
        let t = p2p_round_time(&bw, &[(0, 1, u64::MAX - 1), (1, 0, u64::MAX - 1)]);
        let single = p2p_round_time(&bw, &[(0, 1, u64::MAX - 1)]);
        assert!(t.is_finite());
        assert!(
            t >= single,
            "saturated sum {t} priced below one side {single}"
        );
        assert_eq!(t, u64::MAX as f64 / 1e6);
    }

    #[test]
    fn p2p_huge_transfer_on_dead_link_is_infinite() {
        // The 0-bandwidth path must still dominate the saturation path.
        let bw = BandwidthMatrix::constant(2, 0.0);
        let t = p2p_round_time(&bw, &[(0, 1, u64::MAX), (1, 0, u64::MAX)]);
        assert!(t.is_infinite());
    }

    #[test]
    fn ps_round_slowest_client_gates() {
        let mut bw = BandwidthMatrix::constant(3, 10.0);
        bw.set(0, 2, 1.0); // worker 0 has a slow link to server 2
        let t = ps_round_time(
            &bw,
            2,
            &[(0, 1_000_000, 1_000_000), (1, 1_000_000, 1_000_000)],
        );
        // Worker 0: 2 MB over 1 MB/s = 2 s; worker 1: 0.2 s.
        assert!((t - 2.0).abs() < 1e-9);
    }

    #[test]
    fn ps_colocated_client_is_free() {
        let bw = BandwidthMatrix::constant(2, 1.0);
        let t = ps_round_time(&bw, 0, &[(0, 1_000_000, 1_000_000)]);
        assert_eq!(t, 0.0);
    }

    #[test]
    fn allreduce_uses_min_ring_link() {
        let mut bw = BandwidthMatrix::constant(4, 10.0);
        bw.set(1, 2, 2.0); // ring link 1-2 is slow
        let t = allreduce_ring_time(&bw, 8_000_000);
        assert!((t - 4.0).abs() < 1e-9, "t = {t}"); // 8 MB / 2 MB/s
    }

    #[test]
    fn allgather_scales_with_n() {
        let bw = BandwidthMatrix::constant(5, 1.0);
        let t = allgather_time(&bw, 1_000_000);
        assert!((t - 4.0).abs() < 1e-9); // 4 peers × 1 MB / 1 MB/s
    }

    #[test]
    fn degenerate_sizes() {
        let bw = BandwidthMatrix::constant(1, 5.0);
        assert_eq!(allreduce_ring_time(&bw, 100), 0.0);
        assert_eq!(allgather_time(&bw, 100), 0.0);
    }
}
