//! Time-varying bandwidth.
//!
//! The paper motivates adaptive peer selection with *dynamic* federated
//! networks ("the workers are resource-limited and very dynamic … the
//! bandwidth between two workers may also vary") but evaluates on static
//! matrices. This module supplies the missing dynamics so robustness
//! experiments can exercise the "R." claim of Table I: per-link
//! multiplicative random walks around a baseline matrix, clamped to a
//! sane range, evolved deterministically from a seed.

use crate::BandwidthMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A bandwidth process: a baseline matrix whose links drift by a bounded
/// multiplicative random walk.
#[derive(Debug, Clone)]
pub struct BandwidthProcess {
    baseline: BandwidthMatrix,
    current: BandwidthMatrix,
    /// Per-step log-space drift scale (e.g. 0.05 = ±5 %ish per step).
    volatility: f64,
    /// Clamp factors: each link stays within
    /// `[baseline/range, baseline*range]`.
    range: f64,
    /// Links currently severed; the walk skips them until restored.
    cut: std::collections::HashSet<(usize, usize)>,
    rng: StdRng,
}

impl BandwidthProcess {
    /// Creates a process around `baseline`.
    ///
    /// # Panics
    ///
    /// Panics unless `volatility >= 0` and `range >= 1`.
    pub fn new(baseline: BandwidthMatrix, volatility: f64, range: f64, seed: u64) -> Self {
        assert!(volatility >= 0.0, "volatility must be non-negative");
        assert!(range >= 1.0, "range must be at least 1");
        BandwidthProcess {
            current: baseline.clone(),
            baseline,
            volatility,
            range,
            cut: Default::default(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The current matrix.
    pub fn current(&self) -> &BandwidthMatrix {
        &self.current
    }

    /// The baseline the walk reverts around.
    pub fn baseline(&self) -> &BandwidthMatrix {
        &self.baseline
    }

    /// Advances every link one step of the walk and returns the new
    /// matrix.
    pub fn step(&mut self) -> &BandwidthMatrix {
        let n = self.baseline.len();
        for i in 0..n {
            for j in (i + 1)..n {
                let base = self.baseline.get(i, j);
                if base <= 0.0 || self.cut.contains(&(i, j)) {
                    continue;
                }
                let cur = self.current.get(i, j);
                let shock = (self.volatility * self.rng.gen_range(-1.0..1.0f64)).exp();
                let next = (cur * shock).clamp(base / self.range, base * self.range);
                self.current.set(i, j, next);
            }
        }
        &self.current
    }

    /// Severs a link entirely (e.g. a peer behind a failed route); it
    /// stays down — even across [`BandwidthProcess::step`] calls — until
    /// [`BandwidthProcess::restore_link`].
    pub fn cut_link(&mut self, i: usize, j: usize) {
        self.cut.insert((i.min(j), i.max(j)));
        self.current.set(i, j, 0.0);
    }

    /// Restores a previously cut link to its baseline value.
    pub fn restore_link(&mut self, i: usize, j: usize) {
        self.cut.remove(&(i.min(j), i.max(j)));
        let v = self.baseline.get(i, j);
        self.current.set(i, j, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn process() -> BandwidthProcess {
        BandwidthProcess::new(BandwidthMatrix::constant(4, 2.0), 0.2, 4.0, 1)
    }

    #[test]
    fn stays_within_clamp_range() {
        let mut p = process();
        for _ in 0..500 {
            p.step();
        }
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    let v = p.current().get(i, j);
                    assert!((0.5..=8.0).contains(&v), "link ({i},{j}) = {v}");
                }
            }
        }
    }

    #[test]
    fn stays_symmetric() {
        let mut p = process();
        for _ in 0..50 {
            p.step();
        }
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(p.current().get(i, j), p.current().get(j, i));
            }
        }
    }

    #[test]
    fn actually_moves() {
        let mut p = process();
        p.step();
        let mut moved = false;
        for i in 0..4 {
            for j in (i + 1)..4 {
                if (p.current().get(i, j) - 2.0).abs() > 1e-12 {
                    moved = true;
                }
            }
        }
        assert!(moved);
    }

    #[test]
    fn deterministic_by_seed() {
        let mut a = process();
        let mut b = process();
        for _ in 0..20 {
            a.step();
            b.step();
        }
        assert_eq!(a.current(), b.current());
    }

    #[test]
    fn zero_volatility_is_static() {
        let mut p = BandwidthProcess::new(BandwidthMatrix::constant(3, 1.0), 0.0, 2.0, 5);
        p.step();
        assert_eq!(p.current(), p.baseline());
    }

    #[test]
    fn cut_stays_down_across_steps() {
        let mut p = process();
        p.cut_link(0, 1);
        for _ in 0..10 {
            p.step();
        }
        assert_eq!(p.current().get(0, 1), 0.0);
        p.restore_link(0, 1);
        assert_eq!(p.current().get(0, 1), 2.0);
        p.step();
        assert!(p.current().get(0, 1) > 0.0);
    }
}
