//! Exact traffic accounting.
//!
//! Every algorithm in the workspace charges the bytes it moves through a
//! [`TrafficAccountant`]; Table IV's "Traffic" column and the x-axes of
//! Fig. 4 are read directly from these counters. Counting is split per
//! worker and per direction, plus a separate server counter for
//! centralized algorithms, so Table I's per-role formulas can be checked
//! against measurements.

/// Per-round traffic snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundTraffic {
    /// Bytes sent by the busiest worker this round.
    pub max_worker_sent: u64,
    /// Bytes received by the busiest worker this round.
    pub max_worker_recv: u64,
    /// Total bytes moved by all workers this round (sent only, to avoid
    /// double counting pairwise transfers).
    pub total_sent: u64,
    /// Bytes through the server (if any) this round, both directions.
    pub server_bytes: u64,
}

/// Accumulates traffic over a training run.
#[derive(Debug, Clone)]
pub struct TrafficAccountant {
    n: usize,
    sent: Vec<u64>,
    recv: Vec<u64>,
    server: u64,
    rounds: Vec<RoundTraffic>,
    // Current round working state.
    cur_sent: Vec<u64>,
    cur_recv: Vec<u64>,
    cur_server: u64,
}

impl TrafficAccountant {
    /// Creates an accountant for `n` workers.
    pub fn new(n: usize) -> Self {
        TrafficAccountant {
            n,
            sent: vec![0; n],
            recv: vec![0; n],
            server: 0,
            rounds: Vec::new(),
            cur_sent: vec![0; n],
            cur_recv: vec![0; n],
            cur_server: 0,
        }
    }

    /// Number of workers tracked.
    pub fn worker_count(&self) -> usize {
        self.n
    }

    /// Records a worker-to-worker transfer of `bytes` from `src` to `dst`.
    pub fn record_p2p(&mut self, src: usize, dst: usize, bytes: u64) {
        assert!(src < self.n && dst < self.n, "worker out of range");
        self.sent[src] += bytes;
        self.recv[dst] += bytes;
        self.cur_sent[src] += bytes;
        self.cur_recv[dst] += bytes;
    }

    /// Records an upload from `worker` to the server.
    pub fn record_upload(&mut self, worker: usize, bytes: u64) {
        assert!(worker < self.n);
        self.sent[worker] += bytes;
        self.cur_sent[worker] += bytes;
        self.server += bytes;
        self.cur_server += bytes;
    }

    /// Records a download from the server to `worker`.
    pub fn record_download(&mut self, worker: usize, bytes: u64) {
        assert!(worker < self.n);
        self.recv[worker] += bytes;
        self.cur_recv[worker] += bytes;
        self.server += bytes;
        self.cur_server += bytes;
    }

    /// Records control-plane traffic on the server/coordinator row
    /// *only* — round plans, round-end notices, churn frames and all
    /// wire framing overhead of a message-driven deployment. Unlike
    /// [`TrafficAccountant::record_upload`]/`record_download`, no worker
    /// row is charged: Table I's worker cost counts model payload bytes,
    /// and the coordinator's control chatter belongs to the server row
    /// alone.
    pub fn record_control(&mut self, bytes: u64) {
        self.server += bytes;
        self.cur_server += bytes;
    }

    /// Closes the current round, returning its snapshot.
    pub fn end_round(&mut self) -> RoundTraffic {
        let rt = RoundTraffic {
            max_worker_sent: self.cur_sent.iter().copied().max().unwrap_or(0),
            max_worker_recv: self.cur_recv.iter().copied().max().unwrap_or(0),
            total_sent: self.cur_sent.iter().sum(),
            server_bytes: self.cur_server,
        };
        self.rounds.push(rt);
        self.cur_sent.iter_mut().for_each(|b| *b = 0);
        self.cur_recv.iter_mut().for_each(|b| *b = 0);
        self.cur_server = 0;
        rt
    }

    /// Total bytes sent by `worker` across all rounds.
    pub fn worker_sent(&self, worker: usize) -> u64 {
        self.sent[worker]
    }

    /// Total bytes received by `worker` across all rounds.
    pub fn worker_recv(&self, worker: usize) -> u64 {
        self.recv[worker]
    }

    /// Total bytes sent + received by `worker`.
    pub fn worker_total(&self, worker: usize) -> u64 {
        self.sent[worker] + self.recv[worker]
    }

    /// The busiest worker's total (sent + received) — the paper reports
    /// "communication size on a training worker".
    pub fn max_worker_total(&self) -> u64 {
        (0..self.n).map(|w| self.worker_total(w)).max().unwrap_or(0)
    }

    /// Mean per-worker total (sent + received).
    pub fn mean_worker_total(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let sum: u64 = (0..self.n).map(|w| self.worker_total(w)).sum();
        sum as f64 / self.n as f64
    }

    /// Total server bytes (both directions) across all rounds.
    pub fn server_total(&self) -> u64 {
        self.server
    }

    /// Per-round snapshots in order.
    pub fn rounds(&self) -> &[RoundTraffic] {
        &self.rounds
    }

    /// Grand total of bytes moved by all workers (sent only).
    pub fn grand_total_sent(&self) -> u64 {
        self.sent.iter().sum()
    }
}

/// Converts bytes to the paper's MB (10^6 bytes).
pub fn to_mb(bytes: u64) -> f64 {
    bytes as f64 / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2p_charges_both_sides() {
        let mut t = TrafficAccountant::new(3);
        t.record_p2p(0, 1, 100);
        t.record_p2p(1, 0, 50);
        assert_eq!(t.worker_sent(0), 100);
        assert_eq!(t.worker_recv(0), 50);
        assert_eq!(t.worker_total(0), 150);
        assert_eq!(t.worker_total(1), 150);
        assert_eq!(t.worker_total(2), 0);
        assert_eq!(t.server_total(), 0);
    }

    #[test]
    fn server_traffic_counts_both_directions() {
        let mut t = TrafficAccountant::new(2);
        t.record_upload(0, 100);
        t.record_download(0, 100);
        t.record_upload(1, 100);
        t.record_download(1, 100);
        // Server moved 2 * (100 up + 100 down) = 400.
        assert_eq!(t.server_total(), 400);
        assert_eq!(t.worker_total(0), 200);
    }

    #[test]
    fn round_snapshots() {
        let mut t = TrafficAccountant::new(2);
        t.record_p2p(0, 1, 10);
        let r1 = t.end_round();
        assert_eq!(r1.max_worker_sent, 10);
        assert_eq!(r1.max_worker_recv, 10);
        assert_eq!(r1.total_sent, 10);
        t.record_p2p(1, 0, 30);
        t.record_p2p(0, 1, 20);
        let r2 = t.end_round();
        assert_eq!(r2.max_worker_sent, 30);
        assert_eq!(r2.total_sent, 50);
        assert_eq!(t.rounds().len(), 2);
        // Cumulative counters unaffected by round boundaries.
        assert_eq!(t.worker_sent(0), 30);
        assert_eq!(t.grand_total_sent(), 60);
    }

    #[test]
    fn control_traffic_bills_only_the_server_row() {
        let mut t = TrafficAccountant::new(2);
        t.record_control(64);
        t.record_p2p(0, 1, 100);
        let r = t.end_round();
        assert_eq!(r.server_bytes, 64);
        assert_eq!(r.total_sent, 100);
        assert_eq!(t.server_total(), 64);
        assert_eq!(t.worker_total(0), 100);
        assert_eq!(t.worker_total(1), 100);
    }

    #[test]
    fn max_and_mean_worker_total() {
        let mut t = TrafficAccountant::new(2);
        t.record_p2p(0, 1, 100);
        assert_eq!(t.max_worker_total(), 100);
        assert_eq!(t.mean_worker_total(), 100.0);
    }

    #[test]
    fn to_mb_uses_decimal_megabytes() {
        assert_eq!(to_mb(5_000_000), 5.0);
    }
}
