//! The fluid-flow core of the discrete-event network simulator.
//!
//! A round's communication is a set of [`FlowSpec`]s: directed transfers
//! over the links of a [`BandwidthMatrix`]. The simulator advances a
//! virtual clock from event to event (flow releases, latency expiries,
//! completions, [`RateUpdate`]s) and moves bytes continuously between
//! events under the **fair-share rule**: all flows transferring on the
//! same unordered link pair at the same instant split that pair's
//! bandwidth equally, and a flow's rate is recomputed whenever the set
//! of its link's concurrent flows (or the matrix itself) changes.
//!
//! Everything is deterministic: no wall clock, no hashing, no RNG —
//! flows are processed in submission order and ties resolve by index,
//! so two simulations of the same inputs produce bit-identical
//! [`SimReport`]s.
//!
//! The higher-level [`crate::des::TimeModel`] builds flow sets for the
//! four communication patterns of the paper and prices them through
//! [`simulate`]; use this module directly for custom traffic patterns or
//! for mid-flight bandwidth changes (congestion hitting a round that is
//! already in progress).

use crate::BandwidthMatrix;

/// Fraction of a flow's original bytes below which the remainder is
/// considered delivered (absorbs float rounding when a completion event
/// lands exactly on the clock).
const COMPLETION_EPS: f64 = 1e-9;

/// One directed transfer handed to the simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSpec {
    /// Sending worker rank.
    pub src: usize,
    /// Receiving worker rank.
    pub dst: usize,
    /// Payload size in bytes.
    pub bytes: f64,
    /// Earliest virtual time (seconds) the flow may start — typically
    /// the sender's compute-finish time.
    pub release_s: f64,
    /// Chain id: flows sharing a chain id run strictly in submission
    /// order (each starts when its predecessor completes). `None` means
    /// the flow is independent.
    pub chain: Option<usize>,
    /// How many per-hop latencies the flow pays before its first byte
    /// arrives (1 for a plain transfer; collectives with internal steps
    /// collapsed into one flow use the step count).
    pub latency_units: u32,
}

impl FlowSpec {
    /// An independent flow of `bytes` from `src` to `dst`, released at
    /// time 0 with a single latency unit.
    pub fn new(src: usize, dst: usize, bytes: f64) -> Self {
        FlowSpec {
            src,
            dst,
            bytes,
            release_s: 0.0,
            chain: None,
            latency_units: 1,
        }
    }

    /// Sets the release time (builder style).
    pub fn released_at(mut self, t: f64) -> Self {
        self.release_s = t;
        self
    }

    /// Puts the flow on a chain (builder style).
    pub fn on_chain(mut self, chain: usize) -> Self {
        self.chain = Some(chain);
        self
    }

    /// Sets the latency multiplier (builder style).
    pub fn with_latency_units(mut self, units: u32) -> Self {
        self.latency_units = units;
        self
    }
}

/// Simulator knobs shared by every flow of one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// One-way link latency in seconds, paid once per
    /// [`FlowSpec::latency_units`] before bytes arrive.
    pub latency_s: f64,
    /// Whether concurrent flows on the same unordered link pair split
    /// its bandwidth fairly. With `false` every flow sees the full link
    /// rate (an idealized full-duplex, infinitely-queued link).
    pub contention: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            latency_s: 0.0,
            contention: true,
        }
    }
}

/// A scheduled change to the link-rate matrix while flows are in flight
/// — a `BandwidthShift`/`LinkChange` scenario event or a drifting
/// bandwidth refresh landing mid-round. In-flight flows keep the bytes
/// they already moved and continue at the new rates.
#[derive(Debug, Clone)]
pub struct RateUpdate {
    /// Virtual time (seconds) the new matrix takes effect.
    pub at_s: f64,
    /// The matrix in effect from `at_s` on.
    pub bw: BandwidthMatrix,
}

/// Per-flow outcome of a simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowOutcome {
    /// When the flow was allowed to start (release + chain wait).
    pub start_s: f64,
    /// When its last byte arrived. `f64::INFINITY` if the flow starved
    /// on a zero-bandwidth link.
    pub finish_s: f64,
}

/// What one simulation run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Completion time of the last flow (0 for an empty flow set);
    /// `f64::INFINITY` if any flow starved.
    pub makespan_s: f64,
    /// Outcome per input flow, in submission order.
    pub flows: Vec<FlowOutcome>,
    /// Seconds each worker rank spent with at least one flow actively
    /// transferring on one of its links (sender or receiver side).
    pub busy_s: Vec<f64>,
    /// MSS-sized segments retransmitted (random loss + congestion
    /// drops). Always 0 under the fluid model — only the packet
    /// simulator retransmits.
    pub retransmit_segments: u64,
    /// Deepest receiver queue observed across all flows (bytes). Always
    /// 0 under the fluid model, which has no queues.
    pub peak_queue_bytes: f64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum St {
    /// Waiting for the chain predecessor to complete.
    WaitChain,
    /// Released; bytes start flowing at `ready`.
    Latency { ready: f64 },
    /// Transferring.
    Active,
    /// Delivered at the stored time.
    Done(f64),
}

/// Runs the fluid fair-share simulation of `flows` over `bw`, applying
/// `updates` (which must be sorted by [`RateUpdate::at_s`]) as the clock
/// passes them. Returns per-flow start/finish times, per-rank busy
/// times and the makespan.
///
/// # Panics
///
/// Panics if a flow references a rank outside the matrix, has negative
/// or non-finite bytes or release time, or if `updates` are unsorted or
/// sized differently from `bw`.
pub fn simulate(
    bw: &BandwidthMatrix,
    cfg: &SimConfig,
    flows: &[FlowSpec],
    updates: &[RateUpdate],
) -> SimReport {
    let n = bw.len();
    for f in flows {
        assert!(f.src < n && f.dst < n, "flow endpoint out of range");
        assert!(
            f.bytes.is_finite() && f.bytes >= 0.0,
            "flow bytes must be finite and non-negative"
        );
        assert!(
            f.release_s.is_finite() && f.release_s >= 0.0,
            "flow release must be finite and non-negative"
        );
    }
    for w in updates.windows(2) {
        assert!(w[0].at_s <= w[1].at_s, "rate updates must be sorted");
    }
    for u in updates {
        assert_eq!(u.bw.len(), n, "rate update matrix size mismatch");
        assert!(u.at_s.is_finite() && u.at_s >= 0.0);
    }

    let mut report = SimReport {
        makespan_s: 0.0,
        flows: vec![
            FlowOutcome {
                start_s: 0.0,
                finish_s: f64::INFINITY,
            };
            flows.len()
        ],
        busy_s: vec![0.0; n],
        retransmit_segments: 0,
        peak_queue_bytes: 0.0,
    };
    if flows.is_empty() {
        return report;
    }

    // Chain bookkeeping: within a chain, flow k+1 starts when flow k
    // completes (in submission order).
    let mut chain_pred: Vec<Option<usize>> = vec![None; flows.len()];
    let mut chain_succ: Vec<Option<usize>> = vec![None; flows.len()];
    {
        let mut last_of_chain: Vec<(usize, usize)> = Vec::new(); // (chain, flow idx)
        for (i, f) in flows.iter().enumerate() {
            if let Some(c) = f.chain {
                if let Some(entry) = last_of_chain.iter_mut().find(|(cc, _)| *cc == c) {
                    chain_pred[i] = Some(entry.1);
                    chain_succ[entry.1] = Some(i);
                    entry.1 = i;
                } else {
                    last_of_chain.push((c, i));
                }
            }
        }
    }

    let mut state: Vec<St> = flows
        .iter()
        .enumerate()
        .map(|(i, f)| {
            if chain_pred[i].is_some() {
                St::WaitChain
            } else {
                report.flows[i].start_s = f.release_s;
                St::Latency {
                    ready: f.release_s + cfg.latency_s * f.latency_units as f64,
                }
            }
        })
        .collect();
    let mut remaining: Vec<f64> = flows.iter().map(|f| f.bytes).collect();
    let eps: Vec<f64> = flows
        .iter()
        .map(|f| COMPLETION_EPS * f.bytes.max(1.0))
        .collect();

    let mut current = bw.clone();
    let mut next_update = 0usize;
    let mut t = 0.0f64;
    let mut done = 0usize;

    // Marks flow `i` delivered at time `at` and releases its chain
    // successor.
    macro_rules! complete {
        ($i:expr, $at:expr, $state:ident, $report:ident) => {{
            let i = $i;
            $state[i] = St::Done($at);
            $report.flows[i].finish_s = $at;
            done += 1;
            if let Some(s) = chain_succ[i] {
                let start = flows[s].release_s.max($at);
                $report.flows[s].start_s = start;
                $state[s] = St::Latency {
                    ready: start + cfg.latency_s * flows[s].latency_units as f64,
                };
            }
        }};
    }

    while done < flows.len() {
        // Promote latency expiries due at the current clock, completing
        // empty flows on the spot.
        loop {
            let mut promoted = false;
            for i in 0..flows.len() {
                if let St::Latency { ready } = state[i] {
                    if ready <= t {
                        if remaining[i] <= eps[i] {
                            complete!(i, ready.max(t), state, report);
                        } else {
                            state[i] = St::Active;
                        }
                        promoted = true;
                    }
                }
            }
            if !promoted {
                break;
            }
        }
        if done == flows.len() {
            break;
        }

        // Fair-share rates for the active set: count the active flows on
        // each unordered pair, then give each flow its pair's capacity
        // divided by that count (or the full capacity without
        // contention).
        let mut pair_load: Vec<(usize, usize, u32)> = Vec::new();
        if cfg.contention {
            for (i, f) in flows.iter().enumerate() {
                if matches!(state[i], St::Active) {
                    let key = (f.src.min(f.dst), f.src.max(f.dst));
                    match pair_load.iter_mut().find(|(a, b, _)| (*a, *b) == key) {
                        Some(e) => e.2 += 1,
                        None => pair_load.push((key.0, key.1, 1)),
                    }
                }
            }
        }
        let rate = |i: usize| -> f64 {
            let f = &flows[i];
            let cap = current.get(f.src, f.dst) * 1e6; // MB/s → bytes/s
            if !cfg.contention {
                return cap;
            }
            let key = (f.src.min(f.dst), f.src.max(f.dst));
            let load = pair_load
                .iter()
                .find(|(a, b, _)| (*a, *b) == key)
                .map_or(1, |e| e.2);
            cap / load as f64
        };

        // Next event: earliest completion, latency expiry, or rate
        // update.
        let mut t_next = f64::INFINITY;
        for i in 0..flows.len() {
            match state[i] {
                St::Active => {
                    let r = rate(i);
                    if r > 0.0 {
                        t_next = t_next.min(t + remaining[i] / r);
                    }
                }
                St::Latency { ready } => t_next = t_next.min(ready),
                _ => {}
            }
        }
        if next_update < updates.len() {
            t_next = t_next.min(updates[next_update].at_s.max(t));
        }
        if !t_next.is_finite() {
            // Every remaining flow sits on a dead link with no update in
            // sight: the round never finishes.
            report.makespan_s = f64::INFINITY;
            return report;
        }

        // Advance bytes and busy clocks over [t, t_next]. A flow
        // starved on a dead link (rate 0, waiting for a rate update)
        // moves nothing and does not make its endpoints busy.
        let dt = (t_next - t).max(0.0);
        if dt > 0.0 {
            let mut engaged = vec![false; n];
            for i in 0..flows.len() {
                if matches!(state[i], St::Active) {
                    let r = rate(i);
                    if r > 0.0 {
                        remaining[i] = (remaining[i] - r * dt).max(0.0);
                        engaged[flows[i].src] = true;
                        engaged[flows[i].dst] = true;
                    }
                }
            }
            for (b, e) in report.busy_s.iter_mut().zip(&engaged) {
                if *e {
                    *b += dt;
                }
            }
        }
        t = t_next;

        // Apply rate updates that have come due.
        while next_update < updates.len() && updates[next_update].at_s <= t {
            current = updates[next_update].bw.clone();
            next_update += 1;
        }

        // Complete drained flows.
        for i in 0..flows.len() {
            if matches!(state[i], St::Active) && remaining[i] <= eps[i] {
                complete!(i, t, state, report);
            }
        }
    }

    report.makespan_s = report
        .flows
        .iter()
        .map(|f| f.finish_s)
        .fold(0.0f64, f64::max);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) {
        assert!(
            (a - b).abs() <= 1e-9 * b.abs().max(1.0),
            "expected {b}, got {a}"
        );
    }

    #[test]
    fn single_flow_is_bytes_over_bandwidth() {
        let bw = BandwidthMatrix::constant(2, 2.0); // 2 MB/s
        let rep = simulate(&bw, &SimConfig::default(), &[FlowSpec::new(0, 1, 4e6)], &[]);
        approx(rep.makespan_s, 2.0);
        approx(rep.busy_s[0], 2.0);
        approx(rep.busy_s[1], 2.0);
    }

    #[test]
    fn fair_share_on_one_link_preserves_total_time() {
        // Two equal flows share the pair: each runs at half rate, both
        // finish when the link has moved the total bytes.
        let bw = BandwidthMatrix::constant(2, 1.0);
        let rep = simulate(
            &bw,
            &SimConfig::default(),
            &[FlowSpec::new(0, 1, 1e6), FlowSpec::new(1, 0, 1e6)],
            &[],
        );
        approx(rep.makespan_s, 2.0);
        approx(rep.flows[0].finish_s, 2.0);
        approx(rep.flows[1].finish_s, 2.0);
    }

    #[test]
    fn short_flow_releases_capacity_to_long_flow() {
        // 1 MB and 3 MB share a 2 MB/s link: the short one finishes at
        // t=1 (1 MB at 1 MB/s), after which the long one runs at full
        // rate: 1 MB moved by t=1, 2 MB left at 2 MB/s → t=2.
        let bw = BandwidthMatrix::constant(2, 2.0);
        let rep = simulate(
            &bw,
            &SimConfig::default(),
            &[FlowSpec::new(0, 1, 1e6), FlowSpec::new(1, 0, 3e6)],
            &[],
        );
        approx(rep.flows[0].finish_s, 1.0);
        approx(rep.flows[1].finish_s, 2.0);
    }

    #[test]
    fn contention_off_overlaps_flows() {
        let bw = BandwidthMatrix::constant(2, 1.0);
        let cfg = SimConfig {
            latency_s: 0.0,
            contention: false,
        };
        let rep = simulate(
            &bw,
            &cfg,
            &[FlowSpec::new(0, 1, 1e6), FlowSpec::new(1, 0, 1e6)],
            &[],
        );
        approx(rep.makespan_s, 1.0);
    }

    #[test]
    fn latency_delays_delivery() {
        let bw = BandwidthMatrix::constant(2, 1.0);
        let cfg = SimConfig {
            latency_s: 0.25,
            contention: true,
        };
        let rep = simulate(&bw, &cfg, &[FlowSpec::new(0, 1, 1e6)], &[]);
        approx(rep.makespan_s, 1.25);
        let rep2 = simulate(
            &bw,
            &cfg,
            &[FlowSpec::new(0, 1, 1e6).with_latency_units(4)],
            &[],
        );
        approx(rep2.makespan_s, 2.0);
    }

    #[test]
    fn chains_serialize_flows() {
        let bw = BandwidthMatrix::constant(3, 1.0);
        let rep = simulate(
            &bw,
            &SimConfig::default(),
            &[
                FlowSpec::new(0, 1, 1e6).on_chain(7),
                FlowSpec::new(0, 2, 1e6).on_chain(7),
            ],
            &[],
        );
        approx(rep.flows[0].finish_s, 1.0);
        approx(rep.flows[1].start_s, 1.0);
        approx(rep.flows[1].finish_s, 2.0);
    }

    #[test]
    fn release_time_offsets_start() {
        let bw = BandwidthMatrix::constant(2, 1.0);
        let rep = simulate(
            &bw,
            &SimConfig::default(),
            &[FlowSpec::new(0, 1, 1e6).released_at(3.0)],
            &[],
        );
        approx(rep.flows[0].start_s, 3.0);
        approx(rep.makespan_s, 4.0);
    }

    #[test]
    fn mid_flight_rate_update_changes_pace() {
        // 4 MB at 2 MB/s; at t=1 the link halves to 1 MB/s: 2 MB moved,
        // 2 MB left at 1 MB/s → finish at t=3 (vs 2 s undisturbed).
        let bw = BandwidthMatrix::constant(2, 2.0);
        let rep = simulate(
            &bw,
            &SimConfig::default(),
            &[FlowSpec::new(0, 1, 4e6)],
            &[RateUpdate {
                at_s: 1.0,
                bw: BandwidthMatrix::constant(2, 1.0),
            }],
        );
        approx(rep.makespan_s, 3.0);
    }

    #[test]
    fn rate_update_can_rescue_a_dead_link() {
        let bw = BandwidthMatrix::constant(2, 0.0);
        let rep = simulate(
            &bw,
            &SimConfig::default(),
            &[FlowSpec::new(0, 1, 1e6)],
            &[RateUpdate {
                at_s: 5.0,
                bw: BandwidthMatrix::constant(2, 1.0),
            }],
        );
        approx(rep.makespan_s, 6.0);
        // The starved interval [0, 5) is not transfer activity: the
        // endpoints were only busy while bytes actually moved.
        approx(rep.busy_s[0], 1.0);
        approx(rep.busy_s[1], 1.0);
    }

    #[test]
    fn dead_link_without_update_is_infinite() {
        let bw = BandwidthMatrix::constant(2, 0.0);
        let rep = simulate(&bw, &SimConfig::default(), &[FlowSpec::new(0, 1, 1.0)], &[]);
        assert!(rep.makespan_s.is_infinite());
        assert!(rep.flows[0].finish_s.is_infinite());
    }

    #[test]
    fn empty_flow_set_is_zero_time() {
        let bw = BandwidthMatrix::constant(2, 1.0);
        let rep = simulate(&bw, &SimConfig::default(), &[], &[]);
        assert_eq!(rep.makespan_s, 0.0);
    }

    #[test]
    fn zero_byte_flow_finishes_at_its_latency() {
        let bw = BandwidthMatrix::constant(2, 1.0);
        let cfg = SimConfig {
            latency_s: 0.5,
            contention: true,
        };
        let rep = simulate(&bw, &cfg, &[FlowSpec::new(0, 1, 0.0)], &[]);
        approx(rep.makespan_s, 0.5);
    }

    #[test]
    fn simulation_is_deterministic() {
        let bw = BandwidthMatrix::constant(4, 1.5);
        let flows: Vec<FlowSpec> = (0..12)
            .map(|i| {
                FlowSpec::new(i % 4, (i + 1) % 4, 1e6 + i as f64 * 1e5).released_at(i as f64 * 0.1)
            })
            .collect();
        let cfg = SimConfig {
            latency_s: 0.01,
            contention: true,
        };
        let a = simulate(&bw, &cfg, &flows, &[]);
        let b = simulate(&bw, &cfg, &flows, &[]);
        assert_eq!(a, b);
    }
}
