//! Property tests for the discrete-event network simulator and its
//! relationship to the closed-form analytic time model.
//!
//! The contract pinned here (see `docs/NETWORK_SIM.md`):
//!
//! * **Zero-latency equivalence** — for the peer-to-peer,
//!   parameter-server and ring all-reduce (m ≥ 3) patterns,
//!   `EventDriven { latency: 0, contention: true }` reproduces the
//!   analytic transfer time exactly (modulo float rounding). Two-worker
//!   collectives are the documented exception: both directions share
//!   one duplex pair, pricing exactly 2× analytic.
//! * **Latency only adds** — for those same patterns, event-driven time
//!   with positive latency is at least the analytic time.
//! * **Allgather is the loose exception** — the analytic formula gates
//!   every chunk on the global bottleneck link; the simulated
//!   serialized-sender schedule usually comes in under it, and
//!   duplex-direction collisions bound it at 2× in the worst case.
//! * **Monotone in bytes** — inflating any transfer never shortens the
//!   round, under either model.
//! * **Permutation invariance** — the order of the transfer list is
//!   irrelevant under either model.
//! * **Finiteness** — any transfer set over a fully connected
//!   (all-positive) bandwidth matrix prices finite.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use saps_netsim::flows::{simulate, FlowSpec, RateUpdate, SimConfig};
use saps_netsim::{BandwidthMatrix, TimeModel};

/// Relative-tolerance comparison for simulated vs closed-form times.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * b.abs().max(1e-9)
}

fn random_matrix(n: usize, seed: u64) -> BandwidthMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    BandwidthMatrix::uniform_random(n, 5.0, &mut rng)
}

/// A transfer list over `n` ranks with `pairs` entries and bytes drawn
/// from the matrix seed.
fn random_transfers(n: usize, pairs: usize, seed: u64) -> Vec<(usize, usize, u64)> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    (0..pairs)
        .map(|_| {
            let src = rng.gen_range(0..n);
            let mut dst = rng.gen_range(0..n);
            if dst == src {
                dst = (dst + 1) % n;
            }
            (src, dst, rng.gen_range(1u64..50_000_000))
        })
        .collect()
}

proptest! {
    #[test]
    fn p2p_des_zero_latency_equals_analytic(
        n in 2usize..10,
        pairs in 1usize..16,
        seed in any::<u64>(),
    ) {
        let bw = random_matrix(n, seed);
        let transfers = random_transfers(n, pairs, seed);
        let a = TimeModel::Analytic.price_p2p(&bw, &transfers, &[]);
        let d = TimeModel::event_driven(0.0).price_p2p(&bw, &transfers, &[]);
        prop_assert!(
            close(d.transfer_s, a.transfer_s),
            "des {} != analytic {}", d.transfer_s, a.transfer_s
        );
    }

    #[test]
    fn ps_des_zero_latency_equals_analytic(
        n in 3usize..10,
        seed in any::<u64>(),
    ) {
        let bw = random_matrix(n, seed);
        let server = bw.best_server();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xf00d);
        let mut clients: Vec<(usize, u64, u64)> = Vec::new();
        for w in 0..n {
            if rng.gen_bool(0.7) {
                let up = rng.gen_range(1u64..10_000_000);
                let down = rng.gen_range(1u64..10_000_000);
                clients.push((w, up, down));
            }
        }
        let a = TimeModel::Analytic.price_ps(&bw, server, &clients, &[]);
        let d = TimeModel::event_driven(0.0).price_ps(&bw, server, &clients, &[]);
        prop_assert!(
            close(d.transfer_s, a.transfer_s),
            "des {} != analytic {}", d.transfer_s, a.transfer_s
        );
    }

    // m = 2 is excluded: a 2-worker "ring" is a single duplex pair, and
    // under fair-share contention its two directions split the link —
    // the simulator prices 2× the analytic formula there (pinned in
    // `two_worker_collectives_share_the_duplex_pair` below).
    #[test]
    fn allreduce_des_zero_latency_equals_analytic(
        n in 3usize..12,
        bytes in 1u64..100_000_000,
        seed in any::<u64>(),
    ) {
        let bw = random_matrix(n, seed);
        let ranks: Vec<usize> = (0..n).collect();
        let a = TimeModel::Analytic.price_allreduce(&bw, &ranks, bytes, &[]);
        let d = TimeModel::event_driven(0.0).price_allreduce(&bw, &ranks, bytes, &[]);
        prop_assert!(
            close(d.transfer_s, a.transfer_s),
            "des {} != analytic {}", d.transfer_s, a.transfer_s
        );
    }

    #[test]
    fn latency_only_adds_time(
        n in 2usize..8,
        pairs in 1usize..12,
        latency in 0.0f64..0.5,
        seed in any::<u64>(),
    ) {
        let bw = random_matrix(n, seed);
        let transfers = random_transfers(n, pairs, seed);
        let ranks: Vec<usize> = (0..n).collect();
        let analytic = TimeModel::Analytic;
        let des = TimeModel::event_driven(latency);
        let slack = 1e-6;
        prop_assert!(
            des.price_p2p(&bw, &transfers, &[]).transfer_s
                >= analytic.price_p2p(&bw, &transfers, &[]).transfer_s * (1.0 - slack)
        );
        prop_assert!(
            des.price_allreduce(&bw, &ranks, 1_000_000, &[]).transfer_s
                >= analytic.price_allreduce(&bw, &ranks, 1_000_000, &[]).transfer_s
                    * (1.0 - slack)
        );
        let clients: Vec<(usize, u64, u64)> =
            (1..n).map(|w| (w, 1_000_000, 2_000_000)).collect();
        prop_assert!(
            des.price_ps(&bw, 0, &clients, &[]).transfer_s
                >= analytic.price_ps(&bw, 0, &clients, &[]).transfer_s * (1.0 - slack)
        );
    }

    #[test]
    fn allgather_des_within_twice_the_conservative_analytic(
        n in 3usize..8,
        bytes in 1u64..20_000_000,
        seed in any::<u64>(),
    ) {
        // Every unordered pair carries exactly two allgather transfers
        // (one per direction), so fair sharing never drops a flow below
        // half its link: each sender's chain — and hence the makespan —
        // is bounded by 2 × the analytic (m−1)·bytes/min_link, and on
        // most meshes the simulated schedule prices *under* the
        // analytic bound.
        let bw = random_matrix(n, seed);
        let ranks: Vec<usize> = (0..n).collect();
        let a = TimeModel::Analytic.price_allgather(&bw, &ranks, bytes, &[]);
        let d = TimeModel::event_driven(0.0).price_allgather(&bw, &ranks, bytes, &[]);
        prop_assert!(d.transfer_s > 0.0);
        prop_assert!(
            d.transfer_s <= 2.0 * a.transfer_s * (1.0 + 1e-6),
            "des {} > 2 x analytic {}", d.transfer_s, a.transfer_s
        );
    }

    #[test]
    fn round_time_monotone_in_bytes(
        n in 2usize..8,
        pairs in 1usize..12,
        scale in 1u64..20,
        latency in 0.0f64..0.1,
        seed in any::<u64>(),
    ) {
        let bw = random_matrix(n, seed);
        let base = random_transfers(n, pairs, seed);
        let inflated: Vec<(usize, usize, u64)> = base
            .iter()
            .map(|&(s, d, b)| (s, d, b.saturating_mul(scale)))
            .collect();
        for model in [TimeModel::Analytic, TimeModel::event_driven(latency)] {
            let small = model.price_p2p(&bw, &base, &[]).transfer_s;
            let big = model.price_p2p(&bw, &inflated, &[]).transfer_s;
            prop_assert!(
                big >= small * (1.0 - 1e-9),
                "{model:?}: inflating bytes shortened the round ({small} -> {big})"
            );
        }
    }

    #[test]
    fn p2p_pricing_invariant_under_transfer_permutation(
        n in 2usize..8,
        pairs in 2usize..14,
        latency in 0.0f64..0.2,
        seed in any::<u64>(),
    ) {
        let bw = random_matrix(n, seed);
        let transfers = random_transfers(n, pairs, seed);
        // A deterministic shuffle of the same list.
        let mut permuted = transfers.clone();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37);
        for i in (1..permuted.len()).rev() {
            permuted.swap(i, rng.gen_range(0..=i));
        }
        for model in [TimeModel::Analytic, TimeModel::event_driven(latency)] {
            let a = model.price_p2p(&bw, &transfers, &[]);
            let b = model.price_p2p(&bw, &permuted, &[]);
            prop_assert!(
                close(a.transfer_s, b.transfer_s),
                "{model:?}: order changed the price ({} vs {})",
                a.transfer_s,
                b.transfer_s
            );
        }
    }

    #[test]
    fn any_transfer_set_is_finite_on_a_connected_matrix(
        n in 2usize..8,
        pairs in 1usize..16,
        latency in 0.0f64..0.3,
        seed in any::<u64>(),
    ) {
        // uniform_random draws every pair in (0, 5] MB/s: fully
        // connected, so no flow can starve.
        let bw = random_matrix(n, seed);
        let transfers = random_transfers(n, pairs, seed);
        let ranks: Vec<usize> = (0..n).collect();
        for model in [TimeModel::Analytic, TimeModel::event_driven(latency)] {
            prop_assert!(model.price_p2p(&bw, &transfers, &[]).transfer_s.is_finite());
            prop_assert!(model
                .price_allreduce(&bw, &ranks, 1_000_000, &[])
                .transfer_s
                .is_finite());
            prop_assert!(model
                .price_allgather(&bw, &ranks, 1_000_000, &[])
                .transfer_s
                .is_finite());
        }
    }

    #[test]
    fn two_worker_collectives_share_the_duplex_pair(
        bytes in 1u64..50_000_000,
        seed in any::<u64>(),
    ) {
        // With exactly two workers, both collective directions ride the
        // one unordered pair; fair-share contention halves each, so the
        // event-driven price is exactly twice the analytic one.
        let bw = random_matrix(2, seed);
        let ranks = [0usize, 1];
        for (a, d) in [
            (
                TimeModel::Analytic.price_allreduce(&bw, &ranks, bytes, &[]),
                TimeModel::event_driven(0.0).price_allreduce(&bw, &ranks, bytes, &[]),
            ),
            (
                TimeModel::Analytic.price_allgather(&bw, &ranks, bytes, &[]),
                TimeModel::event_driven(0.0).price_allgather(&bw, &ranks, bytes, &[]),
            ),
        ] {
            prop_assert!(
                close(d.transfer_s, 2.0 * a.transfer_s),
                "des {} != 2 x analytic {}", d.transfer_s, a.transfer_s
            );
        }
    }

    #[test]
    fn identity_rate_update_is_a_noop(
        n in 2usize..8,
        pairs in 1usize..10,
        at in 0.0f64..5.0,
        seed in any::<u64>(),
    ) {
        let bw = random_matrix(n, seed);
        let flows: Vec<FlowSpec> = random_transfers(n, pairs, seed)
            .into_iter()
            .map(|(s, d, b)| FlowSpec::new(s, d, b as f64))
            .collect();
        let cfg = SimConfig::default();
        let plain = simulate(&bw, &cfg, &flows, &[]);
        let updated = simulate(
            &bw,
            &cfg,
            &flows,
            &[RateUpdate { at_s: at, bw: bw.clone() }],
        );
        prop_assert!(close(plain.makespan_s, updated.makespan_s));
    }

    #[test]
    fn mid_flight_slowdown_lands_between_bounds(
        n in 2usize..6,
        seed in any::<u64>(),
        cut in 0.1f64..0.9,
    ) {
        // One flow; halve ... scale the matrix mid-transfer: the result
        // must lie between the all-fast and all-slow extremes.
        let bw = random_matrix(n, seed);
        let slow = {
            let mut m = bw.clone();
            for i in 0..n {
                for j in (i + 1)..n {
                    m.set(i, j, bw.get(i, j) * 0.5);
                }
            }
            m
        };
        let flow = [FlowSpec::new(0, 1, 10_000_000.0)];
        let cfg = SimConfig::default();
        let fast_t = simulate(&bw, &cfg, &flow, &[]).makespan_s;
        let slow_t = simulate(&slow, &cfg, &flow, &[]).makespan_s;
        let mid = simulate(
            &bw,
            &cfg,
            &flow,
            &[RateUpdate { at_s: fast_t * cut, bw: slow.clone() }],
        )
        .makespan_s;
        prop_assert!(mid >= fast_t * (1.0 - 1e-9), "{mid} < {fast_t}");
        prop_assert!(mid <= slow_t * (1.0 + 1e-9), "{mid} > {slow_t}");
    }
}
