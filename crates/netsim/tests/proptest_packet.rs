//! Property tests pinning the packet-level model against the fluid
//! discrete-event simulator.
//!
//! The contract (see `docs/NETWORK_SIM.md`):
//!
//! * **Ideal degeneration** — at zero loss, zero queueing and zero RTT
//!   the packet model agrees with the fluid DES on all four traffic
//!   patterns (p2p, parameter-server, ring all-reduce, allgather).
//! * **Loss only adds time** — turning on random loss (any seed) never
//!   shortens a round.
//! * **RTT only adds time** — window ramps, queueing delay and
//!   congestion drops never beat the fluid fair share.
//! * **Monotone in bytes** — inflating any transfer never shortens a
//!   loss-free round, window dynamics and all.
//! * **Permutation invariance** — the p2p transfer-list order is
//!   irrelevant even with loss: per-flow loss RNGs are seeded from the
//!   flow's identity, not its list position.
//! * **Determinism** — a run is a pure function of its inputs.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use saps_netsim::{BandwidthMatrix, PacketConfig, TimeModel};

/// Relative-tolerance comparison for simulated times.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * b.abs().max(1e-9)
}

fn random_matrix(n: usize, seed: u64) -> BandwidthMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    BandwidthMatrix::uniform_random(n, 5.0, &mut rng)
}

/// A random matrix with links floored at 0.5 MB/s. Windowed/lossy runs
/// cost O(makespan / rtt) events per flow, so the tests that exercise
/// them keep makespans bounded; the ideal-degeneration tests use the
/// unfloored draws.
fn random_matrix_floored(n: usize, seed: u64) -> BandwidthMatrix {
    let mut m = random_matrix(n, seed);
    for i in 0..n {
        for j in (i + 1)..n {
            m.set(i, j, m.get(i, j).max(0.5));
        }
    }
    m
}

fn random_transfers_up_to(
    n: usize,
    pairs: usize,
    seed: u64,
    max_bytes: u64,
) -> Vec<(usize, usize, u64)> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    (0..pairs)
        .map(|_| {
            let src = rng.gen_range(0..n);
            let mut dst = rng.gen_range(0..n);
            if dst == src {
                dst = (dst + 1) % n;
            }
            (src, dst, rng.gen_range(1u64..max_bytes))
        })
        .collect()
}

fn random_transfers(n: usize, pairs: usize, seed: u64) -> Vec<(usize, usize, u64)> {
    random_transfers_up_to(n, pairs, seed, 50_000_000)
}

/// The acceptance-criteria contract point: zero loss, zero queueing,
/// zero RTT.
fn ideal() -> TimeModel {
    TimeModel::packet(PacketConfig::ideal().with_queue(0))
}

fn fluid() -> TimeModel {
    TimeModel::event_driven(0.0)
}

proptest! {
    #[test]
    fn ideal_packet_equals_fluid_on_p2p(
        n in 2usize..10,
        pairs in 1usize..16,
        seed in any::<u64>(),
    ) {
        let bw = random_matrix(n, seed);
        let transfers = random_transfers(n, pairs, seed);
        let f = fluid().price_p2p(&bw, &transfers, &[]);
        let p = ideal().price_p2p(&bw, &transfers, &[]);
        prop_assert!(
            close(p.transfer_s, f.transfer_s),
            "packet {} != fluid {}", p.transfer_s, f.transfer_s
        );
    }

    #[test]
    fn ideal_packet_equals_fluid_on_ps(
        n in 3usize..10,
        seed in any::<u64>(),
    ) {
        let bw = random_matrix(n, seed);
        let server = bw.best_server();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xf00d);
        let mut clients: Vec<(usize, u64, u64)> = Vec::new();
        for w in 0..n {
            if rng.gen_bool(0.7) {
                clients.push((
                    w,
                    rng.gen_range(1u64..10_000_000),
                    rng.gen_range(1u64..10_000_000),
                ));
            }
        }
        let f = fluid().price_ps(&bw, server, &clients, &[]);
        let p = ideal().price_ps(&bw, server, &clients, &[]);
        prop_assert!(
            close(p.transfer_s, f.transfer_s),
            "packet {} != fluid {}", p.transfer_s, f.transfer_s
        );
    }

    #[test]
    fn ideal_packet_equals_fluid_on_ring_allreduce(
        n in 2usize..12,
        bytes in 1u64..100_000_000,
        seed in any::<u64>(),
    ) {
        let bw = random_matrix(n, seed);
        let ranks: Vec<usize> = (0..n).collect();
        let f = fluid().price_allreduce(&bw, &ranks, bytes, &[]);
        let p = ideal().price_allreduce(&bw, &ranks, bytes, &[]);
        prop_assert!(
            close(p.transfer_s, f.transfer_s),
            "packet {} != fluid {}", p.transfer_s, f.transfer_s
        );
    }

    #[test]
    fn ideal_packet_equals_fluid_on_allgather(
        n in 2usize..8,
        bytes in 1u64..20_000_000,
        seed in any::<u64>(),
    ) {
        let bw = random_matrix(n, seed);
        let ranks: Vec<usize> = (0..n).collect();
        let f = fluid().price_allgather(&bw, &ranks, bytes, &[]);
        let p = ideal().price_allgather(&bw, &ranks, bytes, &[]);
        prop_assert!(
            close(p.transfer_s, f.transfer_s),
            "packet {} != fluid {}", p.transfer_s, f.transfer_s
        );
    }

    #[test]
    fn loss_only_adds_time(
        n in 2usize..8,
        pairs in 1usize..8,
        loss in 0.0f64..0.3,
        seed in any::<u64>(),
    ) {
        let bw = random_matrix_floored(n, seed);
        let transfers = random_transfers_up_to(n, pairs, seed, 5_000_000);
        let clean = ideal().price_p2p(&bw, &transfers, &[]).transfer_s;
        let lossy = TimeModel::packet(
            PacketConfig::ideal().with_queue(0).with_loss(loss).with_seed(seed),
        )
        .price_p2p(&bw, &transfers, &[])
        .transfer_s;
        prop_assert!(
            lossy >= clean * (1.0 - 1e-6),
            "loss {loss} shortened the round ({clean} -> {lossy})"
        );
    }

    #[test]
    fn rtt_only_adds_time(
        n in 2usize..8,
        pairs in 1usize..8,
        rtt in 0.005f64..0.05,
        queue in 0u32..64,
        seed in any::<u64>(),
    ) {
        let bw = random_matrix_floored(n, seed);
        let transfers = random_transfers_up_to(n, pairs, seed, 5_000_000);
        let ranks: Vec<usize> = (0..n).collect();
        let windowed = TimeModel::packet(
            PacketConfig::ideal().with_rtt(rtt).with_queue(queue),
        );
        for (got, base) in [
            (
                windowed.price_p2p(&bw, &transfers, &[]).transfer_s,
                fluid().price_p2p(&bw, &transfers, &[]).transfer_s,
            ),
            (
                windowed.price_allreduce(&bw, &ranks, 1_000_000, &[]).transfer_s,
                fluid().price_allreduce(&bw, &ranks, 1_000_000, &[]).transfer_s,
            ),
        ] {
            prop_assert!(
                got >= base * (1.0 - 1e-6),
                "rtt {rtt} beat the fluid share ({base} -> {got})"
            );
        }
    }

    #[test]
    fn lossfree_round_time_monotone_in_bytes(
        n in 2usize..8,
        pairs in 1usize..8,
        scale in 1u64..8,
        rtt in 0.005f64..0.05,
        queue in 0u32..64,
        seed in any::<u64>(),
    ) {
        let bw = random_matrix_floored(n, seed);
        let base = random_transfers_up_to(n, pairs, seed, 2_000_000);
        let inflated: Vec<(usize, usize, u64)> = base
            .iter()
            .map(|&(s, d, b)| (s, d, b.saturating_mul(scale)))
            .collect();
        let model = TimeModel::packet(
            PacketConfig::ideal().with_rtt(rtt).with_queue(queue),
        );
        let small = model.price_p2p(&bw, &base, &[]).transfer_s;
        let big = model.price_p2p(&bw, &inflated, &[]).transfer_s;
        prop_assert!(
            big >= small * (1.0 - 1e-9),
            "inflating bytes shortened the round ({small} -> {big})"
        );
    }

    #[test]
    fn p2p_pricing_invariant_under_transfer_permutation(
        n in 2usize..8,
        pairs in 2usize..10,
        loss in 0.0f64..0.2,
        rtt in 0.005f64..0.05,
        seed in any::<u64>(),
    ) {
        let bw = random_matrix_floored(n, seed);
        let transfers = random_transfers_up_to(n, pairs, seed, 5_000_000);
        let mut permuted = transfers.clone();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37);
        for i in (1..permuted.len()).rev() {
            permuted.swap(i, rng.gen_range(0..=i));
        }
        let model = TimeModel::packet(
            PacketConfig::ideal().with_loss(loss).with_rtt(rtt).with_seed(seed),
        );
        let a = model.price_p2p(&bw, &transfers, &[]);
        let b = model.price_p2p(&bw, &permuted, &[]);
        prop_assert!(
            close(a.transfer_s, b.transfer_s),
            "order changed the packet price ({} vs {})", a.transfer_s, b.transfer_s
        );
    }

    #[test]
    fn packet_pricing_is_deterministic_and_finite(
        n in 2usize..8,
        pairs in 1usize..8,
        loss in 0.0f64..0.3,
        rtt in 0.005f64..0.05,
        queue in 0u32..32,
        seed in any::<u64>(),
    ) {
        // The floored matrix is fully connected, so even a lossy
        // windowed run cannot starve.
        let bw = random_matrix_floored(n, seed);
        let transfers = random_transfers_up_to(n, pairs, seed, 5_000_000);
        let ranks: Vec<usize> = (0..n).collect();
        let model = TimeModel::packet(
            PacketConfig::ideal()
                .with_loss(loss)
                .with_rtt(rtt)
                .with_queue(queue)
                .with_seed(seed),
        );
        let a = model.price_p2p(&bw, &transfers, &[]);
        let b = model.price_p2p(&bw, &transfers, &[]);
        prop_assert!(a.transfer_s.is_finite());
        prop_assert!(a.transfer_s == b.transfer_s, "nondeterministic packet price");
        prop_assert!(model.price_allreduce(&bw, &ranks, 1_000_000, &[]).transfer_s.is_finite());
        prop_assert!(model.price_allgather(&bw, &ranks, 1_000_000, &[]).transfer_s.is_finite());
    }
}
