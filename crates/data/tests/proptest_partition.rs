//! Property tests for dataset generation and partitioning.

use proptest::prelude::*;
use saps_data::{partition, SyntheticSpec};

fn spec(samples: usize, classes: usize) -> SyntheticSpec {
    SyntheticSpec {
        feature_dim: 8,
        num_classes: classes,
        num_samples: samples,
        noise: 0.3,
        class_separation: 1.0,
        mixing_taps: 2,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn iid_partition_is_exact_and_balanced(
        samples in 10usize..400,
        workers in 1usize..12,
        seed in any::<u64>(),
    ) {
        let ds = spec(samples, 4).generate(seed);
        let parts = partition::iid(&ds, workers, seed);
        prop_assert_eq!(parts.len(), workers);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        prop_assert_eq!(total, ds.len());
        let max = parts.iter().map(|p| p.len()).max().unwrap();
        let min = parts.iter().map(|p| p.len()).min().unwrap();
        prop_assert!(max - min <= 1, "sizes differ by {}", max - min);
    }

    #[test]
    fn dirichlet_partition_is_exact(
        samples in 20usize..400,
        workers in 2usize..10,
        alpha in 0.05f64..50.0,
        seed in any::<u64>(),
    ) {
        let ds = spec(samples, 5).generate(seed);
        let parts = partition::dirichlet(&ds, workers, alpha, seed);
        prop_assert_eq!(parts.len(), workers);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        prop_assert_eq!(total, ds.len());
        // Class histograms across workers must sum to the global one.
        let global = ds.class_histogram();
        let mut summed = vec![0usize; ds.num_classes()];
        for p in &parts {
            for (s, c) in summed.iter_mut().zip(p.class_histogram()) {
                *s += c;
            }
        }
        prop_assert_eq!(summed, global);
    }

    #[test]
    fn shards_partition_is_exact(
        samples in 40usize..400,
        workers in 2usize..8,
        spw in 1usize..4,
        seed in any::<u64>(),
    ) {
        let ds = spec(samples, 4).generate(seed);
        let parts = partition::shards(&ds, workers, spw, seed);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        prop_assert_eq!(total, ds.len());
    }

    #[test]
    fn heterogeneity_is_normalized(
        samples in 40usize..300,
        workers in 2usize..8,
        seed in any::<u64>(),
    ) {
        let ds = spec(samples, 4).generate(seed);
        for parts in [
            partition::iid(&ds, workers, seed),
            partition::shards(&ds, workers, 1, seed),
            partition::dirichlet(&ds, workers, 0.2, seed),
        ] {
            let h = partition::heterogeneity(&parts);
            prop_assert!((0.0..=1.0).contains(&h), "heterogeneity {}", h);
        }
    }

    #[test]
    fn generation_deterministic_and_shaped(
        samples in 1usize..200,
        classes in 2usize..8,
        seed in any::<u64>(),
    ) {
        let a = spec(samples, classes).generate(seed);
        let b = spec(samples, classes).generate(seed);
        prop_assert_eq!(a.len(), samples);
        prop_assert_eq!(a.labels(), b.labels());
        for i in 0..a.len() {
            prop_assert_eq!(a.features_of(i), b.features_of(i));
        }
    }

    #[test]
    fn batches_draw_valid_rows(
        samples in 1usize..100,
        batch in 1usize..64,
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let ds = spec(samples, 3).generate(seed);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let b = ds.sample_batch(batch, &mut rng);
        prop_assert_eq!(b.len(), batch);
        prop_assert!(b.labels.iter().all(|&l| l < 3));
        prop_assert_eq!(b.features.len(), batch * ds.feature_dim());
    }
}
