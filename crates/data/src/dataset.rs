//! In-memory labelled datasets and mini-batch sampling.

use rand::seq::SliceRandom;
use rand::Rng;

/// An in-memory classification dataset: dense feature rows plus integer
/// labels.
#[derive(Debug, Clone)]
pub struct Dataset {
    features: Vec<f32>,
    labels: Vec<usize>,
    feature_dim: usize,
    num_classes: usize,
}

/// A borrowed mini-batch: `batch_size × feature_dim` features and the
/// matching labels.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Row-major features, `labels.len() × feature_dim`.
    pub features: Vec<f32>,
    /// Class labels.
    pub labels: Vec<usize>,
    /// Feature dimension of each row.
    pub feature_dim: usize,
}

impl Dataset {
    /// Builds a dataset from raw parts.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree or a label is out of range.
    pub fn new(
        features: Vec<f32>,
        labels: Vec<usize>,
        feature_dim: usize,
        num_classes: usize,
    ) -> Self {
        assert_eq!(
            features.len(),
            labels.len() * feature_dim,
            "features must be labels.len() × feature_dim"
        );
        assert!(
            labels.iter().all(|&l| l < num_classes),
            "label out of range"
        );
        Dataset {
            features,
            labels,
            feature_dim,
            num_classes,
        }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimension of one example.
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The feature row of example `i`.
    pub fn features_of(&self, i: usize) -> &[f32] {
        &self.features[i * self.feature_dim..(i + 1) * self.feature_dim]
    }

    /// The label of example `i`.
    pub fn label_of(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Copies the examples at `indices` into a new dataset.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let mut features = Vec::with_capacity(indices.len() * self.feature_dim);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            features.extend_from_slice(self.features_of(i));
            labels.push(self.labels[i]);
        }
        Dataset {
            features,
            labels,
            feature_dim: self.feature_dim,
            num_classes: self.num_classes,
        }
    }

    /// Splits into `(train, validation)` with `val_fraction` of examples
    /// (deterministically shuffled by `seed`) going to validation.
    pub fn split(&self, val_fraction: f64, seed: u64) -> (Dataset, Dataset) {
        assert!((0.0..1.0).contains(&val_fraction));
        use rand::SeedableRng;
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
        let val_n = (self.len() as f64 * val_fraction).round() as usize;
        let (val_idx, train_idx) = idx.split_at(val_n);
        (self.subset(train_idx), self.subset(val_idx))
    }

    /// Samples a mini-batch of `batch_size` examples with replacement
    /// (mirroring the i.i.d. sampling assumed by the convergence analysis).
    pub fn sample_batch<R: Rng>(&self, batch_size: usize, rng: &mut R) -> Batch {
        assert!(!self.is_empty(), "cannot sample from an empty dataset");
        let mut features = Vec::with_capacity(batch_size * self.feature_dim);
        let mut labels = Vec::with_capacity(batch_size);
        for _ in 0..batch_size {
            let i = rng.gen_range(0..self.len());
            features.extend_from_slice(self.features_of(i));
            labels.push(self.labels[i]);
        }
        Batch {
            features,
            labels,
            feature_dim: self.feature_dim,
        }
    }

    /// Per-class example counts.
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.num_classes];
        for &l in &self.labels {
            h[l] += 1;
        }
        h
    }
}

impl Batch {
    /// Number of examples in the batch.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The feature row of example `i`.
    pub fn features_of(&self, i: usize) -> &[f32] {
        &self.features[i * self.feature_dim..(i + 1) * self.feature_dim]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> Dataset {
        Dataset::new(
            vec![0.0, 0.1, 1.0, 1.1, 2.0, 2.1, 3.0, 3.1],
            vec![0, 1, 0, 1],
            2,
            2,
        )
    }

    #[test]
    fn accessors() {
        let d = toy();
        assert_eq!(d.len(), 4);
        assert_eq!(d.feature_dim(), 2);
        assert_eq!(d.num_classes(), 2);
        assert_eq!(d.features_of(1), &[1.0, 1.1]);
        assert_eq!(d.label_of(3), 1);
        assert_eq!(d.class_histogram(), vec![2, 2]);
    }

    #[test]
    fn subset_copies_rows() {
        let d = toy();
        let s = d.subset(&[2, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.features_of(0), &[2.0, 2.1]);
        assert_eq!(s.label_of(1), 0);
    }

    #[test]
    fn split_partitions_everything() {
        let d = toy();
        let (train, val) = d.split(0.25, 5);
        assert_eq!(train.len() + val.len(), 4);
        assert_eq!(val.len(), 1);
    }

    #[test]
    fn split_is_deterministic() {
        let d = toy();
        let (t1, v1) = d.split(0.5, 9);
        let (t2, v2) = d.split(0.5, 9);
        assert_eq!(t1.labels(), t2.labels());
        assert_eq!(v1.labels(), v2.labels());
    }

    #[test]
    fn sample_batch_shapes() {
        let d = toy();
        let mut rng = StdRng::seed_from_u64(1);
        let b = d.sample_batch(3, &mut rng);
        assert_eq!(b.len(), 3);
        assert_eq!(b.features.len(), 6);
        assert_eq!(b.features_of(0).len(), 2);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_bad_labels() {
        let _ = Dataset::new(vec![0.0], vec![5], 1, 2);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn rejects_sampling_empty() {
        let d = Dataset::new(vec![], vec![], 3, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let _ = d.sample_batch(1, &mut rng);
    }
}
