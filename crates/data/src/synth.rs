//! Synthetic class-conditional dataset generators.
//!
//! Each class `k` gets a random mean vector μ_k; an example of class `k`
//! is `tanh(P·(μ_k + σ·ε))` where `ε ~ N(0, I)` and `P` is a fixed random
//! sparse mixing matrix shared by the whole dataset. The `tanh(P·)`
//! distortion makes classes non-linearly separable (so convolutional /
//! multi-layer models genuinely help), while σ controls gradient noise —
//! the quantity the paper's convergence assumptions (bounded σ², ζ²)
//! actually constrain.

use crate::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use saps_tensor::rng::{derive_seed, streams};

/// Specification of a synthetic dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticSpec {
    /// Feature dimension of one example (e.g. 28·28 = 784).
    pub feature_dim: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Number of examples to generate.
    pub num_samples: usize,
    /// Within-class noise scale σ.
    pub noise: f32,
    /// Distance scale between class means.
    pub class_separation: f32,
    /// Number of random mixing taps per output feature (controls how
    /// nonlinear the class boundaries are).
    pub mixing_taps: usize,
}

impl SyntheticSpec {
    /// An MNIST-shaped dataset: 784 features (28×28×1), 10 classes,
    /// 60 000 examples by default.
    pub fn mnist_like() -> Self {
        SyntheticSpec {
            feature_dim: 28 * 28,
            num_classes: 10,
            num_samples: 60_000,
            noise: 0.35,
            class_separation: 1.0,
            mixing_taps: 4,
        }
    }

    /// A CIFAR-10-shaped dataset: 3072 features (32×32×3), 10 classes,
    /// 50 000 examples by default, noisier than MNIST (CIFAR is harder).
    pub fn cifar10_like() -> Self {
        SyntheticSpec {
            feature_dim: 32 * 32 * 3,
            num_classes: 10,
            num_samples: 50_000,
            noise: 0.8,
            class_separation: 1.0,
            mixing_taps: 4,
        }
    }

    /// A small, easy dataset for fast unit tests.
    pub fn tiny() -> Self {
        SyntheticSpec {
            feature_dim: 16,
            num_classes: 4,
            num_samples: 400,
            noise: 0.15,
            class_separation: 1.5,
            mixing_taps: 2,
        }
    }

    /// Overrides the sample count (builder style).
    pub fn samples(mut self, n: usize) -> Self {
        self.num_samples = n;
        self
    }

    /// Overrides the feature dimension (builder style).
    pub fn features(mut self, d: usize) -> Self {
        self.feature_dim = d;
        self
    }

    /// Overrides the noise scale (builder style).
    pub fn noise(mut self, sigma: f32) -> Self {
        self.noise = sigma;
        self
    }

    /// Generates the dataset deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Dataset {
        assert!(self.num_classes >= 2, "need at least two classes");
        assert!(self.feature_dim >= 1);
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, 0, streams::DATA));
        let d = self.feature_dim;

        // Per-class means on a scaled hypersphere-ish layout.
        let means: Vec<Vec<f32>> = (0..self.num_classes)
            .map(|_| {
                (0..d)
                    .map(|_| self.class_separation * sample_normal(&mut rng))
                    .collect()
            })
            .collect();

        // Fixed sparse mixing: each output feature is a signed sum of
        // `mixing_taps` random input coordinates (applied post-noise).
        let taps: Vec<(u32, f32)> = (0..d * self.mixing_taps)
            .map(|_| {
                (
                    rng.gen_range(0..d as u32),
                    if rng.gen_bool(0.5) { 1.0 } else { -1.0 },
                )
            })
            .collect();

        let mut features = Vec::with_capacity(self.num_samples * d);
        let mut labels = Vec::with_capacity(self.num_samples);
        let mut raw = vec![0.0f32; d];
        for i in 0..self.num_samples {
            let k = i % self.num_classes; // balanced classes
            for (r, m) in raw.iter_mut().zip(&means[k]) {
                *r = m + self.noise * sample_normal(&mut rng);
            }
            for out in 0..d {
                let mut acc = raw[out];
                for t in 0..self.mixing_taps {
                    let (src, sign) = taps[out * self.mixing_taps + t];
                    acc += sign * raw[src as usize];
                }
                features.push((acc / (1.0 + self.mixing_taps as f32)).tanh());
            }
            labels.push(k);
        }
        Dataset::new(features, labels, d, self.num_classes)
    }
}

/// Box–Muller standard normal.
fn sample_normal<R: Rng>(rng: &mut R) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_spec() {
        let ds = SyntheticSpec::tiny().generate(1);
        assert_eq!(ds.len(), 400);
        assert_eq!(ds.feature_dim(), 16);
        assert_eq!(ds.num_classes(), 4);
    }

    #[test]
    fn deterministic_by_seed() {
        let a = SyntheticSpec::tiny().generate(7);
        let b = SyntheticSpec::tiny().generate(7);
        assert_eq!(a.features_of(13), b.features_of(13));
        assert_eq!(a.labels(), b.labels());
        let c = SyntheticSpec::tiny().generate(8);
        assert_ne!(a.features_of(13), c.features_of(13));
    }

    #[test]
    fn classes_are_balanced() {
        let ds = SyntheticSpec::tiny().samples(401).generate(2);
        let h = ds.class_histogram();
        let (max, min) = (h.iter().max().unwrap(), h.iter().min().unwrap());
        assert!(max - min <= 1, "histogram {h:?}");
    }

    #[test]
    fn features_bounded_by_tanh() {
        let ds = SyntheticSpec::tiny().generate(3);
        for i in 0..ds.len() {
            assert!(ds.features_of(i).iter().all(|v| v.abs() <= 1.0));
        }
    }

    #[test]
    fn classes_are_statistically_separable() {
        // Nearest-class-centroid classification on held-out data should
        // beat chance by a wide margin: the signal must survive the
        // nonlinearity.
        let ds = SyntheticSpec::tiny().samples(2_000).generate(4);
        let (train, val) = ds.split(0.2, 1);
        let d = train.feature_dim();
        let k = train.num_classes();
        let mut centroids = vec![vec![0.0f64; d]; k];
        let mut counts = vec![0usize; k];
        for i in 0..train.len() {
            let l = train.label_of(i);
            counts[l] += 1;
            for (c, &f) in centroids[l].iter_mut().zip(train.features_of(i)) {
                *c += f as f64;
            }
        }
        for (c, &n) in centroids.iter_mut().zip(&counts) {
            for v in c.iter_mut() {
                *v /= n as f64;
            }
        }
        let mut correct = 0;
        for i in 0..val.len() {
            let f = val.features_of(i);
            let pred = (0..k)
                .min_by(|&a, &b| {
                    let da: f64 = centroids[a]
                        .iter()
                        .zip(f)
                        .map(|(c, &x)| (c - x as f64).powi(2))
                        .sum();
                    let db: f64 = centroids[b]
                        .iter()
                        .zip(f)
                        .map(|(c, &x)| (c - x as f64).powi(2))
                        .sum();
                    da.partial_cmp(&db).unwrap()
                })
                .unwrap();
            if pred == val.label_of(i) {
                correct += 1;
            }
        }
        let acc = correct as f64 / val.len() as f64;
        assert!(acc > 0.6, "centroid accuracy {acc} (chance = 0.25)");
    }

    #[test]
    fn mnist_and_cifar_shapes() {
        let m = SyntheticSpec::mnist_like().samples(10).generate(0);
        assert_eq!(m.feature_dim(), 784);
        let c = SyntheticSpec::cifar10_like().samples(10).generate(0);
        assert_eq!(c.feature_dim(), 3072);
    }

    #[test]
    fn builder_overrides() {
        let s = SyntheticSpec::tiny().samples(5).features(8).noise(0.5);
        assert_eq!(s.num_samples, 5);
        assert_eq!(s.feature_dim, 8);
        assert_eq!(s.noise, 0.5);
    }
}
