//! Synthetic datasets and data partitioners for the SAPS-PSGD reproduction.
//!
//! The paper trains on MNIST and CIFAR-10. Those image files are not
//! available in this offline reproduction, so this crate generates
//! **synthetic class-conditional datasets with the same shapes** (28×28×1
//! and 32×32×3, 10 classes) — Gaussian clusters around per-class mean
//! images, pushed through a fixed random nonlinear distortion so the
//! classes are not linearly separable. The distributed-training algorithms
//! under study interact with data only through stochastic gradients, so
//! controlling gradient noise and inter-worker heterogeneity (IID vs
//! Dirichlet non-IID partitioning) preserves the comparisons the paper
//! makes. See DESIGN.md §6 for the substitution rationale.
//!
//! # Example
//!
//! ```
//! use saps_data::{SyntheticSpec, partition};
//!
//! let ds = SyntheticSpec::mnist_like().samples(1_000).generate(42);
//! assert_eq!(ds.len(), 1_000);
//! let parts = partition::iid(&ds, 4, 7);
//! assert_eq!(parts.len(), 4);
//! ```

#![warn(missing_docs)]

mod dataset;
pub mod partition;
mod synth;

pub use dataset::{Batch, Dataset};
pub use synth::SyntheticSpec;
