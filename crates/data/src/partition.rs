//! Data partitioning across workers.
//!
//! Federated-learning evaluations distinguish IID partitions (each worker
//! sees the global distribution) from non-IID ones (workers see skewed
//! class mixtures). The paper's setting — geo-distributed, dynamic workers
//! — is the non-IID regime FedAvg \[35\] was designed for; the bounded
//! heterogeneity ζ² of Assumption 4 is precisely what these partitioners
//! control.

use crate::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Splits `ds` into `n` near-equal IID shards (deterministic in `seed`).
pub fn iid(ds: &Dataset, n: usize, seed: u64) -> Vec<Dataset> {
    assert!(n >= 1, "need at least one worker");
    let mut idx: Vec<usize> = (0..ds.len()).collect();
    idx.shuffle(&mut StdRng::seed_from_u64(seed));
    chunk_indices(&idx, n)
        .into_iter()
        .map(|c| ds.subset(&c))
        .collect()
}

/// Shard-based non-IID split (the FedAvg paper's pathological partition):
/// sorts examples by label, cuts them into `n * shards_per_worker`
/// contiguous shards, and deals each worker `shards_per_worker` random
/// shards — so each worker sees only a few classes.
pub fn shards(ds: &Dataset, n: usize, shards_per_worker: usize, seed: u64) -> Vec<Dataset> {
    assert!(n >= 1 && shards_per_worker >= 1);
    let mut idx: Vec<usize> = (0..ds.len()).collect();
    idx.sort_by_key(|&i| ds.label_of(i));
    let total_shards = n * shards_per_worker;
    let shard_list = chunk_indices(&idx, total_shards);
    let mut order: Vec<usize> = (0..total_shards).collect();
    order.shuffle(&mut StdRng::seed_from_u64(seed));
    (0..n)
        .map(|w| {
            let mut mine = Vec::new();
            for s in 0..shards_per_worker {
                mine.extend_from_slice(&shard_list[order[w * shards_per_worker + s]]);
            }
            ds.subset(&mine)
        })
        .collect()
}

/// Dirichlet non-IID split: each class's examples are distributed across
/// workers according to `Dir(alpha)` proportions. Small `alpha` (e.g.
/// 0.1) is highly skewed; large `alpha` approaches IID.
pub fn dirichlet(ds: &Dataset, n: usize, alpha: f64, seed: u64) -> Vec<Dataset> {
    assert!(n >= 1 && alpha > 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut per_worker: Vec<Vec<usize>> = vec![Vec::new(); n];
    for k in 0..ds.num_classes() {
        let class_idx: Vec<usize> = (0..ds.len()).filter(|&i| ds.label_of(i) == k).collect();
        let props = sample_dirichlet(n, alpha, &mut rng);
        // Convert proportions to cut points over the class examples.
        let mut start = 0usize;
        let mut acc = 0.0f64;
        for (w, &p) in props.iter().enumerate() {
            acc += p;
            let end = if w + 1 == n {
                class_idx.len()
            } else {
                (acc * class_idx.len() as f64).round() as usize
            }
            .min(class_idx.len());
            per_worker[w].extend_from_slice(&class_idx[start..end]);
            start = end;
        }
    }
    per_worker.into_iter().map(|idx| ds.subset(&idx)).collect()
}

/// Samples `n` Dirichlet(alpha) proportions via normalized Gamma draws
/// (Marsaglia–Tsang for alpha >= 1, boosted for alpha < 1).
fn sample_dirichlet<R: Rng>(n: usize, alpha: f64, rng: &mut R) -> Vec<f64> {
    let mut g: Vec<f64> = (0..n).map(|_| sample_gamma(alpha, rng)).collect();
    let sum: f64 = g.iter().sum();
    if sum <= 0.0 {
        return vec![1.0 / n as f64; n];
    }
    for v in &mut g {
        *v /= sum;
    }
    g
}

fn sample_gamma<R: Rng>(alpha: f64, rng: &mut R) -> f64 {
    if alpha < 1.0 {
        // Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        return sample_gamma(alpha + 1.0, rng) * u.powf(1.0 / alpha);
    }
    // Marsaglia–Tsang squeeze method.
    let d = alpha - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = sample_normal64(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

fn sample_normal64<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn chunk_indices(idx: &[usize], n: usize) -> Vec<Vec<usize>> {
    let base = idx.len() / n;
    let extra = idx.len() % n;
    let mut out = Vec::with_capacity(n);
    let mut start = 0;
    for w in 0..n {
        let len = base + usize::from(w < extra);
        out.push(idx[start..start + len].to_vec());
        start += len;
    }
    out
}

/// A heterogeneity score in `[0, 1]`: mean total-variation distance
/// between each worker's class distribution and the global one. 0 = IID,
/// higher = more skew. Useful for checking that a partitioner produced the
/// intended regime.
pub fn heterogeneity(parts: &[Dataset]) -> f64 {
    if parts.is_empty() {
        return 0.0;
    }
    let k = parts[0].num_classes();
    let total: usize = parts.iter().map(Dataset::len).sum();
    if total == 0 {
        return 0.0;
    }
    let mut global = vec![0.0f64; k];
    for p in parts {
        for (g, c) in global.iter_mut().zip(p.class_histogram()) {
            *g += c as f64;
        }
    }
    for g in &mut global {
        *g /= total as f64;
    }
    let mut acc = 0.0;
    for p in parts {
        if p.is_empty() {
            acc += 1.0;
            continue;
        }
        let h = p.class_histogram();
        let tv: f64 = h
            .iter()
            .zip(&global)
            .map(|(&c, &g)| (c as f64 / p.len() as f64 - g).abs())
            .sum::<f64>()
            / 2.0;
        acc += tv;
    }
    acc / parts.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SyntheticSpec;

    fn ds() -> Dataset {
        SyntheticSpec::tiny().samples(1_000).generate(3)
    }

    #[test]
    fn iid_covers_everything_evenly() {
        let d = ds();
        let parts = iid(&d, 7, 1);
        assert_eq!(parts.len(), 7);
        let total: usize = parts.iter().map(Dataset::len).sum();
        assert_eq!(total, d.len());
        for p in &parts {
            assert!(p.len() == 142 || p.len() == 143);
        }
        assert!(heterogeneity(&parts) < 0.1);
    }

    #[test]
    fn iid_deterministic() {
        let d = ds();
        let a = iid(&d, 4, 9);
        let b = iid(&d, 4, 9);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.labels(), y.labels());
        }
    }

    #[test]
    fn shards_skews_class_distributions() {
        let d = ds();
        let parts = shards(&d, 8, 1, 2);
        let total: usize = parts.iter().map(Dataset::len).sum();
        assert_eq!(total, d.len());
        // With 1 shard per worker over label-sorted data, most workers
        // see at most 2 classes.
        let few_classes = parts
            .iter()
            .filter(|p| p.class_histogram().iter().filter(|&&c| c > 0).count() <= 2)
            .count();
        assert!(few_classes >= 6, "only {few_classes} workers are skewed");
        assert!(heterogeneity(&parts) > heterogeneity(&iid(&d, 8, 2)));
    }

    #[test]
    fn dirichlet_alpha_controls_skew() {
        let d = ds();
        let skewed = dirichlet(&d, 8, 0.1, 4);
        let smooth = dirichlet(&d, 8, 100.0, 4);
        let total: usize = skewed.iter().map(Dataset::len).sum();
        assert_eq!(total, d.len());
        assert!(
            heterogeneity(&skewed) > heterogeneity(&smooth),
            "skewed {} vs smooth {}",
            heterogeneity(&skewed),
            heterogeneity(&smooth)
        );
    }

    #[test]
    fn dirichlet_partitions_all_examples() {
        let d = ds();
        for alpha in [0.1, 1.0, 10.0] {
            let parts = dirichlet(&d, 5, alpha, 7);
            let total: usize = parts.iter().map(Dataset::len).sum();
            assert_eq!(total, d.len(), "alpha {alpha}");
        }
    }

    #[test]
    fn single_worker_gets_everything() {
        let d = ds();
        let parts = iid(&d, 1, 0);
        assert_eq!(parts[0].len(), d.len());
    }

    #[test]
    fn gamma_sampler_mean() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(5);
        for alpha in [0.5, 1.0, 3.0] {
            let n = 20_000;
            let mean: f64 = (0..n).map(|_| sample_gamma(alpha, &mut rng)).sum::<f64>() / n as f64;
            assert!((mean - alpha).abs() < 0.08, "alpha {alpha}: mean {mean}");
        }
    }
}
