//! Property tests for the compression substrate.

use proptest::prelude::*;
use saps_compress::mask::RandomMask;
use saps_compress::topk::{densify, top_k_indices, ErrorFeedbackTopK};
use saps_compress::{codec, quantize};

proptest! {
    #[test]
    fn codec_values_roundtrip(vals in proptest::collection::vec(-1e6f32..1e6, 0..256)) {
        let enc = codec::encode_values(&vals);
        prop_assert_eq!(enc.len() as u64, codec::sparse_shared_mask_bytes(vals.len()));
        prop_assert_eq!(codec::decode_values(enc), vals);
    }

    #[test]
    fn codec_index_value_roundtrip(
        pairs in proptest::collection::vec((0u32..1_000_000, -1e6f32..1e6), 0..256),
    ) {
        let (idx, vals): (Vec<u32>, Vec<f32>) = pairs.into_iter().unzip();
        let enc = codec::encode_index_value(&idx, &vals);
        let (i2, v2) = codec::decode_index_value(enc);
        prop_assert_eq!(i2, idx);
        prop_assert_eq!(v2, vals);
    }

    #[test]
    fn best_encoding_is_really_best(n in 1usize..10_000, frac in 0.0f64..1.0) {
        let nnz = ((n as f64 * frac) as usize).min(n);
        let (_, size) = codec::best_sparse_encoding(n, nnz);
        prop_assert!(size <= codec::sparse_iv_bytes(nnz));
        prop_assert!(size <= codec::sparse_bitmap_bytes(n, nnz));
        prop_assert!(size <= codec::dense_bytes(n));
    }

    #[test]
    fn topk_returns_largest(
        x in proptest::collection::vec(-100.0f32..100.0, 1..200),
        k in 1usize..50,
    ) {
        let idx = top_k_indices(&x, k);
        let k_eff = k.min(x.len());
        prop_assert_eq!(idx.len(), k_eff);
        // Every selected magnitude >= every unselected magnitude.
        let selected: std::collections::HashSet<u32> = idx.iter().copied().collect();
        let min_sel = idx.iter().map(|&i| x[i as usize].abs()).fold(f32::INFINITY, f32::min);
        for (i, v) in x.iter().enumerate() {
            if !selected.contains(&(i as u32)) {
                prop_assert!(v.abs() <= min_sel + 1e-6);
            }
        }
        // Indices sorted and unique.
        prop_assert!(idx.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn error_feedback_conserves_signal(
        g1 in proptest::collection::vec(-10.0f32..10.0, 8..64),
        k in 1usize..8,
    ) {
        // After compressing g, transmitted + residual == g (+ previous
        // residual, which starts at zero).
        let mut ef = ErrorFeedbackTopK::new(g1.len(), k);
        let (idx, vals) = ef.compress(&g1);
        let sent = densify(g1.len(), &idx, &vals);
        for i in 0..g1.len() {
            prop_assert!((sent[i] + ef.residual()[i] - g1[i]).abs() < 1e-4);
        }
    }

    #[test]
    fn mask_determinism_and_bounds(
        seed in any::<u64>(),
        round in any::<u64>(),
        c in 1.0f64..200.0,
        n in 0usize..50_000,
    ) {
        let a = RandomMask::generate(n, c, seed, round);
        let b = RandomMask::generate(n, c, seed, round);
        prop_assert_eq!(a.indices(), b.indices());
        prop_assert!(a.nnz() <= n);
        prop_assert!(a.indices().iter().all(|&i| (i as usize) < n));
        prop_assert!(a.indices().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn mask_exchange_is_symmetric(
        seed in any::<u64>(),
        n in 1usize..2_000,
    ) {
        // After one masked exchange, both workers hold the same values on
        // masked coordinates, and the pair sum is conserved there.
        let mask = RandomMask::generate(n, 4.0, seed, 0);
        let mut x: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let mut y: Vec<f32> = (0..n).map(|i| (2 * i) as f32).collect();
        let sx = mask.apply(&x);
        let sy = mask.apply(&y);
        mask.average_into(&mut x, &sy);
        mask.average_into(&mut y, &sx);
        for &i in mask.indices() {
            let i = i as usize;
            prop_assert_eq!(x[i], y[i]);
            prop_assert!((x[i] + y[i] - 3.0 * i as f32).abs() < 1e-3);
        }
    }

    #[test]
    fn quantizer_codes_bounded(
        x in proptest::collection::vec(-100.0f32..100.0, 1..128),
        levels in 1u32..16,
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let q = quantize::quantize(&x, levels, &mut rng);
        prop_assert!(q.codes.iter().all(|&c| (c as i32).unsigned_abs() <= levels + 1));
        let deq = quantize::dequantize(&q);
        prop_assert_eq!(deq.len(), x.len());
        // Dequantized magnitude never exceeds scale (+ one level of
        // rounding).
        let limit = q.scale * (1.0 + 1.0 / levels as f32) + 1e-5;
        prop_assert!(deq.iter().all(|v| v.abs() <= limit));
    }
}
