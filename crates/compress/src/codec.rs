//! Wire encodings and exact byte accounting for model payloads.
//!
//! Every traffic number in the paper's evaluation (Table IV, Fig. 4) is a
//! count of bytes moved. This module defines the canonical encodings and
//! their sizes so all algorithms are charged consistently:
//!
//! * **dense** — `4N` bytes of f32s;
//! * **sparse (index+value)** — `8·nnz` bytes (`u32` index + `f32` value);
//! * **sparse (shared mask)** — `4·nnz` bytes: SAPS-PSGD peers derive the
//!   mask from the shared seed, so only *values* travel;
//! * **bitmap+values** — `⌈N/8⌉ + 4·nnz` bytes, chosen automatically when
//!   cheaper than index+value.
//!
//! The encoders themselves (`bytes`-based) exist so that integration tests
//! can round-trip real payloads and assert the advertised sizes are the
//! bytes actually produced.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// How a payload is laid out on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    /// All `N` coordinates as f32.
    Dense,
    /// `(u32 index, f32 value)` pairs.
    SparseIndexValue,
    /// Values only; the receiver reconstructs indices from the shared
    /// seed (SAPS-PSGD's trick).
    SparseSharedMask,
    /// A `⌈N/8⌉`-byte bitmap followed by the kept values.
    SparseBitmap,
}

/// Size in bytes of a dense model of `n` f32 coordinates.
pub fn dense_bytes(n: usize) -> u64 {
    4 * n as u64
}

/// Size in bytes of an index+value sparse payload.
pub fn sparse_iv_bytes(nnz: usize) -> u64 {
    8 * nnz as u64
}

/// Size in bytes of a values-only payload (shared-mask encoding).
pub fn sparse_shared_mask_bytes(nnz: usize) -> u64 {
    4 * nnz as u64
}

/// Size in bytes of a bitmap+values payload.
pub fn sparse_bitmap_bytes(n: usize, nnz: usize) -> u64 {
    n.div_ceil(8) as u64 + 4 * nnz as u64
}

/// The cheapest encoding (and its size) for a payload of `nnz` non-zeros
/// out of `n` coordinates, when the receiver does **not** share the mask.
pub fn best_sparse_encoding(n: usize, nnz: usize) -> (Encoding, u64) {
    let iv = sparse_iv_bytes(nnz);
    let bm = sparse_bitmap_bytes(n, nnz);
    let dn = dense_bytes(n);
    let (enc, sz) = if iv <= bm {
        (Encoding::SparseIndexValue, iv)
    } else {
        (Encoding::SparseBitmap, bm)
    };
    if dn < sz {
        (Encoding::Dense, dn)
    } else {
        (enc, sz)
    }
}

/// Encodes a values-only payload (shared-mask encoding).
pub fn encode_values(values: &[f32]) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 * values.len());
    for &v in values {
        buf.put_f32_le(v);
    }
    buf.freeze()
}

/// Decodes a values-only payload.
pub fn decode_values(mut payload: Bytes) -> Vec<f32> {
    assert!(
        payload.len().is_multiple_of(4),
        "payload length not a multiple of 4"
    );
    let mut out = Vec::with_capacity(payload.len() / 4);
    while payload.has_remaining() {
        out.push(payload.get_f32_le());
    }
    out
}

/// Encodes an index+value payload.
pub fn encode_index_value(indices: &[u32], values: &[f32]) -> Bytes {
    assert_eq!(indices.len(), values.len());
    let mut buf = BytesMut::with_capacity(8 * indices.len());
    for (&i, &v) in indices.iter().zip(values) {
        buf.put_u32_le(i);
        buf.put_f32_le(v);
    }
    buf.freeze()
}

/// Decodes an index+value payload.
pub fn decode_index_value(mut payload: Bytes) -> (Vec<u32>, Vec<f32>) {
    assert!(
        payload.len().is_multiple_of(8),
        "payload length not a multiple of 8"
    );
    let k = payload.len() / 8;
    let mut indices = Vec::with_capacity(k);
    let mut values = Vec::with_capacity(k);
    while payload.has_remaining() {
        indices.push(payload.get_u32_le());
        values.push(payload.get_f32_le());
    }
    (indices, values)
}

/// Encodes a dense payload.
pub fn encode_dense(x: &[f32]) -> Bytes {
    encode_values(x)
}

/// Decodes a dense payload.
pub fn decode_dense(payload: Bytes) -> Vec<f32> {
    decode_values(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_formulas() {
        assert_eq!(dense_bytes(100), 400);
        assert_eq!(sparse_iv_bytes(10), 80);
        assert_eq!(sparse_shared_mask_bytes(10), 40);
        assert_eq!(sparse_bitmap_bytes(100, 10), 13 + 40);
    }

    #[test]
    fn best_encoding_switches_at_density() {
        // Very sparse: index+value wins.
        let (e, _) = best_sparse_encoding(1_000_000, 100);
        assert_eq!(e, Encoding::SparseIndexValue);
        // Moderately dense: bitmap wins (iv = 8·nnz > N/8 + 4·nnz when
        // nnz > N/32).
        let (e, _) = best_sparse_encoding(1000, 500);
        assert_eq!(e, Encoding::SparseBitmap);
        // Nearly dense: dense wins.
        let (e, sz) = best_sparse_encoding(1000, 1000);
        assert_eq!(e, Encoding::Dense);
        assert_eq!(sz, 4000);
    }

    #[test]
    fn values_roundtrip_and_size() {
        let vals = vec![1.5f32, -2.25, 0.0, 3.75];
        let b = encode_values(&vals);
        assert_eq!(b.len() as u64, sparse_shared_mask_bytes(vals.len()));
        assert_eq!(decode_values(b), vals);
    }

    #[test]
    fn index_value_roundtrip_and_size() {
        let idx = vec![3u32, 17, 999_999];
        let vals = vec![0.5f32, -1.0, 2.0];
        let b = encode_index_value(&idx, &vals);
        assert_eq!(b.len() as u64, sparse_iv_bytes(3));
        let (i2, v2) = decode_index_value(b);
        assert_eq!(i2, idx);
        assert_eq!(v2, vals);
    }

    #[test]
    fn dense_roundtrip() {
        let x = vec![1.0f32, 2.0, 3.0];
        let b = encode_dense(&x);
        assert_eq!(b.len() as u64, dense_bytes(3));
        assert_eq!(decode_dense(b), x);
    }

    #[test]
    fn empty_payloads() {
        assert_eq!(decode_values(encode_values(&[])), Vec::<f32>::new());
        let (i, v) = decode_index_value(encode_index_value(&[], &[]));
        assert!(i.is_empty() && v.is_empty());
    }
}
