//! Top-k sparsification with error-feedback residuals.
//!
//! TopK-PSGD \[20\], \[34\] zeroes out all but the `k = N/c` largest-magnitude
//! gradient coordinates and accumulates what was dropped into a local
//! residual that is added back before the next selection ("error
//! compensation"). The paper uses it as the strongest sparsification
//! baseline (`c = 1000`).

/// Selects the indices of the `k` largest-|·| elements.
///
/// Uses `select_nth_unstable` for O(N) average time; the returned indices
/// are sorted ascending so payloads are deterministic.
pub fn top_k_indices(x: &[f32], k: usize) -> Vec<u32> {
    let k = k.min(x.len());
    if k == 0 {
        return Vec::new();
    }
    let mut idx: Vec<u32> = (0..x.len() as u32).collect();
    let kth = k - 1;
    idx.select_nth_unstable_by(kth, |&a, &b| {
        let ma = x[a as usize].abs();
        let mb = x[b as usize].abs();
        mb.partial_cmp(&ma).unwrap_or(std::cmp::Ordering::Equal)
    });
    idx.truncate(k);
    idx.sort_unstable();
    idx
}

/// An error-feedback Top-k compressor.
///
/// Maintains the residual `e_t`; each call to [`ErrorFeedbackTopK::compress`]
/// computes `a = g + e`, transmits the top-k of `a`, and stores
/// `e ← a − sparse(a)`.
#[derive(Debug, Clone)]
pub struct ErrorFeedbackTopK {
    residual: Vec<f32>,
    k: usize,
}

impl ErrorFeedbackTopK {
    /// Creates a compressor over models of `model_len` coordinates keeping
    /// `k` per step.
    pub fn new(model_len: usize, k: usize) -> Self {
        ErrorFeedbackTopK {
            residual: vec![0.0; model_len],
            k,
        }
    }

    /// Creates a compressor keeping `N/c` coordinates (at least one when
    /// the model is non-empty).
    pub fn with_ratio(model_len: usize, c: f64) -> Self {
        assert!(c >= 1.0, "compression ratio must be >= 1");
        let k = ((model_len as f64 / c).round() as usize).max(usize::from(model_len > 0));
        Self::new(model_len, k)
    }

    /// Number of coordinates kept per step.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Current residual (what error feedback will re-inject).
    pub fn residual(&self) -> &[f32] {
        &self.residual
    }

    /// Compresses `g`, returning `(indices, values)` of the transmitted
    /// coordinates, and updates the residual.
    pub fn compress(&mut self, g: &[f32]) -> (Vec<u32>, Vec<f32>) {
        assert_eq!(g.len(), self.residual.len(), "model length mismatch");
        // a = g + e
        let a: Vec<f32> = g.iter().zip(&self.residual).map(|(x, e)| x + e).collect();
        let indices = top_k_indices(&a, self.k);
        let values: Vec<f32> = indices.iter().map(|&i| a[i as usize]).collect();
        // e = a - sparse(a): start from a, zero the transmitted coords.
        self.residual = a;
        for &i in &indices {
            self.residual[i as usize] = 0.0;
        }
        (indices, values)
    }

    /// Resets the residual to zero (e.g. on worker re-join).
    pub fn reset(&mut self) {
        self.residual.iter_mut().for_each(|e| *e = 0.0);
    }
}

/// Densifies a sparse `(indices, values)` payload into a fresh vector of
/// length `n`.
pub fn densify(n: usize, indices: &[u32], values: &[f32]) -> Vec<f32> {
    debug_assert_eq!(indices.len(), values.len());
    let mut out = vec![0.0f32; n];
    for (&i, &v) in indices.iter().zip(values) {
        out[i as usize] = v;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_finds_largest_magnitudes() {
        let x = [0.1, -5.0, 3.0, 0.0, -0.2, 4.0];
        assert_eq!(top_k_indices(&x, 3), vec![1, 2, 5]);
        assert_eq!(top_k_indices(&x, 1), vec![1]);
    }

    #[test]
    fn top_k_edge_cases() {
        let x = [1.0, 2.0];
        assert_eq!(top_k_indices(&x, 0), Vec::<u32>::new());
        assert_eq!(top_k_indices(&x, 5), vec![0, 1]); // k > n clamps
        assert_eq!(top_k_indices(&[], 3), Vec::<u32>::new());
    }

    #[test]
    fn error_feedback_conserves_mass() {
        // Invariant: transmitted + residual == g + previous residual.
        let mut ef = ErrorFeedbackTopK::new(6, 2);
        let g = [0.1, -5.0, 3.0, 0.0, -0.2, 4.0];
        let (idx, vals) = ef.compress(&g);
        let sent = densify(6, &idx, &vals);
        for i in 0..6 {
            let total = sent[i] + ef.residual()[i];
            assert!((total - g[i]).abs() < 1e-6, "coordinate {i}");
        }
    }

    #[test]
    fn residual_reinjected_next_round() {
        // A coordinate repeatedly below the top-k threshold accumulates
        // until it wins.
        let mut ef = ErrorFeedbackTopK::new(3, 1);
        let g = [1.0, 0.6, 0.0];
        let (idx1, _) = ef.compress(&g);
        assert_eq!(idx1, vec![0]);
        // Residual now carries 0.6 at coord 1; adding 0.6 again beats 1.0.
        let (idx2, vals2) = ef.compress(&g);
        assert_eq!(idx2, vec![1]);
        assert!((vals2[0] - 1.2).abs() < 1e-6);
    }

    #[test]
    fn with_ratio_computes_k() {
        let ef = ErrorFeedbackTopK::with_ratio(1000, 100.0);
        assert_eq!(ef.k(), 10);
        let tiny = ErrorFeedbackTopK::with_ratio(3, 1000.0);
        assert_eq!(tiny.k(), 1); // never zero for non-empty models
        let empty = ErrorFeedbackTopK::with_ratio(0, 10.0);
        assert_eq!(empty.k(), 0);
    }

    #[test]
    fn reset_clears_residual() {
        let mut ef = ErrorFeedbackTopK::new(3, 1);
        ef.compress(&[1.0, 0.5, 0.2]);
        assert!(ef.residual().iter().any(|&e| e != 0.0));
        ef.reset();
        assert!(ef.residual().iter().all(|&e| e == 0.0));
    }

    #[test]
    fn densify_roundtrip() {
        let d = densify(5, &[1, 4], &[2.0, 3.0]);
        assert_eq!(d, vec![0.0, 2.0, 0.0, 0.0, 3.0]);
    }
}
