//! The shared-seed Bernoulli random mask of SAPS-PSGD (Section II-B).
//!
//! Equation (3) of the paper: each coordinate survives independently with
//! probability `p = 1/c` where `c` is the compression ratio. The mask is
//! derived from the coordinator's per-round seed, so all workers construct
//! the identical mask locally (Algorithm 2, line 6) — the key trick that
//! lets two peers exchange *only values*, no indices, and still agree on
//! the sparsity pattern.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use saps_tensor::rng::{derive_seed, streams};

/// Stream tag for mask RNGs (shared workspace-wide so no other component
/// accidentally consumes the same stream).
const MASK_STREAM: u64 = streams::MASK;

/// A Bernoulli(1/c) random mask over model coordinates.
///
/// Stored as the sorted list of surviving indices (the mask is sparse for
/// the compression ratios the paper uses, `c ∈ {100, 1000}`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RandomMask {
    model_len: usize,
    indices: Vec<u32>,
}

impl RandomMask {
    /// Generates the mask for `round` from the coordinator's broadcast
    /// `seed`, over a model of `model_len` coordinates, with compression
    /// ratio `c` (keep probability `1/c`).
    ///
    /// Deterministic: every worker calling this with the same arguments
    /// obtains the identical mask.
    ///
    /// # Panics
    ///
    /// Panics if `c < 1` (a keep probability above 1 is meaningless).
    pub fn generate(model_len: usize, c: f64, seed: u64, round: u64) -> Self {
        let mut mask = RandomMask {
            model_len,
            indices: Vec::new(),
        };
        mask.regenerate(model_len, c, seed, round);
        mask
    }

    /// Re-runs [`RandomMask::generate`] in place, reusing the index
    /// buffer's capacity — trainers that keep one mask per algorithm
    /// instance call this every round instead of allocating a fresh
    /// mask. Produces exactly the mask `generate` would.
    ///
    /// # Panics
    ///
    /// Panics if `c < 1` (a keep probability above 1 is meaningless).
    pub fn regenerate(&mut self, model_len: usize, c: f64, seed: u64, round: u64) {
        assert!(c >= 1.0, "compression ratio must be >= 1, got {c}");
        let p = 1.0 / c;
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, round, MASK_STREAM));
        self.model_len = model_len;
        let indices = &mut self.indices;
        indices.clear();
        // Sampling a geometric gap between kept indices is O(nnz) instead
        // of O(N) Bernoulli draws; for c=1000 and N in the millions this
        // is the difference between microseconds and milliseconds.
        indices.reserve((model_len as f64 * p * 1.2) as usize + 4);
        if p >= 1.0 {
            indices.extend(0..model_len as u32);
        } else {
            let log_q = (1.0 - p).ln();
            let mut i: usize = 0;
            loop {
                // Geometric(p) gap via inversion sampling.
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let gap = (u.ln() / log_q).floor() as usize;
                i += gap;
                if i >= model_len {
                    break;
                }
                indices.push(i as u32);
                i += 1;
            }
        }
    }

    /// Builds a mask from explicit indices (test/bench helper). Indices
    /// must be strictly increasing and `< model_len`.
    pub fn from_indices(model_len: usize, indices: Vec<u32>) -> Self {
        assert!(
            indices.windows(2).all(|w| w[0] < w[1]),
            "indices must be strictly increasing"
        );
        if let Some(&last) = indices.last() {
            assert!((last as usize) < model_len, "index out of range");
        }
        RandomMask { model_len, indices }
    }

    /// The surviving (kept) coordinate indices, sorted ascending.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Number of kept coordinates (`nnz`).
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Length of the underlying model vector `N`.
    pub fn model_len(&self) -> usize {
        self.model_len
    }

    /// Achieved density `nnz / N`.
    pub fn density(&self) -> f64 {
        if self.model_len == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.model_len as f64
        }
    }

    /// Applies the mask: returns the kept values of `x` in index order
    /// (the sparse payload `x̃ = x ∘ m` of Eq. 2, minus the zeros).
    pub fn apply(&self, x: &[f32]) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.indices.len());
        self.apply_into(x, &mut out);
        out
    }

    /// [`RandomMask::apply`] into a caller-owned buffer, reusing its
    /// capacity (the exchange hot path calls this once per payload per
    /// round).
    pub fn apply_into(&self, x: &[f32], out: &mut Vec<f32>) {
        assert_eq!(x.len(), self.model_len, "mask/model length mismatch");
        out.clear();
        out.extend(self.indices.iter().map(|&i| x[i as usize]));
    }

    /// Dense 0/1 representation (test helper; O(N)).
    pub fn to_dense(&self) -> Vec<bool> {
        let mut d = vec![false; self.model_len];
        for &i in &self.indices {
            d[i as usize] = true;
        }
        d
    }

    /// The SAPS-PSGD exchange step (Algorithm 2 line 10, symmetric-gossip
    /// form): for each masked coordinate `i`,
    /// `x[i] ← (x[i] + peer_values[k]) / 2`; unmasked coordinates keep
    /// their local value (`x ∘ ¬m` term).
    ///
    /// `peer_values` must be the peer's [`RandomMask::apply`] output for
    /// the *same* mask.
    pub fn average_into(&self, x: &mut [f32], peer_values: &[f32]) {
        assert_eq!(x.len(), self.model_len, "mask/model length mismatch");
        assert_eq!(
            peer_values.len(),
            self.indices.len(),
            "peer payload has wrong nnz"
        );
        for (&i, &pv) in self.indices.iter().zip(peer_values) {
            let xi = &mut x[i as usize];
            *xi = 0.5 * (*xi + pv);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_workers() {
        let a = RandomMask::generate(10_000, 100.0, 7, 3);
        let b = RandomMask::generate(10_000, 100.0, 7, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn different_rounds_differ() {
        let a = RandomMask::generate(10_000, 100.0, 7, 3);
        let b = RandomMask::generate(10_000, 100.0, 7, 4);
        assert_ne!(a.indices(), b.indices());
    }

    #[test]
    fn density_matches_ratio() {
        // Bernoulli(1/100) over a million coordinates: the density must be
        // within a few standard deviations of 0.01.
        let n = 1_000_000;
        let m = RandomMask::generate(n, 100.0, 42, 0);
        let sd = (0.01f64 * 0.99 / n as f64).sqrt();
        assert!(
            (m.density() - 0.01).abs() < 5.0 * sd,
            "density {}",
            m.density()
        );
    }

    #[test]
    fn c_equal_one_keeps_everything() {
        let m = RandomMask::generate(100, 1.0, 1, 1);
        assert_eq!(m.nnz(), 100);
        assert_eq!(m.density(), 1.0);
    }

    #[test]
    fn indices_sorted_and_unique() {
        let m = RandomMask::generate(50_000, 10.0, 9, 2);
        assert!(m.indices().windows(2).all(|w| w[0] < w[1]));
        assert!(m.indices().iter().all(|&i| (i as usize) < 50_000));
    }

    #[test]
    fn apply_gathers_kept_values() {
        let m = RandomMask::from_indices(4, vec![1, 3]);
        let vals = m.apply(&[10.0, 11.0, 12.0, 13.0]);
        assert_eq!(vals, vec![11.0, 13.0]);
    }

    #[test]
    fn average_into_halves_masked_coords_only() {
        let m = RandomMask::from_indices(4, vec![0, 2]);
        let mut x = vec![2.0, 5.0, 8.0, 7.0];
        m.average_into(&mut x, &[4.0, 0.0]);
        assert_eq!(x, vec![3.0, 5.0, 4.0, 7.0]);
    }

    #[test]
    fn two_workers_converge_on_masked_coords() {
        // Exchanging with the same mask makes the two models agree exactly
        // on masked coordinates after one step.
        let n = 1000;
        let m = RandomMask::generate(n, 10.0, 5, 1);
        let mut x: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let mut y: Vec<f32> = (0..n).map(|i| (n - i) as f32).collect();
        let xs = m.apply(&x);
        let ys = m.apply(&y);
        m.average_into(&mut x, &ys);
        m.average_into(&mut y, &xs);
        for &i in m.indices() {
            assert_eq!(x[i as usize], y[i as usize]);
        }
    }

    #[test]
    fn regenerate_matches_generate_and_reuses_capacity() {
        let mut m = RandomMask::generate(50_000, 10.0, 9, 0);
        let cap = m.indices.capacity();
        for round in 1..5u64 {
            m.regenerate(50_000, 10.0, 9, round);
            assert_eq!(m, RandomMask::generate(50_000, 10.0, 9, round));
        }
        assert_eq!(m.indices.capacity(), cap, "regenerate reallocated");
    }

    #[test]
    fn apply_into_reuses_buffer() {
        let m = RandomMask::from_indices(4, vec![1, 3]);
        let mut buf = Vec::with_capacity(16);
        m.apply_into(&[10.0, 11.0, 12.0, 13.0], &mut buf);
        assert_eq!(buf, vec![11.0, 13.0]);
        m.apply_into(&[0.0, 1.0, 2.0, 3.0], &mut buf);
        assert_eq!(buf, vec![1.0, 3.0]);
        assert!(buf.capacity() >= 16);
    }

    #[test]
    fn empty_model() {
        let m = RandomMask::generate(0, 100.0, 1, 1);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.density(), 0.0);
    }

    #[test]
    #[should_panic(expected = "compression ratio")]
    fn rejects_ratio_below_one() {
        let _ = RandomMask::generate(10, 0.5, 1, 1);
    }

    #[test]
    fn from_indices_validates() {
        let m = RandomMask::from_indices(10, vec![0, 5, 9]);
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_indices_rejects_unsorted() {
        let _ = RandomMask::from_indices(10, vec![5, 0]);
    }
}
