//! Uniform stochastic quantization (QSGD-style).
//!
//! The paper's related-work section contrasts sparsification against
//! quantization ("reducing 32-bit to 1-bit only achieves a maximum of 32×
//! compression"). This module provides an `s`-level stochastic quantizer so
//! the workspace can reproduce that comparison; none of the paper's seven
//! evaluated algorithms use it directly.

use rand::Rng;

/// A quantized vector: per-vector scale plus `s`-level integer codes.
#[derive(Debug, Clone, PartialEq)]
pub struct Quantized {
    /// l2 norm of the original vector (the QSGD scale).
    pub scale: f32,
    /// Number of quantization levels.
    pub levels: u32,
    /// Signed level codes, one per coordinate.
    pub codes: Vec<i8>,
}

impl Quantized {
    /// Bytes on the wire: 4 (scale) + 1 per coordinate (codes fit i8 for
    /// `levels <= 127`).
    pub fn wire_bytes(&self) -> u64 {
        4 + self.codes.len() as u64
    }
}

/// Stochastically quantizes `x` to `levels` levels per sign.
///
/// Each coordinate `x_i` maps to `sign(x_i) · scale · l/levels` where
/// `l ∈ {0.., levels}` straddles `|x_i|/scale`, rounded up with probability
/// proportional to the remainder — so the quantizer is unbiased:
/// `E[Q(x)] = x`.
pub fn quantize<R: Rng>(x: &[f32], levels: u32, rng: &mut R) -> Quantized {
    assert!((1..=127).contains(&levels), "levels must be in 1..=127");
    let scale = x.iter().map(|v| v * v).sum::<f32>().sqrt();
    let mut codes = Vec::with_capacity(x.len());
    if scale == 0.0 {
        codes.resize(x.len(), 0);
        return Quantized {
            scale,
            levels,
            codes,
        };
    }
    for &v in x {
        let a = v.abs() / scale * levels as f32;
        let lo = a.floor();
        let p = a - lo;
        let l = lo as i32 + i32::from(rng.gen::<f32>() < p);
        let signed = if v < 0.0 { -l } else { l };
        codes.push(signed.clamp(-127, 127) as i8);
    }
    Quantized {
        scale,
        levels,
        codes,
    }
}

/// Reconstructs the (unbiased estimate of the) original vector.
pub fn dequantize(q: &Quantized) -> Vec<f32> {
    let f = q.scale / q.levels as f32;
    q.codes.iter().map(|&c| c as f32 * f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_vector_roundtrips() {
        let mut rng = StdRng::seed_from_u64(1);
        let q = quantize(&[0.0, 0.0], 4, &mut rng);
        assert_eq!(dequantize(&q), vec![0.0, 0.0]);
    }

    #[test]
    fn unbiased_in_expectation() {
        let mut rng = StdRng::seed_from_u64(7);
        let x = [0.3f32, -0.7, 0.1, 0.9];
        let trials = 20_000;
        let mut acc = [0.0f64; 4];
        for _ in 0..trials {
            let q = quantize(&x, 4, &mut rng);
            for (a, v) in acc.iter_mut().zip(dequantize(&q)) {
                *a += v as f64;
            }
        }
        for (a, &v) in acc.iter().zip(&x) {
            let mean = a / trials as f64;
            assert!((mean - v as f64).abs() < 0.02, "mean {mean} vs true {v}");
        }
    }

    #[test]
    fn codes_bounded_by_levels() {
        let mut rng = StdRng::seed_from_u64(3);
        let x: Vec<f32> = (0..100).map(|i| (i as f32 - 50.0) / 10.0).collect();
        let q = quantize(&x, 8, &mut rng);
        // |x_i|/scale <= 1, so codes are at most levels (+1 from rounding).
        assert!(q.codes.iter().all(|&c| (c as i32).abs() <= 9));
    }

    #[test]
    fn wire_bytes_formula() {
        let mut rng = StdRng::seed_from_u64(4);
        let q = quantize(&[1.0; 100], 4, &mut rng);
        assert_eq!(q.wire_bytes(), 104);
    }

    #[test]
    #[should_panic(expected = "levels")]
    fn rejects_bad_levels() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = quantize(&[1.0], 0, &mut rng);
    }
}
