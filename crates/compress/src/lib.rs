//! Model/gradient compression for the SAPS-PSGD reproduction.
//!
//! Four mechanisms from the paper and its baselines:
//!
//! * [`mask`] — the shared-seed Bernoulli **random mask** `m_t` of
//!   SAPS-PSGD (Section II-B, Eq. 3): every worker expands the
//!   coordinator's seed into the *same* mask, so peers agree on which
//!   coordinates travel without exchanging indices.
//! * [`topk`] — Top-k sparsification with **error feedback** residuals,
//!   used by TopK-PSGD \[20\] and DCD-PSGD-style compression.
//! * [`codec`] — wire encodings for sparse and dense payloads, with exact
//!   byte accounting (the traffic numbers of Table IV and Fig. 4 come from
//!   these sizes).
//! * [`quantize`] — uniform stochastic quantization (QSGD-style), included
//!   for completeness of the related-work comparisons.
//!
//! # Example
//!
//! ```
//! use saps_compress::mask::RandomMask;
//!
//! // Two workers derive the mask for round 7 from the broadcast seed 42.
//! let a = RandomMask::generate(1000, 100.0, 42, 7);
//! let b = RandomMask::generate(1000, 100.0, 42, 7);
//! assert_eq!(a.indices(), b.indices()); // identical without communication
//! ```

#![warn(missing_docs)]

pub mod codec;
pub mod mask;
pub mod quantize;
pub mod topk;
