//! The SAPS-PSGD wire protocol: every message of Algorithms 1–2 as bytes.
//!
//! The paper's coordinator/worker interaction is an explicit message
//! protocol — `NotifyWorkerToTrain(W_t, t, s)` broadcasts, masked-value
//! exchanges between matched peers, "ROUND END" notifications, and a
//! final model collection. This crate pins that protocol down as a
//! **versioned wire format** so the cluster runtime (`saps-cluster`) can
//! run the algorithm over real serialized frames instead of shared-memory
//! method calls:
//!
//! * [`Message`] — the full round lifecycle as a typed enum, including
//!   the join/leave control frames that back
//!   `ScenarioEvent::WorkerJoin`/`WorkerLeave` churn;
//! * [`frame`] — length-prefixed framing with magic, version and
//!   trailing checksum (the same envelope discipline as
//!   `saps_core::checkpoint`), plus an incremental [`frame::FrameDecoder`]
//!   for stream transports;
//! * [`ProtoError`] — typed decode errors; hostile input (truncated,
//!   bit-flipped, oversized, or lying about its lengths) is always an
//!   `Err`, never a panic or an unbounded allocation.
//!
//! Byte accounting follows Table I of the paper: a
//! [`Message::MaskedPayload`] carries **values only** (`4·nnz` bytes —
//! the receiver reconstructs indices from the shared mask seed), and
//! that values section is the worker-row cost; everything else —
//! headers, checksums, control frames — is control plane, billed to the
//! server row. [`Message::data_bytes`] and [`TrafficClass`] encode that
//! split so transports can meter wire bytes into the same rows the
//! in-memory `TrafficAccountant` uses. `docs/PROTOCOL.md` documents the
//! layout and the per-message cost table.
//!
//! # Example
//!
//! ```
//! use saps_proto::{frame, Message};
//!
//! let msg = Message::MaskedPayload { round: 7, values: vec![1.5, -2.0] };
//! let bytes = frame::encode(&msg);
//! assert_eq!(bytes.len(), frame::encoded_len(&msg));
//! assert_eq!(frame::decode(&bytes).unwrap(), msg);
//! assert_eq!(msg.data_bytes(), 8); // 4 bytes per masked value
//! ```

#![deny(missing_docs)]

mod error;
pub mod frame;
mod message;

pub use error::ProtoError;
pub use message::{Message, TrafficClass, DATA_HEADER_BYTES};
