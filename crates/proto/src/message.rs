//! The round-lifecycle message set.

use crate::ProtoError;
use bytes::{Buf, BufMut, BytesMut};

/// Which Table I row a message's bytes are billed to.
///
/// The paper's accounting splits traffic into the worker row (model
/// payload bytes moved between peers) and the server row (everything the
/// lightweight coordinator touches). Evaluation-time model collection is
/// kept in a class of its own so instrumentation reads don't pollute
/// either row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficClass {
    /// Peer-to-peer model payload — the worker-row cost (`4·nnz` per
    /// values-only payload).
    DataPlane,
    /// Coordinator control traffic (round plans, round-end notices,
    /// churn, bandwidth reports) plus all framing overhead — the
    /// server-row cost.
    ControlPlane,
    /// Model distribution: full-model collection (`FetchModel` /
    /// `FinalModel`) — Table I's one-final-model server cost and the
    /// evaluation instrumentation path — plus the chunked catch-up
    /// frames (`ChunkRequest` / `ChunkData` / `ManifestAnnounce`).
    ModelPlane,
    /// Inference traffic (`InferRequest` / `InferResponse`) — the
    /// serving plane added by `saps-serve`. Kept out of the control row
    /// so the trainer's per-round control billing is unaffected by
    /// co-located serving load.
    ServePlane,
}

/// One protocol message: the whole SAPS-PSGD round lifecycle.
///
/// The variants mirror the paper's Algorithms 1–2 line by line:
/// [`Message::NotifyTrain`] is Algorithm 1's
/// `NotifyWorkerToTrain(W_t, t, s)` broadcast, [`Message::MaskedPayload`]
/// the masked-value exchange of Algorithm 2 lines 7–9,
/// [`Message::RoundEnd`] the "ROUND END" notification, and
/// [`Message::FetchModel`] / [`Message::FinalModel`] the final model
/// collection (Algorithm 1 line 8) carrying a `saps_core::checkpoint`
/// blob. [`Message::Join`] / [`Message::Leave`] /
/// [`Message::BandwidthReport`] are the control frames behind worker
/// churn and the "regularly reported" bandwidth measurements.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Coordinator → every active worker: start round `round`.
    NotifyTrain {
        /// The round counter `t`.
        round: u64,
        /// The shared seed `s` every worker derives the mask from.
        mask_seed: u64,
        /// The matching `W_t` as global-rank pairs; a worker not present
        /// in any pair trains but does not exchange this round.
        matching: Vec<(u32, u32)>,
    },
    /// Worker → matched peer: the values-only sparse payload
    /// `x̃ = x ∘ m_t` (indices are implied by the shared mask seed).
    MaskedPayload {
        /// The round the payload belongs to.
        round: u64,
        /// The model's values at the mask's surviving indices, in index
        /// order. On the wire this section is exactly `4·nnz` bytes —
        /// the Table I worker-row cost.
        values: Vec<f32>,
    },
    /// Worker → coordinator: "ROUND END", with the round's local
    /// training statistics piggy-backed so the coordinator can assemble
    /// the round report.
    RoundEnd {
        /// The round being acknowledged.
        round: u64,
        /// The sender's global rank.
        rank: u32,
        /// Training loss on this round's local batch.
        loss: f32,
        /// Training accuracy on this round's local batch.
        acc: f32,
    },
    /// Coordinator → worker: send back your full model.
    FetchModel {
        /// Global rank of the addressed worker.
        rank: u32,
    },
    /// Worker → coordinator: the full model as a
    /// `saps_core::checkpoint`-encoded blob (magic, version, round,
    /// params, checksum — the existing checkpoint wire format, nested
    /// intact inside this frame).
    FinalModel {
        /// The sender's global rank.
        rank: u32,
        /// The checkpoint-encoded model.
        checkpoint: Vec<u8>,
    },
    /// Control: worker `rank` (re-)joins the fleet
    /// (`ScenarioEvent::WorkerJoin`).
    Join {
        /// Global rank of the joining worker.
        rank: u32,
    },
    /// Control: worker `rank` leaves the fleet
    /// (`ScenarioEvent::WorkerLeave`).
    Leave {
        /// Global rank of the leaving worker.
        rank: u32,
    },
    /// Control: refreshed pairwise bandwidth measurements (row-major
    /// `n × n` MB/s), the paper's "regularly reported" speeds.
    BandwidthReport {
        /// Fleet size `n`.
        n: u32,
        /// Row-major `n²` link speeds in MB/s.
        mbps: Vec<f64>,
    },
    /// Control: orderly end of the experiment.
    Shutdown,
    /// Client → replica: run the model forward on one feature row.
    InferRequest {
        /// Client-chosen correlation id echoed back in the response.
        id: u64,
        /// The flattened input features (row-major, model input shape).
        features: Vec<f32>,
    },
    /// Replica → client: the model's output for [`Message::InferRequest`]
    /// `id`, tagged with the exact model the forward pass used.
    InferResponse {
        /// The correlation id from the request.
        id: u64,
        /// Training round the serving model's checkpoint was exported at.
        model_round: u64,
        /// The replica's monotone swap counter: bumped once per
        /// successfully installed [`Message::ModelAnnounce`]. Per replica
        /// these tags are non-decreasing across responses — the hot-swap
        /// contract (`docs/SERVING.md`).
        model_version: u64,
        /// The model's output logits for the request's features.
        logits: Vec<f32>,
    },
    /// Trainer → every replica: a fresh consensus checkpoint landed.
    ///
    /// The body nests a `saps_core::checkpoint` blob intact (magic,
    /// version, round, params, checksum), so a replica validates the
    /// checkpoint's own checksum *before* swapping — a torn or corrupted
    /// announce leaves the old model serving.
    ModelAnnounce {
        /// Training round the checkpoint was exported at.
        round: u64,
        /// The announce sequence number; replicas adopt it as their
        /// `model_version` on a successful swap.
        version: u64,
        /// The checkpoint-encoded consensus model.
        checkpoint: Vec<u8>,
    },
    /// A dense model (or model chunk) payload — the data frame of the
    /// dense baselines: D-PSGD ring broadcasts, PSGD ring all-reduce
    /// chunks, and FedAvg-style server↔client model shipping. On the
    /// wire the values section is exactly `4·len` bytes, matching
    /// `saps_compress::codec::dense_bytes`.
    DensePayload {
        /// The round the payload belongs to.
        round: u64,
        /// The dense parameter (or gradient-chunk) values.
        values: Vec<f32>,
    },
    /// An explicit `(index, value)` sparse payload — the data frame of
    /// the sparse baselines that do *not* share a mask seed (TopK-PSGD
    /// allgather, DCD-PSGD difference broadcasts, S-FedAvg uploads). On
    /// the wire the data section is exactly `8·nnz` bytes (4 per index +
    /// 4 per value), matching
    /// `saps_compress::codec::sparse_iv_bytes`.
    SparsePayload {
        /// The round the payload belongs to.
        round: u64,
        /// The surviving coordinate indices, ascending.
        indices: Vec<u32>,
        /// The values at `indices`, in the same order.
        values: Vec<f32>,
    },
    /// Worker → coordinator: one participant's per-round training
    /// statistics as *f64 sums* (FedAvg-style multi-step locals sum
    /// several f32 step losses in f64 — the wire must carry those sums
    /// bit-exactly for cluster ≡ in-memory conformance).
    ClientStats {
        /// The round being reported.
        round: u64,
        /// The sender's global rank.
        rank: u32,
        /// Summed training loss over the round's local steps.
        loss: f64,
        /// Summed training accuracy over the round's local steps.
        acc: f64,
    },
    /// Joiner → peer: send me chunk `index` of checkpoint epoch `epoch`.
    ///
    /// Part of the chunked model-distribution plane: instead of one
    /// monolithic [`Message::FinalModel`] frame, a catching-up joiner
    /// fans fixed-size chunk requests across several peers at once (see
    /// `docs/PROTOCOL.md` § chunked distribution).
    ChunkRequest {
        /// The checkpoint epoch being fetched (from the manifest).
        epoch: u64,
        /// Zero-based chunk index into the manifest's chunk table.
        index: u32,
    },
    /// Peer → joiner: one verified slice of the epoch checkpoint.
    ///
    /// An empty `data` with `checksum == 0` is a NACK — the peer cannot
    /// serve that epoch (it has no matching blob cached); the requester's
    /// scheduler re-sources the chunk from another peer.
    ChunkData {
        /// The checkpoint epoch the chunk belongs to.
        epoch: u64,
        /// Zero-based chunk index.
        index: u32,
        /// FNV-1a 64 of `data` — must match the manifest's entry for
        /// `index`; a mismatch means corruption (or a lying peer) and the
        /// chunk is re-fetched elsewhere.
        checksum: u64,
        /// The raw checkpoint bytes of this chunk. Every chunk is exactly
        /// `chunk_size` bytes except the last, which carries the
        /// remainder.
        data: Vec<u8>,
    },
    /// Publisher → fleet: the chunk table of checkpoint epoch `epoch`.
    ///
    /// The manifest is the ground truth a downloader verifies every
    /// [`Message::ChunkData`] against: total blob length, fixed chunk
    /// size, and one FNV-1a 64 checksum per chunk. Chunk `i` covers blob
    /// bytes `[i·chunk_size, min((i+1)·chunk_size, total_len))`.
    ManifestAnnounce {
        /// Monotone checkpoint epoch (bumped once per published manifest).
        epoch: u64,
        /// Training round the checkpoint captures.
        round: u64,
        /// Total checkpoint blob length in bytes.
        total_len: u64,
        /// Fixed chunk size in bytes (the last chunk may be shorter).
        chunk_size: u32,
        /// Per-chunk FNV-1a 64 checksums, one per chunk, in index order.
        checksums: Vec<u64>,
    },
}

pub(crate) const TAG_NOTIFY_TRAIN: u8 = 1;
pub(crate) const TAG_MASKED_PAYLOAD: u8 = 2;
pub(crate) const TAG_ROUND_END: u8 = 3;
pub(crate) const TAG_FETCH_MODEL: u8 = 4;
pub(crate) const TAG_FINAL_MODEL: u8 = 5;
pub(crate) const TAG_JOIN: u8 = 6;
pub(crate) const TAG_LEAVE: u8 = 7;
pub(crate) const TAG_BANDWIDTH_REPORT: u8 = 8;
pub(crate) const TAG_SHUTDOWN: u8 = 9;
pub(crate) const TAG_INFER_REQUEST: u8 = 10;
pub(crate) const TAG_INFER_RESPONSE: u8 = 11;
pub(crate) const TAG_MODEL_ANNOUNCE: u8 = 12;
pub(crate) const TAG_DENSE_PAYLOAD: u8 = 13;
pub(crate) const TAG_SPARSE_PAYLOAD: u8 = 14;
pub(crate) const TAG_CLIENT_STATS: u8 = 15;
pub(crate) const TAG_CHUNK_REQUEST: u8 = 16;
pub(crate) const TAG_CHUNK_DATA: u8 = 17;
pub(crate) const TAG_MANIFEST_ANNOUNCE: u8 = 18;

/// Every data-plane payload frame ([`Message::MaskedPayload`],
/// [`Message::DensePayload`], [`Message::SparsePayload`]) starts its
/// body with the same 12-byte header — round (`u64`) + element count
/// (`u32`) — followed by nothing but the data section. Transports meter
/// the worker-row bytes of any data frame as `body_len −
/// DATA_HEADER_BYTES` without decoding the body (see
/// [`Message::data_section_of`]).
pub const DATA_HEADER_BYTES: usize = 12;

impl Message {
    /// The one-byte wire tag identifying this message type.
    pub fn tag(&self) -> u8 {
        match self {
            Message::NotifyTrain { .. } => TAG_NOTIFY_TRAIN,
            Message::MaskedPayload { .. } => TAG_MASKED_PAYLOAD,
            Message::RoundEnd { .. } => TAG_ROUND_END,
            Message::FetchModel { .. } => TAG_FETCH_MODEL,
            Message::FinalModel { .. } => TAG_FINAL_MODEL,
            Message::Join { .. } => TAG_JOIN,
            Message::Leave { .. } => TAG_LEAVE,
            Message::BandwidthReport { .. } => TAG_BANDWIDTH_REPORT,
            Message::Shutdown => TAG_SHUTDOWN,
            Message::InferRequest { .. } => TAG_INFER_REQUEST,
            Message::InferResponse { .. } => TAG_INFER_RESPONSE,
            Message::ModelAnnounce { .. } => TAG_MODEL_ANNOUNCE,
            Message::DensePayload { .. } => TAG_DENSE_PAYLOAD,
            Message::SparsePayload { .. } => TAG_SPARSE_PAYLOAD,
            Message::ClientStats { .. } => TAG_CLIENT_STATS,
            Message::ChunkRequest { .. } => TAG_CHUNK_REQUEST,
            Message::ChunkData { .. } => TAG_CHUNK_DATA,
            Message::ManifestAnnounce { .. } => TAG_MANIFEST_ANNOUNCE,
        }
    }

    /// A short human-readable name (logging, protocol docs).
    pub fn label(&self) -> &'static str {
        match self {
            Message::NotifyTrain { .. } => "NotifyTrain",
            Message::MaskedPayload { .. } => "MaskedPayload",
            Message::RoundEnd { .. } => "RoundEnd",
            Message::FetchModel { .. } => "FetchModel",
            Message::FinalModel { .. } => "FinalModel",
            Message::Join { .. } => "Join",
            Message::Leave { .. } => "Leave",
            Message::BandwidthReport { .. } => "BandwidthReport",
            Message::Shutdown => "Shutdown",
            Message::InferRequest { .. } => "InferRequest",
            Message::InferResponse { .. } => "InferResponse",
            Message::ModelAnnounce { .. } => "ModelAnnounce",
            Message::DensePayload { .. } => "DensePayload",
            Message::SparsePayload { .. } => "SparsePayload",
            Message::ClientStats { .. } => "ClientStats",
            Message::ChunkRequest { .. } => "ChunkRequest",
            Message::ChunkData { .. } => "ChunkData",
            Message::ManifestAnnounce { .. } => "ManifestAnnounce",
        }
    }

    /// Which Table I row this message type is billed to. See also
    /// [`Message::traffic_class_of`] for classifying from a peeked tag.
    pub fn traffic_class(&self) -> TrafficClass {
        Self::traffic_class_of(self.tag()).expect("own tag is known")
    }

    /// [`Message::traffic_class`] keyed by wire tag, for transports that
    /// meter frames without fully decoding them.
    pub fn traffic_class_of(tag: u8) -> Option<TrafficClass> {
        match tag {
            TAG_MASKED_PAYLOAD | TAG_DENSE_PAYLOAD | TAG_SPARSE_PAYLOAD => {
                Some(TrafficClass::DataPlane)
            }
            TAG_FETCH_MODEL
            | TAG_FINAL_MODEL
            | TAG_MODEL_ANNOUNCE
            | TAG_CHUNK_REQUEST
            | TAG_CHUNK_DATA
            | TAG_MANIFEST_ANNOUNCE => Some(TrafficClass::ModelPlane),
            TAG_NOTIFY_TRAIN | TAG_ROUND_END | TAG_JOIN | TAG_LEAVE | TAG_BANDWIDTH_REPORT
            | TAG_SHUTDOWN | TAG_CLIENT_STATS => Some(TrafficClass::ControlPlane),
            TAG_INFER_REQUEST | TAG_INFER_RESPONSE => Some(TrafficClass::ServePlane),
            _ => None,
        }
    }

    /// The data-plane (worker-row) bytes of this message: `4·nnz` for a
    /// [`Message::MaskedPayload`] (values only — exactly
    /// `saps_compress::codec::sparse_shared_mask_bytes(nnz)`), `4·len`
    /// for a [`Message::DensePayload`], `8·nnz` for a
    /// [`Message::SparsePayload`] (index + value), and 0 for everything
    /// else. The rest of the frame (envelope, round header, whole
    /// control messages) is control plane.
    pub fn data_bytes(&self) -> u64 {
        match self {
            Message::MaskedPayload { values, .. } | Message::DensePayload { values, .. } => {
                4 * values.len() as u64
            }
            Message::SparsePayload {
                indices, values, ..
            } => 4 * (indices.len() + values.len()) as u64,
            _ => 0,
        }
    }

    /// [`Message::data_bytes`] keyed by wire tag and body length, for
    /// transports that meter frames without decoding them. Every
    /// data-plane frame's body is a [`DATA_HEADER_BYTES`] header (round
    /// plus element count) followed by nothing but the data section, so
    /// the data-plane bytes of any payload frame are `body_len − 12`;
    /// frames of any other class have no data section.
    pub fn data_section_of(tag: u8, body_len: usize) -> u64 {
        match Self::traffic_class_of(tag) {
            Some(TrafficClass::DataPlane) => body_len.saturating_sub(DATA_HEADER_BYTES) as u64,
            _ => 0,
        }
    }

    /// The body length in bytes (excluding the frame envelope).
    pub(crate) fn body_len(&self) -> usize {
        match self {
            Message::NotifyTrain { matching, .. } => 8 + 8 + 4 + 8 * matching.len(),
            Message::MaskedPayload { values, .. } => 8 + 4 + 4 * values.len(),
            Message::RoundEnd { .. } => 8 + 4 + 4 + 4,
            Message::FetchModel { .. } => 4,
            Message::FinalModel { checkpoint, .. } => 4 + 4 + checkpoint.len(),
            Message::Join { .. } | Message::Leave { .. } => 4,
            Message::BandwidthReport { mbps, .. } => 4 + 8 * mbps.len(),
            Message::Shutdown => 0,
            Message::InferRequest { features, .. } => 8 + 4 + 4 * features.len(),
            Message::InferResponse { logits, .. } => 8 + 8 + 8 + 4 + 4 * logits.len(),
            Message::ModelAnnounce { checkpoint, .. } => 8 + 8 + 4 + checkpoint.len(),
            Message::DensePayload { values, .. } => 8 + 4 + 4 * values.len(),
            Message::SparsePayload {
                indices, values, ..
            } => 8 + 4 + 4 * indices.len() + 4 * values.len(),
            Message::ClientStats { .. } => 8 + 4 + 8 + 8,
            Message::ChunkRequest { .. } => 8 + 4,
            Message::ChunkData { data, .. } => 8 + 4 + 8 + 4 + data.len(),
            Message::ManifestAnnounce { checksums, .. } => 8 + 8 + 8 + 4 + 4 + 8 * checksums.len(),
        }
    }

    /// Appends the body encoding to `buf`.
    pub(crate) fn encode_body(&self, buf: &mut BytesMut) {
        match self {
            Message::NotifyTrain {
                round,
                mask_seed,
                matching,
            } => {
                buf.put_u64_le(*round);
                buf.put_u64_le(*mask_seed);
                buf.put_u32_le(matching.len() as u32);
                for &(a, b) in matching {
                    buf.put_u32_le(a);
                    buf.put_u32_le(b);
                }
            }
            Message::MaskedPayload { round, values } => {
                buf.put_u64_le(*round);
                buf.put_u32_le(values.len() as u32);
                for &v in values {
                    buf.put_f32_le(v);
                }
            }
            Message::RoundEnd {
                round,
                rank,
                loss,
                acc,
            } => {
                buf.put_u64_le(*round);
                buf.put_u32_le(*rank);
                buf.put_f32_le(*loss);
                buf.put_f32_le(*acc);
            }
            Message::FetchModel { rank } => buf.put_u32_le(*rank),
            Message::FinalModel { rank, checkpoint } => {
                buf.put_u32_le(*rank);
                buf.put_u32_le(checkpoint.len() as u32);
                buf.put_slice(checkpoint);
            }
            Message::Join { rank } | Message::Leave { rank } => buf.put_u32_le(*rank),
            Message::BandwidthReport { n, mbps } => {
                buf.put_u32_le(*n);
                for &v in mbps {
                    buf.put_f64_le(v);
                }
            }
            Message::Shutdown => {}
            Message::InferRequest { id, features } => {
                buf.put_u64_le(*id);
                buf.put_u32_le(features.len() as u32);
                for &v in features {
                    buf.put_f32_le(v);
                }
            }
            Message::InferResponse {
                id,
                model_round,
                model_version,
                logits,
            } => {
                buf.put_u64_le(*id);
                buf.put_u64_le(*model_round);
                buf.put_u64_le(*model_version);
                buf.put_u32_le(logits.len() as u32);
                for &v in logits {
                    buf.put_f32_le(v);
                }
            }
            Message::ModelAnnounce {
                round,
                version,
                checkpoint,
            } => {
                buf.put_u64_le(*round);
                buf.put_u64_le(*version);
                buf.put_u32_le(checkpoint.len() as u32);
                buf.put_slice(checkpoint);
            }
            Message::DensePayload { round, values } => {
                buf.put_u64_le(*round);
                buf.put_u32_le(values.len() as u32);
                for &v in values {
                    buf.put_f32_le(v);
                }
            }
            Message::SparsePayload {
                round,
                indices,
                values,
            } => {
                buf.put_u64_le(*round);
                buf.put_u32_le(indices.len() as u32);
                for &i in indices {
                    buf.put_u32_le(i);
                }
                for &v in values {
                    buf.put_f32_le(v);
                }
            }
            Message::ClientStats {
                round,
                rank,
                loss,
                acc,
            } => {
                buf.put_u64_le(*round);
                buf.put_u32_le(*rank);
                buf.put_f64_le(*loss);
                buf.put_f64_le(*acc);
            }
            Message::ChunkRequest { epoch, index } => {
                buf.put_u64_le(*epoch);
                buf.put_u32_le(*index);
            }
            Message::ChunkData {
                epoch,
                index,
                checksum,
                data,
            } => {
                buf.put_u64_le(*epoch);
                buf.put_u32_le(*index);
                buf.put_u64_le(*checksum);
                buf.put_u32_le(data.len() as u32);
                buf.put_slice(data);
            }
            Message::ManifestAnnounce {
                epoch,
                round,
                total_len,
                chunk_size,
                checksums,
            } => {
                buf.put_u64_le(*epoch);
                buf.put_u64_le(*round);
                buf.put_u64_le(*total_len);
                buf.put_u32_le(*chunk_size);
                buf.put_u32_le(checksums.len() as u32);
                for &c in checksums {
                    buf.put_u64_le(c);
                }
            }
        }
    }

    /// Decodes a body of exactly `body.len()` bytes for `tag`. All
    /// element counts are validated against the body length *before* any
    /// allocation, so a hostile count can't trigger an over-allocation.
    pub(crate) fn decode_body(tag: u8, mut body: &[u8]) -> Result<Message, ProtoError> {
        let buf = &mut body;
        let msg = match tag {
            TAG_NOTIFY_TRAIN => {
                let (round, mask_seed) = (need_u64(buf)?, need_u64(buf)?);
                let count = need_u32(buf)? as usize;
                if buf.len() != 8 * count {
                    return Err(ProtoError::Malformed("matching count vs body length"));
                }
                let mut matching = Vec::with_capacity(count);
                for _ in 0..count {
                    matching.push((buf.get_u32_le(), buf.get_u32_le()));
                }
                Message::NotifyTrain {
                    round,
                    mask_seed,
                    matching,
                }
            }
            TAG_MASKED_PAYLOAD => {
                let round = need_u64(buf)?;
                let count = need_u32(buf)? as usize;
                if buf.len() != 4 * count {
                    return Err(ProtoError::Malformed("value count vs body length"));
                }
                let mut values = Vec::with_capacity(count);
                for _ in 0..count {
                    values.push(buf.get_f32_le());
                }
                Message::MaskedPayload { round, values }
            }
            TAG_ROUND_END => Message::RoundEnd {
                round: need_u64(buf)?,
                rank: need_u32(buf)?,
                loss: need_f32(buf)?,
                acc: need_f32(buf)?,
            },
            TAG_FETCH_MODEL => Message::FetchModel {
                rank: need_u32(buf)?,
            },
            TAG_FINAL_MODEL => {
                let rank = need_u32(buf)?;
                let len = need_u32(buf)? as usize;
                if buf.len() != len {
                    return Err(ProtoError::Malformed("checkpoint length vs body length"));
                }
                let checkpoint = buf.to_vec();
                buf.advance(len);
                Message::FinalModel { rank, checkpoint }
            }
            TAG_JOIN => Message::Join {
                rank: need_u32(buf)?,
            },
            TAG_LEAVE => Message::Leave {
                rank: need_u32(buf)?,
            },
            TAG_BANDWIDTH_REPORT => {
                let n = need_u32(buf)?;
                let cells = (n as u64)
                    .checked_mul(n as u64)
                    .and_then(|c| c.checked_mul(8));
                if cells != Some(buf.len() as u64) {
                    return Err(ProtoError::Malformed("matrix size vs body length"));
                }
                let mut mbps = Vec::with_capacity((n as usize) * (n as usize));
                for _ in 0..(n as usize) * (n as usize) {
                    mbps.push(buf.get_f64_le());
                }
                Message::BandwidthReport { n, mbps }
            }
            TAG_SHUTDOWN => Message::Shutdown,
            TAG_INFER_REQUEST => {
                let id = need_u64(buf)?;
                let count = need_u32(buf)? as usize;
                if buf.len() != 4 * count {
                    return Err(ProtoError::Malformed("feature count vs body length"));
                }
                let mut features = Vec::with_capacity(count);
                for _ in 0..count {
                    features.push(buf.get_f32_le());
                }
                Message::InferRequest { id, features }
            }
            TAG_INFER_RESPONSE => {
                let (id, model_round, model_version) =
                    (need_u64(buf)?, need_u64(buf)?, need_u64(buf)?);
                let count = need_u32(buf)? as usize;
                if buf.len() != 4 * count {
                    return Err(ProtoError::Malformed("logit count vs body length"));
                }
                let mut logits = Vec::with_capacity(count);
                for _ in 0..count {
                    logits.push(buf.get_f32_le());
                }
                Message::InferResponse {
                    id,
                    model_round,
                    model_version,
                    logits,
                }
            }
            TAG_MODEL_ANNOUNCE => {
                let (round, version) = (need_u64(buf)?, need_u64(buf)?);
                let len = need_u32(buf)? as usize;
                if buf.len() != len {
                    return Err(ProtoError::Malformed("checkpoint length vs body length"));
                }
                let checkpoint = buf.to_vec();
                buf.advance(len);
                Message::ModelAnnounce {
                    round,
                    version,
                    checkpoint,
                }
            }
            TAG_DENSE_PAYLOAD => {
                let round = need_u64(buf)?;
                let count = need_u32(buf)? as usize;
                if buf.len() != 4 * count {
                    return Err(ProtoError::Malformed("value count vs body length"));
                }
                let mut values = Vec::with_capacity(count);
                for _ in 0..count {
                    values.push(buf.get_f32_le());
                }
                Message::DensePayload { round, values }
            }
            TAG_SPARSE_PAYLOAD => {
                let round = need_u64(buf)?;
                let count = need_u32(buf)? as usize;
                if buf.len() != 8 * count {
                    return Err(ProtoError::Malformed("nnz count vs body length"));
                }
                let mut indices = Vec::with_capacity(count);
                for _ in 0..count {
                    indices.push(buf.get_u32_le());
                }
                let mut values = Vec::with_capacity(count);
                for _ in 0..count {
                    values.push(buf.get_f32_le());
                }
                Message::SparsePayload {
                    round,
                    indices,
                    values,
                }
            }
            TAG_CLIENT_STATS => Message::ClientStats {
                round: need_u64(buf)?,
                rank: need_u32(buf)?,
                loss: need_f64(buf)?,
                acc: need_f64(buf)?,
            },
            TAG_CHUNK_REQUEST => Message::ChunkRequest {
                epoch: need_u64(buf)?,
                index: need_u32(buf)?,
            },
            TAG_CHUNK_DATA => {
                let epoch = need_u64(buf)?;
                let index = need_u32(buf)?;
                let checksum = need_u64(buf)?;
                let len = need_u32(buf)? as usize;
                if buf.len() != len {
                    return Err(ProtoError::Malformed("chunk length vs body length"));
                }
                let data = buf.to_vec();
                buf.advance(len);
                Message::ChunkData {
                    epoch,
                    index,
                    checksum,
                    data,
                }
            }
            TAG_MANIFEST_ANNOUNCE => {
                let (epoch, round, total_len) = (need_u64(buf)?, need_u64(buf)?, need_u64(buf)?);
                let chunk_size = need_u32(buf)?;
                let count = need_u32(buf)? as usize;
                if buf.len() != 8 * count {
                    return Err(ProtoError::Malformed("checksum count vs body length"));
                }
                let mut checksums = Vec::with_capacity(count);
                for _ in 0..count {
                    checksums.push(buf.get_u64_le());
                }
                Message::ManifestAnnounce {
                    epoch,
                    round,
                    total_len,
                    chunk_size,
                    checksums,
                }
            }
            other => return Err(ProtoError::UnknownTag(other)),
        };
        if !buf.is_empty() {
            return Err(ProtoError::Malformed("trailing bytes after body"));
        }
        Ok(msg)
    }
}

fn need_u64(buf: &mut &[u8]) -> Result<u64, ProtoError> {
    if buf.len() < 8 {
        return Err(ProtoError::Malformed("body too short for u64 field"));
    }
    Ok(buf.get_u64_le())
}

fn need_u32(buf: &mut &[u8]) -> Result<u32, ProtoError> {
    if buf.len() < 4 {
        return Err(ProtoError::Malformed("body too short for u32 field"));
    }
    Ok(buf.get_u32_le())
}

fn need_f32(buf: &mut &[u8]) -> Result<f32, ProtoError> {
    Ok(f32::from_bits(need_u32(buf)?))
}

fn need_f64(buf: &mut &[u8]) -> Result<f64, ProtoError> {
    Ok(f64::from_bits(need_u64(buf)?))
}
