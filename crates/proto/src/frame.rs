//! Length-prefixed framing: magic, version, tag, body, checksum.
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"SAPP"
//! 4       2     format version (currently 1)
//! 6       1     message tag (see docs/PROTOCOL.md)
//! 7       4     body length
//! 11      L     body
//! 11+L    8     FNV-1a 64 checksum over bytes [0, 11+L)
//! ```
//!
//! The fixed envelope is [`OVERHEAD`]` = 19` bytes per frame; the tag
//! lives in the header so transports can classify a frame's
//! [`crate::TrafficClass`] from [`peek`] without decoding the body.
//! Decoding is hostile-input safe: every declared length is validated
//! against both [`MAX_BODY_BYTES`] and the bytes actually present before
//! anything is allocated, and corruption anywhere in the frame fails the
//! checksum.

use crate::{Message, ProtoError};
use bytes::{BufMut, Bytes, BytesMut};

/// The frame magic, `b"SAPP"` (SAPS Protocol).
pub const MAGIC: &[u8; 4] = b"SAPP";

/// The wire-format version this library encodes and accepts.
pub const VERSION: u16 = 1;

/// Header bytes before the body: magic + version + tag + body length.
pub const HEADER_LEN: usize = 4 + 2 + 1 + 4;

/// Trailing checksum bytes.
pub const TRAILER_LEN: usize = 8;

/// Fixed envelope bytes per frame (header + trailer).
pub const OVERHEAD: usize = HEADER_LEN + TRAILER_LEN;

/// Upper bound on a frame's declared body length (256 MiB). A header
/// declaring more is rejected with [`ProtoError::Oversized`] before any
/// allocation — an attacker can't make the decoder reserve memory a
/// legitimate frame would never need.
pub const MAX_BODY_BYTES: u64 = 1 << 28;

/// Encodes one message as a complete frame, or rejects it when the body
/// would exceed [`MAX_BODY_BYTES`].
///
/// The header's body-length field is a `u32`; before this check existed,
/// an oversized blob (e.g. a giant `FinalModel` checkpoint) had its
/// length silently truncated modulo 2³², producing a frame whose header
/// lied about the body — undecodable at best, a framing desync at worst.
/// Callers that frame unbounded blobs (checkpoints, chunk data) must use
/// this and surface the typed [`ProtoError::Oversized`].
pub fn try_encode(msg: &Message) -> Result<Bytes, ProtoError> {
    let body_len = msg.body_len();
    if body_len as u64 > MAX_BODY_BYTES {
        return Err(ProtoError::Oversized {
            declared: body_len as u64,
            limit: MAX_BODY_BYTES,
        });
    }
    let mut buf = BytesMut::with_capacity(OVERHEAD + body_len);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u8(msg.tag());
    buf.put_u32_le(body_len as u32);
    msg.encode_body(&mut buf);
    debug_assert_eq!(buf.len(), HEADER_LEN + body_len);
    buf.put_u64_le(fnv1a(&buf[..HEADER_LEN + body_len]));
    Ok(buf.freeze())
}

/// Encodes one message as a complete frame.
///
/// Panics if the body would exceed [`MAX_BODY_BYTES`] (≈256 MiB — far
/// beyond any bounded protocol message). Callers framing unbounded blobs
/// use [`try_encode`] and get the typed error instead.
pub fn encode(msg: &Message) -> Bytes {
    try_encode(msg).expect("message body exceeds MAX_BODY_BYTES; use try_encode")
}

/// The exact encoded frame size of `msg` in bytes.
pub fn encoded_len(msg: &Message) -> usize {
    OVERHEAD + msg.body_len()
}

/// What [`peek`] reads from a frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameInfo {
    /// The message tag.
    pub tag: u8,
    /// Declared body length.
    pub body_len: usize,
    /// Total frame length including envelope.
    pub frame_len: usize,
}

/// Validates the header at the front of `buf` without touching the body.
///
/// Returns `Ok(None)` when `buf` holds fewer bytes than a header — feed
/// more data and retry. A present-but-invalid header (bad magic, future
/// version, oversized declaration) is a hard error. `peek` itself is
/// stateless; [`FrameDecoder`] recovers from such errors by skipping to
/// the next magic boundary, while transports peeking at datagrams
/// should drop the offending frame.
pub fn peek(buf: &[u8]) -> Result<Option<FrameInfo>, ProtoError> {
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    if &buf[..4] != MAGIC {
        return Err(ProtoError::BadMagic);
    }
    let version = u16::from_le_bytes([buf[4], buf[5]]);
    if version != VERSION {
        return Err(ProtoError::UnsupportedVersion(version));
    }
    let tag = buf[6];
    let body_len = u32::from_le_bytes([buf[7], buf[8], buf[9], buf[10]]) as u64;
    if body_len > MAX_BODY_BYTES {
        return Err(ProtoError::Oversized {
            declared: body_len,
            limit: MAX_BODY_BYTES,
        });
    }
    Ok(Some(FrameInfo {
        tag,
        body_len: body_len as usize,
        frame_len: OVERHEAD + body_len as usize,
    }))
}

/// Decodes one complete frame occupying *exactly* `buf`.
///
/// Transports that own a datagram-per-frame (the loopback transport)
/// call this; stream transports split frames with a
/// [`FrameDecoder`] first.
pub fn decode(buf: &[u8]) -> Result<Message, ProtoError> {
    let info = match peek(buf)? {
        Some(info) => info,
        None => return Err(ProtoError::Truncated),
    };
    match buf.len() as u64 {
        l if l < info.frame_len as u64 => return Err(ProtoError::Truncated),
        l if l > info.frame_len as u64 => {
            return Err(ProtoError::LengthMismatch {
                expected: info.frame_len as u64,
                actual: l,
            })
        }
        _ => {}
    }
    let body_end = HEADER_LEN + info.body_len;
    let stored = u64::from_le_bytes(buf[body_end..body_end + 8].try_into().expect("8 bytes"));
    if fnv1a(&buf[..body_end]) != stored {
        return Err(ProtoError::ChecksumMismatch);
    }
    Message::decode_body(info.tag, &buf[HEADER_LEN..body_end])
}

/// Incremental frame splitter for stream transports (TCP): feed byte
/// chunks as they arrive, pop complete messages as they become
/// available.
///
/// ```
/// use saps_proto::{frame, Message};
///
/// let frame_bytes = frame::encode(&Message::Shutdown);
/// let mut dec = frame::FrameDecoder::new();
/// dec.feed(&frame_bytes[..5]); // arbitrary split points
/// assert_eq!(dec.next().unwrap(), None);
/// dec.feed(&frame_bytes[5..]);
/// assert_eq!(dec.next().unwrap(), Some(Message::Shutdown));
/// ```
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes consumed from the front of `buf` (compacted lazily).
    consumed: usize,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends newly received bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact before growing so the buffer stays bounded by the
        // largest in-flight frame, not the whole stream.
        if self.consumed > 0 {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete frame.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.consumed
    }

    /// Pops the next complete message, `Ok(None)` if more bytes are
    /// needed.
    ///
    /// An `Err` reports one damaged frame, not a dead stream: the
    /// decoder **resynchronizes** and later calls continue with the
    /// next intact frame. Body-level errors (checksum, unknown tag,
    /// malformed body) consume exactly the framed bytes they describe;
    /// header-level errors (bad magic, version skew, oversized
    /// declaration) skip forward to the next [`MAGIC`] boundary —
    /// garbage between frames costs one error per candidate boundary,
    /// never a stuck decoder. Transports may still choose to treat any
    /// error as fatal for the connection; that is policy, not a decoder
    /// limitation.
    ///
    /// One documented gap: corruption of a frame's *length field* that
    /// keeps the header plausible makes the decoder wait for (or
    /// swallow) the declared span before the checksum exposes the
    /// damage — length-prefixed framing must trust the length until
    /// then. Recovery still happens at the next magic boundary after
    /// the swallowed span; only the frames inside it are lost.
    ///
    /// (Named `next` to match upstream codec idiom; it is not an
    /// `Iterator` because decoding is fallible per call.)
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<Message>, ProtoError> {
        match self.next_frame()? {
            Some(frame) => decode(&frame).map(Some),
            None => Ok(None),
        }
    }

    /// Pops the next complete frame as raw bytes, `Ok(None)` if more
    /// bytes are needed. Only the header is validated (magic, version,
    /// length bound) — transports that just *move* frames use this to
    /// split the stream without paying body decode + re-encode; the
    /// consumer's [`decode`] still verifies the checksum and body.
    ///
    /// On a header-level error the unparseable bytes are skipped up to
    /// the next [`MAGIC`] boundary (see [`FrameDecoder::next`]) before
    /// the error is returned, so the following call resumes at the
    /// first candidate frame.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, ProtoError> {
        let avail = &self.buf[self.consumed..];
        let info = match peek(avail) {
            Ok(Some(info)) => info,
            Ok(None) => return Ok(None),
            Err(e) => {
                self.resync();
                return Err(e);
            }
        };
        if avail.len() < info.frame_len {
            return Ok(None);
        }
        let frame = avail[..info.frame_len].to_vec();
        self.consumed += info.frame_len;
        Ok(Some(frame))
    }

    /// Advances past an unparseable header to the next candidate magic
    /// boundary: the next occurrence of [`MAGIC`] at offset ≥ 1, or —
    /// when none is buffered yet — far enough that only a possible
    /// magic prefix (3 bytes) remains. Always advances at least one
    /// byte, so repeated errors always make progress.
    fn resync(&mut self) {
        let avail = &self.buf[self.consumed..];
        let skip = avail
            .windows(MAGIC.len())
            .skip(1)
            .position(|w| w == MAGIC)
            .map(|p| p + 1)
            .unwrap_or_else(|| avail.len().saturating_sub(MAGIC.len() - 1).max(1));
        self.consumed += skip;
    }
}

/// FNV-1a 64-bit over `data` — the frame trailer's integrity check,
/// exported so the chunked model-distribution layer stamps each
/// [`Message::ChunkData`] slice and manifest entry with the same
/// dependency-free checksum (corruption detection, not a MAC).
pub fn checksum(data: &[u8]) -> u64 {
    fnv1a(data)
}

/// FNV-1a 64-bit — the same dependency-free integrity check
/// `saps_core::checkpoint` uses (corruption detection, not a MAC).
fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::NotifyTrain {
                round: 3,
                mask_seed: 0xDEAD_BEEF,
                matching: vec![(0, 3), (1, 2)],
            },
            Message::MaskedPayload {
                round: 3,
                values: vec![1.0, -2.5, f32::MIN_POSITIVE, 0.0],
            },
            Message::RoundEnd {
                round: 3,
                rank: 2,
                loss: 1.25,
                acc: 0.5,
            },
            Message::FetchModel { rank: 1 },
            Message::FinalModel {
                rank: 1,
                checkpoint: vec![9, 8, 7, 6, 5],
            },
            Message::Join { rank: 4 },
            Message::Leave { rank: 4 },
            Message::BandwidthReport {
                n: 2,
                mbps: vec![0.0, 1.5, 1.5, 0.0],
            },
            Message::Shutdown,
            Message::InferRequest {
                id: 41,
                features: vec![0.25, -1.0, 3.5],
            },
            Message::InferResponse {
                id: 41,
                model_round: 12,
                model_version: 4,
                logits: vec![0.1, 0.7, 0.2],
            },
            Message::ModelAnnounce {
                round: 12,
                version: 4,
                checkpoint: vec![1, 2, 3, 4],
            },
            Message::ChunkRequest { epoch: 7, index: 2 },
            Message::ChunkData {
                epoch: 7,
                index: 2,
                checksum: 0x1234_5678_9ABC_DEF0,
                data: vec![5, 4, 3, 2, 1],
            },
            Message::ManifestAnnounce {
                epoch: 7,
                round: 21,
                total_len: 1300,
                chunk_size: 512,
                checksums: vec![11, 22, 33],
            },
        ]
    }

    #[test]
    fn every_message_roundtrips() {
        for msg in sample_messages() {
            let bytes = encode(&msg);
            assert_eq!(bytes.len(), encoded_len(&msg), "{}", msg.label());
            assert_eq!(decode(&bytes).unwrap(), msg, "{}", msg.label());
        }
    }

    #[test]
    fn peek_reports_tag_and_length_without_body_access() {
        let msg = Message::MaskedPayload {
            round: 1,
            values: vec![1.0; 10],
        };
        let bytes = encode(&msg);
        let info = peek(&bytes).unwrap().unwrap();
        assert_eq!(info.tag, msg.tag());
        assert_eq!(info.frame_len, bytes.len());
        assert_eq!(info.body_len, 8 + 4 + 40);
        // Short header: need more bytes, not an error.
        assert_eq!(peek(&bytes[..HEADER_LEN - 1]).unwrap(), None);
    }

    #[test]
    fn data_bytes_is_the_values_section_only() {
        let msg = Message::MaskedPayload {
            round: 1,
            values: vec![0.0; 7],
        };
        assert_eq!(msg.data_bytes(), 28);
        assert_eq!(encoded_len(&msg) as u64, 28 + (OVERHEAD + 8 + 4) as u64);
        for other in sample_messages() {
            if !matches!(other, Message::MaskedPayload { .. }) {
                assert_eq!(other.data_bytes(), 0, "{}", other.label());
            }
        }
    }

    #[test]
    fn truncation_is_typed_not_a_panic() {
        let bytes = encode(&Message::FetchModel { rank: 3 });
        for cut in 0..bytes.len() {
            let err = decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, ProtoError::Truncated),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn oversized_declaration_is_rejected_before_allocating() {
        let mut raw = encode(&Message::Shutdown).to_vec();
        raw[7..11].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode(&raw),
            Err(ProtoError::Oversized { declared, .. }) if declared == u32::MAX as u64
        ));
    }

    #[test]
    fn oversized_body_is_rejected_at_encode_not_wrapped() {
        // The bug class: `checkpoint.len() as u32` used to wrap silently,
        // emitting a frame whose header lied about the body. At the exact
        // MAX_BODY_BYTES boundary encoding must succeed; one byte past it
        // must be the typed Oversized error, never a truncated length.
        let limit = MAX_BODY_BYTES as usize;
        let fixed = 4 + 4; // FinalModel body overhead: rank + length field
        let at_limit = Message::FinalModel {
            rank: 0,
            checkpoint: vec![0u8; limit - fixed],
        };
        let frame = try_encode(&at_limit).expect("body at the limit encodes");
        assert_eq!(frame.len(), OVERHEAD + limit);
        assert_eq!(peek(&frame).unwrap().unwrap().body_len, limit);

        let past_limit = Message::FinalModel {
            rank: 0,
            checkpoint: vec![0u8; limit - fixed + 1],
        };
        assert!(matches!(
            try_encode(&past_limit),
            Err(ProtoError::Oversized { declared, limit: l })
                if declared == MAX_BODY_BYTES + 1 && l == MAX_BODY_BYTES
        ));
    }

    #[test]
    fn trailing_garbage_is_a_length_mismatch() {
        let mut raw = encode(&Message::Shutdown).to_vec();
        raw.push(0);
        assert!(matches!(
            decode(&raw),
            Err(ProtoError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn corruption_fails_the_checksum() {
        let bytes = encode(&Message::RoundEnd {
            round: 9,
            rank: 0,
            loss: 0.5,
            acc: 0.25,
        });
        for i in HEADER_LEN..bytes.len() - TRAILER_LEN {
            let mut raw = bytes.to_vec();
            raw[i] ^= 0x40;
            assert_eq!(
                decode(&raw),
                Err(ProtoError::ChecksumMismatch),
                "flip at {i}"
            );
        }
    }

    #[test]
    fn unknown_tag_with_valid_checksum_is_typed() {
        let mut raw = encode(&Message::Shutdown).to_vec();
        raw[6] = 200;
        let body_end = raw.len() - TRAILER_LEN;
        let sum = fnv1a(&raw[..body_end]).to_le_bytes();
        raw[body_end..].copy_from_slice(&sum);
        assert_eq!(decode(&raw), Err(ProtoError::UnknownTag(200)));
    }

    #[test]
    fn version_skew_is_typed() {
        let mut raw = encode(&Message::Shutdown).to_vec();
        raw[4..6].copy_from_slice(&7u16.to_le_bytes());
        assert_eq!(decode(&raw), Err(ProtoError::UnsupportedVersion(7)));
    }

    #[test]
    fn lying_element_count_is_malformed() {
        // A MaskedPayload whose count field promises more values than
        // the body holds, checksum re-stamped so only the count lies.
        let mut raw = encode(&Message::MaskedPayload {
            round: 1,
            values: vec![1.0, 2.0],
        })
        .to_vec();
        raw[HEADER_LEN + 8..HEADER_LEN + 12].copy_from_slice(&100u32.to_le_bytes());
        let body_end = raw.len() - TRAILER_LEN;
        let sum = fnv1a(&raw[..body_end]).to_le_bytes();
        raw[body_end..].copy_from_slice(&sum);
        assert_eq!(
            decode(&raw),
            Err(ProtoError::Malformed("value count vs body length"))
        );
    }

    #[test]
    fn lying_chunk_length_and_checksum_count_are_malformed() {
        // ChunkData whose length field promises more bytes than the body
        // holds, frame checksum re-stamped so only the length lies.
        let mut raw = encode(&Message::ChunkData {
            epoch: 1,
            index: 0,
            checksum: 9,
            data: vec![1, 2, 3],
        })
        .to_vec();
        let len_at = HEADER_LEN + 8 + 4 + 8;
        raw[len_at..len_at + 4].copy_from_slice(&64u32.to_le_bytes());
        let body_end = raw.len() - TRAILER_LEN;
        let sum = fnv1a(&raw[..body_end]).to_le_bytes();
        raw[body_end..].copy_from_slice(&sum);
        assert_eq!(
            decode(&raw),
            Err(ProtoError::Malformed("chunk length vs body length"))
        );

        // ManifestAnnounce with a lying checksum count.
        let mut raw = encode(&Message::ManifestAnnounce {
            epoch: 1,
            round: 2,
            total_len: 100,
            chunk_size: 50,
            checksums: vec![1, 2],
        })
        .to_vec();
        let count_at = HEADER_LEN + 8 + 8 + 8 + 4;
        raw[count_at..count_at + 4].copy_from_slice(&1000u32.to_le_bytes());
        let body_end = raw.len() - TRAILER_LEN;
        let sum = fnv1a(&raw[..body_end]).to_le_bytes();
        raw[body_end..].copy_from_slice(&sum);
        assert_eq!(
            decode(&raw),
            Err(ProtoError::Malformed("checksum count vs body length"))
        );
    }

    #[test]
    fn frame_decoder_splits_a_concatenated_stream() {
        let msgs = sample_messages();
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend_from_slice(&encode(m));
        }
        // Feed in awkward 3-byte chunks.
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        for chunk in stream.chunks(3) {
            dec.feed(chunk);
            while let Some(m) = dec.next().unwrap() {
                out.push(m);
            }
        }
        assert_eq!(out, msgs);
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn frame_decoder_next_frame_returns_verbatim_bytes() {
        let msgs = sample_messages();
        let mut stream = Vec::new();
        let mut frames = Vec::new();
        for m in &msgs {
            let f = encode(m);
            stream.extend_from_slice(&f);
            frames.push(f.to_vec());
        }
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        for chunk in stream.chunks(7) {
            dec.feed(chunk);
            while let Some(raw) = dec.next_frame().unwrap() {
                out.push(raw);
            }
        }
        // The raw split frames are byte-for-byte the encoded originals —
        // a frame-moving transport introduces no re-encoding.
        assert_eq!(out, frames);
    }

    #[test]
    fn frame_decoder_surfaces_corruption_then_recovers() {
        let mut raw = encode(&Message::Join { rank: 1 }).to_vec();
        raw[HEADER_LEN] ^= 0xFF;
        let mut dec = FrameDecoder::new();
        dec.feed(&raw);
        dec.feed(&encode(&Message::Leave { rank: 2 }));
        assert_eq!(dec.next(), Err(ProtoError::ChecksumMismatch));
        // The damaged frame was consumed whole; the stream continues.
        assert_eq!(dec.next(), Ok(Some(Message::Leave { rank: 2 })));
        assert_eq!(dec.next(), Ok(None));
    }

    #[test]
    fn frame_decoder_resyncs_on_magic_after_header_corruption() {
        // Smash the first frame's magic: the decoder must report
        // BadMagic, then skip to the second frame's magic boundary and
        // decode it.
        let mut stream = encode(&Message::Join { rank: 1 }).to_vec();
        stream[0] ^= 0xFF;
        stream.extend_from_slice(&encode(&Message::Shutdown));
        let mut dec = FrameDecoder::new();
        dec.feed(&stream);
        assert_eq!(dec.next(), Err(ProtoError::BadMagic));
        assert_eq!(dec.next(), Ok(Some(Message::Shutdown)));
        assert_eq!(dec.next(), Ok(None));
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn frame_decoder_survives_interframe_garbage() {
        let mut stream = Vec::new();
        stream.extend_from_slice(b"not a frame at all");
        stream.extend_from_slice(&encode(&Message::FetchModel { rank: 3 }));
        stream.extend_from_slice(&[0xAA; 7]);
        stream.extend_from_slice(&encode(&Message::Shutdown));
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        let mut errors = 0;
        for chunk in stream.chunks(5) {
            dec.feed(chunk);
            loop {
                match dec.next() {
                    Ok(Some(m)) => got.push(m),
                    Ok(None) => break,
                    Err(_) => errors += 1,
                }
            }
        }
        assert_eq!(
            got,
            vec![Message::FetchModel { rank: 3 }, Message::Shutdown]
        );
        assert!(errors > 0, "the garbage must have been reported");
    }

    #[test]
    fn frame_decoder_resync_keeps_a_possible_magic_prefix() {
        // Garbage ending with a split magic: resync must not eat the
        // prefix of the next frame that hasn't fully arrived yet.
        let frame = encode(&Message::Shutdown);
        let mut dec = FrameDecoder::new();
        let mut garbage = vec![0x11; HEADER_LEN];
        garbage.extend_from_slice(&frame[..3]); // "SAP"
        dec.feed(&garbage);
        assert_eq!(dec.next(), Err(ProtoError::BadMagic));
        dec.feed(&frame[3..]);
        assert_eq!(dec.next(), Ok(Some(Message::Shutdown)));
    }

    #[test]
    fn frame_decoder_version_skew_skips_one_frame() {
        let mut bad = encode(&Message::Join { rank: 9 }).to_vec();
        bad[4..6].copy_from_slice(&7u16.to_le_bytes());
        let mut dec = FrameDecoder::new();
        dec.feed(&bad);
        dec.feed(&encode(&Message::Leave { rank: 9 }));
        assert_eq!(dec.next(), Err(ProtoError::UnsupportedVersion(7)));
        // The skewed frame has no other magic inside, so resync lands
        // exactly on the next frame.
        assert_eq!(dec.next(), Ok(Some(Message::Leave { rank: 9 })));
    }
}
