//! Typed decode errors.

/// Everything that can go wrong decoding a frame.
///
/// Decoding never panics and never allocates more than the declared
/// (bounds-checked) body length — hostile input surfaces as one of these
/// variants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The buffer ends before the frame does.
    Truncated,
    /// The magic bytes don't match — this is not a SAPS protocol frame.
    BadMagic,
    /// The frame's format version is newer than this library understands.
    UnsupportedVersion(u16),
    /// The header's message tag names no known message type.
    UnknownTag(u8),
    /// The declared body length exceeds the frame size limit
    /// ([`crate::frame::MAX_BODY_BYTES`]).
    Oversized {
        /// Body length the header declares.
        declared: u64,
        /// The enforced limit.
        limit: u64,
    },
    /// The buffer's length disagrees with the header's declared length.
    LengthMismatch {
        /// Frame length implied by the header.
        expected: u64,
        /// Bytes actually supplied.
        actual: u64,
    },
    /// The trailing checksum doesn't match the frame contents.
    ChecksumMismatch,
    /// The body's internal structure contradicts itself (e.g. an element
    /// count that doesn't fit the declared body length).
    Malformed(&'static str),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "frame truncated"),
            ProtoError::BadMagic => write!(f, "not a SAPS protocol frame"),
            ProtoError::UnsupportedVersion(v) => write!(f, "unsupported protocol version {v}"),
            ProtoError::UnknownTag(t) => write!(f, "unknown message tag {t}"),
            ProtoError::Oversized { declared, limit } => {
                write!(f, "declared body of {declared} bytes exceeds limit {limit}")
            }
            ProtoError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "frame length mismatch: header implies {expected}, got {actual}"
                )
            }
            ProtoError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
            ProtoError::Malformed(what) => write!(f, "malformed body: {what}"),
        }
    }
}

impl std::error::Error for ProtoError {}
