//! Property tests for the wire protocol (mirroring `proptest_des.rs`).
//!
//! The contract pinned here (see `docs/PROTOCOL.md`):
//!
//! * **Exact round-trip** — every [`Message`], over its whole value
//!   space (including NaN/∞ floats, whose *bit patterns* must survive),
//!   encodes to exactly [`frame::encoded_len`] bytes and decodes back
//!   bit-identically.
//! * **Hostile input never panics** — truncations, single-bit flips,
//!   oversized length declarations and arbitrary byte soup all return a
//!   typed [`ProtoError`]; the decoder allocates no more than the
//!   (bounds-checked) declared body.
//! * **Streams reassemble** — a concatenation of frames fed to the
//!   [`frame::FrameDecoder`] in arbitrary chunkings yields the original
//!   message sequence.

use proptest::collection::vec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use saps_proto::{frame, Message, ProtoError};

/// Deterministically builds one arbitrary message from a seed, covering
/// every variant and adversarial float bit patterns.
fn arbitrary_message(seed: u64) -> Message {
    let mut rng = StdRng::seed_from_u64(seed);
    // Raw bit reinterpretation: NaNs and infinities must round-trip
    // bit-exactly, so generate floats from arbitrary bits.
    let f32_bits = |rng: &mut StdRng| f32::from_bits(rng.gen::<u32>());
    match rng.gen_range(0..9u32) {
        0 => {
            let pairs = rng.gen_range(0..20usize);
            Message::NotifyTrain {
                round: rng.gen(),
                mask_seed: rng.gen(),
                matching: (0..pairs).map(|_| (rng.gen(), rng.gen())).collect(),
            }
        }
        1 => {
            let n = rng.gen_range(0..600usize);
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                values.push(f32_bits(&mut rng));
            }
            Message::MaskedPayload {
                round: rng.gen(),
                values,
            }
        }
        2 => Message::RoundEnd {
            round: rng.gen(),
            rank: rng.gen(),
            loss: f32_bits(&mut rng),
            acc: f32_bits(&mut rng),
        },
        3 => Message::FetchModel { rank: rng.gen() },
        4 => {
            let n = rng.gen_range(0..400usize);
            Message::FinalModel {
                rank: rng.gen(),
                checkpoint: (0..n).map(|_| rng.gen()).collect(),
            }
        }
        5 => Message::Join { rank: rng.gen() },
        6 => Message::Leave { rank: rng.gen() },
        7 => {
            let n = rng.gen_range(0..8u32);
            let cells = (n * n) as usize;
            let mut mbps = Vec::with_capacity(cells);
            for _ in 0..cells {
                mbps.push(f64::from_bits(rng.gen::<u64>()));
            }
            Message::BandwidthReport { n, mbps }
        }
        _ => Message::Shutdown,
    }
}

/// Bit-exact message equality (PartialEq on f32/f64 treats NaN != NaN,
/// so compare through the encoded bytes instead).
fn bit_equal(a: &Message, b: &Message) -> bool {
    frame::encode(a).as_slice() == frame::encode(b).as_slice()
}

proptest! {
    #[test]
    fn every_message_roundtrips_bit_identically(seed in any::<u64>()) {
        let msg = arbitrary_message(seed);
        let bytes = frame::encode(&msg);
        prop_assert_eq!(bytes.len(), frame::encoded_len(&msg));
        let back = frame::decode(&bytes).unwrap();
        prop_assert!(bit_equal(&msg, &back), "{} did not round-trip", msg.label());
        // The header peek agrees with the full decode.
        let info = frame::peek(&bytes).unwrap().unwrap();
        prop_assert_eq!(info.tag, msg.tag());
        prop_assert_eq!(info.frame_len, bytes.len());
    }

    #[test]
    fn truncated_frames_are_typed_errors(seed in any::<u64>(), frac in 0.0f64..1.0) {
        let msg = arbitrary_message(seed);
        let bytes = frame::encode(&msg);
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        prop_assert_eq!(frame::decode(&bytes[..cut]), Err(ProtoError::Truncated));
    }

    #[test]
    fn bit_flips_never_decode_to_the_original(seed in any::<u64>(), pos_seed in any::<u64>()) {
        let msg = arbitrary_message(seed);
        let mut raw = frame::encode(&msg).to_vec();
        let mut rng = StdRng::seed_from_u64(pos_seed);
        let pos = rng.gen_range(0..raw.len());
        let bit = 1u8 << rng.gen_range(0..8);
        raw[pos] ^= bit;
        // A flip must surface as a typed error — flips in the trailing
        // checksum itself, or in the body with an (astronomically
        // unlikely) colliding checksum, could still decode, but never to
        // a frame that re-encodes to the original bytes.
        match frame::decode(&raw) {
            Err(_) => {}
            Ok(back) => prop_assert!(!bit_equal(&msg, &back), "flip at {} went unnoticed", pos),
        }
    }

    #[test]
    fn arbitrary_byte_soup_never_panics(soup in vec(0u8..=255, 0..256)) {
        // Any result is acceptable; what's pinned is "no panic".
        let _ = frame::decode(&soup);
        let _ = frame::peek(&soup);
        let mut dec = frame::FrameDecoder::new();
        dec.feed(&soup);
        let _ = dec.next();
    }

    #[test]
    fn oversized_declarations_never_allocate(declared in (frame::MAX_BODY_BYTES + 1)..u32::MAX as u64) {
        // A header declaring an enormous body must be rejected from the
        // 11 header bytes alone — no body needs to exist at all, and no
        // buffer is reserved for it.
        let mut raw = frame::encode(&Message::Shutdown).to_vec();
        raw[7..11].copy_from_slice(&(declared as u32).to_le_bytes());
        prop_assert!(matches!(
            frame::decode(&raw[..frame::HEADER_LEN]),
            Err(ProtoError::Oversized { declared: d, .. }) if d == declared
        ));
    }

    #[test]
    fn streams_reassemble_under_any_chunking(
        seeds in vec(any::<u64>(), 1..8),
        chunk in 1usize..64,
    ) {
        let msgs: Vec<Message> = seeds.iter().map(|&s| arbitrary_message(s)).collect();
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend_from_slice(&frame::encode(m));
        }
        let mut dec = frame::FrameDecoder::new();
        let mut out = Vec::new();
        for part in stream.chunks(chunk) {
            dec.feed(part);
            while let Some(m) = dec.next().unwrap() {
                out.push(m);
            }
        }
        prop_assert_eq!(out.len(), msgs.len());
        for (a, b) in msgs.iter().zip(&out) {
            prop_assert!(bit_equal(a, b));
        }
        prop_assert_eq!(dec.pending(), 0);
    }
}
