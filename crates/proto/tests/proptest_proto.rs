//! Property tests for the wire protocol (mirroring `proptest_des.rs`).
//!
//! The contract pinned here (see `docs/PROTOCOL.md`):
//!
//! * **Exact round-trip** — every [`Message`], over its whole value
//!   space (including NaN/∞ floats, whose *bit patterns* must survive),
//!   encodes to exactly [`frame::encoded_len`] bytes and decodes back
//!   bit-identically.
//! * **Hostile input never panics** — truncations, single-bit flips,
//!   oversized length declarations and arbitrary byte soup all return a
//!   typed [`ProtoError`]; the decoder allocates no more than the
//!   (bounds-checked) declared body.
//! * **Streams reassemble** — a concatenation of frames fed to the
//!   [`frame::FrameDecoder`] in arbitrary chunkings yields the original
//!   message sequence.
//! * **Corruption is contained** — damage inside one frame's body (or
//!   its magic) is reported as a typed error and the decoder resyncs on
//!   the next magic boundary: every frame after the victim still
//!   decodes bit-identically. (The documented exception is a corrupted
//!   *length field*, which can swallow following frames before the
//!   checksum exposes it — see `FrameDecoder::next`.)

use proptest::collection::vec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use saps_proto::{frame, Message, ProtoError};

/// Deterministically builds one arbitrary message from a seed, covering
/// every variant and adversarial float bit patterns.
fn arbitrary_message(seed: u64) -> Message {
    let mut rng = StdRng::seed_from_u64(seed);
    // Raw bit reinterpretation: NaNs and infinities must round-trip
    // bit-exactly, so generate floats from arbitrary bits.
    let f32_bits = |rng: &mut StdRng| f32::from_bits(rng.gen::<u32>());
    match rng.gen_range(0..18u32) {
        0 => {
            let pairs = rng.gen_range(0..20usize);
            Message::NotifyTrain {
                round: rng.gen(),
                mask_seed: rng.gen(),
                matching: (0..pairs).map(|_| (rng.gen(), rng.gen())).collect(),
            }
        }
        1 => {
            let n = rng.gen_range(0..600usize);
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                values.push(f32_bits(&mut rng));
            }
            Message::MaskedPayload {
                round: rng.gen(),
                values,
            }
        }
        2 => Message::RoundEnd {
            round: rng.gen(),
            rank: rng.gen(),
            loss: f32_bits(&mut rng),
            acc: f32_bits(&mut rng),
        },
        3 => Message::FetchModel { rank: rng.gen() },
        4 => {
            let n = rng.gen_range(0..400usize);
            Message::FinalModel {
                rank: rng.gen(),
                checkpoint: (0..n).map(|_| rng.gen()).collect(),
            }
        }
        5 => Message::Join { rank: rng.gen() },
        6 => Message::Leave { rank: rng.gen() },
        7 => {
            let n = rng.gen_range(0..8u32);
            let cells = (n * n) as usize;
            let mut mbps = Vec::with_capacity(cells);
            for _ in 0..cells {
                mbps.push(f64::from_bits(rng.gen::<u64>()));
            }
            Message::BandwidthReport { n, mbps }
        }
        8 => Message::Shutdown,
        9 => {
            let n = rng.gen_range(0..64usize);
            let mut features = Vec::with_capacity(n);
            for _ in 0..n {
                features.push(f32_bits(&mut rng));
            }
            Message::InferRequest {
                id: rng.gen(),
                features,
            }
        }
        10 => {
            let n = rng.gen_range(0..32usize);
            let mut logits = Vec::with_capacity(n);
            for _ in 0..n {
                logits.push(f32_bits(&mut rng));
            }
            Message::InferResponse {
                id: rng.gen(),
                model_round: rng.gen(),
                model_version: rng.gen(),
                logits,
            }
        }
        11 => {
            let n = rng.gen_range(0..400usize);
            Message::ModelAnnounce {
                round: rng.gen(),
                version: rng.gen(),
                checkpoint: (0..n).map(|_| rng.gen()).collect(),
            }
        }
        12 => {
            let n = rng.gen_range(0..600usize);
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                values.push(f32_bits(&mut rng));
            }
            Message::DensePayload {
                round: rng.gen(),
                values,
            }
        }
        13 => {
            let n = rng.gen_range(0..600usize);
            let mut indices = Vec::with_capacity(n);
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                indices.push(rng.gen::<u32>());
                values.push(f32_bits(&mut rng));
            }
            Message::SparsePayload {
                round: rng.gen(),
                indices,
                values,
            }
        }
        14 => Message::ClientStats {
            round: rng.gen(),
            rank: rng.gen(),
            loss: f64::from_bits(rng.gen::<u64>()),
            acc: f64::from_bits(rng.gen::<u64>()),
        },
        15 => Message::ChunkRequest {
            epoch: rng.gen(),
            index: rng.gen(),
        },
        16 => {
            let n = rng.gen_range(0..600usize);
            Message::ChunkData {
                epoch: rng.gen(),
                index: rng.gen(),
                checksum: rng.gen(),
                data: (0..n).map(|_| rng.gen()).collect(),
            }
        }
        _ => {
            let n = rng.gen_range(0..64usize);
            Message::ManifestAnnounce {
                epoch: rng.gen(),
                round: rng.gen(),
                total_len: rng.gen(),
                chunk_size: rng.gen(),
                checksums: (0..n).map(|_| rng.gen()).collect(),
            }
        }
    }
}

/// Bit-exact message equality (PartialEq on f32/f64 treats NaN != NaN,
/// so compare through the encoded bytes instead).
fn bit_equal(a: &Message, b: &Message) -> bool {
    frame::encode(a).as_slice() == frame::encode(b).as_slice()
}

proptest! {
    #[test]
    fn every_message_roundtrips_bit_identically(seed in any::<u64>()) {
        let msg = arbitrary_message(seed);
        let bytes = frame::encode(&msg);
        prop_assert_eq!(bytes.len(), frame::encoded_len(&msg));
        let back = frame::decode(&bytes).unwrap();
        prop_assert!(bit_equal(&msg, &back), "{} did not round-trip", msg.label());
        // The header peek agrees with the full decode.
        let info = frame::peek(&bytes).unwrap().unwrap();
        prop_assert_eq!(info.tag, msg.tag());
        prop_assert_eq!(info.frame_len, bytes.len());
    }

    #[test]
    fn truncated_frames_are_typed_errors(seed in any::<u64>(), frac in 0.0f64..1.0) {
        let msg = arbitrary_message(seed);
        let bytes = frame::encode(&msg);
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        prop_assert_eq!(frame::decode(&bytes[..cut]), Err(ProtoError::Truncated));
    }

    #[test]
    fn bit_flips_never_decode_to_the_original(seed in any::<u64>(), pos_seed in any::<u64>()) {
        let msg = arbitrary_message(seed);
        let mut raw = frame::encode(&msg).to_vec();
        let mut rng = StdRng::seed_from_u64(pos_seed);
        let pos = rng.gen_range(0..raw.len());
        let bit = 1u8 << rng.gen_range(0..8);
        raw[pos] ^= bit;
        // A flip must surface as a typed error — flips in the trailing
        // checksum itself, or in the body with an (astronomically
        // unlikely) colliding checksum, could still decode, but never to
        // a frame that re-encodes to the original bytes.
        match frame::decode(&raw) {
            Err(_) => {}
            Ok(back) => prop_assert!(!bit_equal(&msg, &back), "flip at {} went unnoticed", pos),
        }
    }

    #[test]
    fn arbitrary_byte_soup_never_panics(soup in vec(0u8..=255, 0..256)) {
        // Any result is acceptable; what's pinned is "no panic".
        let _ = frame::decode(&soup);
        let _ = frame::peek(&soup);
        let mut dec = frame::FrameDecoder::new();
        dec.feed(&soup);
        let _ = dec.next();
    }

    #[test]
    fn oversized_declarations_never_allocate(declared in (frame::MAX_BODY_BYTES + 1)..u32::MAX as u64) {
        // A header declaring an enormous body must be rejected from the
        // 11 header bytes alone — no body needs to exist at all, and no
        // buffer is reserved for it.
        let mut raw = frame::encode(&Message::Shutdown).to_vec();
        raw[7..11].copy_from_slice(&(declared as u32).to_le_bytes());
        prop_assert!(matches!(
            frame::decode(&raw[..frame::HEADER_LEN]),
            Err(ProtoError::Oversized { declared: d, .. }) if d == declared
        ));
    }

    #[test]
    fn streams_reassemble_under_any_chunking(
        seeds in vec(any::<u64>(), 1..8),
        chunk in 1usize..64,
    ) {
        let msgs: Vec<Message> = seeds.iter().map(|&s| arbitrary_message(s)).collect();
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend_from_slice(&frame::encode(m));
        }
        let mut dec = frame::FrameDecoder::new();
        let mut out = Vec::new();
        for part in stream.chunks(chunk) {
            dec.feed(part);
            while let Some(m) = dec.next().unwrap() {
                out.push(m);
            }
        }
        prop_assert_eq!(out.len(), msgs.len());
        for (a, b) in msgs.iter().zip(&out) {
            prop_assert!(bit_equal(a, b));
        }
        prop_assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn body_corruption_is_contained_to_one_frame(
        seeds in vec(any::<u64>(), 2..8),
        corrupt_seed in any::<u64>(),
        chunk in 1usize..64,
    ) {
        let msgs: Vec<Message> = seeds.iter().map(|&s| arbitrary_message(s)).collect();
        let mut rng = StdRng::seed_from_u64(corrupt_seed);
        let victim = rng.gen_range(0..msgs.len());
        let mut stream = Vec::new();
        let mut victim_span = (0, 0);
        for (i, m) in msgs.iter().enumerate() {
            let f = frame::encode(m);
            if i == victim {
                victim_span = (stream.len(), stream.len() + f.len());
            }
            stream.extend_from_slice(&f);
        }
        // Flip 1..=4 random bits strictly below the victim's header —
        // body and checksum only, so the frame is still consumed whole
        // and the damage surfaces at decode time.
        let lo = victim_span.0 + frame::HEADER_LEN;
        for _ in 0..rng.gen_range(1..=4usize) {
            let pos = rng.gen_range(lo..victim_span.1);
            stream[pos] ^= 1u8 << rng.gen_range(0..8);
        }
        let mut dec = frame::FrameDecoder::new();
        let mut out = Vec::new();
        let mut errors = 0;
        for part in stream.chunks(chunk) {
            dec.feed(part);
            loop {
                match dec.next() {
                    Ok(Some(m)) => out.push(m),
                    Ok(None) => break,
                    Err(_) => errors += 1,
                }
            }
        }
        // Every frame after the victim decodes bit-identically. (The
        // victim itself normally reports ChecksumMismatch; a colliding
        // decode would merely add one message before the suffix.)
        let suffix = &msgs[victim + 1..];
        prop_assert!(out.len() >= suffix.len(), "tail lost: {} < {}", out.len(), suffix.len());
        for (a, b) in suffix.iter().rev().zip(out.iter().rev()) {
            prop_assert!(bit_equal(a, b), "tail frame drifted after corruption");
        }
        prop_assert!(errors > 0 || out.len() > suffix.len());
        prop_assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn magic_corruption_resyncs_on_the_next_boundary(
        seeds in vec(any::<u64>(), 1..6),
        victim_slot in any::<u64>(),
        flip in (0usize..4, 0u32..8),
    ) {
        // A Shutdown frame with one bit flipped in its magic, spliced
        // between arbitrary frames: the decoder must report BadMagic,
        // skip the damaged frame, and decode everything after it. The
        // rest of a Shutdown frame is fixed bytes verified magic-free,
        // so resync lands exactly on the next real frame.
        let victim_bytes = {
            let mut raw = frame::encode(&Message::Shutdown).to_vec();
            raw[flip.0] ^= 1u8 << flip.1;
            prop_assert!(
                !raw[1..].windows(frame::MAGIC.len()).any(|w| w == frame::MAGIC),
                "test premise: no spurious magic inside the damaged frame"
            );
            raw
        };
        let msgs: Vec<Message> = seeds.iter().map(|&s| arbitrary_message(s)).collect();
        let victim = (victim_slot % msgs.len() as u64) as usize;
        let mut stream = Vec::new();
        for (i, m) in msgs.iter().enumerate() {
            if i == victim {
                stream.extend_from_slice(&victim_bytes);
            }
            stream.extend_from_slice(&frame::encode(m));
        }
        let mut dec = frame::FrameDecoder::new();
        dec.feed(&stream);
        let mut out = Vec::new();
        let mut bad_magic = 0;
        loop {
            match dec.next() {
                Ok(Some(m)) => out.push(m),
                Ok(None) => break,
                Err(ProtoError::BadMagic) => bad_magic += 1,
                Err(e) => prop_assert!(false, "unexpected error {e:?}"),
            }
        }
        prop_assert_eq!(bad_magic, 1);
        prop_assert_eq!(out.len(), msgs.len());
        for (a, b) in msgs.iter().zip(&out) {
            prop_assert!(bit_equal(a, b));
        }
        prop_assert_eq!(dec.pending(), 0);
    }
}
