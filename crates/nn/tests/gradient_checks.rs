//! End-to-end gradient checks: random small models, finite differences
//! against backprop through the full model + loss.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use saps_data::Batch;
use saps_nn::{softmax_cross_entropy, zoo, Model};

/// Computes the loss of `model` on `batch` without touching gradients.
fn loss_of(model: &mut Model, batch: &Batch) -> f32 {
    let logits = model.forward(&batch.features, batch.len(), true);
    softmax_cross_entropy(&logits, &batch.labels).0
}

/// Finite-difference check of `dL/dθ` at a few random coordinates.
fn check_model_gradients(mut model: Model, batch: &Batch, coords: &[usize], tol: f32) {
    model.zero_grads();
    model.compute_grads(batch);
    let analytic = model.flat_grads();
    let mut params = model.flat_params();
    for &k in coords {
        let k = k % params.len();
        let orig = params[k];
        // Start with a coarse step (robust to f32 cancellation) and refine:
        // a ReLU kink or max-pool switch inside ±eps makes the coarse
        // central difference wrong even when backprop is exact, so a
        // coordinate only fails if no step size agrees.
        let mut last = (f32::NAN, f32::NAN);
        let ok = [1e-2f32, 2e-3, 1e-3].iter().any(|&eps| {
            params[k] = orig + eps;
            model.set_flat_params(&params);
            let lp = loss_of(&mut model, batch);
            params[k] = orig - eps;
            model.set_flat_params(&params);
            let lm = loss_of(&mut model, batch);
            params[k] = orig;
            model.set_flat_params(&params);
            let numeric = (lp - lm) / (2.0 * eps);
            last = (numeric, eps);
            (analytic[k] - numeric).abs() <= tol * numeric.abs().max(0.5)
        });
        assert!(
            ok,
            "coord {k}: analytic {} vs numeric {} (eps {})",
            analytic[k], last.0, last.1
        );
    }
}

fn batch_for(model: &Model, classes: usize, seed: u64) -> Batch {
    let mut rng = StdRng::seed_from_u64(seed);
    let ds = saps_data::SyntheticSpec {
        feature_dim: model.input_dim(),
        num_classes: classes,
        num_samples: 16,
        noise: 0.5,
        class_separation: 1.0,
        mixing_taps: 2,
    }
    .generate(seed);
    ds.sample_batch(4, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn mlp_gradients_match_finite_differences(
        seed in any::<u64>(),
        hidden in 4usize..24,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = zoo::mlp(&[8, hidden, 3], &mut rng);
        let batch = batch_for(&model, 3, seed);
        let coords: Vec<usize> = (0..6).map(|i| seed as usize / (i + 1) + i * 37).collect();
        check_model_gradients(model, &batch, &coords, 0.05);
    }

    #[test]
    fn small_cnn_gradients_match_finite_differences(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = zoo::small_cnn(&mut rng);
        let batch = batch_for(&model, 4, seed);
        let coords: Vec<usize> = (0..4).map(|i| seed as usize / (i + 1) + i * 101).collect();
        check_model_gradients(model, &batch, &coords, 0.08);
    }
}

#[test]
fn resnet_tiny_gradients_match_finite_differences() {
    let mut rng = StdRng::seed_from_u64(5);
    let model = zoo::resnet_tiny(&mut rng);
    let batch = batch_for(&model, 4, 5);
    // Batch norm makes individual-coordinate finite differences noisier;
    // use a looser tolerance and a few spread-out coordinates.
    check_model_gradients(model, &batch, &[0, 333, 777, 1234], 0.15);
}

#[test]
fn flat_param_round_trip_preserves_behaviour() {
    // Extracting and re-setting flat params must not change the model's
    // outputs — the invariant the model-exchange path relies on.
    let mut rng = StdRng::seed_from_u64(9);
    let mut model = zoo::mlp(&[8, 16, 3], &mut rng);
    let batch = batch_for(&model, 3, 9);
    let before = loss_of(&mut model, &batch);
    let flat = model.flat_params();
    model.set_flat_params(&flat);
    let after = loss_of(&mut model, &batch);
    assert_eq!(before, after);
}
