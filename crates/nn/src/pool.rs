//! Pooling layers.

use crate::Layer;
use saps_tensor::Tensor;

/// 2-D max pooling with square window and stride equal to the window.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    window: usize,
    channels: usize,
    in_h: usize,
    in_w: usize,
    cached_argmax: Option<Vec<u32>>,
    cached_batch: usize,
}

impl MaxPool2d {
    /// Creates a max-pool layer for `channels × in_h × in_w` inputs.
    pub fn new(window: usize, channels: usize, in_h: usize, in_w: usize) -> Self {
        assert!(window >= 1);
        assert!(
            in_h.is_multiple_of(window) && in_w.is_multiple_of(window),
            "pooling window must tile the input exactly"
        );
        MaxPool2d {
            window,
            channels,
            in_h,
            in_w,
            cached_argmax: None,
            cached_batch: 0,
        }
    }

    /// Output spatial height.
    pub fn out_h(&self) -> usize {
        self.in_h / self.window
    }

    /// Output spatial width.
    pub fn out_w(&self) -> usize {
        self.in_w / self.window
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        assert_eq!(
            input.shape(),
            &[input.shape()[0], self.channels, self.in_h, self.in_w],
            "MaxPool2d input shape mismatch"
        );
        let batch = input.shape()[0];
        let (c, oh, ow, k) = (self.channels, self.out_h(), self.out_w(), self.window);
        let x = input.data();
        let mut out = vec![0.0f32; batch * c * oh * ow];
        let mut argmax = vec![0u32; batch * c * oh * ow];
        for n in 0..batch {
            for ci in 0..c {
                let plane = (n * c + ci) * self.in_h * self.in_w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0u32;
                        for ky in 0..k {
                            for kx in 0..k {
                                let idx = plane + (oy * k + ky) * self.in_w + (ox * k + kx);
                                if x[idx] > best {
                                    best = x[idx];
                                    best_idx = idx as u32;
                                }
                            }
                        }
                        let o = ((n * c + ci) * oh + oy) * ow + ox;
                        out[o] = best;
                        argmax[o] = best_idx;
                    }
                }
            }
        }
        self.cached_argmax = Some(argmax);
        self.cached_batch = batch;
        Tensor::from_vec(out, &[batch, c, oh, ow])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let argmax = self
            .cached_argmax
            .take()
            .expect("backward called without a preceding forward");
        let batch = self.cached_batch;
        let mut gin = vec![0.0f32; batch * self.channels * self.in_h * self.in_w];
        for (o, &src) in argmax.iter().enumerate() {
            gin[src as usize] += grad_out.data()[o];
        }
        Tensor::from_vec(gin, &[batch, self.channels, self.in_h, self.in_w])
    }

    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    fn grads(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn zero_grads(&mut self) {}
}

/// Global average pooling: NCHW → `[batch, channels]`.
#[derive(Debug, Clone)]
pub struct GlobalAvgPool {
    channels: usize,
    in_h: usize,
    in_w: usize,
    cached_batch: usize,
}

impl GlobalAvgPool {
    /// Creates a global average pool for `channels × in_h × in_w` inputs.
    pub fn new(channels: usize, in_h: usize, in_w: usize) -> Self {
        GlobalAvgPool {
            channels,
            in_h,
            in_w,
            cached_batch: 0,
        }
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let batch = input.shape()[0];
        assert_eq!(input.shape(), &[batch, self.channels, self.in_h, self.in_w]);
        let area = (self.in_h * self.in_w) as f32;
        let mut out = vec![0.0f32; batch * self.channels];
        for n in 0..batch {
            for c in 0..self.channels {
                let plane = (n * self.channels + c) * self.in_h * self.in_w;
                let s: f32 = input.data()[plane..plane + self.in_h * self.in_w]
                    .iter()
                    .sum();
                out[n * self.channels + c] = s / area;
            }
        }
        self.cached_batch = batch;
        Tensor::from_vec(out, &[batch, self.channels])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let batch = self.cached_batch;
        let area = (self.in_h * self.in_w) as f32;
        let mut gin = vec![0.0f32; batch * self.channels * self.in_h * self.in_w];
        for n in 0..batch {
            for c in 0..self.channels {
                let g = grad_out.data()[n * self.channels + c] / area;
                let plane = (n * self.channels + c) * self.in_h * self.in_w;
                for v in &mut gin[plane..plane + self.in_h * self.in_w] {
                    *v = g;
                }
            }
        }
        Tensor::from_vec(gin, &[batch, self.channels, self.in_h, self.in_w])
    }

    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    fn grads(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn zero_grads(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_known_values() {
        let mut p = MaxPool2d::new(2, 1, 4, 4);
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]);
        let y = p.forward(&x, true);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let mut p = MaxPool2d::new(2, 1, 2, 2);
        let x = Tensor::from_vec(vec![1.0, 9.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let _ = p.forward(&x, true);
        let g = p.backward(&Tensor::from_vec(vec![5.0], &[1, 1, 1, 1]));
        assert_eq!(g.data(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn global_avg_pool_values_and_gradient() {
        let mut p = GlobalAvgPool::new(2, 2, 2);
        let x = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 10.0, 10.0, 10.0],
            &[1, 2, 2, 2],
        );
        let y = p.forward(&x, true);
        assert_eq!(y.data(), &[2.5, 10.0]);
        let g = p.backward(&Tensor::from_vec(vec![4.0, 8.0], &[1, 2]));
        assert_eq!(g.data(), &[1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "tile the input")]
    fn maxpool_rejects_non_tiling_window() {
        let _ = MaxPool2d::new(3, 1, 4, 4);
    }
}
