//! 2-D convolution via im2col.

use crate::Layer;
use rand::Rng;
use saps_tensor::Tensor;

/// A 2-D convolution layer (stride-1 or stride-2, symmetric zero padding),
/// NCHW layout.
///
/// Implemented as im2col + GEMM: the input patches are unrolled into a
/// `[batch·H_out·W_out, C_in·k·k]` matrix and multiplied by the
/// `[C_in·k·k, C_out]` kernel matrix.
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    in_h: usize,
    in_w: usize,
    w: Tensor,
    b: Tensor,
    grad_w: Tensor,
    grad_b: Tensor,
    cached_cols: Option<Tensor>,
    cached_batch: usize,
}

impl Conv2d {
    /// Creates a convolution for inputs of spatial size `in_h × in_w`.
    /// Kaiming-uniform initialization.
    #[allow(clippy::too_many_arguments)]
    pub fn new<R: Rng>(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        in_h: usize,
        in_w: usize,
        rng: &mut R,
    ) -> Self {
        assert!(stride >= 1 && kernel >= 1);
        let fan_in = in_channels * kernel * kernel;
        let bound = (6.0 / fan_in as f32).sqrt();
        Conv2d {
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            in_h,
            in_w,
            w: Tensor::uniform(&[fan_in, out_channels], bound, rng),
            b: Tensor::zeros(&[out_channels]),
            grad_w: Tensor::zeros(&[fan_in, out_channels]),
            grad_b: Tensor::zeros(&[out_channels]),
            cached_cols: None,
            cached_batch: 0,
        }
    }

    /// Output spatial height.
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Output spatial width.
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    fn im2col(&self, input: &Tensor, batch: usize) -> Tensor {
        let (c, h, w) = (self.in_channels, self.in_h, self.in_w);
        let (oh, ow, k, s, p) = (
            self.out_h(),
            self.out_w(),
            self.kernel,
            self.stride,
            self.padding,
        );
        let cols_w = c * k * k;
        let mut cols = vec![0.0f32; batch * oh * ow * cols_w];
        let x = input.data();
        for n in 0..batch {
            let x_base = n * c * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let row = ((n * oh + oy) * ow + ox) * cols_w;
                    for ci in 0..c {
                        for ky in 0..k {
                            let iy = (oy * s + ky) as isize - p as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..k {
                                let ix = (ox * s + kx) as isize - p as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                cols[row + (ci * k + ky) * k + kx] =
                                    x[x_base + (ci * h + iy as usize) * w + ix as usize];
                            }
                        }
                    }
                }
            }
        }
        Tensor::from_vec(cols, &[batch * oh * ow, cols_w])
    }

    fn col2im(&self, grad_cols: &Tensor, batch: usize) -> Tensor {
        let (c, h, w) = (self.in_channels, self.in_h, self.in_w);
        let (oh, ow, k, s, p) = (
            self.out_h(),
            self.out_w(),
            self.kernel,
            self.stride,
            self.padding,
        );
        let cols_w = c * k * k;
        let mut out = vec![0.0f32; batch * c * h * w];
        let g = grad_cols.data();
        for n in 0..batch {
            let x_base = n * c * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let row = ((n * oh + oy) * ow + ox) * cols_w;
                    for ci in 0..c {
                        for ky in 0..k {
                            let iy = (oy * s + ky) as isize - p as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..k {
                                let ix = (ox * s + kx) as isize - p as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                out[x_base + (ci * h + iy as usize) * w + ix as usize] +=
                                    g[row + (ci * k + ky) * k + kx];
                            }
                        }
                    }
                }
            }
        }
        Tensor::from_vec(out, &[batch, c, h, w])
    }

    /// Rearranges `[batch·oh·ow, C_out]` column output into NCHW.
    fn cols_to_nchw(&self, out_cols: &Tensor, batch: usize) -> Tensor {
        let (oh, ow, oc) = (self.out_h(), self.out_w(), self.out_channels);
        let mut out = vec![0.0f32; batch * oc * oh * ow];
        let src = out_cols.data();
        for n in 0..batch {
            for oy in 0..oh {
                for ox in 0..ow {
                    let row = ((n * oh + oy) * ow + ox) * oc;
                    for co in 0..oc {
                        out[((n * oc + co) * oh + oy) * ow + ox] = src[row + co];
                    }
                }
            }
        }
        Tensor::from_vec(out, &[batch, oc, oh, ow])
    }

    /// Rearranges an NCHW gradient into `[batch·oh·ow, C_out]` columns.
    fn nchw_to_cols(&self, grad: &Tensor, batch: usize) -> Tensor {
        let (oh, ow, oc) = (self.out_h(), self.out_w(), self.out_channels);
        let mut out = vec![0.0f32; batch * oh * ow * oc];
        let src = grad.data();
        for n in 0..batch {
            for oy in 0..oh {
                for ox in 0..ow {
                    let row = ((n * oh + oy) * ow + ox) * oc;
                    for co in 0..oc {
                        out[row + co] = src[((n * oc + co) * oh + oy) * ow + ox];
                    }
                }
            }
        }
        Tensor::from_vec(out, &[batch * oh * ow, oc])
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        assert_eq!(input.shape().len(), 4, "Conv2d expects NCHW input");
        let batch = input.shape()[0];
        assert_eq!(input.shape()[1], self.in_channels, "channel mismatch");
        assert_eq!(input.shape()[2], self.in_h, "height mismatch");
        assert_eq!(input.shape()[3], self.in_w, "width mismatch");
        let cols = self.im2col(input, batch);
        let mut out_cols = cols.matmul(&self.w);
        // Add bias per output channel.
        let oc = self.out_channels;
        let b = self.b.data();
        let data = out_cols.data_mut();
        for row in data.chunks_exact_mut(oc) {
            for (v, &bias) in row.iter_mut().zip(b) {
                *v += bias;
            }
        }
        self.cached_cols = Some(cols);
        self.cached_batch = batch;
        self.cols_to_nchw(&out_cols, batch)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cols = self
            .cached_cols
            .take()
            .expect("backward called without a preceding forward");
        let batch = self.cached_batch;
        let grad_cols = self.nchw_to_cols(grad_out, batch);
        // dW = colsᵀ · dy_cols.
        let gw = cols.t_matmul(&grad_cols);
        self.grad_w.add_scaled_assign(&gw, 1.0);
        // db = column-sum of dy_cols.
        let oc = self.out_channels;
        let gb = self.grad_b.data_mut();
        for row in grad_cols.data().chunks_exact(oc) {
            for (g, &v) in gb.iter_mut().zip(row) {
                *g += v;
            }
        }
        // dx = col2im(dy_cols · Wᵀ).
        let grad_input_cols = grad_cols.matmul_t(&self.w);
        self.col2im(&grad_input_cols, batch)
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.w, &self.b]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.w, &mut self.b]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![&self.grad_w, &self.grad_b]
    }

    fn zero_grads(&mut self) {
        self.grad_w.scale_assign(0.0);
        self.grad_b.scale_assign(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_kernel_passthrough() {
        // 1×1 kernel with weight 1 reproduces the input.
        let mut rng = StdRng::seed_from_u64(1);
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, 3, 3, &mut rng);
        conv.params_mut()[0].data_mut()[0] = 1.0;
        conv.params_mut()[0].scale_assign(1.0);
        conv.w.data_mut()[0] = 1.0;
        let x = Tensor::from_vec((0..9).map(|v| v as f32).collect(), &[1, 1, 3, 3]);
        let y = conv.forward(&x, true);
        assert_eq!(y.shape(), &[1, 1, 3, 3]);
        for (a, b) in y.data().iter().zip(x.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn known_3x3_convolution() {
        // 3×3 all-ones kernel over a 3×3 all-ones image with padding 1:
        // centre sees 9, edges 6, corners 4.
        let mut rng = StdRng::seed_from_u64(2);
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, 3, 3, &mut rng);
        for v in conv.w.data_mut() {
            *v = 1.0;
        }
        let x = Tensor::full(&[1, 1, 3, 3], 1.0);
        let y = conv.forward(&x, true);
        assert_eq!(y.data(), &[4.0, 6.0, 4.0, 6.0, 9.0, 6.0, 4.0, 6.0, 4.0]);
    }

    #[test]
    fn stride_two_halves_resolution() {
        let mut rng = StdRng::seed_from_u64(3);
        let conv = Conv2d::new(3, 8, 3, 2, 1, 8, 8, &mut rng);
        assert_eq!(conv.out_h(), 4);
        assert_eq!(conv.out_w(), 4);
    }

    #[test]
    fn gradient_check_weights_and_input() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, 4, 4, &mut rng);
        let x = Tensor::randn(&[2, 2, 4, 4], 1.0, &mut rng);
        let y = conv.forward(&x, true);
        let gin = conv.backward(&Tensor::full(y.shape(), 1.0));
        let eps = 1e-2f32;
        // Weight gradient at a few positions.
        let analytic_w = conv.grads()[0].clone();
        for k in [0usize, 7, 23] {
            let orig = conv.w.data()[k];
            conv.w.data_mut()[k] = orig + eps;
            let lp = conv.forward(&x, true).sum();
            conv.w.data_mut()[k] = orig - eps;
            let lm = conv.forward(&x, true).sum();
            conv.w.data_mut()[k] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (analytic_w.data()[k] - numeric).abs() < 0.05 * numeric.abs().max(1.0),
                "w[{k}]: {} vs {}",
                analytic_w.data()[k],
                numeric
            );
        }
        // Input gradient at a few positions.
        for k in [0usize, 17, 40] {
            let mut xp = x.clone();
            xp.data_mut()[k] += eps;
            let mut xm = x.clone();
            xm.data_mut()[k] -= eps;
            let lp = conv.forward(&xp, true).sum();
            let lm = conv.forward(&xm, true).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (gin.data()[k] - numeric).abs() < 0.05 * numeric.abs().max(1.0),
                "x[{k}]: {} vs {}",
                gin.data()[k],
                numeric
            );
        }
    }

    #[test]
    fn bias_gradient_counts_positions() {
        // dL/db for L = sum(y) equals batch · oh · ow per channel.
        let mut rng = StdRng::seed_from_u64(5);
        let mut conv = Conv2d::new(1, 2, 3, 1, 1, 4, 4, &mut rng);
        let x = Tensor::randn(&[3, 1, 4, 4], 1.0, &mut rng);
        let y = conv.forward(&x, true);
        conv.backward(&Tensor::full(y.shape(), 1.0));
        for &g in conv.grads()[1].data() {
            assert!((g - 48.0).abs() < 1e-3); // 3 batch × 16 positions
        }
    }

    #[test]
    fn param_count_formula() {
        let mut rng = StdRng::seed_from_u64(6);
        let conv = Conv2d::new(3, 16, 5, 1, 2, 32, 32, &mut rng);
        assert_eq!(conv.param_count(), 3 * 5 * 5 * 16 + 16);
    }
}
