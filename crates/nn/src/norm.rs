//! Batch normalization.

use crate::Layer;
use saps_tensor::Tensor;

const EPS: f32 = 1e-5;

/// Per-channel batch normalization (NCHW, or `[batch, features]` treating
/// each feature as a channel).
///
/// Training mode normalizes with batch statistics and updates running
/// estimates (momentum 0.9); eval mode normalizes with the running
/// estimates. γ (scale) and β (shift) are the learnable parameters — they
/// take part in model exchange like any other parameter.
#[derive(Debug, Clone)]
pub struct BatchNorm {
    channels: usize,
    gamma: Tensor,
    beta: Tensor,
    grad_gamma: Tensor,
    grad_beta: Tensor,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    // Backward cache.
    cached_xhat: Option<Tensor>,
    cached_inv_std: Vec<f32>,
}

impl BatchNorm {
    /// Creates a batch-norm layer over `channels` channels
    /// (γ = 1, β = 0, running stats at standard normal).
    pub fn new(channels: usize) -> Self {
        BatchNorm {
            channels,
            gamma: Tensor::full(&[channels], 1.0),
            beta: Tensor::zeros(&[channels]),
            grad_gamma: Tensor::zeros(&[channels]),
            grad_beta: Tensor::zeros(&[channels]),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            cached_xhat: None,
            cached_inv_std: Vec::new(),
        }
    }

    /// Decomposes a supported shape into `(batch, channels, spatial)`.
    fn plan(&self, shape: &[usize]) -> (usize, usize) {
        match shape.len() {
            2 => {
                assert_eq!(shape[1], self.channels, "channel mismatch");
                (shape[0], 1)
            }
            4 => {
                assert_eq!(shape[1], self.channels, "channel mismatch");
                (shape[0], shape[2] * shape[3])
            }
            _ => panic!("BatchNorm expects 2-D or 4-D input"),
        }
    }

    /// Iterates `(flat_index, channel)` for a given layout — helper to keep
    /// forward/backward loops identical.
    #[inline]
    fn channel_of(&self, i: usize, spatial: usize) -> usize {
        (i / spatial) % self.channels
    }
}

impl Layer for BatchNorm {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let (batch, spatial) = self.plan(input.shape());
        let m = (batch * spatial) as f32;
        let x = input.data();
        let c = self.channels;

        let (mean, var) = if train {
            let mut mean = vec![0.0f32; c];
            let mut var = vec![0.0f32; c];
            for (i, &v) in x.iter().enumerate() {
                mean[self.channel_of(i, spatial)] += v;
            }
            for mu in &mut mean {
                *mu /= m;
            }
            for (i, &v) in x.iter().enumerate() {
                let ch = self.channel_of(i, spatial);
                var[ch] += (v - mean[ch]) * (v - mean[ch]);
            }
            for s in &mut var {
                *s /= m;
            }
            for ch in 0..c {
                self.running_mean[ch] = 0.9 * self.running_mean[ch] + 0.1 * mean[ch];
                self.running_var[ch] = 0.9 * self.running_var[ch] + 0.1 * var[ch];
            }
            (mean, var)
        } else {
            (self.running_mean.clone(), self.running_var.clone())
        };

        let inv_std: Vec<f32> = var.iter().map(|&s| 1.0 / (s + EPS).sqrt()).collect();
        let g = self.gamma.data();
        let b = self.beta.data();
        let mut xhat = vec![0.0f32; x.len()];
        let mut out = vec![0.0f32; x.len()];
        for (i, &v) in x.iter().enumerate() {
            let ch = self.channel_of(i, spatial);
            let h = (v - mean[ch]) * inv_std[ch];
            xhat[i] = h;
            out[i] = g[ch] * h + b[ch];
        }
        if train {
            self.cached_xhat = Some(Tensor::from_vec(xhat, input.shape()));
            self.cached_inv_std = inv_std;
        }
        Tensor::from_vec(out, input.shape())
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let xhat = self
            .cached_xhat
            .take()
            .expect("backward called without a preceding training forward");
        let (batch, spatial) = self.plan(grad_out.shape());
        let m = (batch * spatial) as f32;
        let c = self.channels;
        let dy = grad_out.data();
        let xh = xhat.data();

        // Per-channel sums.
        let mut sum_dy = vec![0.0f32; c];
        let mut sum_dy_xhat = vec![0.0f32; c];
        for i in 0..dy.len() {
            let ch = self.channel_of(i, spatial);
            sum_dy[ch] += dy[i];
            sum_dy_xhat[ch] += dy[i] * xh[i];
        }
        for ch in 0..c {
            self.grad_beta.data_mut()[ch] += sum_dy[ch];
            self.grad_gamma.data_mut()[ch] += sum_dy_xhat[ch];
        }
        let g = self.gamma.data();
        let mut gin = vec![0.0f32; dy.len()];
        for i in 0..dy.len() {
            let ch = self.channel_of(i, spatial);
            gin[i] = g[ch] * self.cached_inv_std[ch] / m
                * (m * dy[i] - sum_dy[ch] - xh[i] * sum_dy_xhat[ch]);
        }
        Tensor::from_vec(gin, grad_out.shape())
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.gamma, &self.beta]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![&self.grad_gamma, &self.grad_beta]
    }

    fn zero_grads(&mut self) {
        self.grad_gamma.scale_assign(0.0);
        self.grad_beta.scale_assign(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normalizes_batch_statistics() {
        let mut bn = BatchNorm::new(2);
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::randn(&[64, 2], 3.0, &mut rng).map(|v| v + 5.0);
        let y = bn.forward(&x, true);
        // Per-channel mean ~0, var ~1 after normalization.
        for ch in 0..2 {
            let vals: Vec<f32> = (0..64).map(|r| y.at2(r, ch)).collect();
            let mean: f32 = vals.iter().sum::<f32>() / 64.0;
            let var: f32 = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 64.0;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn eval_mode_uses_running_stats() {
        let mut bn = BatchNorm::new(1);
        let mut rng = StdRng::seed_from_u64(2);
        // Feed many training batches so running stats converge.
        for _ in 0..200 {
            let x = Tensor::randn(&[32, 1], 2.0, &mut rng).map(|v| v + 10.0);
            let _ = bn.forward(&x, true);
        }
        // Eval on a constant input: output should be ~(10-10)/2 γ + β = 0.
        let x = Tensor::full(&[4, 1], 10.0);
        let y = bn.forward(&x, false);
        for &v in y.data() {
            assert!(v.abs() < 0.2, "eval output {v}");
        }
    }

    #[test]
    fn gradient_check() {
        let mut bn = BatchNorm::new(2);
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::randn(&[5, 2], 1.0, &mut rng);
        // Random upstream gradient; L = Σ r ⊙ y.
        let r = Tensor::randn(&[5, 2], 1.0, &mut rng);
        let y = bn.forward(&x, true);
        let _ = y;
        let gin = bn.backward(&r);
        let eps = 1e-2f32;
        for k in [0usize, 3, 9] {
            let mut xp = x.clone();
            xp.data_mut()[k] += eps;
            let mut xm = x.clone();
            xm.data_mut()[k] -= eps;
            let mut bn_p = BatchNorm::new(2);
            let mut bn_m = BatchNorm::new(2);
            let lp: f32 = bn_p
                .forward(&xp, true)
                .data()
                .iter()
                .zip(r.data())
                .map(|(a, b)| a * b)
                .sum();
            let lm: f32 = bn_m
                .forward(&xm, true)
                .data()
                .iter()
                .zip(r.data())
                .map(|(a, b)| a * b)
                .sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (gin.data()[k] - numeric).abs() < 0.02 * numeric.abs().max(1.0),
                "x[{k}]: {} vs {}",
                gin.data()[k],
                numeric
            );
        }
    }

    #[test]
    fn nchw_input_supported() {
        let mut bn = BatchNorm::new(3);
        let mut rng = StdRng::seed_from_u64(4);
        let x = Tensor::randn(&[2, 3, 4, 4], 1.0, &mut rng);
        let y = bn.forward(&x, true);
        assert_eq!(y.shape(), x.shape());
        let g = bn.backward(&Tensor::full(x.shape(), 1.0));
        assert_eq!(g.shape(), x.shape());
    }

    #[test]
    fn params_are_gamma_beta() {
        let bn = BatchNorm::new(4);
        assert_eq!(bn.param_count(), 8);
    }
}
