//! Model composition: sequential stacks, residual blocks and flat
//! parameter access.

use crate::{accuracy, softmax_cross_entropy, BatchNorm, Conv2d, Layer, Relu};
use rand::Rng;
use saps_data::{Batch, Dataset};
use saps_tensor::Tensor;

/// A feed-forward model: a sequence of layers plus the input shape
/// (excluding the batch dimension) used to fold flat feature rows into
/// the first layer's expected layout.
pub struct Model {
    layers: Vec<Box<dyn Layer>>,
    input_shape: Vec<usize>,
}

impl std::fmt::Debug for Model {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Model")
            .field("layers", &self.layers.len())
            .field("input_shape", &self.input_shape)
            .field("params", &self.num_params())
            .finish()
    }
}

impl Model {
    /// Builds a model from layers. `input_shape` is the per-example shape,
    /// e.g. `[784]` for an MLP or `[1, 28, 28]` for a conv net.
    pub fn new(layers: Vec<Box<dyn Layer>>, input_shape: Vec<usize>) -> Self {
        assert!(!layers.is_empty(), "a model needs at least one layer");
        Model {
            layers,
            input_shape,
        }
    }

    /// Per-example input shape.
    pub fn input_shape(&self) -> &[usize] {
        &self.input_shape
    }

    /// Per-example flattened input dimension.
    pub fn input_dim(&self) -> usize {
        self.input_shape.iter().product()
    }

    /// Total scalar parameter count `N`.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Forward pass over a flat feature batch (`rows × input_dim`).
    pub fn forward(&mut self, features: &[f32], rows: usize, train: bool) -> Tensor {
        assert_eq!(features.len(), rows * self.input_dim(), "feature size");
        let mut shape = vec![rows];
        shape.extend_from_slice(&self.input_shape);
        let mut x = Tensor::from_vec(features.to_vec(), &shape);
        for layer in &mut self.layers {
            x = layer.forward(&x, train);
        }
        x
    }

    /// Backward pass from a loss gradient on the logits.
    pub fn backward(&mut self, grad_logits: &Tensor) {
        let mut g = grad_logits.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
    }

    /// Zeroes all accumulated gradients.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }

    /// Computes loss/accuracy on a batch and accumulates gradients
    /// (does **not** update parameters or clear gradients).
    pub fn compute_grads(&mut self, batch: &Batch) -> (f32, f32) {
        let logits = self.forward(&batch.features, batch.len(), true);
        let (loss, grad) = softmax_cross_entropy(&logits, &batch.labels);
        let acc = accuracy(&logits, &batch.labels);
        self.backward(&grad);
        (loss, acc)
    }

    /// One plain-SGD step (Algorithm 2's `SGD` procedure:
    /// `net.x ← net.x − γ·∇`): forward, backward, update, zero grads.
    /// Returns `(loss, accuracy)` on the batch.
    pub fn train_step(&mut self, batch: &Batch, lr: f32) -> (f32, f32) {
        self.zero_grads();
        let (loss, acc) = self.compute_grads(batch);
        self.apply_sgd(lr);
        self.zero_grads();
        (loss, acc)
    }

    /// Applies `param ← param − lr · grad` to every parameter.
    pub fn apply_sgd(&mut self, lr: f32) {
        for layer in &mut self.layers {
            // Gradients and parameters are aligned by index; clone the
            // gradient values first to satisfy the borrow checker.
            let grads: Vec<Tensor> = layer.grads().into_iter().cloned().collect();
            for (p, g) in layer.params_mut().into_iter().zip(&grads) {
                p.add_scaled_assign(g, -lr);
            }
        }
    }

    /// Validation accuracy over up to `max_samples` examples of `ds`
    /// (eval mode; deterministic order).
    pub fn evaluate(&mut self, ds: &Dataset, max_samples: usize) -> f32 {
        let n = ds.len().min(max_samples);
        if n == 0 {
            return 0.0;
        }
        let chunk = 256usize;
        let mut correct = 0.0f64;
        let mut start = 0;
        while start < n {
            let end = (start + chunk).min(n);
            let idx: Vec<usize> = (start..end).collect();
            let sub = ds.subset(&idx);
            let mut features = Vec::with_capacity((end - start) * ds.feature_dim());
            for i in 0..sub.len() {
                features.extend_from_slice(sub.features_of(i));
            }
            let logits = self.forward(&features, end - start, false);
            correct += (accuracy(&logits, sub.labels()) as f64) * (end - start) as f64;
            start = end;
        }
        (correct / n as f64) as f32
    }

    /// Copies all parameters into one flat vector (layer order, each
    /// layer's tensors in `params()` order) — the `x ∈ R^N` every
    /// distributed algorithm exchanges.
    pub fn flat_params(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_params());
        self.copy_flat_params_into(&mut out);
        out
    }

    /// [`Model::flat_params`] into a caller-owned buffer, reusing its
    /// capacity — the allocation-free variant the per-round exchange
    /// paths use with their scratch buffers.
    pub fn copy_flat_params_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.reserve(self.num_params());
        for layer in &self.layers {
            for p in layer.params() {
                out.extend_from_slice(p.data());
            }
        }
    }

    /// Overwrites all parameters from a flat vector (inverse of
    /// [`Model::flat_params`]).
    pub fn set_flat_params(&mut self, flat: &[f32]) {
        assert_eq!(flat.len(), self.num_params(), "flat parameter size");
        let mut off = 0;
        for layer in &mut self.layers {
            for p in layer.params_mut() {
                let n = p.len();
                p.data_mut().copy_from_slice(&flat[off..off + n]);
                off += n;
            }
        }
    }

    /// Copies all accumulated gradients into one flat vector aligned with
    /// [`Model::flat_params`].
    pub fn flat_grads(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_params());
        for layer in &self.layers {
            for g in layer.grads() {
                out.extend_from_slice(g.data());
            }
        }
        out
    }
}

/// A ResNet basic block: `ReLU(BN(conv(ReLU(BN(conv(x))))) + shortcut(x))`
/// with an optional 1×1 projection shortcut when shape changes.
pub struct ResidualBlock {
    conv1: Conv2d,
    bn1: BatchNorm,
    relu1: Relu,
    conv2: Conv2d,
    bn2: BatchNorm,
    projection: Option<(Conv2d, BatchNorm)>,
    cached_input: Option<Tensor>,
    cached_pre_relu: Option<Tensor>,
}

impl ResidualBlock {
    /// Creates a basic block mapping `in_channels × in_h × in_w` to
    /// `out_channels × (in_h/stride) × (in_w/stride)`.
    pub fn new<R: Rng>(
        in_channels: usize,
        out_channels: usize,
        stride: usize,
        in_h: usize,
        in_w: usize,
        rng: &mut R,
    ) -> Self {
        let conv1 = Conv2d::new(in_channels, out_channels, 3, stride, 1, in_h, in_w, rng);
        let (oh, ow) = (conv1.out_h(), conv1.out_w());
        let conv2 = Conv2d::new(out_channels, out_channels, 3, 1, 1, oh, ow, rng);
        let projection = if stride != 1 || in_channels != out_channels {
            let proj = Conv2d::new(in_channels, out_channels, 1, stride, 0, in_h, in_w, rng);
            let bn = BatchNorm::new(out_channels);
            Some((proj, bn))
        } else {
            None
        };
        ResidualBlock {
            conv1,
            bn1: BatchNorm::new(out_channels),
            relu1: Relu::new(),
            conv2,
            bn2: BatchNorm::new(out_channels),
            projection,
            cached_input: None,
            cached_pre_relu: None,
        }
    }
}

impl Layer for ResidualBlock {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut main = self.conv1.forward(input, train);
        main = self.bn1.forward(&main, train);
        main = self.relu1.forward(&main, train);
        main = self.conv2.forward(&main, train);
        main = self.bn2.forward(&main, train);
        let shortcut = match &mut self.projection {
            Some((proj, bn)) => {
                let s = proj.forward(input, train);
                bn.forward(&s, train)
            }
            None => input.clone(),
        };
        let pre = main.add(&shortcut);
        self.cached_pre_relu = Some(pre.clone());
        self.cached_input = Some(input.clone());
        pre.map(|v| v.max(0.0))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let pre = self
            .cached_pre_relu
            .take()
            .expect("backward called without a preceding forward");
        // Through the final ReLU.
        let grad_pre = Tensor::from_vec(
            pre.data()
                .iter()
                .zip(grad_out.data())
                .map(|(&x, &g)| if x > 0.0 { g } else { 0.0 })
                .collect(),
            grad_out.shape(),
        );
        // Main path.
        let mut g = self.bn2.backward(&grad_pre);
        g = self.conv2.backward(&g);
        g = self.relu1.backward(&g);
        g = self.bn1.backward(&g);
        let grad_in_main = self.conv1.backward(&g);
        // Shortcut path.
        let grad_in_shortcut = match &mut self.projection {
            Some((proj, bn)) => {
                let g = bn.backward(&grad_pre);
                proj.backward(&g)
            }
            None => grad_pre,
        };
        self.cached_input = None;
        grad_in_main.add(&grad_in_shortcut)
    }

    fn params(&self) -> Vec<&Tensor> {
        let mut out = Vec::new();
        out.extend(self.conv1.params());
        out.extend(self.bn1.params());
        out.extend(self.conv2.params());
        out.extend(self.bn2.params());
        if let Some((proj, bn)) = &self.projection {
            out.extend(proj.params());
            out.extend(bn.params());
        }
        out
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        let mut out = Vec::new();
        out.extend(self.conv1.params_mut());
        out.extend(self.bn1.params_mut());
        out.extend(self.conv2.params_mut());
        out.extend(self.bn2.params_mut());
        if let Some((proj, bn)) = &mut self.projection {
            out.extend(proj.params_mut());
            out.extend(bn.params_mut());
        }
        out
    }

    fn grads(&self) -> Vec<&Tensor> {
        let mut out = Vec::new();
        out.extend(self.conv1.grads());
        out.extend(self.bn1.grads());
        out.extend(self.conv2.grads());
        out.extend(self.bn2.grads());
        if let Some((proj, bn)) = &self.projection {
            out.extend(proj.grads());
            out.extend(bn.grads());
        }
        out
    }

    fn zero_grads(&mut self) {
        self.conv1.zero_grads();
        self.bn1.zero_grads();
        self.conv2.zero_grads();
        self.bn2.zero_grads();
        if let Some((proj, bn)) = &mut self.projection {
            proj.zero_grads();
            bn.zero_grads();
        }
    }
}

/// Flattens NCHW activations to `[batch, C·H·W]` between conv and dense
/// stages.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    cached_shape: Vec<usize>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        self.cached_shape = input.shape().to_vec();
        let batch = input.shape()[0];
        let rest: usize = input.shape()[1..].iter().product();
        input.clone().reshape(&[batch, rest])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        grad_out.clone().reshape(&self.cached_shape)
    }

    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    fn grads(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn zero_grads(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dense;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use saps_data::SyntheticSpec;

    fn tiny_mlp(rng: &mut StdRng) -> Model {
        Model::new(
            vec![
                Box::new(Dense::new(16, 24, rng)),
                Box::new(Relu::new()),
                Box::new(Dense::new(24, 4, rng)),
            ],
            vec![16],
        )
    }

    #[test]
    fn flat_params_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = tiny_mlp(&mut rng);
        let flat = m.flat_params();
        assert_eq!(flat.len(), m.num_params());
        let mut changed = flat.clone();
        changed[0] += 1.0;
        m.set_flat_params(&changed);
        assert_eq!(m.flat_params(), changed);
    }

    #[test]
    fn training_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = tiny_mlp(&mut rng);
        let ds = SyntheticSpec::tiny().samples(512).generate(3);
        let first = {
            let b = ds.sample_batch(64, &mut rng);
            m.train_step(&b, 0.0).0 // lr 0: measure initial loss
        };
        for _ in 0..150 {
            let b = ds.sample_batch(64, &mut rng);
            m.train_step(&b, 0.1);
        }
        let last = {
            let b = ds.sample_batch(256, &mut rng);
            m.compute_grads(&b).0
        };
        assert!(last < first * 0.6, "loss did not drop: {first} -> {last}");
    }

    #[test]
    fn evaluate_beats_chance_after_training() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut m = tiny_mlp(&mut rng);
        let ds = SyntheticSpec::tiny().samples(1200).generate(5);
        let (train, val) = ds.split(0.2, 1);
        for _ in 0..300 {
            let b = train.sample_batch(64, &mut rng);
            m.train_step(&b, 0.1);
        }
        let acc = m.evaluate(&val, usize::MAX);
        assert!(acc > 0.5, "val accuracy {acc} (chance = 0.25)");
    }

    #[test]
    fn residual_block_forward_backward_shapes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut block = ResidualBlock::new(4, 8, 2, 8, 8, &mut rng);
        let x = Tensor::randn(&[2, 4, 8, 8], 1.0, &mut rng);
        let y = block.forward(&x, true);
        assert_eq!(y.shape(), &[2, 8, 4, 4]);
        let g = block.backward(&Tensor::full(y.shape(), 1.0));
        assert_eq!(g.shape(), x.shape());
        // Projection shortcut present because shape changed.
        assert!(block.projection.is_some());
    }

    #[test]
    fn residual_block_identity_shortcut() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut block = ResidualBlock::new(4, 4, 1, 6, 6, &mut rng);
        assert!(block.projection.is_none());
        let x = Tensor::randn(&[1, 4, 6, 6], 1.0, &mut rng);
        let y = block.forward(&x, true);
        assert_eq!(y.shape(), x.shape());
    }

    #[test]
    fn residual_block_gradient_check() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut block = ResidualBlock::new(2, 2, 1, 4, 4, &mut rng);
        let x = Tensor::randn(&[1, 2, 4, 4], 0.5, &mut rng);
        let _ = block.forward(&x, true);
        let gin = block.backward(&Tensor::full(&[1, 2, 4, 4], 1.0));
        let eps = 1e-2f32;
        for k in [0usize, 9, 21] {
            let mut xp = x.clone();
            xp.data_mut()[k] += eps;
            let mut xm = x.clone();
            xm.data_mut()[k] -= eps;
            // Fresh blocks with identical params (clone via flat copy).
            let lp = {
                let mut b2 = ResidualBlock::new(2, 2, 1, 4, 4, &mut StdRng::seed_from_u64(7));
                b2.forward(&xp, true).sum()
            };
            let lm = {
                let mut b2 = ResidualBlock::new(2, 2, 1, 4, 4, &mut StdRng::seed_from_u64(7));
                b2.forward(&xm, true).sum()
            };
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (gin.data()[k] - numeric).abs() < 0.08 * numeric.abs().max(1.0),
                "x[{k}]: {} vs {}",
                gin.data()[k],
                numeric
            );
        }
    }

    #[test]
    fn flatten_roundtrip() {
        let mut f = Flatten::new();
        let x = Tensor::randn(&[2, 3, 4, 4], 1.0, &mut StdRng::seed_from_u64(8));
        let y = f.forward(&x, true);
        assert_eq!(y.shape(), &[2, 48]);
        let g = f.backward(&y);
        assert_eq!(g.shape(), x.shape());
    }

    #[test]
    fn two_models_same_seed_have_same_params() {
        let mut r1 = StdRng::seed_from_u64(11);
        let mut r2 = StdRng::seed_from_u64(11);
        let a = tiny_mlp(&mut r1);
        let b = tiny_mlp(&mut r2);
        assert_eq!(a.flat_params(), b.flat_params());
    }
}
