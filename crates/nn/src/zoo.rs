//! The model zoo: the paper's three architectures at full size plus
//! scaled-down variants for the convergence experiments.
//!
//! Table II of the paper lists MNIST-CNN (6,653,628 params), CIFAR10-CNN
//! (7,025,886) and ResNet-20 (269,722). The first two follow McMahan et
//! al. \[35\]; since \[35\] does not pin every width, our reconstructions use
//! the standard layer recipe with dense widths chosen to land close to
//! the published counts. The exact counts our builders produce are
//! reported by `zoo::param_count` and printed next to the paper's numbers
//! by the Table II bench.

use crate::model::Flatten;
use crate::{BatchNorm, Conv2d, Dense, GlobalAvgPool, MaxPool2d, Model, Relu, ResidualBlock};
use rand::Rng;

/// A multi-layer perceptron with ReLU between layers.
/// `dims = [in, hidden..., out]`.
pub fn mlp<R: Rng>(dims: &[usize], rng: &mut R) -> Model {
    assert!(dims.len() >= 2, "mlp needs at least [in, out]");
    let mut layers: Vec<Box<dyn crate::Layer>> = Vec::new();
    for i in 0..dims.len() - 1 {
        layers.push(Box::new(Dense::new(dims[i], dims[i + 1], rng)));
        if i + 2 < dims.len() {
            layers.push(Box::new(Relu::new()));
        }
    }
    Model::new(layers, vec![dims[0]])
}

/// Multinomial logistic regression (a single dense layer).
pub fn logistic<R: Rng>(in_dim: usize, classes: usize, rng: &mut R) -> Model {
    mlp(&[in_dim, classes], rng)
}

/// The MNIST-CNN of \[35\]: two 5×5 conv + max-pool stages (32 and 64
/// channels) and a 2048-wide dense head — sized to approximate the
/// paper's 6,653,628 parameters.
pub fn mnist_cnn<R: Rng>(rng: &mut R) -> Model {
    let conv1 = Conv2d::new(1, 32, 5, 1, 2, 28, 28, rng);
    let pool1 = MaxPool2d::new(2, 32, 28, 28);
    let conv2 = Conv2d::new(32, 64, 5, 1, 2, 14, 14, rng);
    let pool2 = MaxPool2d::new(2, 64, 14, 14);
    let flat_dim = 64 * 7 * 7;
    Model::new(
        vec![
            Box::new(conv1),
            Box::new(Relu::new()),
            Box::new(pool1),
            Box::new(conv2),
            Box::new(Relu::new()),
            Box::new(pool2),
            Box::new(Flatten::new()),
            Box::new(Dense::new(flat_dim, 2048, rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(2048, 10, rng)),
        ],
        vec![1, 28, 28],
    )
}

/// The CIFAR10-CNN of \[35\]: two 5×5 conv + pool stages (64 channels each)
/// and a 1536/384 dense head — sized to approximate the paper's
/// 7,025,886 parameters.
pub fn cifar10_cnn<R: Rng>(rng: &mut R) -> Model {
    let conv1 = Conv2d::new(3, 64, 5, 1, 2, 32, 32, rng);
    let pool1 = MaxPool2d::new(2, 64, 32, 32);
    let conv2 = Conv2d::new(64, 64, 5, 1, 2, 16, 16, rng);
    let pool2 = MaxPool2d::new(2, 64, 16, 16);
    let flat_dim = 64 * 8 * 8; // 4096
    Model::new(
        vec![
            Box::new(conv1),
            Box::new(Relu::new()),
            Box::new(pool1),
            Box::new(conv2),
            Box::new(Relu::new()),
            Box::new(pool2),
            Box::new(Flatten::new()),
            Box::new(Dense::new(flat_dim, 1536, rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(1536, 384, rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(384, 10, rng)),
        ],
        vec![3, 32, 32],
    )
}

/// ResNet-20 for CIFAR-10 \[27\]: 3×3 stem, three stages of three basic
/// blocks (16/32/64 channels), global average pooling, 10-way head.
/// ~272 k parameters (the paper reports 269,722; the delta is batch-norm
/// bookkeeping).
pub fn resnet20<R: Rng>(rng: &mut R) -> Model {
    resnet_cifar(3, rng)
}

/// The CIFAR ResNet family: depth `6·blocks_per_stage + 2`.
pub fn resnet_cifar<R: Rng>(blocks_per_stage: usize, rng: &mut R) -> Model {
    assert!(blocks_per_stage >= 1);
    let mut layers: Vec<Box<dyn crate::Layer>> = vec![
        Box::new(Conv2d::new(3, 16, 3, 1, 1, 32, 32, rng)),
        Box::new(BatchNorm::new(16)),
        Box::new(Relu::new()),
    ];
    let mut channels = 16;
    let mut size = 32;
    for stage in 0..3 {
        let out_channels = 16 << stage;
        for b in 0..blocks_per_stage {
            let stride = if stage > 0 && b == 0 { 2 } else { 1 };
            layers.push(Box::new(ResidualBlock::new(
                channels,
                out_channels,
                stride,
                size,
                size,
                rng,
            )));
            if stride == 2 {
                size /= 2;
            }
            channels = out_channels;
        }
    }
    layers.push(Box::new(GlobalAvgPool::new(64, size, size)));
    layers.push(Box::new(Dense::new(64, 10, rng)));
    Model::new(layers, vec![3, 32, 32])
}

/// A small CNN for fast conv-path experiments: 8×8 single-channel input,
/// one conv + pool stage, small dense head (~3k params).
pub fn small_cnn<R: Rng>(rng: &mut R) -> Model {
    Model::new(
        vec![
            Box::new(Conv2d::new(1, 8, 3, 1, 1, 8, 8, rng)),
            Box::new(Relu::new()),
            Box::new(MaxPool2d::new(2, 8, 8, 8)),
            Box::new(Flatten::new()),
            Box::new(Dense::new(8 * 4 * 4, 24, rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(24, 4, rng)),
        ],
        vec![1, 8, 8],
    )
}

/// A tiny ResNet (depth 8 = `6·1 + 2`) on 16×16 inputs for fast
/// residual-path experiments.
pub fn resnet_tiny<R: Rng>(rng: &mut R) -> Model {
    let mut layers: Vec<Box<dyn crate::Layer>> = vec![
        Box::new(Conv2d::new(1, 8, 3, 1, 1, 16, 16, rng)),
        Box::new(BatchNorm::new(8)),
        Box::new(Relu::new()),
        Box::new(ResidualBlock::new(8, 8, 1, 16, 16, rng)),
        Box::new(ResidualBlock::new(8, 16, 2, 16, 16, rng)),
        Box::new(GlobalAvgPool::new(16, 8, 8)),
        Box::new(Dense::new(16, 4, rng)),
    ];
    layers.shrink_to_fit();
    Model::new(layers, vec![1, 16, 16])
}

/// Named model constructors used across benches and examples, so
/// experiment configs can refer to models by string.
pub fn by_name<R: Rng>(name: &str, rng: &mut R) -> Option<Model> {
    match name {
        "mnist-cnn" => Some(mnist_cnn(rng)),
        "cifar10-cnn" => Some(cifar10_cnn(rng)),
        "resnet-20" => Some(resnet20(rng)),
        "small-cnn" => Some(small_cnn(rng)),
        "resnet-tiny" => Some(resnet_tiny(rng)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use saps_data::SyntheticSpec;

    #[test]
    fn mlp_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = mlp(&[8, 16, 4], &mut rng);
        assert_eq!(m.input_dim(), 8);
        assert_eq!(m.num_params(), 8 * 16 + 16 + 16 * 4 + 4);
    }

    #[test]
    fn logistic_is_single_layer() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = logistic(10, 3, &mut rng);
        assert_eq!(m.num_params(), 33);
    }

    #[test]
    fn mnist_cnn_param_count_near_paper() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = mnist_cnn(&mut rng);
        // conv1 832 + conv2 51,264 + fc1 6,424,576 + fc2 20,490.
        assert_eq!(m.num_params(), 6_497_162);
        // Within 3% of the paper's 6,653,628.
        let paper = 6_653_628f64;
        let ratio = m.num_params() as f64 / paper;
        assert!((ratio - 1.0).abs() < 0.03, "ratio {ratio}");
    }

    #[test]
    fn cifar10_cnn_param_count_near_paper() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = cifar10_cnn(&mut rng);
        let paper = 7_025_886f64;
        let ratio = m.num_params() as f64 / paper;
        assert!((ratio - 1.0).abs() < 0.05, "params {}", m.num_params());
    }

    #[test]
    fn resnet20_param_count_near_paper() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = resnet20(&mut rng);
        let paper = 269_722f64;
        let ratio = m.num_params() as f64 / paper;
        assert!(
            (ratio - 1.0).abs() < 0.05,
            "params {} (paper 269,722)",
            m.num_params()
        );
    }

    #[test]
    fn full_size_models_run_one_step() {
        // One forward/backward on a small batch for each full-size model —
        // proves the architectures are trainable end to end.
        let mut rng = StdRng::seed_from_u64(6);
        for (name, feat) in [("mnist-cnn", 784), ("resnet-20", 3072)] {
            let mut m = by_name(name, &mut rng).unwrap();
            let ds = SyntheticSpec::tiny().features(feat).samples(4).generate(1);
            let b = ds.sample_batch(2, &mut rng);
            let (loss, _) = m.train_step(&b, 0.01);
            assert!(loss.is_finite(), "{name} loss {loss}");
        }
    }

    #[test]
    fn small_cnn_trains() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut m = small_cnn(&mut rng);
        let ds = SyntheticSpec::tiny().features(64).samples(600).generate(2);
        let b0 = ds.sample_batch(128, &mut rng);
        let initial = m.compute_grads(&b0).0;
        m.zero_grads();
        for _ in 0..120 {
            let b = ds.sample_batch(32, &mut rng);
            m.train_step(&b, 0.1);
        }
        let b1 = ds.sample_batch(128, &mut rng);
        let trained = m.compute_grads(&b1).0;
        assert!(trained < initial, "{initial} -> {trained}");
    }

    #[test]
    fn resnet_tiny_trains_one_epoch() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut m = resnet_tiny(&mut rng);
        let ds = SyntheticSpec::tiny().features(256).samples(64).generate(3);
        for _ in 0..4 {
            let b = ds.sample_batch(16, &mut rng);
            let (loss, _) = m.train_step(&b, 0.05);
            assert!(loss.is_finite());
        }
    }

    #[test]
    fn by_name_unknown_is_none() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(by_name("nope", &mut rng).is_none());
    }
}
