//! Softmax cross-entropy loss and accuracy.

use saps_tensor::{ops, Tensor};

/// Computes the mean softmax cross-entropy loss over a batch of logits
/// `[batch, classes]`, returning `(loss, grad_logits)`.
///
/// The gradient is `(softmax(z) − onehot(y)) / batch` — ready to feed into
/// the last layer's `backward`.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    assert_eq!(logits.shape().len(), 2, "logits must be [batch, classes]");
    let (batch, classes) = (logits.shape()[0], logits.shape()[1]);
    assert_eq!(batch, labels.len(), "batch/labels mismatch");
    let mut grad = vec![0.0f32; batch * classes];
    let mut loss = 0.0f64;
    for r in 0..batch {
        let row = &logits.data()[r * classes..(r + 1) * classes];
        let label = labels[r];
        assert!(label < classes, "label out of range");
        // Numerically stable log-softmax.
        let max = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        let mut sum = 0.0f32;
        for &v in row {
            sum += (v - max).exp();
        }
        let log_sum = sum.ln() + max;
        loss -= (row[label] - log_sum) as f64;
        let grow = &mut grad[r * classes..(r + 1) * classes];
        for (c, g) in grow.iter_mut().enumerate() {
            let p = (row[c] - log_sum).exp();
            *g = (p - f32::from(c == label)) / batch as f32;
        }
    }
    (
        (loss / batch as f64) as f32,
        Tensor::from_vec(grad, &[batch, classes]),
    )
}

/// Fraction of rows whose argmax matches the label.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f32 {
    let (batch, classes) = (logits.shape()[0], logits.shape()[1]);
    assert_eq!(batch, labels.len());
    if batch == 0 {
        return 0.0;
    }
    let correct = logits
        .data()
        .chunks_exact(classes)
        .zip(labels)
        .filter(|(row, &label)| ops::argmax(row) == label)
        .count();
    correct as f32 / batch as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_c() {
        let logits = Tensor::zeros(&[2, 4]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 3]);
        assert!((loss - 4.0f32.ln()).abs() < 1e-6);
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let logits = Tensor::from_vec(vec![10.0, 0.0, 0.0], &[1, 3]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss < 1e-3);
    }

    #[test]
    fn gradient_sums_to_zero_per_row() {
        let logits = Tensor::from_vec(vec![1.0, -2.0, 0.5, 3.0, 0.0, 0.0], &[2, 3]);
        let (_, grad) = softmax_cross_entropy(&logits, &[2, 1]);
        for r in 0..2 {
            let s: f32 = grad.data()[r * 3..(r + 1) * 3].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_check() {
        let logits = Tensor::from_vec(vec![0.5, -1.0, 2.0], &[1, 3]);
        let (_, grad) = softmax_cross_entropy(&logits, &[1]);
        let eps = 1e-3f32;
        for k in 0..3 {
            let mut lp = logits.clone();
            lp.data_mut()[k] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[k] -= eps;
            let (loss_p, _) = softmax_cross_entropy(&lp, &[1]);
            let (loss_m, _) = softmax_cross_entropy(&lm, &[1]);
            let numeric = (loss_p - loss_m) / (2.0 * eps);
            assert!((grad.data()[k] - numeric).abs() < 1e-3);
        }
    }

    #[test]
    fn loss_is_stable_for_huge_logits() {
        let logits = Tensor::from_vec(vec![1e4, -1e4], &[1, 2]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss.is_finite());
        assert!(grad.data().iter().all(|g| g.is_finite()));
    }

    #[test]
    fn accuracy_counts_argmax_matches() {
        let logits = Tensor::from_vec(vec![2.0, 1.0, 0.0, 5.0], &[2, 2]);
        assert_eq!(accuracy(&logits, &[0, 1]), 1.0);
        assert_eq!(accuracy(&logits, &[1, 0]), 0.0);
        assert_eq!(accuracy(&logits, &[0, 0]), 0.5);
    }
}
