//! The layer abstraction.

use saps_tensor::Tensor;

/// A differentiable layer.
///
/// The contract is classic define-by-run backprop:
/// [`Layer::forward`] caches whatever it needs, and the next
/// [`Layer::backward`] call consumes that cache (one backward per
/// forward). Parameter gradients accumulate into the layer until
/// [`Layer::zero_grads`].
///
/// `Send + Sync` are supertraits so whole models can move between the
/// round engine's worker threads (and be read through `&` from several
/// of them); layers are plain tensors plus caches with no interior
/// mutability, so every implementation satisfies both for free.
pub trait Layer: Send + Sync {
    /// Computes the layer output. `train` distinguishes training-mode
    /// behaviour (e.g. batch-norm statistics).
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Back-propagates `grad_out` (gradient w.r.t. this layer's output),
    /// accumulating parameter gradients and returning the gradient w.r.t.
    /// the layer's input.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Immutable views of the layer's parameter tensors (possibly empty).
    fn params(&self) -> Vec<&Tensor>;

    /// Mutable views of the layer's parameter tensors, in the same order
    /// as [`Layer::params`].
    fn params_mut(&mut self) -> Vec<&mut Tensor>;

    /// Immutable views of the accumulated parameter gradients, aligned
    /// with [`Layer::params`].
    fn grads(&self) -> Vec<&Tensor>;

    /// Clears accumulated gradients.
    fn zero_grads(&mut self);

    /// Total number of scalar parameters.
    fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }
}
