//! Fully connected layer.

use crate::Layer;
use rand::Rng;
use saps_tensor::Tensor;

/// A dense (fully connected) layer: `y = x W + b`.
///
/// Input `[batch, in_dim]`, output `[batch, out_dim]`; `W` is
/// `[in_dim, out_dim]`.
#[derive(Debug, Clone)]
pub struct Dense {
    w: Tensor,
    b: Tensor,
    grad_w: Tensor,
    grad_b: Tensor,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with Kaiming-uniform initialization
    /// (`bound = sqrt(6 / in_dim)`), biases at zero.
    pub fn new<R: Rng>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        let bound = (6.0 / in_dim as f32).sqrt();
        Dense {
            w: Tensor::uniform(&[in_dim, out_dim], bound, rng),
            b: Tensor::zeros(&[out_dim]),
            grad_w: Tensor::zeros(&[in_dim, out_dim]),
            grad_b: Tensor::zeros(&[out_dim]),
            cached_input: None,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.w.shape()[0]
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.w.shape()[1]
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        assert_eq!(input.shape().len(), 2, "Dense expects [batch, in_dim]");
        assert_eq!(input.shape()[1], self.in_dim(), "input dim mismatch");
        let mut out = input.matmul(&self.w);
        let (batch, od) = (out.shape()[0], out.shape()[1]);
        let b = self.b.data();
        let data = out.data_mut();
        for r in 0..batch {
            for c in 0..od {
                data[r * od + c] += b[c];
            }
        }
        self.cached_input = Some(input.clone());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .take()
            .expect("backward called without a preceding forward");
        // dW = xᵀ · dy, db = column-sum(dy), dx = dy · Wᵀ.
        let gw = input.t_matmul(grad_out);
        self.grad_w.add_scaled_assign(&gw, 1.0);
        let (batch, od) = (grad_out.shape()[0], grad_out.shape()[1]);
        let gb = self.grad_b.data_mut();
        let g = grad_out.data();
        for r in 0..batch {
            for c in 0..od {
                gb[c] += g[r * od + c];
            }
        }
        grad_out.matmul_t(&self.w)
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.w, &self.b]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.w, &mut self.b]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![&self.grad_w, &self.grad_b]
    }

    fn zero_grads(&mut self) {
        self.grad_w.scale_assign(0.0);
        self.grad_b.scale_assign(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut d = Dense::new(3, 2, &mut rng);
        // Zero weights isolate the bias.
        d.params_mut()[0].scale_assign(0.0);
        d.params_mut()[1].data_mut().copy_from_slice(&[1.0, -1.0]);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let y = d.forward(&x, true);
        assert_eq!(y.shape(), &[2, 2]);
        assert_eq!(y.data(), &[1.0, -1.0, 1.0, -1.0]);
    }

    #[test]
    fn param_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Dense::new(10, 5, &mut rng);
        assert_eq!(d.param_count(), 55);
    }

    #[test]
    fn gradient_check_weights() {
        // Finite-difference check of dL/dW for L = sum(y).
        let mut rng = StdRng::seed_from_u64(3);
        let mut d = Dense::new(4, 3, &mut rng);
        let x = Tensor::randn(&[2, 4], 1.0, &mut rng);
        let y = d.forward(&x, true);
        let ones = Tensor::full(y.shape(), 1.0);
        d.backward(&ones);
        let analytic = d.grads()[0].clone();
        let eps = 1e-3f32;
        for k in [0usize, 5, 11] {
            let orig = d.w.data()[k];
            d.w.data_mut()[k] = orig + eps;
            let lp = d.forward(&x, true).sum();
            d.w.data_mut()[k] = orig - eps;
            let lm = d.forward(&x, true).sum();
            d.w.data_mut()[k] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (analytic.data()[k] - numeric).abs() < 1e-2,
                "k={k}: analytic {} vs numeric {}",
                analytic.data()[k],
                numeric
            );
        }
    }

    #[test]
    fn gradient_check_input() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut d = Dense::new(3, 2, &mut rng);
        let x = Tensor::randn(&[1, 3], 1.0, &mut rng);
        let _ = d.forward(&x, true);
        let gin = d.backward(&Tensor::full(&[1, 2], 1.0));
        let eps = 1e-3f32;
        for k in 0..3 {
            let mut xp = x.clone();
            xp.data_mut()[k] += eps;
            let mut xm = x.clone();
            xm.data_mut()[k] -= eps;
            let lp = d.forward(&xp, true).sum();
            let lm = d.forward(&xm, true).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((gin.data()[k] - numeric).abs() < 1e-2);
        }
    }

    #[test]
    fn grads_accumulate_until_zeroed() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut d = Dense::new(2, 2, &mut rng);
        let x = Tensor::full(&[1, 2], 1.0);
        let g = Tensor::full(&[1, 2], 1.0);
        d.forward(&x, true);
        d.backward(&g);
        let after_one = d.grads()[0].data()[0];
        d.forward(&x, true);
        d.backward(&g);
        assert!((d.grads()[0].data()[0] - 2.0 * after_one).abs() < 1e-6);
        d.zero_grads();
        assert_eq!(d.grads()[0].data()[0], 0.0);
    }

    #[test]
    #[should_panic(expected = "without a preceding forward")]
    fn backward_requires_forward() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut d = Dense::new(2, 2, &mut rng);
        let _ = d.backward(&Tensor::zeros(&[1, 2]));
    }
}
