//! Minimal neural-network training substrate.
//!
//! Implements exactly what the paper's evaluation needs: feed-forward
//! models (dense layers, 2-D convolutions with max pooling, batch
//! normalization, residual blocks), softmax cross-entropy loss, and SGD —
//! plus **flat parameter access** ([`Model::flat_params`] /
//! [`Model::set_flat_params`]), because every algorithm in the paper
//! exchanges models as flat vectors `x ∈ R^N`.
//!
//! The model zoo ([`zoo`]) provides the paper's three architectures
//! (MNIST-CNN, CIFAR10-CNN, ResNet-20) at full size, plus scaled-down
//! variants used by the convergence experiments (see DESIGN.md §6).
//!
//! # Example
//!
//! ```
//! use saps_nn::{zoo, Model};
//! use saps_data::SyntheticSpec;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut model = zoo::mlp(&[16, 32, 4], &mut rng);
//! let ds = SyntheticSpec::tiny().samples(64).generate(1);
//! let batch = ds.sample_batch(8, &mut rng);
//! let (loss, _acc) = model.train_step(&batch, 0.1);
//! assert!(loss.is_finite());
//! ```

#![warn(missing_docs)]

mod activation;
mod conv;
mod dense;
mod layer;
mod loss;
mod model;
mod norm;
mod pool;
pub mod sgd;
pub mod zoo;

pub use activation::{Relu, Tanh};
pub use conv::Conv2d;
pub use dense::Dense;
pub use layer::Layer;
pub use loss::{accuracy, softmax_cross_entropy};
pub use model::{Flatten, Model, ResidualBlock};
pub use norm::BatchNorm;
pub use pool::{GlobalAvgPool, MaxPool2d};
