//! SGD with optional momentum and weight decay, over flat parameter
//! vectors.
//!
//! The paper's Algorithm 2 uses plain SGD (`net.x ← net.x − γ·∇`); momentum
//! and weight decay are provided because ResNet-style training
//! conventionally uses them, and because a distributed algorithm's
//! convergence comparisons should not be bottlenecked by a crippled
//! optimizer.

use crate::Model;

/// SGD state: learning schedule knobs plus the momentum buffer.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// L2 weight decay coefficient.
    pub weight_decay: f32,
    velocity: Vec<f32>,
}

impl Sgd {
    /// Plain SGD (no momentum, no weight decay).
    pub fn plain() -> Self {
        Sgd {
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }

    /// SGD with momentum and weight decay.
    pub fn with_momentum(momentum: f32, weight_decay: f32) -> Self {
        assert!((0.0..1.0).contains(&momentum));
        Sgd {
            momentum,
            weight_decay,
            velocity: Vec::new(),
        }
    }

    /// Applies one step at learning rate `lr` using the model's currently
    /// accumulated gradients, then clears them.
    pub fn step(&mut self, model: &mut Model, lr: f32) {
        let mut params = model.flat_params();
        let grads = model.flat_grads();
        if self.velocity.len() != params.len() {
            self.velocity = vec![0.0; params.len()];
        }
        for ((p, g), v) in params.iter_mut().zip(&grads).zip(&mut self.velocity) {
            let g = g + self.weight_decay * *p;
            if self.momentum > 0.0 {
                *v = self.momentum * *v + g;
                *p -= lr * *v;
            } else {
                *p -= lr * g;
            }
        }
        model.set_flat_params(&params);
        model.zero_grads();
    }

    /// Resets the momentum buffer (e.g. after a model overwrite).
    pub fn reset(&mut self) {
        self.velocity.clear();
    }
}

/// A step-decay learning-rate schedule: `base · factor^(epoch / period)`.
#[derive(Debug, Clone, Copy)]
pub struct StepDecay {
    /// Initial learning rate.
    pub base: f32,
    /// Multiplicative decay applied every `period` epochs.
    pub factor: f32,
    /// Epochs between decays.
    pub period: usize,
}

impl StepDecay {
    /// The learning rate at `epoch`.
    pub fn at(&self, epoch: usize) -> f32 {
        self.base * self.factor.powi((epoch / self.period) as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{zoo, Model};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use saps_data::SyntheticSpec;

    fn setup() -> (Model, saps_data::Dataset, StdRng) {
        let mut rng = StdRng::seed_from_u64(1);
        let m = zoo::mlp(&[16, 24, 4], &mut rng);
        let ds = SyntheticSpec::tiny().samples(512).generate(2);
        (m, ds, rng)
    }

    #[test]
    fn plain_step_matches_manual_update() {
        let (mut m, ds, mut rng) = setup();
        let before = m.flat_params();
        let b = ds.sample_batch(32, &mut rng);
        m.compute_grads(&b);
        let grads = m.flat_grads();
        let mut sgd = Sgd::plain();
        sgd.step(&mut m, 0.5);
        let after = m.flat_params();
        for ((a, b), g) in after.iter().zip(&before).zip(&grads) {
            assert!((a - (b - 0.5 * g)).abs() < 1e-6);
        }
    }

    #[test]
    fn momentum_accelerates_along_constant_gradient() {
        // With constant gradient g, velocity after 2 steps = g(1 + m).
        let (mut m, ds, mut rng) = setup();
        let b = ds.sample_batch(32, &mut rng);
        let mut sgd = Sgd::with_momentum(0.9, 0.0);
        let p0 = m.flat_params();
        m.compute_grads(&b);
        let g1 = m.flat_grads();
        sgd.step(&mut m, 0.1);
        let p1 = m.flat_params();
        // Restore params so the gradient is identical, then step again.
        m.set_flat_params(&p0);
        m.zero_grads();
        m.compute_grads(&b);
        m.set_flat_params(&p1);
        sgd.step(&mut m, 0.1);
        let p2 = m.flat_params();
        for i in 0..3 {
            let step2 = p1[i] - p2[i];
            let expect = 0.1 * g1[i] * 1.9;
            assert!((step2 - expect).abs() < 1e-6, "i={i}");
        }
    }

    #[test]
    fn weight_decay_shrinks_params() {
        let (mut m, _, _) = setup();
        let before = m.flat_params();
        m.zero_grads(); // zero gradient: only decay acts
        let mut sgd = Sgd::with_momentum(0.0, 0.1);
        sgd.step(&mut m, 1.0);
        let after = m.flat_params();
        for (a, b) in after.iter().zip(&before) {
            assert!((a - b * 0.9).abs() < 1e-6);
        }
    }

    #[test]
    fn step_decay_schedule() {
        let s = StepDecay {
            base: 0.1,
            factor: 0.1,
            period: 80,
        };
        assert_eq!(s.at(0), 0.1);
        assert_eq!(s.at(79), 0.1);
        assert!((s.at(80) - 0.01).abs() < 1e-9);
        assert!((s.at(160) - 0.001).abs() < 1e-9);
    }
}
